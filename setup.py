"""Legacy setup shim.

The canonical metadata lives in pyproject.toml; this file exists so the
package installs in environments whose setuptools predates PEP 660
editable wheels (``pip install -e . --no-use-pep517``).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.1.0",
    description=(
        "Sublinear-time sampling of spanning trees in the Congested Clique "
        "(PODC 2025) - full reproduction"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.11",
    install_requires=["numpy>=1.24", "scipy>=1.10", "networkx>=3.0"],
)
