"""Tests for graph/tree serialization."""

from __future__ import annotations

import pytest

from repro import graphs
from repro.errors import FormatError, GraphError
from repro.graphs.io import (
    graph_from_json,
    graph_to_json,
    read_edge_list,
    tree_from_json,
    tree_to_json,
    write_edge_list,
)


class TestEdgeList:
    def test_round_trip_unweighted(self, tmp_path, small_graphs):
        for name, g in small_graphs.items():
            path = tmp_path / f"{name}.edges"
            write_edge_list(g, path)
            assert read_edge_list(path) == g, name

    def test_round_trip_weighted(self, tmp_path, weighted_triangle):
        path = tmp_path / "tri.edges"
        write_edge_list(weighted_triangle, path)
        back = read_edge_list(path)
        assert back.weight(0, 2) == pytest.approx(3.0)

    def test_isolated_vertices_preserved_by_header(self, tmp_path):
        path = tmp_path / "iso.edges"
        path.write_text("# vertices: 5\n0 1\n")
        g = read_edge_list(path)
        assert g.n == 5
        assert not g.is_connected()

    def test_missing_header_infers_n(self, tmp_path):
        path = tmp_path / "plain.edges"
        path.write_text("0 1\n1 2\n")
        assert read_edge_list(path).n == 3

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("0 1 2 3\n")
        with pytest.raises(GraphError):
            read_edge_list(path)

    def test_header_vertex_conflict(self, tmp_path):
        path = tmp_path / "conflict.edges"
        path.write_text("# vertices: 2\n0 5\n")
        with pytest.raises(GraphError):
            read_edge_list(path)

    def test_comments_and_blanks_ignored(self, tmp_path):
        path = tmp_path / "comments.edges"
        path.write_text("# a comment\n\n0 1\n# another\n1 2\n")
        assert read_edge_list(path).m == 2

    def test_trailing_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "trailing.edges"
        path.write_text("0 1\n1 2\n\n\n")
        assert read_edge_list(path).m == 2


class TestEdgeListValidation:
    """Parse-time rejection of input that used to fail deep in numerics."""

    def test_duplicate_edge_names_both_lines(self, tmp_path):
        path = tmp_path / "dup.edges"
        path.write_text("0 1\n1 2\n1 0\n")
        with pytest.raises(FormatError) as excinfo:
            read_edge_list(path)
        message = str(excinfo.value)
        assert f"{path}:3" in message  # the duplicate
        assert f"{path}:1" in message  # its first declaration

    def test_self_loop_rejected_with_line(self, tmp_path):
        path = tmp_path / "loop.edges"
        path.write_text("0 1\n2 2\n")
        with pytest.raises(FormatError, match=rf"{path}:2"):
            read_edge_list(path)

    def test_unparseable_tokens_rejected_with_line(self, tmp_path):
        path = tmp_path / "tokens.edges"
        path.write_text("0 1\n1 two\n")
        with pytest.raises(FormatError, match=rf"{path}:2"):
            read_edge_list(path)

    def test_negative_vertex_rejected(self, tmp_path):
        path = tmp_path / "neg.edges"
        path.write_text("-1 1\n")
        with pytest.raises(FormatError, match=rf"{path}:1"):
            read_edge_list(path)

    def test_non_positive_weight_rejected(self, tmp_path):
        path = tmp_path / "zero.edges"
        path.write_text("0 1 0.0\n")
        with pytest.raises(FormatError, match="weight"):
            read_edge_list(path)

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "header.edges"
        path.write_text("# vertices: many\n0 1\n")
        with pytest.raises(FormatError, match=rf"{path}:1"):
            read_edge_list(path)

    def test_empty_document_rejected(self, tmp_path):
        path = tmp_path / "empty.edges"
        path.write_text("\n\n")
        with pytest.raises(FormatError, match="empty"):
            read_edge_list(path)

    def test_format_error_is_a_graph_error(self, tmp_path):
        # downstream except-clauses on GraphError keep working
        path = tmp_path / "loop2.edges"
        path.write_text("3 3\n")
        with pytest.raises(GraphError):
            read_edge_list(path)


class TestJson:
    def test_graph_round_trip(self, small_graphs):
        for name, g in small_graphs.items():
            assert graph_from_json(graph_to_json(g)) == g, name

    def test_graph_format_tag_checked(self):
        with pytest.raises(GraphError):
            graph_from_json('{"format": "other", "n": 2, "edges": []}')

    def test_tree_round_trip(self):
        g = graphs.cycle_with_chord(6)
        from repro.walks import wilson_tree
        import numpy as np

        tree = wilson_tree(g, np.random.default_rng(0))
        n, back = tree_from_json(tree_to_json(g.n, tree))
        assert n == 6
        assert back == tree

    def test_tree_format_tag_checked(self):
        with pytest.raises(GraphError):
            tree_from_json('{"format": "zzz", "n": 2, "tree": []}')

    def test_tree_normalizes_orientation(self):
        doc = tree_to_json(3, [(2, 1), (1, 0)])
        __, tree = tree_from_json(doc)
        assert tree == ((0, 1), (1, 2))


class TestJsonValidation:
    """graph_from_json mirrors the edge-list parse-time checks."""

    @staticmethod
    def _doc(n, edges):
        import json

        return json.dumps(
            {"format": "repro-graph-v1", "n": n, "edges": edges}
        )

    def test_duplicate_edge_rejected_with_index(self):
        doc = self._doc(3, [[0, 1, 1.0], [1, 2, 1.0], [1, 0, 2.0]])
        with pytest.raises(FormatError, match="edge #2"):
            graph_from_json(doc)

    def test_self_loop_rejected_with_index(self):
        doc = self._doc(3, [[0, 1, 1.0], [2, 2, 1.0]])
        with pytest.raises(FormatError, match="edge #1"):
            graph_from_json(doc)

    def test_out_of_range_rejected(self):
        doc = self._doc(2, [[0, 5, 1.0]])
        with pytest.raises(FormatError, match="out of range"):
            graph_from_json(doc)

    def test_malformed_row_rejected(self):
        doc = self._doc(3, [[0, 1, 1.0], [1]])
        with pytest.raises(FormatError, match="edge #1"):
            graph_from_json(doc)

    def test_non_positive_weight_rejected(self):
        doc = self._doc(3, [[0, 1, -2.0]])
        with pytest.raises(FormatError, match="weight"):
            graph_from_json(doc)

    def test_bad_n_rejected(self):
        import json

        doc = json.dumps(
            {"format": "repro-graph-v1", "n": "lots", "edges": []}
        )
        with pytest.raises(FormatError, match="integer 'n'"):
            graph_from_json(doc)

    def test_negative_n_rejected(self):
        doc = self._doc(-3, [])
        with pytest.raises(FormatError, match="negative n"):
            graph_from_json(doc)
