"""Tests for graph/tree serialization."""

from __future__ import annotations

import pytest

from repro import graphs
from repro.errors import GraphError
from repro.graphs.io import (
    graph_from_json,
    graph_to_json,
    read_edge_list,
    tree_from_json,
    tree_to_json,
    write_edge_list,
)


class TestEdgeList:
    def test_round_trip_unweighted(self, tmp_path, small_graphs):
        for name, g in small_graphs.items():
            path = tmp_path / f"{name}.edges"
            write_edge_list(g, path)
            assert read_edge_list(path) == g, name

    def test_round_trip_weighted(self, tmp_path, weighted_triangle):
        path = tmp_path / "tri.edges"
        write_edge_list(weighted_triangle, path)
        back = read_edge_list(path)
        assert back.weight(0, 2) == pytest.approx(3.0)

    def test_isolated_vertices_preserved_by_header(self, tmp_path):
        path = tmp_path / "iso.edges"
        path.write_text("# vertices: 5\n0 1\n")
        g = read_edge_list(path)
        assert g.n == 5
        assert not g.is_connected()

    def test_missing_header_infers_n(self, tmp_path):
        path = tmp_path / "plain.edges"
        path.write_text("0 1\n1 2\n")
        assert read_edge_list(path).n == 3

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("0 1 2 3\n")
        with pytest.raises(GraphError):
            read_edge_list(path)

    def test_header_vertex_conflict(self, tmp_path):
        path = tmp_path / "conflict.edges"
        path.write_text("# vertices: 2\n0 5\n")
        with pytest.raises(GraphError):
            read_edge_list(path)

    def test_comments_and_blanks_ignored(self, tmp_path):
        path = tmp_path / "comments.edges"
        path.write_text("# a comment\n\n0 1\n# another\n1 2\n")
        assert read_edge_list(path).m == 2


class TestJson:
    def test_graph_round_trip(self, small_graphs):
        for name, g in small_graphs.items():
            assert graph_from_json(graph_to_json(g)) == g, name

    def test_graph_format_tag_checked(self):
        with pytest.raises(GraphError):
            graph_from_json('{"format": "other", "n": 2, "edges": []}')

    def test_tree_round_trip(self):
        g = graphs.cycle_with_chord(6)
        from repro.walks import wilson_tree
        import numpy as np

        tree = wilson_tree(g, np.random.default_rng(0))
        n, back = tree_from_json(tree_to_json(g.n, tree))
        assert n == 6
        assert back == tree

    def test_tree_format_tag_checked(self):
        with pytest.raises(GraphError):
            tree_from_json('{"format": "zzz", "n": 2, "tree": []}')

    def test_tree_normalizes_orientation(self):
        doc = tree_to_json(3, [(2, 1), (1, 0)])
        __, tree = tree_from_json(doc)
        assert tree == ((0, 1), (1, 2))
