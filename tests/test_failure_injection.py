"""Failure-injection tests: every guarded path fires and recovers cleanly.

Production distributed code is defined by its failure behaviour; these
tests force each guard in the pipeline -- precision floors, quota
failures, bandwidth violations, infeasible matchings, DP blowups -- and
check that the library either recovers exactly (documented fallbacks) or
fails loudly with the right exception type.
"""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro import graphs
from repro.clique import CongestedClique
from repro.core import CongestedCliqueTreeSampler, SamplerConfig
from repro.core.midpoints import MidpointBank
from repro.core.placement import _DP_STATE_BUDGET, place_midpoints
from repro.core.truncation import LevelView
from repro.errors import (
    BandwidthError,
    ModelError,
    PrecisionError,
    SamplingError,
)
from repro.graphs import is_spanning_tree
from repro.linalg import PowerLadder
from repro.walks.fill import PartialWalk


class TestPrecisionFallbacks:
    def test_approximate_variant_survives_floor_breach(self, rng):
        """The 5.2 fallback is wired for both variants: an absurd floor
        forces the collect-everything path and trees stay valid."""
        g = graphs.cycle_with_chord(6)
        config = SamplerConfig(ell=1 << 8, normalizer_floor_exponent=0.1)
        result = CongestedCliqueTreeSampler(g, config).sample(rng)
        assert is_spanning_tree(g, result.tree)
        assert any(s.brute_force_fallbacks > 0 for s in result.phase_stats)

    def test_bank_raises_precision_error_first(self, rng):
        g = graphs.complete_graph(5)
        half = g.transition_matrix()
        with pytest.raises(PrecisionError):
            MidpointBank({(0, 1): 1}, half, rng, normalizer_floor=1.0)


class TestQuotaFailures:
    def test_error_policy_is_loud(self, rng):
        g = graphs.cycle_graph(24)
        config = SamplerConfig(ell=4, on_failure="error")
        with pytest.raises(SamplingError):
            CongestedCliqueTreeSampler(g, config).sample(rng)

    def test_extension_cap_is_loud(self, rng):
        from repro.core.phase import run_phase_walk

        g = graphs.cycle_graph(32)
        config = SamplerConfig(ell=2, max_extensions=1)
        with pytest.raises(SamplingError):
            run_phase_walk(g.transition_matrix(), 0, 16, config, rng)


class TestDPBlowupGuard:
    def test_oversized_multiset_falls_back_to_pair_placement(self, rng):
        """Force a multiset whose DP state estimate exceeds the budget and
        verify placement still succeeds with preserved multisets."""
        g = graphs.complete_graph(5)
        ladder = PowerLadder(g.transition_matrix(), 4)
        half = ladder.power(2)
        # A long repetitive walk: one pair class, huge multiplicity per
        # vertex -> states ~ prod(counts + 1) stays small... so instead
        # use many alternating pairs to inflate the estimate artificially
        # via a tiny budget monkeypatch-free route: check the estimator
        # directly and the fallback via a long walk.
        vertices = [0, 2] * 120 + [0]
        walk = PartialWalk(4, vertices)
        pair_counts: dict = {}
        for pair in walk.pairs():
            pair_counts[pair] = pair_counts.get(pair, 0) + 1
        bank = MidpointBank(pair_counts, half, rng)
        view = LevelView(walk, bank)
        result = place_midpoints(view, view.top, half, rng)
        assert result.spacing == 2
        truncated = view.truncated_pair_counts(view.top)
        expected = bank.truncated_counts(truncated)
        placed = Counter(result.vertices[t] for t in range(1, view.top + 1, 2))
        assert placed == expected

    def test_estimate_grows_with_distinct_values(self):
        from repro.core.placement import _dp_cost_estimate

        small = _dp_cost_estimate(Counter({1: 2, 2: 2}), [1, 3])
        big = _dp_cost_estimate(Counter({v: 30 for v in range(10)}), [1] * 50)
        assert big > small
        assert big > _DP_STATE_BUDGET


class TestModelViolations:
    def test_exchange_bad_destination(self):
        clique = CongestedClique(4)
        with pytest.raises(ModelError):
            clique.exchange([(0, 4, 1)])

    def test_negative_word_charge(self):
        clique = CongestedClique(4)
        with pytest.raises(BandwidthError):
            clique.charge_step("x", -1, 0)

    def test_sampler_stuck_guard(self, rng):
        """A sampler that cannot make progress raises rather than spins:
        simulate by exhausting max phases via a pathological rho."""
        # rho = 2 on a 2-vertex graph finishes in one phase; the guard is
        # exercised indirectly -- here we just assert normal termination
        # is well within the 4n + 8 cap.
        g = graphs.complete_graph(6)
        result = CongestedCliqueTreeSampler(
            g, SamplerConfig(ell=1 << 10)
        ).sample(rng)
        assert result.phases <= 4 * 6 + 8


class TestDisconnectedInputsEverywhere:
    def test_all_entry_points_reject_disconnected(self, rng):
        from repro.core import ExactTreeSampler, sample_tree_fast_cover
        from repro.walks import (
            aldous_broder_tree,
            spanning_tree_via_doubling,
            wilson_tree,
        )

        g = graphs.WeightedGraph.from_edges(4, [(0, 1), (2, 3)])
        for call in (
            lambda: CongestedCliqueTreeSampler(g),
            lambda: ExactTreeSampler(g),
            lambda: sample_tree_fast_cover(g, rng),
            lambda: aldous_broder_tree(g, rng),
            lambda: wilson_tree(g, rng),
            lambda: spanning_tree_via_doubling(g, rng),
        ):
            with pytest.raises(Exception):
                call()
