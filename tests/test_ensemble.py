"""Tests for tree-ensemble statistics (edge marginals vs leverage)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import graphs
from repro.analysis import (
    edge_frequencies,
    ensemble_summary,
    leverage_score_deviation,
)
from repro.errors import ReproError
from repro.walks import wilson_tree


class TestEdgeFrequencies:
    def test_simple_counts(self):
        trees = [((0, 1), (1, 2)), ((0, 1), (0, 2))]
        freqs = edge_frequencies(trees)
        assert freqs[(0, 1)] == pytest.approx(1.0)
        assert freqs[(1, 2)] == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            edge_frequencies([])


class TestLeverageDeviation:
    def test_wilson_matches_leverage(self, rng):
        """An exact sampler's marginals sit within noise of the scores."""
        g = graphs.wheel_graph(7)
        trees = [wilson_tree(g, rng) for _ in range(1200)]
        stats = leverage_score_deviation(g, trees)
        assert stats["max_abs_deviation"] < 5 * stats["max_noise_scale"]

    def test_point_mass_deviates(self):
        """Always returning the same tree produces large deviation."""
        g = graphs.cycle_graph(6)
        from repro.graphs import enumerate_spanning_trees

        tree = enumerate_spanning_trees(g)[0]
        stats = leverage_score_deviation(g, [tree] * 200)
        assert stats["max_abs_deviation"] > 0.1

    def test_summary_format(self, rng):
        g = graphs.cycle_graph(5)
        trees = [wilson_tree(g, rng) for _ in range(50)]
        text = ensemble_summary(g, trees)
        assert "50 trees" in text
        assert "deviation" in text
