"""Tests for top-down walk filling (Outline 1 / Section 2.1.2).

Lemma 1 and Lemma 2 are statements of distributional equality with plain
step-by-step walks; the tests here verify them statistically and check all
structural invariants of :class:`PartialWalk`.
"""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro import graphs
from repro.errors import WalkError
from repro.linalg import PowerLadder
from repro.walks import (
    PartialWalk,
    fill_walk,
    random_walk,
    sample_bridge,
    sample_midpoint,
    truncated_fill_walk,
    walk_until_distinct,
)
from repro.walks.fill import _truncate_at_distinct


class TestPartialWalk:
    def test_target_length(self):
        walk = PartialWalk(4, [0, 1, 2])
        assert walk.target_length == 8
        assert not walk.is_complete
        assert PartialWalk(1, [0, 1]).is_complete

    def test_pairs(self):
        walk = PartialWalk(2, [0, 1, 1, 3])
        assert walk.pairs() == [(0, 1), (1, 1), (1, 3)]

    def test_distinct_count(self):
        assert PartialWalk(1, [0, 1, 0, 2]).distinct_count() == 3

    def test_validation(self):
        with pytest.raises(WalkError):
            PartialWalk(0, [0])
        with pytest.raises(WalkError):
            PartialWalk(1, [])


class TestTruncation:
    def test_truncates_at_first_occurrence(self):
        walk = PartialWalk(1, [0, 1, 0, 2, 1, 3])
        truncated = _truncate_at_distinct(walk, 3)
        assert truncated.vertices == [0, 1, 0, 2]

    def test_no_truncation_when_below_quota(self):
        walk = PartialWalk(1, [0, 1, 0, 1])
        assert _truncate_at_distinct(walk, 3).vertices == [0, 1, 0, 1]

    def test_quota_one_truncates_to_start(self):
        walk = PartialWalk(1, [0, 1, 2])
        assert _truncate_at_distinct(walk, 1).vertices == [0]


class TestSampleMidpoint:
    def test_law_matches_formula(self, rng):
        g = graphs.cycle_with_chord(5)
        p = g.transition_matrix()
        half = p @ p  # midpoints of length-4 gaps use P^2
        draws = Counter(sample_midpoint(half, 0, 2, rng, count=5000))
        law = half[0, :] * half[:, 2]
        law = law / law.sum()
        for v, probability in enumerate(law):
            assert draws[v] / 5000 == pytest.approx(probability, abs=0.03)

    def test_impossible_gap_raises(self, rng):
        g = graphs.path_graph(4)  # bipartite: odd-parity pairs impossible
        p = g.transition_matrix()
        with pytest.raises(WalkError):
            sample_midpoint(p, 0, 1, rng)  # P[0,x] P[x,1] = 0 for all x


class TestFillWalk:
    def test_is_valid_walk(self, rng):
        g = graphs.cycle_with_chord(6)
        ladder = PowerLadder(g.transition_matrix(), 16)
        walk = fill_walk(ladder, 0, rng)
        assert len(walk) == 17
        assert walk[0] == 0
        assert all(g.has_edge(a, b) for a, b in zip(walk, walk[1:]))

    def test_matches_direct_walk_distribution(self, rng):
        """Lemma 1: filled walks are distributed as step-by-step walks.

        Compared via the joint law of (vertex at time 2, vertex at time 4)
        on a small graph.
        """
        g = graphs.cycle_with_chord(5)
        ladder = PowerLadder(g.transition_matrix(), 4)
        n_samples = 4000
        filled = Counter(
            (w[2], w[4])
            for w in (fill_walk(ladder, 0, rng) for _ in range(n_samples))
        )
        direct = Counter(
            (w[2], w[4])
            for w in (random_walk(g, 0, 4, rng) for _ in range(n_samples))
        )
        keys = set(filled) | set(direct)
        tv = 0.5 * sum(
            abs(filled[k] / n_samples - direct[k] / n_samples) for k in keys
        )
        assert tv < 0.06


class TestSampleBridge:
    def test_endpoints_honored(self, rng):
        g = graphs.complete_graph(5)
        ladder = PowerLadder(g.transition_matrix(), 8)
        for end in range(5):
            bridge = sample_bridge(ladder, 0, end, rng)
            assert bridge[0] == 0
            assert bridge[-1] == end
            assert len(bridge) == 9
            assert all(g.has_edge(a, b) for a, b in zip(bridge, bridge[1:]))

    def test_shorter_length_from_ladder(self, rng):
        g = graphs.complete_graph(4)
        ladder = PowerLadder(g.transition_matrix(), 16)
        bridge = sample_bridge(ladder, 1, 2, rng, length=4)
        assert len(bridge) == 5

    def test_impossible_bridge_raises(self, rng):
        g = graphs.path_graph(4)  # bipartite
        ladder = PowerLadder(g.transition_matrix(), 4)
        with pytest.raises(WalkError):
            sample_bridge(ladder, 0, 1, rng, length=4)  # parity mismatch

    def test_distribution_matches_conditioned_walks(self, rng):
        """Bridge law == plain walk law conditioned on the endpoint,
        compared on the middle vertex of length-4 bridges over K4."""
        from collections import Counter

        g = graphs.complete_graph(4)
        ladder = PowerLadder(g.transition_matrix(), 4)
        n_samples = 3000
        bridged = Counter(
            sample_bridge(ladder, 0, 1, rng)[2] for _ in range(n_samples)
        )
        conditioned: Counter = Counter()
        while sum(conditioned.values()) < n_samples:
            walk = random_walk(g, 0, 4, rng)
            if walk[-1] == 1:
                conditioned[walk[2]] += 1
        total = sum(conditioned.values())
        tv = 0.5 * sum(
            abs(bridged[v] / n_samples - conditioned[v] / total)
            for v in range(4)
        )
        assert tv < 0.06


class TestTruncatedFillWalk:
    def test_stops_at_quota(self, rng):
        g = graphs.cycle_with_chord(6)
        ladder = PowerLadder(g.transition_matrix(), 64)
        for _ in range(20):
            walk = truncated_fill_walk(ladder, 0, 3, rng)
            distinct = len(set(walk))
            if distinct == 3:
                # Ends exactly at the first occurrence of the 3rd vertex.
                assert walk.count(walk[-1]) == 1
            else:
                # Quota unmet: the walk ran its full nominal length.
                assert len(walk) == 65
            assert all(g.has_edge(a, b) for a, b in zip(walk, walk[1:]))

    def test_matches_direct_stopped_walk(self, rng):
        """Lemma 2: the truncated fill equals the stopped plain walk.

        Compared via the joint law of (stopping time, final vertex), using
        a nominal length far above the stopping time so truncation always
        happens.
        """
        g = graphs.complete_graph(4)
        ladder = PowerLadder(g.transition_matrix(), 256)
        rho = 3
        n_samples = 3000
        filled = Counter()
        for _ in range(n_samples):
            walk = truncated_fill_walk(ladder, 0, rho, rng)
            filled[(len(walk) if len(walk) < 12 else 12, walk[-1])] += 1
        direct = Counter()
        for _ in range(n_samples):
            walk = walk_until_distinct(g, 0, rho, rng)
            direct[(len(walk) if len(walk) < 12 else 12, walk[-1])] += 1
        keys = set(filled) | set(direct)
        tv = 0.5 * sum(
            abs(filled[k] / n_samples - direct[k] / n_samples) for k in keys
        )
        assert tv < 0.06

    def test_rho_validation(self, rng):
        g = graphs.path_graph(3)
        ladder = PowerLadder(g.transition_matrix(), 4)
        with pytest.raises(WalkError):
            truncated_fill_walk(ladder, 0, 0, rng)
