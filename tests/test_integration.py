"""Cross-module integration tests: whole-pipeline consistency checks."""

from __future__ import annotations

import numpy as np
import pytest

from repro import graphs, sample_spanning_tree
from repro.core import (
    CongestedCliqueTreeSampler,
    ExactTreeSampler,
    SamplerConfig,
    expected_phases,
    sample_tree_fast_cover,
)
from repro.graphs import is_spanning_tree
from repro.walks import aldous_broder_tree, wilson_tree

FAST = SamplerConfig(ell=1 << 10)


class TestAllSamplersOnAllFamilies:
    """Every sampler must produce valid spanning trees on every family."""

    FAMILIES = [
        ("expander", lambda rng: graphs.random_regular_graph(12, 4, rng=rng)),
        ("gnp", lambda rng: graphs.erdos_renyi_graph(12, rng=rng)),
        ("lollipop", lambda rng: graphs.lollipop_graph(10)),
        ("bipartite", lambda rng: graphs.complete_bipartite_unbalanced(9)),
        ("grid", lambda rng: graphs.grid_graph(3, 3)),
        ("barbell", lambda rng: graphs.barbell_graph(9)),
    ]

    @pytest.mark.parametrize("name, factory", FAMILIES, ids=[f[0] for f in FAMILIES])
    def test_family(self, rng, name, factory):
        g = factory(rng)
        samplers = {
            "theorem1": lambda: CongestedCliqueTreeSampler(g, FAST).sample_tree(rng),
            "exact": lambda: ExactTreeSampler(g, FAST).sample_tree(rng),
            "fastcover": lambda: sample_tree_fast_cover(g, rng).tree,
            "aldous-broder": lambda: aldous_broder_tree(g, rng),
            "wilson": lambda: wilson_tree(g, rng),
        }
        for sampler_name, sampler in samplers.items():
            tree = sampler()
            assert is_spanning_tree(g, tree), (name, sampler_name)


class TestPhaseCountScaling:
    """Theorem 1's Theta(sqrt n) phase structure (part of E1)."""

    def test_phase_counts_track_rho(self, rng):
        for n in (9, 16, 25, 36):
            g = graphs.complete_graph(n)
            result = CongestedCliqueTreeSampler(g, FAST).sample(rng)
            predicted = expected_phases(n, int(np.sqrt(n)))
            assert result.phases <= 2 * predicted + 1
            assert result.phases >= predicted / 2

    def test_exact_variant_has_more_phases(self, rng):
        g = graphs.complete_graph(27)
        approx = CongestedCliqueTreeSampler(g, FAST).sample(rng)
        exact = ExactTreeSampler(g, FAST).sample(rng)
        assert exact.phases > approx.phases


class TestSchurShortcutsConsistency:
    """The two derived-graph implementations give identical samplers."""

    def test_same_seed_same_tree_across_methods(self):
        g = graphs.cycle_with_chord(8)
        block = SamplerConfig(ell=1 << 10, schur_method="block")
        qr = SamplerConfig(ell=1 << 10, schur_method="qr-product")
        for seed in range(5):
            a = sample_spanning_tree(g, rng=seed, config=block)
            b = sample_spanning_tree(g, rng=seed, config=qr)
            assert a == b  # numerically identical transition matrices


class TestRoundAccountingConsistency:
    def test_total_rounds_equal_sum_of_sections(self, rng):
        g = graphs.complete_graph(16)
        result = CongestedCliqueTreeSampler(g, FAST).sample(rng)
        by_section = result.ledger.rounds_by_section()
        assert sum(by_section.values()) == result.rounds

    def test_clique_stats_reported(self, rng):
        g = graphs.complete_graph(9)
        result = CongestedCliqueTreeSampler(g, FAST).sample(rng)
        assert result.clique_stats["steps"] > 0
        assert result.clique_stats["rounds"] == result.rounds
