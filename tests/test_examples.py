"""Smoke tests: the example scripts run and print what they promise."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_figure2_walkthrough():
    out = run_example("figure2_walkthrough.py")
    assert "reproduced exactly" in out
    assert "Schur(G, S)" in out


def test_uniformity_audit_small():
    out = run_example("uniformity_audit.py", "250")
    assert "random-weight MST" in out
    # The strawman must be flagged BIASED; our samplers UNIFORM.
    for line in out.splitlines():
        if line.startswith("random-weight MST"):
            assert "BIASED" in line
        if line.startswith("wilson"):
            assert "UNIFORM" in line


@pytest.mark.slow
def test_quickstart():
    out = run_example("quickstart.py")
    assert "Theorem 1" in out
    assert "total rounds" in out


@pytest.mark.slow
def test_pagerank_demo():
    out = run_example("pagerank_demo.py")
    assert "L1 error" in out


@pytest.mark.slow
def test_sparsifier_demo():
    out = run_example("sparsifier_demo.py", timeout=360)
    assert "sparsifier" in out


@pytest.mark.slow
def test_service_quickstart():
    out = run_example("service_quickstart.py")
    assert "streaming 5 draws" in out
    assert "identity: streamed trees == direct Session trees" in out
    assert "oversized request rejected" in out
    assert "server exited 0" in out
