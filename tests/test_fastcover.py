"""Tests for the Corollary 1 fast-cover sampler."""

from __future__ import annotations

import pytest

from repro import graphs
from repro.core import sample_tree_fast_cover
from repro.errors import GraphError
from repro.graphs import WeightedGraph, is_spanning_tree


class TestBasics:
    def test_returns_spanning_tree(self, rng):
        g = graphs.random_regular_graph(16, 4, rng=rng)
        result = sample_tree_fast_cover(g, rng)
        assert is_spanning_tree(g, result.tree)
        assert result.rounds > 0
        assert result.walk_length >= result.cover_time_estimate

    def test_explicit_walk_length(self, rng):
        g = graphs.complete_graph(8)
        result = sample_tree_fast_cover(g, rng, walk_length=64)
        assert is_spanning_tree(g, result.tree)
        assert result.walk_length >= 64

    def test_too_small_rejected(self, rng):
        import numpy as np

        with pytest.raises(GraphError):
            sample_tree_fast_cover(WeightedGraph(np.zeros((1, 1))), rng)

    def test_disconnected_rejected(self, rng):
        g = WeightedGraph.from_edges(4, [(0, 1), (2, 3)])
        with pytest.raises(Exception):
            sample_tree_fast_cover(g, rng)


class TestRoundEfficiency:
    def test_small_cover_families_cheaper_than_lollipop(self, rng):
        """Corollary 1's whole point: rounds track tau/n, so the
        O(n log n)-cover families beat the Theta(n^3)-cover lollipop by a
        wide margin (absolute constants are simulator-specific)."""
        n = 32
        lollipop_rounds = sample_tree_fast_cover(
            graphs.lollipop_graph(n), rng
        ).rounds
        for factory in (
            lambda: graphs.random_regular_graph(n, 4, rng=rng),
            lambda: graphs.complete_bipartite_unbalanced(n),
            lambda: graphs.erdos_renyi_graph(n, rng=rng),
        ):
            g = factory()
            result = sample_tree_fast_cover(g, rng)
            assert result.rounds < lollipop_rounds / 2
            assert result.rounds < n**3  # absolute sanity

    def test_uniformity(self, rng):
        from repro.analysis import expected_tv_noise, tv_to_uniform

        g = graphs.cycle_with_chord(5)
        n_samples = 1000
        trees = [sample_tree_fast_cover(g, rng).tree for _ in range(n_samples)]
        assert tv_to_uniform(g, trees) < 4 * expected_tv_noise(11, n_samples)
