"""Statistical test utilities: seeded draws, exact tree laws, thresholds.

The placement engine's correctness is *distributional* -- a bug does not
crash, it skews which spanning trees come out. These helpers turn that
property into deterministic regression tests.

Threshold policy (documented here, referenced from tests/README.md):

- Every statistical test draws from a FIXED seed, so each test is a
  deterministic function of the code -- it can only flip from pass to
  fail when the sampled law (or the RNG consumption order) changes.
- Chi-square goodness-of-fit p-values are compared against
  ``P_FLOOR = 1e-4``. For a correct sampler the p-value is uniform on
  [0, 1]; one seeded draw sits below 1e-4 with probability 1e-4, and the
  checked-in seeds were verified to give comfortable margins (p > 0.01).
  A placement-law bug is not a small perturbation: dropping the
  ``1/T[r,c]!`` factor or breaking the suffix partition function drives
  p below 1e-30 at ~2k draws on these graphs.
- Empirical total-variation distance is compared against
  ``TV_SLACK = 2.0`` times the perfect-sampler expectation
  ``sqrt(T / (2 pi k))`` (see `repro.analysis.tv.expected_tv_noise`).
  The expectation concentrates tightly at these sample sizes, so 2x is
  both forgiving to noise and far below the deviation a real bias
  produces.

Both gates must pass: chi-square is sensitive to concentrated bias on a
few trees, TV to diffuse bias across many.

Beyond Kirchhoff enumeration the exact law is unavailable (too many
trees to list), so the harness falls back to *two-sample* comparison
against a cheap sequential oracle: :func:`draw_oracle_trees` draws from
the classical exact samplers in :mod:`repro.walks.sequential` (Wilson's
loop-erased walks, Aldous-Broder) and
:func:`assert_same_tree_law` runs a chi-square homogeneity test over
the pooled support of the two samples, with the same fixed-seed
``P_FLOOR`` policy. A two-sample test cannot certify exactness the way
the enumeration gate does, but any placement/variant bug that skews the
sampled law shows up against an oracle known exact by construction.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Mapping

import numpy as np
from scipy import stats as scipy_stats

from repro.analysis.tv import expected_tv_noise, tv_distance
from repro.engine.ensemble import EnsembleEngine
from repro.graphs.core import WeightedGraph
from repro.graphs.spanning import TreeKey, uniform_tree_distribution
from repro.walks.sequential import aldous_broder_tree, wilson_tree

P_FLOOR = 1e-4
TV_SLACK = 2.0

ORACLES = {
    "wilson": wilson_tree,
    "aldous_broder": aldous_broder_tree,
}

__all__ = [
    "P_FLOOR",
    "TV_SLACK",
    "ORACLES",
    "exact_tree_law",
    "chi_square_vs_law",
    "empirical_tv_vs_law",
    "assert_matches_tree_law",
    "assert_same_tree_law",
    "draw_trees",
    "draw_oracle_trees",
]


def exact_tree_law(graph: WeightedGraph) -> dict[TreeKey, float]:
    """Kirchhoff-exact target law: weight-proportional over all trees.

    Uniform for unweighted graphs; for weighted graphs each tree's
    probability is its edge-weight product over the weighted Matrix-Tree
    normalizer (exactly the law the paper's footnote 1 samples).
    """
    return dict(uniform_tree_distribution(graph))


def chi_square_vs_law(
    trees: Iterable[TreeKey], law: Mapping[TreeKey, float]
) -> tuple[float, float]:
    """Chi-square goodness-of-fit of sampled trees against an exact law.

    Returns ``(statistic, p_value)``. Raises ``AssertionError`` when a
    sample falls outside the law's support -- that is never noise.
    """
    counts = Counter(trees)
    total = sum(counts.values())
    assert total > 0, "no samples provided"
    unknown = set(counts) - set(law)
    assert not unknown, f"{len(unknown)} sampled keys outside the tree law"
    support = list(law)
    observed = np.array([counts.get(t, 0) for t in support], dtype=np.float64)
    expected = np.array([law[t] * total for t in support])
    statistic, p_value = scipy_stats.chisquare(observed, expected)
    return float(statistic), float(p_value)


def empirical_tv_vs_law(
    trees: Iterable[TreeKey], law: Mapping[TreeKey, float]
) -> float:
    """Exact-TV helper: empirical distribution vs the target law."""
    counts = Counter(trees)
    total = sum(counts.values())
    assert total > 0, "no samples provided"
    empirical = {tree: count / total for tree, count in counts.items()}
    return tv_distance(empirical, dict(law))


def assert_matches_tree_law(
    graph: WeightedGraph,
    trees: list[TreeKey],
    *,
    p_floor: float = P_FLOOR,
    tv_slack: float = TV_SLACK,
    label: str = "",
) -> None:
    """The harness's double gate: chi-square p-floor AND TV noise bound."""
    law = exact_tree_law(graph)
    statistic, p_value = chi_square_vs_law(trees, law)
    tv = empirical_tv_vs_law(trees, law)
    noise = expected_tv_noise(len(law), len(trees))
    context = f" [{label}]" if label else ""
    assert p_value >= p_floor, (
        f"chi-square rejects the tree law{context}: p={p_value:.3e} "
        f"(stat={statistic:.2f}, {len(trees)} draws over {len(law)} trees)"
    )
    assert tv <= tv_slack * noise, (
        f"empirical TV {tv:.4f} exceeds {tv_slack}x the perfect-sampler "
        f"noise {noise:.4f}{context}"
    )


def assert_same_tree_law(
    trees_a: list[TreeKey],
    trees_b: list[TreeKey],
    *,
    p_floor: float = P_FLOOR,
    label: str = "",
) -> None:
    """Two-sample gate: chi-square homogeneity over the pooled support.

    For graphs past exact enumeration, compares a sampler's draws
    against an oracle's draws (both from the same law iff the sampler is
    correct). Uses the 2 x K contingency chi-square without continuity
    correction; the fixed-seed ``P_FLOOR`` policy from the module
    docstring applies unchanged.
    """
    assert trees_a and trees_b, "both samples must be non-empty"
    support = sorted(set(trees_a) | set(trees_b))
    context = f" [{label}]" if label else ""
    if len(support) == 1:
        return  # one tree class in both samples: trivially homogeneous
    counts_a = Counter(trees_a)
    counts_b = Counter(trees_b)
    table = np.array(
        [
            [counts_a.get(t, 0) for t in support],
            [counts_b.get(t, 0) for t in support],
        ],
        dtype=np.float64,
    )
    statistic, p_value, _, _ = scipy_stats.chi2_contingency(
        table, correction=False
    )
    assert p_value >= p_floor, (
        f"chi-square rejects sample homogeneity{context}: "
        f"p={p_value:.3e} (stat={statistic:.2f}, "
        f"{len(trees_a)}+{len(trees_b)} draws over {len(support)} "
        f"observed trees)"
    )


def draw_trees(
    graph: WeightedGraph,
    count: int,
    *,
    config,
    variant: str = "approximate",
    seed: int = 0,
    jobs: int = 1,
) -> list[TreeKey]:
    """``count`` i.i.d. trees through the ensemble engine (seeded)."""
    result = EnsembleEngine(graph, config, variant=variant).sample_ensemble(
        count, seed=seed, jobs=jobs
    )
    return result.trees


def draw_oracle_trees(
    graph: WeightedGraph,
    count: int,
    *,
    oracle: str = "wilson",
    seed: int = 0,
) -> list[TreeKey]:
    """``count`` i.i.d. trees from a sequential exact sampler (seeded).

    ``oracle`` names one of :data:`ORACLES` -- Wilson's loop-erased
    walks (the fast default) or Aldous-Broder. Both are exact for the
    weight-proportional tree law by classical results, which is what
    makes them usable as the reference arm of
    :func:`assert_same_tree_law` on graphs too large to enumerate.
    """
    try:
        draw = ORACLES[oracle]
    except KeyError:
        raise ValueError(
            f"unknown oracle {oracle!r}; choose from {sorted(ORACLES)}"
        ) from None
    rng = np.random.default_rng(seed)
    return [draw(graph, rng) for _ in range(count)]
