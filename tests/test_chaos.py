"""Chaos suite: injected failures end in correct bytes or typed errors.

Property under test, from the fault-tolerance contract: for every
injected failure mode -- a worker SIGKILLed mid-draw, a process dying
or tearing a write mid-cache-publish, shard responses delayed past the
wall-clock budget, crash loops that trip the circuit breaker -- a
request ends in either a byte-identical correct response (the
pinned-seed contract survives the failure) or a clean typed error
(429/503/504), never a corrupt tree, a wedged inflight slot, or a
poisoned shared cache.

Faults are injected through :mod:`repro.service.faults` hook points,
armed via environment (``tests/chaosutil.py``) so they fire inside real
server subprocesses and their worker shards -- the same process
boundaries real failures cross.
"""

from __future__ import annotations

import time

import pytest

from repro.api import EnsembleRequest, Session
from repro.api.presets import preset_config
from repro.service import faults
from repro.service.client import (
    ServiceClient,
    ServiceRequestError,
    wait_until_ready,
)
from repro.service.protocol import ServiceLimits, parse_service_envelope

from tests.chaosutil import (
    fault_env,
    published_entries,
    run_pinned_draw,
    tmp_debris,
    tokens_fired,
)
from tests.test_service import start_server, stop_server

GRAPH = {"family": "cycle", "n": 8, "seed": 0}
ENSEMBLE = {"request": "ensemble", "count": 3, "seed": 99, "jobs": 2}


def local_bill(count: int = 3, jobs: int = 1):
    """Reference draws for GRAPH under the server's default config."""
    task = parse_service_envelope(
        {"graph": GRAPH, "request": {"request": "sample"}}, ServiceLimits()
    )
    graph, meta = task.build_graph()
    session = Session(
        graph, preset_config("fast-bench"), seed=0, meta=meta
    )
    response = session.run(EnsembleRequest(count=count, seed=99, jobs=jobs))
    return [(r.tree, r.rounds) for r in response.result.results]


def served_bill(response):
    return [(r.tree, r.rounds) for r in response.result.results]


# ---------------------------------------------------------------------------
# Plan language and budgets (no processes).
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_parse_clauses(self):
        plan = faults.parse_plan(
            "worker.task=kill#1; store.publish=truncate;"
            "stream.chunk=delay:0.25#3"
        )
        assert set(plan) == {"worker.task", "store.publish", "stream.chunk"}
        (kill,) = plan["worker.task"]
        assert (kill.action, kill.arg, kill.limit) == ("kill", None, 1)
        (delay,) = plan["stream.chunk"]
        assert (delay.action, delay.arg, delay.limit) == ("delay", "0.25", 3)
        assert plan["store.publish"][0].limit is None

    def test_malformed_plans_fail_loudly(self):
        with pytest.raises(ValueError):
            faults.parse_plan("worker.task")  # no action
        with pytest.raises(ValueError):
            faults.parse_plan("worker.task=explode")  # unknown action
        with pytest.raises(ValueError):
            faults.parse_plan("worker.task=kill#0")  # nonsense budget

    def test_limited_rule_fires_exactly_once(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "unit.point=error:boom#1")
        monkeypatch.setenv("REPRO_FAULTS_DIR", str(tmp_path))
        with pytest.raises(faults.FaultInjected, match="boom"):
            faults.fire("unit.point")
        # Budget spent: the same point is now a no-op, and the claim is
        # visible as a token file (the cross-process ledger).
        faults.fire("unit.point")
        assert tokens_fired(tmp_path) == 1

    def test_unarmed_fire_is_noop(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        faults.fire("worker.task")  # nothing configured, nothing happens


# ---------------------------------------------------------------------------
# Worker crash supervision (real server subprocesses).
# ---------------------------------------------------------------------------


class TestWorkerCrashSupervision:
    def test_kill_one_worker_redispatch_byte_identical(self, tmp_path):
        """One SIGKILLed worker: respawn + re-dispatch, same bytes.

        The first batch task to reach a shard kills its worker. The
        supervisor must respawn the pool and re-dispatch, and the
        response must be byte-identical to an uninterrupted local run
        -- the idempotence claim that makes re-dispatch safe, observed
        end-to-end.
        """
        tokens = tmp_path / "tokens"
        proc, port = start_server(
            "--workers", "1", "--cache-dir", str(tmp_path / "cache"),
            env_extra=fault_env("worker.task=kill#1", tokens),
        )
        client = ServiceClient(port=port, retries=0)
        try:
            wait_until_ready(client)
            response = client.run(GRAPH, ENSEMBLE)
            assert served_bill(response) == local_bill(jobs=2)
            # Supervised, not degraded: the crash was absorbed by the
            # shard layer, never the in-process fallback.
            assert response.meta.get("service_degraded") is None
            counters = client.stats()["counters"]
            assert tokens_fired(tokens) == 1
            assert counters["worker_crashes"] == 1
            assert counters["redispatches"] == 1
            assert counters["degraded_batches"] == 0
            assert counters["completed"] == 1
            assert client.healthz()["status"] == "ok"
            assert client.stats()["inflight"] == 0  # no wedged slot
        finally:
            assert stop_server(proc) == 0

    def test_crash_loop_trips_breaker_and_degrades(self, tmp_path):
        """A crash loop: bounded respawns, breaker, degraded /healthz,
        and in-process correctness while the breaker holds.

        Also the per-request dedupe regression: a degraded ensemble that
        jobs=2 splits into chunks -- and whose pool crashed on multiple
        dispatch attempts -- must bump ``degraded_batches`` exactly once
        per request.
        """
        tokens = tmp_path / "tokens"
        # Cooldown far beyond the test's lifetime: the breaker, once
        # open, must short-circuit every later request in-process.
        proc, port = start_server(
            "--workers", "1", "--cache-dir", str(tmp_path / "cache"),
            "--breaker-threshold", "2", "--max-redispatch", "3",
            "--breaker-reset-seconds", "300",
            env_extra=fault_env("worker.task=kill#3", tokens),
        )
        client = ServiceClient(port=port, retries=0)
        try:
            wait_until_ready(client)
            # Request 1: crash, re-dispatch, crash again -> threshold 2
            # trips the breaker mid-request -> served in-process. One
            # request, two crashed attempts, multiple ensemble chunks:
            # degraded_batches must still read exactly 1.
            response = client.run(GRAPH, ENSEMBLE)
            assert served_bill(response) == local_bill(jobs=2)
            assert response.meta.get("service_degraded") is True
            counters = client.stats()["counters"]
            assert counters["worker_crashes"] == 2
            assert counters["breaker_trips"] == 1
            assert counters["degraded_batches"] == 1, counters
            assert client.healthz()["status"] == "degraded"
            # Request 2, inside the cooldown: breaker short-circuits to
            # in-process -- no new crash, one more degraded request.
            response = client.run(GRAPH, {"request": "sample", "seed": 5})
            assert response.meta.get("service_degraded") is True
            counters = client.stats()["counters"]
            assert counters["worker_crashes"] == 2
            assert counters["degraded_batches"] == 2
            assert counters["completed"] == 2
            assert counters["failed"] == 0
            assert client.healthz()["status"] == "degraded"
            assert client.stats()["inflight"] == 0
        finally:
            assert stop_server(proc) == 0

    def test_breaker_heals_via_cooldown_probe(self, tmp_path):
        """Once the crash budget is spent, a cooldown probe closes the
        breaker and /healthz recovers to "ok" end-to-end."""
        tokens = tmp_path / "tokens"
        proc, port = start_server(
            "--workers", "1", "--cache-dir", str(tmp_path / "cache"),
            "--breaker-threshold", "2", "--max-redispatch", "3",
            "--breaker-reset-seconds", "0.3",
            env_extra=fault_env("worker.task=kill#2", tokens),
        )
        client = ServiceClient(port=port, retries=0)
        try:
            wait_until_ready(client)
            # Two crashes spend the kill budget and trip the breaker.
            response = client.run(GRAPH, {"request": "sample", "seed": 5})
            assert response.meta.get("service_degraded") is True
            assert client.healthz()["status"] == "degraded"
            assert tokens_fired(tokens) == 2
            # Past the cooldown the next request probes the pool; the
            # fault budget is spent, so the probe succeeds, the breaker
            # closes, and the service heals.
            time.sleep(0.4)
            response = client.run(GRAPH, {"request": "sample", "seed": 6})
            assert response.meta.get("service_degraded") is None
            assert client.healthz()["status"] == "ok"
            counters = client.stats()["counters"]
            assert counters["worker_crashes"] == 2
            assert counters["breaker_trips"] == 1
            assert counters["completed"] == 2
            assert counters["failed"] == 0
            assert client.stats()["inflight"] == 0
        finally:
            assert stop_server(proc) == 0


# ---------------------------------------------------------------------------
# Disk-tier crash consistency (kill / torn write mid-publish).
# ---------------------------------------------------------------------------


class TestStoreCrashConsistency:
    def test_kill_mid_publish_never_surfaces_partial_entry(self, tmp_path):
        """SIGKILL at the publish window: no entry, no wedge, same bytes.

        The fsync-before-rename fix means the only states a crash can
        leave behind are "entry fully published and durable" or "tmp
        debris, no entry". A later clean run over the same root must
        neither trip over the debris nor read partial state -- and must
        produce the identical pinned-seed tree a fresh-cache run does.
        """
        root = tmp_path / "cache"
        tokens = tmp_path / "tokens"
        crashed = run_pinned_draw(
            root, faults=fault_env("store.publish=kill#1", tokens)
        )
        assert crashed.returncode == -9, crashed.stderr
        assert tokens_fired(tokens) == 1
        assert published_entries(root) == []  # nothing half-published
        assert tmp_debris(root), "crash should leave tmp residue, not entries"

        healed = run_pinned_draw(root)
        assert healed.returncode == 0, healed.stderr
        assert published_entries(root), "clean run must publish"

        fresh = run_pinned_draw(tmp_path / "fresh-cache")
        assert healed.stdout == fresh.stdout  # byte-identical pinned draw

    def test_torn_write_is_discarded_not_served(self, tmp_path):
        """A truncated-but-published blob is a miss, never poisoned state.

        The truncate fault fires inside the publish window (before the
        fsync barrier), modelling exactly the torn write a crashing
        host could have produced pre-fix. The read path must treat the
        corrupt entry as a miss, recompute, and still produce the
        byte-identical pinned-seed tree.
        """
        root = tmp_path / "cache"
        tokens = tmp_path / "tokens"
        torn = run_pinned_draw(
            root, faults=fault_env("store.publish=truncate#1", tokens)
        )
        assert torn.returncode == 0, torn.stderr
        assert tokens_fired(tokens) == 1
        assert published_entries(root), "torn entry should be published"

        reread = run_pinned_draw(root)
        assert reread.returncode == 0, reread.stderr

        fresh = run_pinned_draw(tmp_path / "fresh-cache")
        assert torn.stdout == fresh.stdout
        assert reread.stdout == fresh.stdout  # cache never poisons draws


# ---------------------------------------------------------------------------
# Delay faults: budgets cut streams with typed errors, slots come back.
# ---------------------------------------------------------------------------


class TestDelayedShards:
    def test_stream_delayed_past_budget_gets_typed_504(self, tmp_path):
        proc, port = start_server(
            "--workers", "1", "--max-seconds", "0.3",
            "--cache-dir", str(tmp_path / "cache"),
            env_extra=fault_env(
                "stream.chunk=delay:0.05", tmp_path / "tokens"
            ),
        )
        client = ServiceClient(port=port, retries=0)
        try:
            wait_until_ready(client)
            with pytest.raises(ServiceRequestError) as info:
                client.stream_collect(
                    {"family": "cycle", "n": 16},
                    {"request": "ensemble", "count": 40, "seed": 0},
                )
            assert info.value.status == 504
            assert "max_seconds" in str(info.value)
            deadline = time.monotonic() + 20
            while time.monotonic() < deadline:
                if client.stats()["inflight"] == 0:
                    break
                time.sleep(0.1)
            assert client.stats()["inflight"] == 0  # slot came back
        finally:
            assert stop_server(proc) == 0


# ---------------------------------------------------------------------------
# Client-side retry under overload.
# ---------------------------------------------------------------------------


class TestClientRetry:
    def test_run_retries_429_until_slot_frees(self, tmp_path):
        import threading

        proc, port = start_server(
            "--workers", "1", "--max-inflight", "1", "--queue-depth", "0",
            "--cache-dir", str(tmp_path / "cache"),
        )
        holder = ServiceClient(port=port, retries=0)
        client = ServiceClient(port=port, retries=4, backoff_base=0.2)
        try:
            wait_until_ready(holder)
            stream = holder.stream(
                {"family": "cycle", "n": 16},
                {"request": "ensemble", "count": 40, "seed": 0},
            )
            next(stream)  # the only slot is now held
            release = threading.Timer(0.5, stream.close)
            release.start()
            try:
                response = client.run(GRAPH, {"request": "sample", "seed": 3})
            finally:
                release.cancel()
            assert response.kind == "sample"
            # The first attempt hit 429; at least one jittered,
            # Retry-After-honoring retry landed after the slot freed.
            assert client.last_attempts >= 2
            counters = client.stats()["counters"]
            assert counters["rejected_overload"] >= 1
        finally:
            assert stop_server(proc) == 0

    def test_stream_summary_counts_attempts(self, tmp_path):
        proc, port = start_server(
            "--workers", "1", "--cache-dir", str(tmp_path / "cache"),
        )
        client = ServiceClient(port=port)
        try:
            wait_until_ready(client)
            results, summary = client.stream_collect(
                GRAPH, {"request": "ensemble", "count": 2, "seed": 1}
            )
            assert len(results) == 2
            assert summary is not None and summary.attempts == 1
        finally:
            assert stop_server(proc) == 0
