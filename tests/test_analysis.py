"""Tests for the analysis helpers (TV distance, stats)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import graphs
from repro.analysis import (
    bootstrap_mean_ci,
    chi_square_uniformity,
    empirical_tree_distribution,
    expected_tv_noise,
    geometric_mean,
    loglog_fit,
    sample_tree_distribution,
    tv_distance,
    tv_to_uniform,
)
from repro.errors import ReproError
from repro.graphs import enumerate_spanning_trees


class TestTVDistance:
    def test_identical_distributions(self):
        p = {"a": 0.5, "b": 0.5}
        assert tv_distance(p, p) == 0.0

    def test_disjoint_supports(self):
        assert tv_distance({"a": 1.0}, {"b": 1.0}) == 1.0

    def test_known_value(self):
        p = {"a": 0.7, "b": 0.3}
        q = {"a": 0.4, "b": 0.6}
        assert tv_distance(p, q) == pytest.approx(0.3)

    def test_empirical_distribution(self):
        trees = [((0, 1),), ((0, 1),), ((1, 2),)]
        dist = empirical_tree_distribution(trees)
        assert dist[((0, 1),)] == pytest.approx(2 / 3)

    def test_empty_samples_rejected(self):
        with pytest.raises(ReproError):
            empirical_tree_distribution([])

    def test_tv_to_uniform_perfect_enumeration(self):
        g = graphs.cycle_graph(5)
        trees = enumerate_spanning_trees(g)
        assert tv_to_uniform(g, trees) == pytest.approx(0.0, abs=1e-12)

    def test_tv_to_uniform_rejects_invalid_trees(self):
        g = graphs.cycle_graph(5)
        with pytest.raises(ReproError):
            tv_to_uniform(g, [((0, 2),) * 4])

    def test_expected_noise_shrinks_with_samples(self):
        assert expected_tv_noise(10, 10000) < expected_tv_noise(10, 100)
        with pytest.raises(ReproError):
            expected_tv_noise(0, 10)

    def test_chi_square_detects_point_mass(self):
        g = graphs.cycle_graph(5)
        tree = enumerate_spanning_trees(g)[0]
        __, p_value = chi_square_uniformity(g, [tree] * 500)
        assert p_value < 1e-10

    def test_chi_square_accepts_enumeration(self):
        g = graphs.cycle_graph(5)
        trees = enumerate_spanning_trees(g) * 100
        __, p_value = chi_square_uniformity(g, trees)
        assert p_value > 0.99

    def test_sample_tree_distribution(self, rng):
        calls = []

        def fake_sampler(r):
            calls.append(1)
            return ((0, 1),)

        trees = sample_tree_distribution(fake_sampler, 10, rng)
        assert len(trees) == 10 and len(calls) == 10


class TestStats:
    def test_loglog_fit_recovers_exponent(self):
        xs = [2.0, 4.0, 8.0, 16.0]
        exponent, constant = loglog_fit(xs, [3.0 * x**2 for x in xs])
        assert exponent == pytest.approx(2.0)
        assert constant == pytest.approx(3.0)

    def test_loglog_fit_validation(self):
        with pytest.raises(ReproError):
            loglog_fit([1.0], [1.0])

    def test_bootstrap_ci_contains_mean(self, rng):
        values = list(rng.normal(10.0, 1.0, size=200))
        mean, low, high = bootstrap_mean_ci(values, rng=rng)
        assert low < mean < high
        assert low < 10.0 < high

    def test_bootstrap_empty_rejected(self):
        with pytest.raises(ReproError):
            bootstrap_mean_ci([])

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ReproError):
            geometric_mean([1.0, -1.0])
        with pytest.raises(ReproError):
            geometric_mean([])
