"""Tests for the closed-form round bounds (repro.core.rounds)."""

from __future__ import annotations

import math

import pytest

from repro.clique.cost import ALPHA
from repro.core import (
    corollary1_rounds,
    exact_variant_rounds,
    expected_phases,
    fitted_exponent,
    theorem1_rounds,
    theorem2_rounds,
)


class TestFormulas:
    def test_theorem1_sublinear(self):
        """The headline claim: O~(n^0.657) = o(n)."""
        for n in (1 << 10, 1 << 16, 1 << 20):
            assert theorem1_rounds(n, polylog=0) < n

    def test_theorem1_exponent(self):
        ns = [2**k for k in range(8, 16)]
        values = [theorem1_rounds(n, polylog=0) for n in ns]
        assert fitted_exponent(ns, values) == pytest.approx(0.5 + ALPHA, abs=1e-6)

    def test_exact_variant_exponent(self):
        ns = [2**k for k in range(8, 16)]
        values = [exact_variant_rounds(n, polylog=0) for n in ns]
        assert fitted_exponent(ns, values) == pytest.approx(
            2.0 / 3.0 + ALPHA, abs=1e-6
        )
        # The paper quotes O(n^0.824).
        assert 2.0 / 3.0 + ALPHA == pytest.approx(0.824, abs=2e-3)

    def test_exact_slower_than_approximate(self):
        for n in (64, 1024, 1 << 14):
            assert exact_variant_rounds(n) > theorem1_rounds(n)

    def test_theorem2_regimes(self):
        n = 1 << 12
        # Long walks: linear-in-tau regime.
        long_a = theorem2_rounds(n, 8 * n)
        long_b = theorem2_rounds(n, 16 * n)
        assert long_b > 1.8 * long_a
        # Short walks: logarithmic regime.
        short = theorem2_rounds(n, 64)
        assert short == pytest.approx(6.0)

    def test_corollary1_polylog_for_nlogn_cover(self):
        for n in (1 << 10, 1 << 14):
            tau = n * math.log2(n)
            rounds = corollary1_rounds(n, tau)
            assert rounds <= math.log2(n) ** 3

    def test_expected_phases(self):
        assert expected_phases(100, 10) == pytest.approx(11.0)
        assert expected_phases(2, 2) == pytest.approx(1.0)


class TestFittedExponent:
    def test_recovers_power_law(self):
        ns = [10, 100, 1000]
        assert fitted_exponent(ns, [n**1.7 for n in ns]) == pytest.approx(
            1.7, abs=1e-9
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            fitted_exponent([1], [1.0])
        with pytest.raises(ValueError):
            fitted_exponent([2, 2], [1.0, 2.0])
