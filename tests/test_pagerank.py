"""Tests for the PageRank application of Theorem 2's walks."""

from __future__ import annotations

import numpy as np
import pytest

from repro import graphs
from repro.errors import GraphError
from repro.walks import pagerank_exact, pagerank_via_walks


class TestExactPageRank:
    def test_sums_to_one(self, small_graphs):
        for name, g in small_graphs.items():
            scores = pagerank_exact(g)
            assert scores.sum() == pytest.approx(1.0), name
            assert np.all(scores > 0), name

    def test_symmetric_graph_uniform(self):
        g = graphs.complete_graph(6)
        scores = pagerank_exact(g)
        assert np.allclose(scores, 1.0 / 6.0)

    def test_hub_dominates_on_star(self):
        g = graphs.star_graph(8)
        scores = pagerank_exact(g)
        assert scores[0] > 3 * scores[1]

    def test_damping_limits(self):
        g = graphs.cycle_with_chord(6)
        # d -> 0: uniform teleport dominates.
        near_uniform = pagerank_exact(g, damping=0.01)
        assert np.allclose(near_uniform, 1.0 / 6.0, atol=0.01)
        # d -> 1: approaches the walk's stationary law (degree-weighted).
        near_stationary = pagerank_exact(g, damping=0.999)
        degrees = g.degrees()
        assert np.allclose(near_stationary, degrees / degrees.sum(), atol=0.01)

    def test_damping_validation(self):
        g = graphs.path_graph(3)
        with pytest.raises(GraphError):
            pagerank_exact(g, damping=1.0)
        with pytest.raises(GraphError):
            pagerank_exact(g, damping=0.0)


class TestWalkPageRank:
    def test_estimate_close_to_exact(self, rng):
        g = graphs.cycle_with_chord(8)
        exact = pagerank_exact(g, damping=0.8)
        estimate = pagerank_via_walks(
            g, damping=0.8, walks_per_vertex=200, rng=rng
        )
        assert estimate.l1_error(exact) < 0.12

    def test_scores_normalized(self, rng):
        g = graphs.star_graph(10)
        estimate = pagerank_via_walks(g, walks_per_vertex=20, rng=rng)
        assert estimate.scores.sum() == pytest.approx(1.0)

    def test_rounds_charged(self, rng):
        g = graphs.random_regular_graph(16, 4, rng=rng)
        estimate = pagerank_via_walks(g, walks_per_vertex=4, rng=rng)
        assert estimate.rounds > 0
        assert estimate.walk_length >= 4

    def test_more_walks_reduce_error(self, rng):
        g = graphs.cycle_with_chord(6)
        exact = pagerank_exact(g, damping=0.8)
        coarse = pagerank_via_walks(
            g, damping=0.8, walks_per_vertex=8, rng=np.random.default_rng(1)
        ).l1_error(exact)
        errors = [
            pagerank_via_walks(
                g, damping=0.8, walks_per_vertex=300,
                rng=np.random.default_rng(seed),
            ).l1_error(exact)
            for seed in range(3)
        ]
        assert min(errors) < coarse + 0.02

    def test_validation(self, rng):
        g = graphs.path_graph(4)
        with pytest.raises(GraphError):
            pagerank_via_walks(g, damping=2.0, rng=rng)
        with pytest.raises(GraphError):
            pagerank_via_walks(g, walks_per_vertex=0, rng=rng)
