"""Tests for the CongestedClique simulator substrate (routing, cost, network)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clique import CongestedClique, RoundLedger, lenzen_rounds
from repro.clique.cost import ALPHA, CostModel
from repro.clique.network import payload_words
from repro.clique.routing import (
    broadcast_rounds,
    per_machine_loads,
    rounds_for_step,
    words_for_vertices,
)
from repro.errors import BandwidthError, ModelError


class TestLenzenRounds:
    def test_empty_step_free(self):
        assert lenzen_rounds(0, 0, 8) == 0

    def test_within_budget_one_round(self):
        assert lenzen_rounds(8, 8, 8) == 1
        assert lenzen_rounds(1, 8, 8) == 1

    def test_overload_scales_linearly(self):
        assert lenzen_rounds(80, 8, 8) == 10
        assert lenzen_rounds(8, 81, 8) == 11

    def test_invalid_loads(self):
        with pytest.raises(BandwidthError):
            lenzen_rounds(-1, 0, 8)
        with pytest.raises(BandwidthError):
            lenzen_rounds(0, 0, 0)

    def test_words_for_vertices(self):
        assert words_for_vertices(0) == 0
        assert words_for_vertices(7) == 7
        with pytest.raises(BandwidthError):
            words_for_vertices(-1)

    def test_per_machine_loads(self):
        sends = [(0, 1, 3), (0, 2, 2), (1, 2, 4)]
        send, recv = per_machine_loads(sends, 3)
        assert send == [5, 4, 0]
        assert recv == [0, 3, 6]

    def test_rounds_for_step(self):
        sends = [(0, 1, 10)]
        assert rounds_for_step(sends, 4) == 3  # ceil(10 / 4)

    def test_broadcast_two_rounds_within_budget(self):
        assert broadcast_rounds(5, 16) == 2
        assert broadcast_rounds(0, 16) == 0
        assert broadcast_rounds(33, 16) == 6


class TestCostModel:
    def test_matmul_scales_with_alpha(self):
        model = CostModel()
        small = model.matmul_rounds(16, entry_words=1)
        large = model.matmul_rounds(4096, entry_words=1)
        assert large > small
        assert large == math.ceil(4096**ALPHA)

    def test_matmul_entry_words_multiplier(self):
        model = CostModel()
        one = model.matmul_rounds(64, entry_words=1)
        four = model.matmul_rounds(64, entry_words=4)
        assert four == 4 * one

    def test_matmul_default_entry_width_is_log_n(self):
        model = CostModel()
        assert model.matmul_rounds(64) == model.matmul_rounds(64, entry_words=6)

    def test_power_ladder_rounds(self):
        model = CostModel()
        assert model.power_ladder_rounds(16, 1) == 0
        assert model.power_ladder_rounds(16, 8) == 3 * model.matmul_rounds(16)

    def test_invalid_matmul(self):
        with pytest.raises(ModelError):
            CostModel().matmul_rounds(0)

    def test_absorbing_power_rounds_beta_validation(self):
        with pytest.raises(ModelError):
            CostModel().absorbing_power_rounds(8, 1.5)


class TestRoundLedger:
    def test_charges_accumulate(self):
        ledger = RoundLedger()
        ledger.charge("a", 3)
        ledger.charge("b", 2)
        ledger.charge("a", 1)
        assert ledger.total_rounds() == 6
        assert ledger.rounds_by_category() == {"a": 4, "b": 2}

    def test_zero_charge_ignored(self):
        ledger = RoundLedger()
        ledger.charge("a", 0)
        assert ledger.entries == ()

    def test_negative_charge_rejected(self):
        with pytest.raises(ModelError):
            RoundLedger().charge("a", -1)

    def test_sections_nest(self):
        ledger = RoundLedger()
        with ledger.section("phase-1"):
            ledger.charge("x", 1)
            with ledger.section("level-2"):
                ledger.charge("y", 2)
        ledger.charge("z", 4)
        assert ledger.rounds_by_section() == {"phase-1": 3, "<root>": 4}
        assert ledger.rounds_by_section("phase-1") == {
            "<root>": 1,
            "level-2": 2,
        }

    def test_merge(self):
        a, b = RoundLedger(), RoundLedger()
        a.charge("x", 1)
        b.charge("y", 2)
        a.merge(b)
        assert a.total_rounds() == 3

    def test_report_mentions_totals(self):
        ledger = RoundLedger()
        ledger.charge("matmul", 7)
        assert "7" in ledger.report()
        assert "matmul" in ledger.report()

    def test_timeline_trace(self):
        ledger = RoundLedger()
        with ledger.section("phase-1"):
            ledger.charge("matmul", 3, note="P^2")
            ledger.charge("broadcast", 2)
        timeline = ledger.timeline()
        lines = timeline.splitlines()
        assert len(lines) == 2
        assert "[       3]" in lines[0]
        assert "[       5]" in lines[1]
        assert "phase-1" in lines[0]
        assert "P^2" in lines[0]

    def test_timeline_limit(self):
        ledger = RoundLedger()
        for i in range(10):
            ledger.charge("x", 1)
        timeline = ledger.timeline(limit=3)
        assert "7 more entries" in timeline


class TestPayloadWords:
    @pytest.mark.parametrize(
        "payload, words",
        [
            (None, 0),
            (5, 1),
            (2.5, 1),
            (True, 1),
            ([1, 2, 3], 3),
            ((1, (2, 3)), 3),
            ({1: 2}, 2),
            (b"12345678", 1),
            (b"123456789", 2),
        ],
    )
    def test_sizes(self, payload, words):
        assert payload_words(payload) == words

    def test_unknown_type_rejected(self):
        with pytest.raises(ModelError):
            payload_words(object())


class TestCongestedClique:
    def test_exchange_delivers_sorted(self):
        clique = CongestedClique(4)
        inboxes = clique.exchange([(2, 0, "b"), (1, 0, "a")])
        senders = [env.src for env in inboxes[0]]
        assert senders == [1, 2]

    def test_exchange_charges_lenzen(self):
        clique = CongestedClique(4)
        # One machine sends 8 single-word messages: ceil(8/4) = 2 rounds.
        clique.exchange([(0, i % 4, 1) for i in range(8)])
        assert clique.rounds == 2

    def test_exchange_rejects_bad_machine(self):
        clique = CongestedClique(2)
        with pytest.raises(ModelError):
            clique.exchange([(0, 5, 1)])

    def test_broadcast_cost(self):
        clique = CongestedClique(8)
        clique.broadcast(0, None, words=4)
        assert clique.rounds == 2
        clique.broadcast(0, None, words=20)
        assert clique.rounds == 2 + 2 * 3

    def test_gather(self):
        clique = CongestedClique(4)
        envelopes = clique.gather(0, [(1, 10), (2, 20)])
        assert [e.payload for e in envelopes] == [10, 20]

    def test_aggregate_sum(self):
        clique = CongestedClique(4)
        total = clique.aggregate_sum(0, [1, 2, 3, 4])
        assert total == 10.0
        assert clique.rounds == 1

    def test_aggregate_sum_wrong_arity(self):
        clique = CongestedClique(3)
        with pytest.raises(ModelError):
            clique.aggregate_sum(0, [1, 2])

    def test_charge_step(self):
        clique = CongestedClique(4)
        rounds = clique.charge_step("bulk", 16, 4)
        assert rounds == 4
        assert clique.rounds == 4

    def test_stats_tracking(self):
        clique = CongestedClique(4)
        clique.exchange([(0, 1, 2)], words=lambda p: 2)
        stats = clique.stats()
        assert stats["steps"] == 1
        assert stats["total_words"] == 2
        assert stats["max_step_load"] == 2

    def test_needs_at_least_one_machine(self):
        with pytest.raises(ModelError):
            CongestedClique(0)


@given(
    n=st.integers(1, 64),
    send=st.integers(0, 10_000),
    recv=st.integers(0, 10_000),
)
@settings(max_examples=100, deadline=None)
def test_lenzen_rounds_properties(n, send, recv):
    """Properties: monotone in loads, exact ceil division, symmetric."""
    rounds = lenzen_rounds(send, recv, n)
    assert rounds == lenzen_rounds(recv, send, n)
    assert rounds == (0 if max(send, recv) == 0 else max(1, math.ceil(max(send, recv) / n)))
    assert lenzen_rounds(send + 1, recv, n) >= rounds
