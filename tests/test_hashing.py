"""Tests for the k-wise independent hash family (Section 3 step 1)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clique.hashing import KWiseHashFamily, smallest_prime_at_least
from repro.errors import ModelError


class TestPrimeSearch:
    @pytest.mark.parametrize(
        "floor, prime",
        [(2, 2), (3, 3), (4, 5), (10, 11), (100, 101), (1 << 20, 1048583)],
    )
    def test_known_primes(self, floor, prime):
        assert smallest_prime_at_least(floor) == prime

    def test_large_prime_is_prime(self):
        p = smallest_prime_at_least((1 << 31) + 5)
        assert p >= (1 << 31) + 5
        for d in (2, 3, 5, 7, 11, 13):
            assert p % d != 0


class TestKWiseHashFamily:
    def test_output_in_codomain(self, rng):
        family = KWiseHashFamily(8, domain_size=1000, codomain_size=16, rng=rng)
        for x in range(0, 1000, 37):
            assert 0 <= family(x) < 16

    def test_deterministic_given_seed(self, rng):
        family = KWiseHashFamily(8, 1000, 16, rng=rng)
        clone = KWiseHashFamily(8, 1000, 16, seed_bits=family.seed_bits)
        assert [family(x) for x in range(50)] == [clone(x) for x in range(50)]

    def test_different_seeds_differ(self):
        a = KWiseHashFamily(8, 1000, 64, rng=np.random.default_rng(1))
        b = KWiseHashFamily(8, 1000, 64, rng=np.random.default_rng(2))
        assert [a(x) for x in range(64)] != [b(x) for x in range(64)]

    def test_domain_validation(self, rng):
        family = KWiseHashFamily(4, 100, 8, rng=rng)
        with pytest.raises(ModelError):
            family(100)
        with pytest.raises(ModelError):
            family(-1)

    def test_vectorized_matches_scalar(self, rng):
        family = KWiseHashFamily(16, 5000, 32, rng=rng)
        xs = np.arange(0, 5000, 13)
        assert np.array_equal(family.many(xs), [family(int(x)) for x in xs])

    def test_many_rejects_out_of_domain(self, rng):
        family = KWiseHashFamily(4, 100, 8, rng=rng)
        with pytest.raises(ModelError):
            family.many([5, 200])

    def test_hash_pair_injective_flattening(self, rng):
        width = 17
        family = KWiseHashFamily(4, 100 * width, 8, rng=rng)
        assert family.hash_pair(3, 5, width) == family(3 * width + 5)
        with pytest.raises(ModelError):
            family.hash_pair(0, width, width)

    def test_seed_length_scales_with_independence(self, rng):
        small = KWiseHashFamily(4, 100, 8, rng=rng)
        large = KWiseHashFamily(32, 100, 8, rng=rng)
        assert large.seed_length_bytes() == 8 * small.seed_length_bytes()

    def test_short_seed_rejected(self):
        with pytest.raises(ModelError):
            KWiseHashFamily(8, 100, 8, seed_bits=b"abc")

    def test_balance_statistical(self, rng):
        """Loads are near-uniform: max bucket within 3x of mean."""
        n_buckets = 32
        family = KWiseHashFamily(16, 1 << 16, n_buckets, rng=rng)
        values = family.many(np.arange(1 << 13))
        counts = np.bincount(values, minlength=n_buckets)
        mean = (1 << 13) / n_buckets
        assert counts.max() < 3 * mean
        assert counts.min() > mean / 3

    def test_pairwise_collision_rate(self, rng):
        """Collision probability over random pairs is ~ 1/M."""
        m = 64
        family = KWiseHashFamily(8, 1 << 16, m, rng=rng)
        xs = rng.choice(1 << 16, size=2000, replace=False)
        hashes = family.many(xs)
        collisions = 0
        trials = 0
        for i in range(0, 1998, 2):
            trials += 1
            collisions += int(hashes[i] == hashes[i + 1])
        rate = collisions / trials
        assert rate < 5.0 / m  # expected 1/64 ~ 0.016

    def test_invalid_parameters(self, rng):
        with pytest.raises(ModelError):
            KWiseHashFamily(0, 10, 4, rng=rng)
        with pytest.raises(ModelError):
            KWiseHashFamily(2, 0, 4, rng=rng)
        with pytest.raises(ModelError):
            KWiseHashFamily(2, 10, 0, rng=rng)


@given(seed=st.integers(0, 2**31 - 1), t=st.integers(2, 12))
@settings(max_examples=20, deadline=None)
def test_family_is_reproducible_and_bounded(seed, t):
    rng = np.random.default_rng(seed)
    family = KWiseHashFamily(t, 512, 7, rng=rng)
    outputs = family.many(np.arange(512))
    assert outputs.min() >= 0
    assert outputs.max() < 7
