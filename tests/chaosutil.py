"""Driving helpers for the chaos fault-injection suite.

The harness has two halves: :mod:`repro.service.faults` provides the
hook points and the plan language (armed via ``REPRO_FAULTS`` /
``REPRO_FAULTS_DIR``); this module provides the test-side plumbing --
composing the environment for faulty server subprocesses, counting how
often limited rules actually fired (their claimed token files), and a
canned "crash a process mid-cache-publish" subprocess scenario the
crash-consistency tests reuse.

Everything here is deliberately environment-based rather than
monkeypatch-based: the failures under test (killed workers, torn disk
writes) cross process boundaries, so the injection machinery must too.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"


def fault_env(spec: str, token_dir: Path | str) -> dict:
    """Environment overlay arming fault plan ``spec`` across processes.

    Pass as ``env_extra`` to ``test_service.start_server`` (or merge
    into any subprocess env). ``token_dir`` makes ``#limit`` budgets
    fleet-wide: every process sharing it draws from one pool of token
    files.
    """
    return {
        "REPRO_FAULTS": spec,
        "REPRO_FAULTS_DIR": str(token_dir),
    }


def tokens_fired(token_dir: Path | str) -> int:
    """How many limited-rule firings were claimed under ``token_dir``."""
    root = Path(token_dir)
    if not root.is_dir():
        return 0
    return sum(1 for p in root.iterdir() if p.name.endswith(".token"))


# One pinned-seed draw against a disk-tier cache root: the subprocess
# body for crash-consistency scenarios. With a `store.publish` fault
# armed the process dies (or corrupts the blob) exactly at the publish
# window; without one it populates the cache and prints the tree edges,
# so callers can byte-compare runs.
_STORE_SCRIPT = """
import sys
from repro.api import SampleRequest, Session
from repro.api.presets import preset_config
from repro.service.protocol import ServiceLimits, parse_service_envelope

task = parse_service_envelope(
    {"graph": {"family": "cycle", "n": 8, "seed": 0},
     "request": {"request": "sample", "seed": 7}},
    ServiceLimits(),
)
graph, meta = task.build_graph()
config = preset_config("fast-bench", cache_dir=sys.argv[1])
session = Session(graph, config, seed=0, meta=meta)
response = session.run(task.request)
print(sorted(response.result.tree))
"""


def run_pinned_draw(
    cache_root: Path | str, *, faults: dict | None = None, timeout: float = 120
) -> subprocess.CompletedProcess:
    """Run the pinned-seed draw subprocess against ``cache_root``.

    ``faults`` is an environment overlay from :func:`fault_env` (or
    None for a clean run). Returns the completed process; callers
    assert on ``returncode`` (e.g. ``-9`` for a SIGKILL mid-publish)
    and compare ``stdout`` tree lines across runs.
    """
    env = {**os.environ, "PYTHONPATH": str(SRC), **(faults or {})}
    env.pop("REPRO_CACHE_DIR", None)  # the explicit root must win
    return subprocess.run(
        [sys.executable, "-c", _STORE_SCRIPT, str(cache_root)],
        capture_output=True, text=True, env=env, timeout=timeout,
    )


def published_entries(cache_root: Path | str) -> list[Path]:
    """Published (meta.json-bearing) blob dirs under a DiskTier root."""
    blobs = Path(cache_root) / "blobs"
    if not blobs.is_dir():
        return []
    return sorted(
        path for path in blobs.iterdir()
        if path.is_dir() and not path.name.startswith(".tmp-")
        and (path / "meta.json").exists()
    )


def tmp_debris(cache_root: Path | str) -> list[Path]:
    """Leftover unpublished tmp dirs/files (crash residue) under a root."""
    blobs = Path(cache_root) / "blobs"
    if not blobs.is_dir():
        return []
    return sorted(p for p in blobs.iterdir() if p.name.startswith(".tmp-"))
