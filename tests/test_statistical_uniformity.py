"""Chi-square uniformity regression harness for the placement engine.

The placement rewrite (PlacementPlan + prepared contingency DPs) changes
the one component whose correctness is *distributional*, so these tests
draw real ensembles and compare the empirical tree distribution against
Kirchhoff-exact probabilities -- for both ``placement_mode`` settings,
both RNG contracts, and both sampler variants. (The v2 block contract
re-derives every decision from inverse-CDF resolution, so it is gated on
this harness rather than on byte identity with v1 -- the two contracts
sample the same laws from different bits.) Thresholds follow the policy
documented in
``tests/statutil.py`` (fixed seeds, chi-square p-floor AND exact-TV
noise bound).

The Broadcast CC variant gets its own class: exact-law cells on three
enumerable families for every (mode, contract) cell, two-sample
homogeneity against the unicast variants, and oracle cross-validation
(Wilson / Aldous-Broder from :mod:`repro.walks.sequential`) on a wheel
graph past practical enumeration -- the two-sample extension of the
harness documented in ``tests/statutil.py``.

Fast cases run in tier-1; the heavier sweeps (K5's 125-tree support,
weighted chord cycles, full mode x variant cross) carry the ``slow``
marker and are additionally gated on ``REPRO_SLOW_TESTS=1`` -- the
nightly CI job sets it, so tier-1 wall-clock stays bounded.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import graphs
from repro.core.config import SamplerConfig
from repro.graphs.families import build_family

from statutil import (
    assert_matches_tree_law,
    assert_same_tree_law,
    draw_oracle_trees,
    draw_trees,
)

# Short nominal walks keep draws fast; the Appendix 5.1 Las-Vegas
# extension keeps the output law exact regardless of ell.
FAST_ELL = 1 << 6

run_slow = pytest.mark.skipif(
    not os.environ.get("REPRO_SLOW_TESTS"),
    reason="heavy statistical sweep; set REPRO_SLOW_TESTS=1 (nightly CI)",
)


# The meaningful (placement_mode, rng_contract) cells: reference mode
# always runs the v1 stream (no plan to hang block CDFs off), so the
# grid is three cells, not four.
MODE_CONTRACT = [("batched", "v2"), ("batched", "v1"), ("reference", "v1")]


def _config(mode: str, contract: str = "v2") -> SamplerConfig:
    return SamplerConfig(
        ell=FAST_ELL, placement_mode=mode, rng_contract=contract
    )


def weighted_square() -> "graphs.WeightedGraph":
    """4-cycle with distinct weights: 4 trees with distinct probabilities."""
    return graphs.WeightedGraph.from_edges(
        4, [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0), (0, 3, 4.0)]
    )


class TestTier1Uniformity:
    """Fast cases: small supports, ~1-2k draws, every mode."""

    @pytest.mark.parametrize("mode,contract", MODE_CONTRACT)
    def test_k4_approximate(self, mode, contract):
        graph = graphs.complete_graph(4)  # 16 spanning trees
        trees = draw_trees(
            graph, 2000, config=_config(mode, contract),
            variant="approximate", seed=41,
        )
        assert_matches_tree_law(
            graph, trees, label=f"k4/approx/{mode}/{contract}"
        )

    @pytest.mark.parametrize("mode,contract", MODE_CONTRACT)
    def test_k4_exact_variant(self, mode, contract):
        graph = graphs.complete_graph(4)
        trees = draw_trees(
            graph, 1000, config=_config(mode, contract), variant="exact",
            seed=42,
        )
        assert_matches_tree_law(
            graph, trees, label=f"k4/exact/{mode}/{contract}"
        )

    @pytest.mark.parametrize("mode,contract", MODE_CONTRACT)
    def test_cycle4(self, mode, contract):
        graph = graphs.cycle_graph(4)  # 4 spanning trees
        trees = draw_trees(
            graph, 1200, config=_config(mode, contract),
            variant="approximate", seed=43,
        )
        assert_matches_tree_law(
            graph, trees, label=f"cycle4/{mode}/{contract}"
        )

    @pytest.mark.parametrize("mode,contract", MODE_CONTRACT)
    def test_weighted_square(self, mode, contract):
        """Weighted input: the law is weight-proportional, not uniform."""
        graph = weighted_square()
        trees = draw_trees(
            graph, 1500, config=_config(mode, contract),
            variant="approximate", seed=44,
        )
        assert_matches_tree_law(
            graph, trees, label=f"wsquare/{mode}/{contract}"
        )


FAMILIES = {
    "k4": lambda: graphs.complete_graph(4),
    "cycle4": lambda: graphs.cycle_graph(4),
    "wsquare": weighted_square,
}


class TestBroadcastUniformity:
    """The Broadcast CC variant samples the same weight-proportional law.

    The broadcast driver is one full-cover phase whose first-visit edges
    are Aldous-Broder -- exact by construction -- but these draws go
    through the entire engine stack (registry dispatch, phase numerics,
    placement plans, broadcast charging), so the harness gates the
    wiring, not just the math: exact-law cells on three enumerable
    families x every (mode, contract) cell, plus two-sample
    cross-validation against the unicast variants and the sequential
    oracles on a wheel past practical enumeration.
    """

    @pytest.mark.parametrize("mode,contract", MODE_CONTRACT)
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_broadcast_matches_exact_law(self, family, mode, contract):
        graph = FAMILIES[family]()
        trees = draw_trees(
            graph, 1500, config=_config(mode, contract),
            variant="broadcast", seed=48,
        )
        assert_matches_tree_law(
            graph, trees, label=f"{family}/broadcast/{mode}/{contract}"
        )

    @pytest.mark.parametrize("variant", ["approximate", "exact"])
    def test_broadcast_vs_unicast_variants(self, variant):
        """Cross-variant two-sample gate on K4's 16-tree support."""
        graph = graphs.complete_graph(4)
        broadcast = draw_trees(
            graph, 1500, config=_config("batched"), variant="broadcast",
            seed=53,
        )
        unicast = draw_trees(
            graph, 1500, config=_config("batched"), variant=variant,
            seed=54,
        )
        assert_same_tree_law(
            broadcast, unicast, label=f"k4/broadcast-vs-{variant}"
        )

    @pytest.mark.parametrize("contract", ["v1", "v2"])
    def test_broadcast_vs_wilson_beyond_enumeration(self, contract):
        """Oracle arm on a wheel whose tree count defeats enumeration.

        ``ell`` is raised past FAST_ELL here: a full-cover (rho = n)
        walk on 10 weighted vertices needs headroom beyond the nominal
        64-step walk or the Las-Vegas extension cap can trip.
        """
        graph, _ = build_family("wheel", 10, np.random.default_rng(3))
        config = SamplerConfig(
            ell=1 << 8, placement_mode="batched", rng_contract=contract
        )
        sampled = draw_trees(
            graph, 300, config=config, variant="broadcast", seed=49,
        )
        oracle = draw_oracle_trees(graph, 300, oracle="wilson", seed=50)
        assert_same_tree_law(
            sampled, oracle, label=f"wheel10/broadcast-vs-wilson/{contract}"
        )

    def test_approximate_vs_aldous_broder_beyond_enumeration(self):
        """The unicast default against the other sequential oracle."""
        graph, _ = build_family("wheel", 10, np.random.default_rng(3))
        sampled = draw_trees(
            graph, 300, config=_config("batched"), variant="approximate",
            seed=51,
        )
        oracle = draw_oracle_trees(
            graph, 300, oracle="aldous_broder", seed=52
        )
        assert_same_tree_law(
            sampled, oracle, label="wheel10/approx-vs-aldous-broder"
        )


@run_slow
@pytest.mark.slow
class TestNightlyUniformity:
    """Heavy sweeps: larger supports and the full mode x variant cross."""

    @pytest.mark.parametrize("mode,contract", MODE_CONTRACT)
    @pytest.mark.parametrize("variant", ["approximate", "exact"])
    def test_k5(self, mode, contract, variant):
        graph = graphs.complete_graph(5)  # 125 spanning trees
        trees = draw_trees(
            graph, 6000, config=_config(mode, contract), variant=variant,
            seed=45,
        )
        assert_matches_tree_law(
            graph, trees, label=f"k5/{variant}/{mode}/{contract}"
        )

    @pytest.mark.parametrize("mode,contract", MODE_CONTRACT)
    @pytest.mark.parametrize("variant", ["approximate", "exact"])
    def test_weighted_chord_cycle(self, mode, contract, variant):
        graph = graphs.WeightedGraph.from_edges(
            5,
            [
                (0, 1, 1.0), (1, 2, 2.0), (2, 3, 1.5),
                (3, 4, 0.5), (0, 4, 3.0), (1, 3, 2.5),
            ],
        )
        trees = draw_trees(
            graph, 5000, config=_config(mode, contract), variant=variant,
            seed=46,
        )
        assert_matches_tree_law(
            graph, trees, label=f"wchord/{variant}/{mode}/{contract}"
        )

    @pytest.mark.parametrize("mode,contract", MODE_CONTRACT)
    def test_k4_reference_dp_method(self, mode, contract):
        """The exact-dp-reference matching method under every cell."""
        graph = graphs.complete_graph(4)
        config = SamplerConfig(
            ell=FAST_ELL,
            placement_mode=mode,
            rng_contract=contract,
            matching_method="exact-dp-reference",
        )
        trees = draw_trees(
            graph, 2000, config=config, variant="approximate", seed=47
        )
        assert_matches_tree_law(
            graph, trees, label=f"k4/refdp/{mode}/{contract}"
        )
