"""Chi-square uniformity regression harness for the placement engine.

The placement rewrite (PlacementPlan + prepared contingency DPs) changes
the one component whose correctness is *distributional*, so these tests
draw real ensembles and compare the empirical tree distribution against
Kirchhoff-exact probabilities -- for both ``placement_mode`` settings,
both RNG contracts, and both sampler variants. (The v2 block contract
re-derives every decision from inverse-CDF resolution, so it is gated on
this harness rather than on byte identity with v1 -- the two contracts
sample the same laws from different bits.) Thresholds follow the policy
documented in
``tests/statutil.py`` (fixed seeds, chi-square p-floor AND exact-TV
noise bound).

Fast cases run in tier-1; the heavier sweeps (K5's 125-tree support,
weighted chord cycles, full mode x variant cross) carry the ``slow``
marker and are additionally gated on ``REPRO_SLOW_TESTS=1`` -- the
nightly CI job sets it, so tier-1 wall-clock stays bounded.
"""

from __future__ import annotations

import os

import pytest

from repro import graphs
from repro.core.config import SamplerConfig

from statutil import assert_matches_tree_law, draw_trees

# Short nominal walks keep draws fast; the Appendix 5.1 Las-Vegas
# extension keeps the output law exact regardless of ell.
FAST_ELL = 1 << 6

run_slow = pytest.mark.skipif(
    not os.environ.get("REPRO_SLOW_TESTS"),
    reason="heavy statistical sweep; set REPRO_SLOW_TESTS=1 (nightly CI)",
)


# The meaningful (placement_mode, rng_contract) cells: reference mode
# always runs the v1 stream (no plan to hang block CDFs off), so the
# grid is three cells, not four.
MODE_CONTRACT = [("batched", "v2"), ("batched", "v1"), ("reference", "v1")]


def _config(mode: str, contract: str = "v2") -> SamplerConfig:
    return SamplerConfig(
        ell=FAST_ELL, placement_mode=mode, rng_contract=contract
    )


def weighted_square() -> "graphs.WeightedGraph":
    """4-cycle with distinct weights: 4 trees with distinct probabilities."""
    return graphs.WeightedGraph.from_edges(
        4, [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0), (0, 3, 4.0)]
    )


class TestTier1Uniformity:
    """Fast cases: small supports, ~1-2k draws, every mode."""

    @pytest.mark.parametrize("mode,contract", MODE_CONTRACT)
    def test_k4_approximate(self, mode, contract):
        graph = graphs.complete_graph(4)  # 16 spanning trees
        trees = draw_trees(
            graph, 2000, config=_config(mode, contract),
            variant="approximate", seed=41,
        )
        assert_matches_tree_law(
            graph, trees, label=f"k4/approx/{mode}/{contract}"
        )

    @pytest.mark.parametrize("mode,contract", MODE_CONTRACT)
    def test_k4_exact_variant(self, mode, contract):
        graph = graphs.complete_graph(4)
        trees = draw_trees(
            graph, 1000, config=_config(mode, contract), variant="exact",
            seed=42,
        )
        assert_matches_tree_law(
            graph, trees, label=f"k4/exact/{mode}/{contract}"
        )

    @pytest.mark.parametrize("mode,contract", MODE_CONTRACT)
    def test_cycle4(self, mode, contract):
        graph = graphs.cycle_graph(4)  # 4 spanning trees
        trees = draw_trees(
            graph, 1200, config=_config(mode, contract),
            variant="approximate", seed=43,
        )
        assert_matches_tree_law(
            graph, trees, label=f"cycle4/{mode}/{contract}"
        )

    @pytest.mark.parametrize("mode,contract", MODE_CONTRACT)
    def test_weighted_square(self, mode, contract):
        """Weighted input: the law is weight-proportional, not uniform."""
        graph = weighted_square()
        trees = draw_trees(
            graph, 1500, config=_config(mode, contract),
            variant="approximate", seed=44,
        )
        assert_matches_tree_law(
            graph, trees, label=f"wsquare/{mode}/{contract}"
        )


@run_slow
@pytest.mark.slow
class TestNightlyUniformity:
    """Heavy sweeps: larger supports and the full mode x variant cross."""

    @pytest.mark.parametrize("mode,contract", MODE_CONTRACT)
    @pytest.mark.parametrize("variant", ["approximate", "exact"])
    def test_k5(self, mode, contract, variant):
        graph = graphs.complete_graph(5)  # 125 spanning trees
        trees = draw_trees(
            graph, 6000, config=_config(mode, contract), variant=variant,
            seed=45,
        )
        assert_matches_tree_law(
            graph, trees, label=f"k5/{variant}/{mode}/{contract}"
        )

    @pytest.mark.parametrize("mode,contract", MODE_CONTRACT)
    @pytest.mark.parametrize("variant", ["approximate", "exact"])
    def test_weighted_chord_cycle(self, mode, contract, variant):
        graph = graphs.WeightedGraph.from_edges(
            5,
            [
                (0, 1, 1.0), (1, 2, 2.0), (2, 3, 1.5),
                (3, 4, 0.5), (0, 4, 3.0), (1, 3, 2.5),
            ],
        )
        trees = draw_trees(
            graph, 5000, config=_config(mode, contract), variant=variant,
            seed=46,
        )
        assert_matches_tree_law(
            graph, trees, label=f"wchord/{variant}/{mode}/{contract}"
        )

    @pytest.mark.parametrize("mode,contract", MODE_CONTRACT)
    def test_k4_reference_dp_method(self, mode, contract):
        """The exact-dp-reference matching method under every cell."""
        graph = graphs.complete_graph(4)
        config = SamplerConfig(
            ell=FAST_ELL,
            placement_mode=mode,
            rng_contract=contract,
            matching_method="exact-dp-reference",
        )
        trees = draw_trees(
            graph, 2000, config=config, variant="approximate", seed=47
        )
        assert_matches_tree_law(
            graph, trees, label=f"k4/refdp/{mode}/{contract}"
        )
