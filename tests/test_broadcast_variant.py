"""The Broadcast Congested Clique variant: driver, billing, invariance.

The broadcast sampler (Anari-Haqi) runs one full-cover phase -- rho = n
makes the walk's first-visit edges a complete Aldous-Broder tree -- and
bills every round to the dedicated broadcast-bandwidth ledger category:
an analytic recipe over seed-deterministic walk statistics, never
measured message loads, so warm/cold caches, job counts, and hosts all
produce identical bills. These tests pin the driver shape (single phase
at the default rho), the charging discipline (category set, replay
equality, polylog scale), the model primitives
(:func:`broadcast_cc_rounds`, ``CostModel.broadcast_matmul_rounds``,
the ``broadcast-collective`` backend), and the rejection paths.
Distributional correctness lives in ``test_statistical_uniformity.py``.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import graphs
from repro.api import SampleRequest, Session
from repro.clique.cost import CostModel, RoundLedger
from repro.clique.routing import broadcast_cc_rounds
from repro.core.config import SamplerConfig
from repro.core.rounds import broadcast_variant_rounds
from repro.core.variants import BROADCAST_BANDWIDTH
from repro.engine.backends import (
    BroadcastCollectiveMatmul,
    make_matmul_backend,
)
from repro.engine.runner import SamplerEngine
from repro.errors import BandwidthError, ConfigError, GraphError, ModelError
from repro.graphs.spanning import is_spanning_tree

CONFIG = SamplerConfig(ell=1 << 6)


def run_broadcast(graph, seed=0, config=CONFIG, **engine_kwargs):
    engine = SamplerEngine(
        graph, config, variant="broadcast", **engine_kwargs
    )
    return engine.run(np.random.default_rng(seed))


class TestBroadcastDriver:
    def test_single_phase_full_cover(self):
        graph = graphs.complete_graph(8)
        result = run_broadcast(graph)
        assert result.phases == 1
        assert is_spanning_tree(graph, result.tree)
        assert len(result.tree) == graph.n - 1

    def test_all_rounds_in_broadcast_category(self):
        result = run_broadcast(graphs.complete_graph(8))
        categories = result.rounds_by_category()
        assert set(categories) == {BROADCAST_BANDWIDTH}
        assert categories[BROADCAST_BANDWIDTH] == result.rounds > 0

    def test_explicit_rho_override_multi_phase_stays_broadcast(self):
        """Forcing rho < n exercises shortcut/schur charging too."""
        graph = graphs.complete_graph(9)
        result = run_broadcast(
            graph, config=SamplerConfig(ell=1 << 6, rho=3)
        )
        assert result.phases > 1
        assert set(result.rounds_by_category()) == {BROADCAST_BANDWIDTH}
        assert is_spanning_tree(graph, result.tree)

    def test_placement_modes_draw_identical_trees(self):
        """Byte identity across modes holds on the shared v1 stream
        (reference mode always runs v1, so that is the comparable cell)."""
        graph = graphs.complete_graph(8)
        batched = run_broadcast(
            graph,
            config=SamplerConfig(
                ell=1 << 6, placement_mode="batched", rng_contract="v1"
            ),
        )
        reference = run_broadcast(
            graph,
            config=SamplerConfig(
                ell=1 << 6, placement_mode="reference", rng_contract="v1"
            ),
        )
        assert batched.tree == reference.tree
        assert (
            batched.rounds_by_category() == reference.rounds_by_category()
        )

    def test_session_sample_request(self):
        graph = graphs.complete_graph(6)
        session = Session(graph, CONFIG, seed=3)
        response = session.run(SampleRequest(variant="broadcast", seed=3))
        assert response.meta["variant"] == "broadcast"
        assert is_spanning_tree(graph, response.result.tree)


class TestBroadcastInvariance:
    def test_warm_cold_category_totals_identical(self, tmp_path):
        """A warm engine replays the same broadcast bill it computed."""
        graph = graphs.complete_graph(8)
        config = SamplerConfig(ell=1 << 6, cache_dir=str(tmp_path))
        cold = run_broadcast(graph, seed=11, config=config)
        warm = run_broadcast(graph, seed=11, config=config)
        assert warm.tree == cold.tree
        assert warm.rounds == cold.rounds
        assert warm.rounds_by_category() == cold.rounds_by_category()

    def test_jobs_invariance(self):
        """Process fan-out never changes trees or broadcast bills."""
        from repro.engine.ensemble import EnsembleEngine

        graph = graphs.cycle_graph(8)
        serial = EnsembleEngine(
            graph, CONFIG, variant="broadcast"
        ).sample_ensemble(4, seed=7, jobs=1)
        fanned = EnsembleEngine(
            graph, CONFIG, variant="broadcast"
        ).sample_ensemble(4, seed=7, jobs=2)
        assert serial.trees == fanned.trees
        assert [r.rounds_by_category() for r in serial.results] == [
            r.rounds_by_category() for r in fanned.results
        ]

    def test_polylog_scale_vs_unicast(self):
        """Broadcast bills polylog rounds where unicast bills polynomial."""
        graph = graphs.complete_graph(32)
        broadcast = run_broadcast(graph, seed=2)
        approximate = SamplerEngine(graph, CONFIG).run(
            np.random.default_rng(2)
        )
        assert broadcast.rounds < approximate.rounds
        # The headline budget: within a small constant of log^4 n once
        # the per-phase walk traffic (O(n/n) = O(1) rounds per batch) is
        # folded in.
        assert broadcast.rounds < 8 * broadcast_variant_rounds(graph.n)


class TestBroadcastRejections:
    def test_requires_analytic_backend(self):
        with pytest.raises(ConfigError, match="broadcast"):
            SamplerEngine(
                graphs.complete_graph(6),
                SamplerConfig(ell=1 << 6, matmul_backend="simulated-3d"),
                variant="broadcast",
            )

    def test_fastcover_not_engine_driven(self):
        with pytest.raises(GraphError, match="standalone driver"):
            SamplerEngine(graphs.complete_graph(6), variant="fastcover")

    def test_unknown_variant(self):
        # The engine keeps its historical GraphError contract for unknown
        # names; ConfigError is the registry/request-layer type.
        with pytest.raises(GraphError, match="unknown variant"):
            SamplerEngine(graphs.complete_graph(6), variant="warp")


class TestBroadcastPrimitives:
    def test_broadcast_cc_rounds_aggregates_over_n(self):
        assert broadcast_cc_rounds(0, 8) == 0
        assert broadcast_cc_rounds(1, 8) == 1
        assert broadcast_cc_rounds(8, 8) == 1
        assert broadcast_cc_rounds(9, 8) == 2
        assert broadcast_cc_rounds(64, 8, max_machine_words=20) == 20

    def test_broadcast_cc_rounds_rejects_bad_inputs(self):
        with pytest.raises(BandwidthError):
            broadcast_cc_rounds(4, 0)
        with pytest.raises(BandwidthError):
            broadcast_cc_rounds(-1, 8)

    def test_cost_model_broadcast_matmul_rounds(self):
        model = CostModel()
        log_n = math.ceil(math.log2(64))
        assert model.broadcast_matmul_rounds(64) == log_n**2 * log_n
        assert model.broadcast_matmul_rounds(64, entry_words=1) == log_n**2
        with pytest.raises(ModelError):
            model.broadcast_matmul_rounds(0)

    def test_broadcast_variant_rounds_formula(self):
        assert broadcast_variant_rounds(16) == 4.0**4
        assert broadcast_variant_rounds(16, polylog=2) == 16.0
        # Polylog in n: doubling n multiplies the bound by a constant,
        # not by a power of n.
        assert (
            broadcast_variant_rounds(1 << 10)
            / broadcast_variant_rounds(1 << 5)
            == 2.0**4
        )

    def test_collective_backend_charges_category(self):
        ledger = RoundLedger(CostModel())
        backend = BroadcastCollectiveMatmul(ledger)
        a = np.eye(4)
        product = backend.multiply(a, a)
        assert np.array_equal(product, a)
        assert set(ledger.rounds_by_category()) == {BROADCAST_BANDWIDTH}
        assert ledger.total_rounds() > 0

    def test_make_matmul_backend_dispatch(self):
        ledger = RoundLedger(CostModel())
        backend = make_matmul_backend("broadcast-collective", 4, ledger)
        assert backend.name == "broadcast-collective"
