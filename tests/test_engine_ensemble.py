"""Tests for the parallel ensemble driver (engine layer 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import graphs
from repro.core import CongestedCliqueTreeSampler, SamplerConfig
from repro.engine import (
    EnsembleEngine,
    EnsembleResult,
    SamplerEngine,
    sample_tree_ensemble,
)
from repro.errors import GraphError
from repro.graphs import is_spanning_tree

FAST = SamplerConfig(ell=1 << 10)


class TestSampleEnsemble:
    def test_count_and_validity(self):
        g = graphs.erdos_renyi_graph(16, rng=np.random.default_rng(1))
        result = sample_tree_ensemble(g, 6, config=FAST, seed=0, jobs=1)
        assert result.count == 6
        for tree in result.trees:
            assert is_spanning_tree(g, tree)

    def test_jobs_do_not_change_outputs(self):
        """Single- and multi-process runs are byte-identical per seed."""
        g = graphs.erdos_renyi_graph(16, rng=np.random.default_rng(2))
        single = sample_tree_ensemble(g, 8, config=FAST, seed=123, jobs=1)
        multi = sample_tree_ensemble(g, 8, config=FAST, seed=123, jobs=3)
        assert single.trees == multi.trees
        assert [r.rounds for r in single.results] == [
            r.rounds for r in multi.results
        ]

    def test_seed_reproducibility(self):
        g = graphs.cycle_with_chord(10)
        a = sample_tree_ensemble(g, 5, config=FAST, seed=9, jobs=1)
        b = sample_tree_ensemble(g, 5, config=FAST, seed=9, jobs=1)
        assert a.trees == b.trees
        assert a.entropy == b.entropy == 9

    def test_seed_shapes_accepted(self):
        g = graphs.cycle_graph(8)
        engine = EnsembleEngine(g, FAST)
        by_int = engine.sample_ensemble(3, seed=7, jobs=1)
        by_seq = engine.sample_ensemble(
            3, seed=np.random.SeedSequence(7), jobs=1
        )
        assert by_int.trees == by_seq.trees
        by_gen = engine.sample_ensemble(
            3, seed=np.random.default_rng(7), jobs=1
        )
        assert len(by_gen.trees) == 3
        # SeedSequence entropy may be a list; only scalar entropy is
        # reported back, but sampling must succeed either way.
        by_list = engine.sample_ensemble(
            3, seed=np.random.SeedSequence([1, 2]), jobs=1
        )
        assert len(by_list.trees) == 3
        assert by_list.entropy is None

    def test_draws_are_independent(self):
        g = graphs.complete_graph(7)
        result = sample_tree_ensemble(g, 16, config=FAST, seed=0, jobs=1)
        assert len(set(result.trees)) > 1

    def test_count_validation(self):
        g = graphs.path_graph(4)
        engine = EnsembleEngine(g, FAST)
        with pytest.raises(GraphError):
            engine.sample_ensemble(0)
        with pytest.raises(GraphError):
            engine.run_sequential(0)
        with pytest.raises(GraphError):
            engine.sample_ensemble(2, jobs=0)

    def test_variant_forwarded(self):
        g = graphs.cycle_with_chord(9)
        result = sample_tree_ensemble(
            g, 3, config=FAST, variant="exact", seed=1, jobs=1
        )
        for tree in result.trees:
            assert is_spanning_tree(g, tree)


class TestEnsembleResult:
    def test_diagnostics(self):
        g = graphs.complete_graph(8)
        result = sample_tree_ensemble(g, 4, config=FAST, seed=0, jobs=1)
        assert result.seconds > 0
        assert result.trees_per_second() > 0
        assert result.total_rounds() == sum(r.rounds for r in result.results)
        assert result.mean_rounds() == pytest.approx(
            result.total_rounds() / 4
        )
        assert result.jobs == 1
        assert result.cache_stats.get("hits", 0) >= 1  # warm phase-1 entry

    def test_empty_helpers_guarded(self):
        result = EnsembleResult(results=[], seconds=0.0, jobs=1)
        assert result.count == 0
        assert result.mean_rounds() == 0.0


class TestFacadeDelegation:
    def test_sample_many_delegates_to_engine(self):
        """sample_many shares one rng stream and the engine's warm cache."""
        g = graphs.complete_graph(10)
        sampler = CongestedCliqueTreeSampler(g, FAST)
        results = sampler.sample_many(3, np.random.default_rng(4))
        assert len(results) == 3
        assert sampler.engine.cache.hits >= 2  # phase 1 reused across draws

    def test_sample_many_equals_sequential_engine_runs(self):
        g = graphs.cycle_with_chord(10)
        facade = CongestedCliqueTreeSampler(g, FAST).sample_many(
            3, np.random.default_rng(8)
        )
        engine = SamplerEngine(g, FAST)
        rng = np.random.default_rng(8)
        direct = [engine.run(rng) for _ in range(3)]
        assert [r.tree for r in facade] == [r.tree for r in direct]

    def test_sample_many_count_validation(self):
        g = graphs.path_graph(4)
        with pytest.raises(GraphError):
            CongestedCliqueTreeSampler(g, FAST).sample_many(0)

    def test_facade_is_thin(self):
        """The facade exposes its engine (thin-orchestrator contract)."""
        g = graphs.path_graph(5)
        sampler = CongestedCliqueTreeSampler(g, FAST)
        assert isinstance(sampler.engine, SamplerEngine)
        assert sampler.engine.graph is g
        assert sampler.config is sampler.engine.config


class TestEnsembleEngineConstruction:
    def test_conflicting_overrides_rejected(self):
        g = graphs.path_graph(5)
        engine = SamplerEngine(g, FAST, variant="exact")
        with pytest.raises(GraphError):
            EnsembleEngine(engine, FAST)
        with pytest.raises(GraphError):
            EnsembleEngine(engine, variant="approximate")
        # Matching or omitted variant is fine (sample_many relies on it).
        assert EnsembleEngine(engine).engine is engine
        assert EnsembleEngine(engine, variant="exact").engine is engine

    def test_exact_facade_sample_many_still_works(self):
        from repro.core import ExactTreeSampler

        g = graphs.cycle_with_chord(8)
        results = ExactTreeSampler(g, FAST).sample_many(
            2, np.random.default_rng(3)
        )
        assert len(results) == 2


class TestMultiprocessCacheStats:
    """Regression: jobs > 1 used to drop worker cache counters entirely."""

    def test_jobs2_stats_nonempty_and_sum_to_jobs1(self):
        """Per-worker counters come back and aggregate to the jobs=1 tally.

        Fresh engines on both sides so every run starts from a cold
        memory tier: total lookups (hits + misses) depend only on the
        draws, never on how they were sharded.
        """
        g = graphs.erdos_renyi_graph(16, rng=np.random.default_rng(5))
        single = EnsembleEngine(g, FAST).sample_ensemble(8, seed=3, jobs=1)
        multi = EnsembleEngine(g, FAST).sample_ensemble(8, seed=3, jobs=2)
        assert multi.trees == single.trees
        assert not multi.degraded
        assert multi.cache_stats, "jobs=2 must ship worker cache stats"
        for key in ("hits", "misses"):
            assert key in multi.cache_stats
        assert (
            multi.cache_stats["hits"] + multi.cache_stats["misses"]
            == single.cache_stats["hits"] + single.cache_stats["misses"]
        )

    def test_aggregate_counter_vs_gauge_split(self):
        from repro.engine.ensemble import aggregate_cache_stats

        merged = aggregate_cache_stats([
            {"hits": 2, "misses": 1, "entries": 7, "disk_bytes": 100},
            {"hits": 3, "misses": 0, "entries": 4, "disk_bytes": 250},
        ])
        # Counters sum; gauges (current footprint) take the max, since
        # every worker over one shared disk tier reports the same store.
        assert merged == {
            "hits": 5, "misses": 1, "entries": 7, "disk_bytes": 250
        }

    def test_iter_ensemble_fills_caller_stats(self):
        g = graphs.cycle_with_chord(10)
        for jobs in (1, 2):
            stats: dict = {}
            results = list(
                EnsembleEngine(g, FAST).iter_ensemble(
                    6, seed=4, jobs=jobs, stats=stats
                )
            )
            assert len(results) == 6
            assert stats["degraded"] is False
            assert stats.get("hits", 0) + stats.get("misses", 0) > 0


class TestPoolDegradation:
    """Regression: pool failures used to be swallowed silently."""

    @staticmethod
    def _broken_pool(monkeypatch):
        import repro.engine.ensemble as ensemble_module

        class _BrokenPool:
            def __init__(self, *args, **kwargs):
                raise OSError("no process spawning here")

        monkeypatch.setattr(
            ensemble_module, "ProcessPoolExecutor", _BrokenPool
        )

    def test_batch_degrades_loudly_with_identical_trees(
        self, monkeypatch, caplog
    ):
        g = graphs.erdos_renyi_graph(14, rng=np.random.default_rng(8))
        healthy = EnsembleEngine(g, FAST).sample_ensemble(5, seed=2, jobs=1)
        self._broken_pool(monkeypatch)
        with caplog.at_level("WARNING", logger="repro.engine.ensemble"):
            degraded = EnsembleEngine(g, FAST).sample_ensemble(
                5, seed=2, jobs=2
            )
        assert degraded.trees == healthy.trees
        assert degraded.degraded is True
        assert all(result.degraded for result in degraded.results)
        assert degraded.cache_stats  # local engine's counters, not {}
        assert any(
            "degraded to sequential" in record.message
            for record in caplog.records
        )

    def test_stream_degrades_loudly_and_flags_results(
        self, monkeypatch, caplog
    ):
        g = graphs.cycle_with_chord(9)
        healthy = list(
            EnsembleEngine(g, FAST).iter_ensemble(4, seed=6, jobs=1)
        )
        self._broken_pool(monkeypatch)
        stats: dict = {}
        with caplog.at_level("WARNING", logger="repro.engine.ensemble"):
            streamed = list(
                EnsembleEngine(g, FAST).iter_ensemble(
                    4, seed=6, jobs=2, stats=stats
                )
            )
        assert [r.tree for r in streamed] == [r.tree for r in healthy]
        assert stats["degraded"] is True
        assert all(result.degraded for result in streamed)
        assert any(
            "ensemble stream degraded" in record.message
            for record in caplog.records
        )

    def test_degraded_key_absent_from_healthy_wire_form(self):
        """Healthy results keep their exact pre-flag wire form."""
        g = graphs.path_graph(6)
        result = EnsembleEngine(g, FAST).sample_ensemble(
            1, seed=0, jobs=1
        ).results[0]
        assert "degraded" not in result.to_dict()
        result.degraded = True
        payload = result.to_dict()
        assert payload["degraded"] is True
        from repro.engine.results import SampleResult

        assert SampleResult.from_dict(payload).degraded is True
        del payload["degraded"]
        assert SampleResult.from_dict(payload).degraded is False
