"""Tests for the installation self-check battery."""

from __future__ import annotations

import pytest

from repro.selfcheck import _CHECKS, CheckResult, run_self_check


class TestBattery:
    def test_all_checks_pass(self):
        results = run_self_check()
        assert len(results) == len(_CHECKS)
        for result in results:
            assert result.passed, f"{result.name}: {result.detail}"

    def test_failures_reported_not_raised(self, monkeypatch):
        def broken():
            raise RuntimeError("injected")

        monkeypatch.setitem(_CHECKS, "matrix-tree", broken)
        results = run_self_check()
        failed = {r.name: r for r in results if not r.passed}
        assert "matrix-tree" in failed
        assert "injected" in failed["matrix-tree"].detail

    def test_cli_exit_codes(self, capsys, monkeypatch):
        from repro.cli import main

        assert main(["verify"]) == 0
        out = capsys.readouterr().out
        assert "all 7 checks passed" in out

    def test_result_dataclass(self):
        result = CheckResult("x", True, "fine")
        assert result.passed and result.name == "x"
