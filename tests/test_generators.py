"""Unit tests for the graph family generators."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import graphs
from repro.errors import GraphError


class TestDeterministicFamilies:
    def test_path(self):
        g = graphs.path_graph(5)
        assert (g.n, g.m) == (5, 4)
        assert g.has_edge(0, 1) and g.has_edge(3, 4)

    def test_cycle(self):
        g = graphs.cycle_graph(6)
        assert (g.n, g.m) == (6, 6)
        assert all(g.unweighted_degree(v) == 2 for v in g)

    def test_cycle_too_small(self):
        with pytest.raises(GraphError):
            graphs.cycle_graph(2)

    def test_complete(self):
        g = graphs.complete_graph(5)
        assert g.m == 10
        assert all(g.unweighted_degree(v) == 4 for v in g)

    def test_star_degrees(self):
        g = graphs.star_graph(7)
        assert g.unweighted_degree(0) == 6
        assert all(g.unweighted_degree(v) == 1 for v in range(1, 7))

    def test_wheel(self):
        g = graphs.wheel_graph(6)
        assert g.unweighted_degree(0) == 5
        assert all(g.unweighted_degree(v) == 3 for v in range(1, 6))

    def test_grid_shape(self):
        g = graphs.grid_graph(3, 4)
        assert g.n == 12
        assert g.m == 3 * 3 + 2 * 4  # vertical + horizontal runs
        assert g.is_connected()

    def test_binary_tree_is_tree(self):
        g = graphs.binary_tree_graph(10)
        assert g.m == g.n - 1
        assert g.is_connected()

    def test_lollipop_structure(self):
        g = graphs.lollipop_graph(10)
        assert g.is_connected()
        k = 5
        # Clique part is complete.
        for u in range(k):
            for v in range(u + 1, k):
                assert g.has_edge(u, v)
        # Tail is a path.
        assert g.unweighted_degree(g.n - 1) == 1

    def test_barbell_connected(self):
        g = graphs.barbell_graph(12)
        assert g.is_connected()

    def test_cycle_with_chord(self):
        g = graphs.cycle_with_chord(6)
        assert g.m == 7
        assert g.has_edge(0, 3)

    def test_cycle_with_chord_custom_span(self):
        g = graphs.cycle_with_chord(8, chord_span=2)
        assert g.has_edge(0, 2)
        with pytest.raises(GraphError):
            graphs.cycle_with_chord(8, chord_span=7)

    def test_theta_graph_tree_count(self):
        # Spanning trees of a theta graph = ab + bc + ac.
        from repro.graphs import count_spanning_trees

        for a, b, c in [(1, 1, 1), (2, 2, 3), (1, 3, 4)]:
            g = graphs.theta_graph(a, b, c)
            expected = a * b + b * c + a * c
            assert count_spanning_trees(g) == pytest.approx(expected)

    def test_figure2_graph_is_star_at_c(self):
        g = graphs.figure2_graph()
        assert g.n == 4
        assert sorted(g.neighbors(2)) == [0, 1, 3]
        assert g.unweighted_degree(0) == 1


class TestRandomFamilies:
    def test_random_regular_is_regular(self, rng):
        g = graphs.random_regular_graph(16, 4, rng=rng)
        assert all(g.unweighted_degree(v) == 4 for v in g)
        assert g.is_connected()

    def test_random_regular_parity_check(self, rng):
        with pytest.raises(GraphError):
            graphs.random_regular_graph(9, 3, rng=rng)

    def test_random_regular_min_degree(self, rng):
        with pytest.raises(GraphError):
            graphs.random_regular_graph(8, 2, rng=rng)

    def test_erdos_renyi_default_density(self, rng):
        g = graphs.erdos_renyi_graph(40, rng=rng)
        assert g.is_connected()
        expected_edges = 3 * math.log(40) / 40 * math.comb(40, 2)
        assert 0.3 * expected_edges < g.m < 3 * expected_edges

    def test_erdos_renyi_p_validation(self, rng):
        with pytest.raises(GraphError):
            graphs.erdos_renyi_graph(10, p=0.0, rng=rng)
        with pytest.raises(GraphError):
            graphs.erdos_renyi_graph(10, p=1.5, rng=rng)

    def test_erdos_renyi_reproducible(self):
        a = graphs.erdos_renyi_graph(20, rng=np.random.default_rng(5))
        b = graphs.erdos_renyi_graph(20, rng=np.random.default_rng(5))
        assert a == b

    def test_complete_bipartite_unbalanced(self):
        g = graphs.complete_bipartite_unbalanced(16)
        # K_{12,4}: small side has sqrt(16) = 4 vertices.
        assert g.n == 16
        small = [v for v in g if g.unweighted_degree(v) == 12]
        large = [v for v in g if g.unweighted_degree(v) == 4]
        assert len(small) == 4 and len(large) == 12
        assert g.is_connected()
