"""Tests for the simulated 3D CongestedClique matrix multiplication."""

from __future__ import annotations

import numpy as np
import pytest

from repro import graphs
from repro.analysis import loglog_fit
from repro.clique import RoundLedger
from repro.clique.matmul3d import SimulatedMatmul, semiring_matmul_rounds
from repro.errors import ModelError
from repro.linalg import PowerLadder


class TestNumerics:
    def test_product_exact(self, rng):
        for n in (4, 9, 16, 27):
            backend = SimulatedMatmul(n)
            a = rng.random((n, n))
            b = rng.random((n, n))
            assert np.allclose(backend.multiply(a, b), a @ b)

    def test_shape_validation(self):
        backend = SimulatedMatmul(4)
        with pytest.raises(ModelError):
            backend.multiply(np.ones((3, 3)), np.ones((3, 3)))

    def test_n_validation(self):
        with pytest.raises(ModelError):
            SimulatedMatmul(0)
        with pytest.raises(ModelError):
            semiring_matmul_rounds(0)


class TestRoundAccounting:
    def test_rounds_near_closed_form(self, rng):
        for n in (8, 27, 64):
            backend = SimulatedMatmul(n)
            a = rng.random((n, n))
            backend.multiply(a, a)
            measured = backend.total_rounds
            assert measured <= backend.measured_rounds_last_call_bound()
            assert measured >= semiring_matmul_rounds(n) // 3

    def test_rounds_scale_cube_root(self, rng):
        ns = [8, 27, 64, 125]
        rounds = []
        for n in ns:
            backend = SimulatedMatmul(n)
            a = rng.random((n, n))
            backend.multiply(a, a)
            rounds.append(backend.total_rounds)
        exponent, _ = loglog_fit(ns, rounds)
        assert 0.15 < exponent < 0.6  # ~1/3 with blocking noise

    def test_ledger_integration(self, rng):
        ledger = RoundLedger()
        backend = SimulatedMatmul(8, ledger=ledger)
        a = rng.random((8, 8))
        backend.multiply(a, a)
        assert ledger.rounds_by_category().get("matmul-simulated", 0) > 0

    def test_calls_counted(self, rng):
        backend = SimulatedMatmul(4)
        a = rng.random((4, 4))
        backend.multiply(a, a)
        backend.multiply(a, a)
        assert backend.calls == 2


class TestPowerLadderBackend:
    def test_ladder_with_simulated_backend_matches_exact(self, rng):
        g = graphs.cycle_with_chord(8)
        p = g.transition_matrix()
        ledger = RoundLedger()
        backend = SimulatedMatmul(8, ledger=ledger)
        ladder = PowerLadder(p, 16, ledger=ledger, matmul=backend)
        assert np.allclose(ladder.power(16), np.linalg.matrix_power(p, 16))
        categories = ledger.rounds_by_category()
        # Only the simulated charge appears -- no analytic double count.
        assert "matmul-simulated" in categories
        assert "matmul" not in categories
        assert backend.calls == 4
