"""Tests for the simulated 3D CongestedClique matrix multiplication."""

from __future__ import annotations

import numpy as np
import pytest

from repro import graphs
from repro.analysis import loglog_fit
from repro.clique import RoundLedger
from repro.clique.matmul3d import SimulatedMatmul, semiring_matmul_rounds
from repro.errors import ModelError
from repro.linalg import PowerLadder


class TestNumerics:
    def test_product_exact(self, rng):
        for n in (4, 9, 16, 27):
            backend = SimulatedMatmul(n)
            a = rng.random((n, n))
            b = rng.random((n, n))
            assert np.allclose(backend.multiply(a, b), a @ b)

    def test_shape_validation(self):
        backend = SimulatedMatmul(4)
        with pytest.raises(ModelError):
            backend.multiply(np.ones((3, 3)), np.ones((3, 3)))

    def test_n_validation(self):
        with pytest.raises(ModelError):
            SimulatedMatmul(0)
        with pytest.raises(ModelError):
            semiring_matmul_rounds(0)


class TestRoundAccounting:
    def test_rounds_near_closed_form(self, rng):
        for n in (8, 27, 64):
            backend = SimulatedMatmul(n)
            a = rng.random((n, n))
            backend.multiply(a, a)
            measured = backend.total_rounds
            assert measured <= backend.measured_rounds_last_call_bound()
            assert measured >= semiring_matmul_rounds(n) // 3

    def test_rounds_scale_cube_root(self, rng):
        ns = [8, 27, 64, 125]
        rounds = []
        for n in ns:
            backend = SimulatedMatmul(n)
            a = rng.random((n, n))
            backend.multiply(a, a)
            rounds.append(backend.total_rounds)
        exponent, _ = loglog_fit(ns, rounds)
        assert 0.15 < exponent < 0.6  # ~1/3 with blocking noise

    def test_ledger_integration(self, rng):
        ledger = RoundLedger()
        backend = SimulatedMatmul(8, ledger=ledger)
        a = rng.random((8, 8))
        backend.multiply(a, a)
        assert ledger.rounds_by_category().get("matmul-simulated", 0) > 0

    def test_calls_counted(self, rng):
        backend = SimulatedMatmul(4)
        a = rng.random((4, 4))
        backend.multiply(a, a)
        backend.multiply(a, a)
        assert backend.calls == 2


class TestPowerLadderBackend:
    def test_ladder_with_simulated_backend_matches_exact(self, rng):
        g = graphs.cycle_with_chord(8)
        p = g.transition_matrix()
        ledger = RoundLedger()
        backend = SimulatedMatmul(8, ledger=ledger)
        ladder = PowerLadder(p, 16, ledger=ledger, matmul=backend)
        assert np.allclose(ladder.power(16), np.linalg.matrix_power(p, 16))
        categories = ledger.rounds_by_category()
        # Only the simulated charge appears -- no analytic double count.
        assert "matmul-simulated" in categories
        assert "matmul" not in categories
        assert backend.calls == 4


class TestMatmulBackendProtocol:
    """Both realizations behave consistently through the shared interface."""

    def test_both_backends_satisfy_protocol(self):
        from repro.engine.backends import (
            AnalyticMatmul,
            MatmulBackend,
            make_matmul_backend,
        )

        assert isinstance(AnalyticMatmul(), MatmulBackend)
        assert isinstance(SimulatedMatmul(4), MatmulBackend)
        assert make_matmul_backend("analytic", 4).name == "analytic"
        assert make_matmul_backend("simulated-3d", 4).name == "simulated-3d"

    def test_unknown_backend_rejected(self):
        from repro.engine.backends import make_matmul_backend
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            make_matmul_backend("quantum", 4)

    def test_analytic_backend_charges_match_inline_ladder(self, rng):
        """PowerLadder via AnalyticMatmul == PowerLadder's own charging."""
        from repro.engine.backends import AnalyticMatmul

        g = graphs.cycle_with_chord(8)
        p = g.transition_matrix()
        inline_ledger = RoundLedger()
        PowerLadder(p, 16, ledger=inline_ledger, note="phase ladder")
        backend_ledger = RoundLedger()
        backend = AnalyticMatmul(backend_ledger)
        ladder = PowerLadder(
            p, 16, matmul=backend, note="phase ladder"
        )
        assert backend.calls == 4
        assert ladder.squarings == 4
        assert (
            backend_ledger.rounds_by_category()
            == inline_ledger.rounds_by_category()
        )

    def test_replay_matches_live_charges_analytic(self):
        from repro.engine.backends import AnalyticMatmul

        live_ledger = RoundLedger()
        live = AnalyticMatmul(live_ledger)
        a = np.eye(9)
        for _ in range(3):
            live.multiply(a, a, entry_words=2)
        replay_ledger = RoundLedger()
        AnalyticMatmul(replay_ledger).charge_replay(9, count=3, entry_words=2)
        assert live_ledger.total_rounds() == replay_ledger.total_rounds()

    def test_replay_matches_live_charges_simulated(self, rng):
        live_ledger = RoundLedger()
        live = SimulatedMatmul(8, ledger=live_ledger)
        a = rng.random((8, 8))
        for _ in range(3):
            live.multiply(a, a)
        replay_ledger = RoundLedger()
        replay = SimulatedMatmul(8, ledger=replay_ledger)
        replay.charge_replay(count=3)
        assert live_ledger.total_rounds() == replay_ledger.total_rounds()
        assert replay.total_rounds == live.total_rounds
        assert replay.calls == 0  # replays are not multiplications

    def test_simulated_replay_size_mismatch_rejected(self):
        with pytest.raises(ModelError):
            SimulatedMatmul(8).charge_replay(size=9)

    def test_round_cost_deterministic_and_consistent(self, rng):
        backend = SimulatedMatmul(27)
        cost = backend.round_cost()
        a = rng.random((27, 27))
        backend.multiply(a, a)
        assert backend.total_rounds == cost
        assert backend.round_cost() == cost

    def test_sampler_consistent_across_shared_interface(self, rng):
        """The full sampler charges each backend's own category, and the
        ladder charges agree with the backend's closed-form recipe."""
        from repro.core import CongestedCliqueTreeSampler, SamplerConfig

        g = graphs.cycle_with_chord(9)
        trees = {}
        for name in ("analytic", "simulated-3d"):
            config = SamplerConfig(ell=1 << 9, matmul_backend=name)
            result = CongestedCliqueTreeSampler(g, config).sample(
                np.random.default_rng(13)
            )
            categories = result.rounds_by_category()
            if name == "analytic":
                assert "matmul-simulated" not in categories
            else:
                assert categories.get("matmul-simulated", 0) > 0
            trees[name] = result.tree
        # Identical rng stream and numerics => identical trees; only the
        # round accounting differs between backends.
        assert trees["analytic"] == trees["simulated-3d"]
