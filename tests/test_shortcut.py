"""Tests for shortcut graphs (Definition 3, Corollary 2, Algorithm 4 law)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import graphs
from repro.errors import GraphError
from repro.linalg import (
    first_visit_edge_distribution,
    shortcut_transition_matrix,
    shortcut_via_power_iteration,
)


class TestFigure2:
    """Right-hand side of Figure 2: every vertex shortcuts to C (E6)."""

    def test_all_transitions_to_hub(self):
        g = graphs.figure2_graph()
        q = shortcut_transition_matrix(g, [0, 1, 3])
        expected = np.zeros((4, 4))
        expected[:, 2] = 1.0  # C has index 2
        assert np.allclose(q, expected)


class TestExactConstruction:
    def test_rows_stochastic(self, small_graphs):
        for name, g in small_graphs.items():
            subset = sorted({0, g.n - 1})
            q = shortcut_transition_matrix(g, subset)
            assert np.allclose(q.sum(axis=1), 1.0), name

    def test_full_subset_is_identity(self):
        """S = V: the walk enters S at its first step, so x_{j-1} = x_0."""
        g = graphs.cycle_with_chord(6)
        q = shortcut_transition_matrix(g, range(6))
        assert np.allclose(q, np.eye(6))

    def test_path_deterministic_shortcut(self):
        # Path 0-1-2-3 with S = {0, 3}: from 3 the pre-entry vertex of the
        # first S-visit must be adjacent to S.
        g = graphs.path_graph(4)
        q = shortcut_transition_matrix(g, [0, 3])
        # From vertex 1: either step to 0 now (pre-entry = 1) or wander.
        assert q[1, 1] > 0
        assert np.allclose(q[1, [0, 3]], 0.0)  # S vertices are never pre-entry
        # Pre-entry vertex must neighbor S: only 1 and 2 (and never 0/3).
        assert q[1, 1] + q[1, 2] == pytest.approx(1.0)

    def test_monte_carlo_agreement(self, rng):
        """Definition 3 checked against direct walk simulation."""
        g = graphs.cycle_with_chord(6)
        subset = [0, 3]
        q = shortcut_transition_matrix(g, subset)
        start = 1
        counts = np.zeros(g.n)
        trials = 4000
        transition = g.transition_matrix()
        cumulative = np.cumsum(transition, axis=1)
        in_s = set(subset)
        for _ in range(trials):
            prev, current = start, start
            while True:
                u = rng.random()
                nxt = int(np.searchsorted(cumulative[current], u, "right"))
                nxt = min(nxt, g.n - 1)
                prev, current = current, nxt
                if current in in_s:
                    counts[prev] += 1
                    break
        empirical = counts / trials
        assert np.allclose(empirical, q[start], atol=0.04)


class TestPowerIteration:
    """Corollary 2's auxiliary-chain approximation (E14)."""

    def test_matches_exact(self, small_graphs):
        for name, g in small_graphs.items():
            subset = sorted({0, g.n - 1})
            exact = shortcut_transition_matrix(g, subset)
            approx = shortcut_via_power_iteration(g, subset, beta=1e-13)
            assert np.allclose(exact, approx, atol=1e-8), name

    def test_beta_validation(self):
        g = graphs.path_graph(4)
        with pytest.raises(GraphError):
            shortcut_via_power_iteration(g, [0], beta=2.0)


class TestFirstVisitEdgeDistribution:
    """Algorithm 4's Bayes law."""

    def test_sums_to_one(self):
        g = graphs.cycle_with_chord(6)
        subset = [0, 2, 4]
        q = shortcut_transition_matrix(g, subset)
        neighbors, law = first_visit_edge_distribution(g, subset, q, 0, 2)
        assert sorted(neighbors) == sorted(g.neighbors(2))
        assert law.sum() == pytest.approx(1.0)
        assert np.all(law >= 0)

    def test_full_subset_returns_previous_vertex(self):
        """Phase 1 degenerate case: the edge is the walk edge itself."""
        g = graphs.cycle_with_chord(6)
        q = shortcut_transition_matrix(g, range(6))
        neighbors, law = first_visit_edge_distribution(g, range(6), q, 1, 2)
        chosen = {u for u, p in zip(neighbors, law) if p > 0}
        assert chosen == {1}

    def test_new_vertex_must_be_in_subset(self):
        g = graphs.path_graph(4)
        q = shortcut_transition_matrix(g, [0, 3])
        with pytest.raises(GraphError):
            first_visit_edge_distribution(g, [0, 3], q, 0, 2)

    def test_monte_carlo_agreement(self, rng):
        """The sampled entering edge matches direct simulation of G-walks.

        Take G-walks from prev until they first hit S; conditioned on
        hitting at v, record the predecessor; compare to the Bayes law.
        """
        g = graphs.cycle_with_chord(6)
        subset = [0, 3]
        q = shortcut_transition_matrix(g, subset)
        prev_vertex, new_vertex = 0, 3
        neighbors, law = first_visit_edge_distribution(
            g, subset, q, prev_vertex, new_vertex
        )
        transition = g.transition_matrix()
        cumulative = np.cumsum(transition, axis=1)
        counts = {u: 0 for u in neighbors}
        hits = 0
        for _ in range(6000):
            prev, current = prev_vertex, prev_vertex
            while True:
                u = rng.random()
                nxt = int(np.searchsorted(cumulative[current], u, "right"))
                nxt = min(nxt, g.n - 1)
                prev, current = current, nxt
                if current in (0, 3):
                    break
            if current == new_vertex:
                counts[prev] += 1
                hits += 1
        empirical = np.array([counts[u] / hits for u in neighbors])
        assert np.allclose(empirical, law, atol=0.05)
