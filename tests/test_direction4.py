"""Tests for the Direction 4 experimental sampler."""

from __future__ import annotations

import numpy as np
import pytest

from repro import graphs
from repro.core import Direction4Sampler
from repro.errors import GraphError
from repro.graphs import is_spanning_tree


class TestDirection4:
    def test_returns_spanning_tree(self, rng, small_graphs):
        for name, g in small_graphs.items():
            result = Direction4Sampler(g).sample(rng)
            assert is_spanning_tree(g, result.tree), name
            assert result.phases == len(result.distinct_per_phase)

    def test_distinct_counts_respect_barnes_feige_floor(self, rng):
        """Each non-final phase's length-n walk visits >= ~n^{1/3} distinct
        vertices (the unproven-for-weighted-graphs conjecture, checked
        empirically)."""
        g = graphs.lollipop_graph(27)
        result = Direction4Sampler(g).sample(rng)
        for distinct, remaining in zip(
            result.distinct_per_phase[:-1], range(len(result.distinct_per_phase))
        ):
            assert distinct >= 2

    def test_fewer_phases_than_vertices(self, rng):
        g = graphs.random_regular_graph(24, 4, rng=rng)
        result = Direction4Sampler(g).sample(rng)
        # An expander's length-n walk covers most of the graph at once.
        assert result.phases <= 6

    def test_uniformity(self, rng):
        from repro.analysis import expected_tv_noise, tv_to_uniform

        g = graphs.cycle_with_chord(5)
        sampler = Direction4Sampler(g)
        n_samples = 800
        trees = [sampler.sample(rng).tree for _ in range(n_samples)]
        assert tv_to_uniform(g, trees) < 4 * expected_tv_noise(11, n_samples)

    def test_validation(self):
        with pytest.raises(GraphError):
            Direction4Sampler(graphs.path_graph(4), walk_factor=0.0)
        with pytest.raises(GraphError):
            Direction4Sampler(graphs.path_graph(4), start_vertex=9)
        disconnected = graphs.WeightedGraph.from_edges(4, [(0, 1), (2, 3)])
        with pytest.raises(Exception):
            Direction4Sampler(disconnected)

    def test_rounds_accounted(self, rng):
        g = graphs.random_regular_graph(16, 4, rng=rng)
        result = Direction4Sampler(g).sample(rng)
        assert result.rounds > 0
        assert len(result.walk_length_per_phase) == result.phases
