"""Tests for the weighted perfect matching samplers (Section 1.8 / 2.1.3)."""

from __future__ import annotations

import itertools
import math
from collections import Counter

import numpy as np
import pytest

from repro.errors import MatchingError
from repro.matching import (
    ClassifiedBipartite,
    expand_table_to_assignment,
    permanent_class_dp,
    sample_assignment_by_classes,
    sample_contingency_table,
    sample_matching_exact,
    sample_matching_mcmc,
)


def exact_matching_law(weights: np.ndarray) -> dict[tuple[int, ...], float]:
    """Ground-truth law over permutations, P(sigma) prop to prod of weights."""
    n = weights.shape[0]
    law: dict[tuple[int, ...], float] = {}
    for sigma in itertools.permutations(range(n)):
        w = 1.0
        for i, j in enumerate(sigma):
            w *= weights[i, j]
        if w > 0:
            law[sigma] = w
    total = sum(law.values())
    return {sigma: w / total for sigma, w in law.items()}


def tv(p: dict, q: dict) -> float:
    keys = set(p) | set(q)
    return 0.5 * sum(abs(p.get(k, 0.0) - q.get(k, 0.0)) for k in keys)


class TestExactSampler:
    def test_matches_ground_truth(self, rng):
        weights = np.array([[1.0, 2.0, 1.0], [2.0, 1.0, 3.0], [1.0, 1.0, 1.0]])
        target = exact_matching_law(weights)
        samples = Counter(
            tuple(sample_matching_exact(weights, rng)) for _ in range(4000)
        )
        empirical = {s: c / 4000 for s, c in samples.items()}
        assert tv(empirical, target) < 0.05

    def test_respects_zero_weights(self, rng):
        weights = np.array([[1.0, 0.0], [1.0, 1.0]])
        for _ in range(50):
            assignment = sample_matching_exact(weights, rng)
            assert assignment == [0, 1]

    def test_infeasible_raises(self, rng):
        weights = np.array([[0.0, 0.0], [1.0, 1.0]])
        with pytest.raises(MatchingError):
            sample_matching_exact(weights, rng)

    def test_nonsquare_rejected(self, rng):
        with pytest.raises(MatchingError):
            sample_matching_exact(np.ones((2, 3)), rng)


class TestMCMCSampler:
    def test_matches_ground_truth(self, rng):
        weights = np.array([[1.0, 3.0], [2.0, 1.0]])
        target = exact_matching_law(weights)
        samples = Counter(
            tuple(sample_matching_mcmc(weights, steps=400, rng=rng))
            for _ in range(3000)
        )
        empirical = {s: c / 3000 for s, c in samples.items()}
        assert tv(empirical, target) < 0.05

    def test_initial_state_validation(self, rng):
        weights = np.ones((3, 3))
        with pytest.raises(MatchingError):
            sample_matching_mcmc(weights, rng=rng, initial=[0, 0, 1])

    def test_zero_weight_start_rejected(self, rng):
        weights = np.array([[0.0, 1.0], [1.0, 1.0]])
        with pytest.raises(MatchingError):
            sample_matching_mcmc(weights, rng=rng)  # identity start has w=0

    def test_feasible_custom_start(self, rng):
        weights = np.array([[0.0, 1.0], [1.0, 0.0]])
        result = sample_matching_mcmc(weights, rng=rng, initial=[1, 0])
        assert result == [1, 0]

    def test_empty_instance(self, rng):
        assert sample_matching_mcmc(np.zeros((0, 0)), rng=rng) == []

    def test_default_step_budget_capped(self, rng):
        """The default proposal budget is capped at 100k so large
        placement instances cannot stall the pipeline (regression for a
        real hang: B ~ 300 midpoints meant 10 B^3 ~ 2.7e8 proposals)."""
        import time

        n = 60
        weights = rng.random((n, n)) + 0.1
        start = time.perf_counter()
        sample_matching_mcmc(weights, rng=rng)
        assert time.perf_counter() - start < 10.0

    def test_capped_chain_still_accurate_on_moderate_instance(self, rng):
        """100k proposals mix a 10x10 dense instance far past its needs."""
        weights = rng.random((4, 4)) + 0.5
        target = exact_matching_law(weights)
        samples = Counter(
            tuple(sample_matching_mcmc(weights, steps=2000, rng=rng))
            for _ in range(2000)
        )
        empirical = {s: c / 2000 for s, c in samples.items()}
        assert tv(empirical, target) < 0.08


class TestClassifiedBipartite:
    def test_validation(self):
        with pytest.raises(MatchingError):
            ClassifiedBipartite((1,), (1,), (2,), (2,), np.ones((1, 1)))
        with pytest.raises(MatchingError):
            ClassifiedBipartite((1,), (1, 2), (2,), (1,), np.ones((1, 1)))
        with pytest.raises(MatchingError):
            ClassifiedBipartite((1,), (1,), (2,), (1,), -np.ones((1, 1)))

    def test_expanded_weights(self):
        inst = ClassifiedBipartite(
            ("a", "b"), (2, 1), ("x", "y"), (1, 2),
            np.array([[1.0, 2.0], [3.0, 4.0]]),
        )
        expanded = inst.expanded_weights()
        assert expanded.shape == (3, 3)
        assert expanded[0, 0] == 1.0 and expanded[0, 2] == 2.0
        assert expanded[2, 1] == 4.0
        assert inst.size == 3

    def test_contingency_table_margins(self, rng):
        inst = ClassifiedBipartite(
            (10, 11, 12), (3, 2, 2), ("p", "q"), (4, 3),
            np.array([[1.0, 2.0], [0.5, 1.0], [1.0, 1.0]]),
        )
        for _ in range(20):
            table = sample_contingency_table(inst, rng)
            assert table.sum(axis=1).tolist() == [3, 2, 2]
            assert table.sum(axis=0).tolist() == [4, 3]

    def test_table_law_matches_class_permanent(self, rng):
        """The marginal law of tables matches the DP weights exactly."""
        weights = np.array([[1.0, 2.0], [3.0, 1.0]])
        inst = ClassifiedBipartite((0, 1), (1, 1), ("x", "y"), (1, 1), weights)
        # Two possible tables: diag (w 1*1=1... via factorization) and anti.
        counts = Counter()
        trials = 4000
        for _ in range(trials):
            table = sample_contingency_table(inst, rng)
            counts[tuple(table.ravel().tolist())] += 1
        # P(diag) prop to w00 * w11 = 1; P(anti) prop to w01 * w10 = 6.
        empirical_diag = counts[(1, 0, 0, 1)] / trials
        assert empirical_diag == pytest.approx(1.0 / 7.0, abs=0.03)

    def test_infeasible_instance_raises(self, rng):
        inst = ClassifiedBipartite(
            (0,), (2,), ("x", "y"), (1, 1),
            np.array([[1.0, 0.0]]),
        )
        with pytest.raises(MatchingError):
            sample_contingency_table(inst, rng)

    def test_expand_table_uniform_shuffle(self, rng):
        inst = ClassifiedBipartite(
            ("a", "b"), (1, 1), ("x",), (2,), np.ones((2, 1))
        )
        table = np.array([[1], [1]])
        orders = Counter(
            tuple(expand_table_to_assignment(inst, table, rng)[0])
            for _ in range(2000)
        )
        assert orders[("a", "b")] / 2000 == pytest.approx(0.5, abs=0.05)

    def test_expand_table_validates_sums(self, rng):
        inst = ClassifiedBipartite(
            ("a",), (2,), ("x", "y"), (1, 1), np.ones((1, 2))
        )
        with pytest.raises(MatchingError):
            expand_table_to_assignment(inst, np.array([[2, 1]]), rng)


class TestClassSamplerVsExpandedSampler:
    """The class-compressed sampler must induce the same matching law as
    exact sampling on the expanded matrix (the Lemma 3 equivalence)."""

    def test_distribution_agreement(self, rng):
        weights = np.array([[1.0, 3.0], [2.0, 1.0]])
        inst = ClassifiedBipartite(
            ("m0", "m1"), (1, 2), ("pq", "rs"), (2, 1), weights
        )
        expanded = inst.expanded_weights()
        target = exact_matching_law(expanded)
        # Project permutations onto (column class -> label multiset +
        # order), the observable the walk reconstruction consumes.
        def project_sigma(sigma):
            labels = ["m0", "m1", "m1"]
            per_col = [None] * 3
            for row, col in enumerate(sigma):
                per_col[col] = labels[row]
            return (per_col[0], per_col[1]), (per_col[2],)

        projected_target: Counter = Counter()
        for sigma, p in target.items():
            projected_target[project_sigma(sigma)] += p

        samples: Counter = Counter()
        trials = 4000
        for _ in range(trials):
            per_class = sample_assignment_by_classes(inst, rng)
            samples[(tuple(per_class[0]), tuple(per_class[1]))] += 1
        empirical = {k: v / trials for k, v in samples.items()}
        assert tv(empirical, dict(projected_target)) < 0.05

    def test_total_weight_consistency(self):
        """Sanity: class permanent equals Ryser on the expansion."""
        weights = np.array([[1.0, 3.0], [2.0, 1.0]])
        inst = ClassifiedBipartite(
            ("m0", "m1"), (1, 2), ("pq", "rs"), (2, 1), weights
        )
        from repro.matching import permanent_ryser

        assert permanent_class_dp(
            weights, [1, 2], [2, 1]
        ) == pytest.approx(permanent_ryser(inst.expanded_weights()), rel=1e-9)


class TestVectorizedVsReferenceDP:
    """The vectorized contingency DP is a drop-in for the original."""

    def _instance(self):
        return ClassifiedBipartite(
            row_labels=(0, 1, 2),
            row_counts=(2, 1, 2),
            col_labels=("a", "b"),
            col_counts=(3, 2),
            class_weights=np.array(
                [[0.5, 1.0], [2.0, 0.3], [1.0, 0.0]]
            ),
        )

    def test_same_law(self, rng):
        from repro.matching.sampler import sample_contingency_table

        inst = self._instance()
        fast: Counter = Counter()
        slow: Counter = Counter()
        trials = 2500
        for _ in range(trials):
            fast[sample_contingency_table(inst, rng).tobytes()] += 1
            slow[
                sample_contingency_table(
                    inst, rng, implementation="reference"
                ).tobytes()
            ] += 1
        keys = set(fast) | set(slow)
        total_variation = 0.5 * sum(
            abs(fast[k] / trials - slow[k] / trials) for k in keys
        )
        assert total_variation < 0.05

    def test_infeasible_rejected_by_both(self):
        from repro.matching.sampler import sample_contingency_table

        inst = ClassifiedBipartite(
            row_labels=(0, 1),
            row_counts=(1, 1),
            col_labels=("a",),
            col_counts=(2,),
            class_weights=np.array([[0.0], [1.0]]),
        )
        for implementation in ("vectorized", "reference"):
            with pytest.raises(MatchingError):
                sample_contingency_table(
                    inst, implementation=implementation
                )

    def test_unknown_implementation_rejected(self):
        from repro.matching.sampler import sample_contingency_table

        with pytest.raises(MatchingError):
            sample_contingency_table(
                self._instance(), implementation="gpu"
            )

    def test_reference_matching_method_end_to_end(self, rng):
        """The sampler runs under matching_method='exact-dp-reference'."""
        from repro import graphs
        from repro.core import CongestedCliqueTreeSampler, SamplerConfig
        from repro.graphs import is_spanning_tree

        g = graphs.cycle_with_chord(8)
        config = SamplerConfig(
            ell=1 << 9, matching_method="exact-dp-reference"
        )
        tree = CongestedCliqueTreeSampler(g, config).sample_tree(rng)
        assert is_spanning_tree(g, tree)
