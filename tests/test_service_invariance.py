"""Host-invariance: any worker on any host serves byte-identical draws.

The serving layer's core reproducibility claim: because every ensemble
draw is keyed to its own spawned child of the request's pinned master
seed (PR 2), and the tiered cache stores only *deterministic* derived
numerics (PR 4), the same request answered by two different server
processes -- stand-ins for two hosts mounting one shared ``cache_dir``
volume -- returns byte-identical trees and round ledgers, equal to a
direct in-process Session. One server is cold and populates the shared
disk tier; the other warm-starts from it; invariance holding *across*
that asymmetry is precisely the cache-correctness property.

Swept over every engine variant (approximate, exact, broadcast) x both
RNG contracts (the two axes that change how randomness is consumed),
batch and streamed delivery. For the broadcast variant the invariant
additionally covers ``rounds_by_category()`` carrying the
broadcast-bandwidth category: its charges are an analytic recipe over
seed-deterministic walk statistics, so warm and cold workers on any
host bill identical category totals.

The MST workload gets the same grid: both registered recipes x both
RNG contracts, two servers over one cache volume, batch == stream ==
direct local Session with byte-identical forests and identical round
bills, plus its own kill-a-worker-mid-request chaos cell -- the
workload registry's promise that a second workload inherits the
serving substrate (and its invariants) wholesale.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api import EnsembleRequest, MSTRequest, Session
from repro.api.presets import preset_config
from repro.core.workloads import workload_recipe_names
from repro.service.client import (
    ServiceClient,
    ServiceUnavailable,
    wait_until_ready,
)
from repro.service.protocol import ServiceLimits, parse_service_envelope

from tests.chaosutil import fault_env, tokens_fired
from tests.test_service import start_server, stop_server

GRAPH = {"family": "cycle", "n": 8, "seed": 0}
CELLS = [
    pytest.param(variant, contract, id=f"{variant}-{contract}")
    for variant in ("approximate", "exact", "broadcast")
    for contract in ("v1", "v2")
]
MST_CELLS = [
    pytest.param(recipe, contract, id=f"{recipe}-{contract}")
    for recipe in workload_recipe_names("mst")
    for contract in ("v1", "v2")
]


@pytest.fixture(scope="module")
def server_pair(tmp_path_factory):
    """Two servers sharing one cache volume via $REPRO_CACHE_DIR."""
    shared = tmp_path_factory.mktemp("shared-cache-volume")
    env = {"REPRO_CACHE_DIR": str(shared)}
    servers = []
    try:
        for _ in range(2):
            proc, port = start_server(
                "--workers", "2", "--cache-dir", "auto", env_extra=env
            )
            client = ServiceClient(port=port)
            wait_until_ready(client)
            servers.append((proc, client))
        yield [client for _, client in servers]
    finally:
        for proc, _ in servers:
            stop_server(proc, expect_code=None)


def local_draws(variant: str, contract: str):
    task = parse_service_envelope(
        {"graph": GRAPH, "request": {"request": "sample"}}, ServiceLimits()
    )
    graph, meta = task.build_graph()
    config = preset_config("fast-bench", ell=1024, rng_contract=contract)
    session = Session(graph, config, seed=0, meta=meta)
    response = session.run(
        EnsembleRequest(count=3, variant=variant, seed=99, jobs=1)
    )
    return response.result.results


@pytest.mark.parametrize("variant,contract", CELLS)
def test_two_servers_match_each_other_and_local(
    server_pair, variant, contract
):
    request = {
        "request": "ensemble", "count": 3, "variant": variant, "seed": 99,
    }
    overrides = {"ell": 1024, "rng_contract": contract}

    local = local_draws(variant, contract)
    server_a, server_b = server_pair
    batch_a = server_a.run(GRAPH, request, config=overrides).result.results
    batch_b = server_b.run(GRAPH, request, config=overrides).result.results
    streamed_b, summary = server_b.stream_collect(
        GRAPH, request, config=overrides
    )

    # The bill is the invariant: trees, per-draw round totals, and
    # per-category round sums are byte-equal everywhere. Raw ledger
    # *entries* are not compared -- a warm engine replays cached phase
    # numerics as one aggregated "(cached numerics)" charge where a cold
    # worker bills the ladder step by step, identical totals either way,
    # and which engines are warm is exactly what varies across hosts.
    def bill(results):
        return [
            (r.tree, r.rounds, r.rounds_by_category()) for r in results
        ]

    reference = bill(local)
    if variant == "broadcast":
        # Every charge lands in the Broadcast CC bandwidth category --
        # the new accounting regime the registry routes this variant to.
        for _, _, categories in reference:
            assert set(categories) == {"broadcast-bandwidth"}
    for label, results in (
        ("server A batch", batch_a),
        ("server B batch", batch_b),
        ("server B stream", streamed_b),
    ):
        assert bill(results) == reference, (
            f"{label} diverged from local session"
        )
    assert summary is not None and summary.degraded is False


def test_second_server_warm_starts_from_shared_volume(server_pair):
    """After the sweep, both servers see a populated shared disk tier.

    Disk hits on a server that never computed those numerics itself is
    the observable cross-process warm start (the 'two hosts, one
    volume' deployment the shard layer is built around).
    """
    server_a, server_b = server_pair
    request = {"request": "ensemble", "count": 2, "seed": 7}
    overrides = {"ell": 1024}
    _, summary_a = server_a.stream_collect(GRAPH, request, config=overrides)
    _, summary_b = server_b.stream_collect(GRAPH, request, config=overrides)
    assert summary_a is not None and summary_b is not None
    for summary in (summary_a, summary_b):
        cache = summary.cache
        assert cache, "stream summaries must carry cache counters"
        total_disk = cache.get("disk_hits", 0) + cache.get("hits", 0)
        assert total_disk > 0, cache


def local_mst(recipe: str, contract: str):
    """The direct in-process MSTReport the served answers must equal."""
    task = parse_service_envelope(
        {"graph": GRAPH, "request": {"request": "mst"}}, ServiceLimits()
    )
    graph, meta = task.build_graph()
    config = preset_config("fast-bench", ell=1024, rng_contract=contract)
    session = Session(graph, config, seed=0, meta=meta)
    return session.run(MSTRequest(recipe=recipe, seed=99)).result


@pytest.mark.parametrize("recipe,contract", MST_CELLS)
def test_mst_servers_match_each_other_and_local(
    server_pair, recipe, contract
):
    """MST batch == stream == local, byte-identical, both servers.

    The whole report is the invariant -- forest, canonical total
    weight (byte-exact float), round bill, per-category totals, and
    the oracle verdict fields -- because MST weights derive from
    (edge order, mode, seed) alone, independent of which host answers
    or which RNG contract its session runs.
    """
    request = {"request": "mst", "recipe": recipe, "seed": 99}
    overrides = {"ell": 1024, "rng_contract": contract}

    reference = local_mst(recipe, contract)
    assert reference.oracle_match and len(reference.forest) == 7
    server_a, server_b = server_pair
    batch_a = server_a.run(GRAPH, request, config=overrides).result
    batch_b = server_b.run(GRAPH, request, config=overrides).result
    streamed_b, summary = server_b.stream_collect(
        GRAPH, request, config=overrides
    )
    assert batch_a == reference, "server A diverged from local session"
    assert batch_b == reference, "server B diverged from local session"
    assert streamed_b == [reference], "stream diverged from local session"
    assert summary is not None and summary.count == 1
    assert summary.degraded is False


def _bill(results):
    return [(r.tree, r.rounds, r.rounds_by_category()) for r in results]


@pytest.mark.parametrize("variant,contract", CELLS)
def test_killed_worker_redispatch_is_byte_identical(
    tmp_path, variant, contract
):
    """Invariance survives a worker crash: re-dispatch changes nothing.

    The first shard task to run is SIGKILLed mid-draw; the supervisor
    respawns the pool and re-dispatches. Because every draw's randomness
    is pinned to its own spawned seed, the retried request must bill
    exactly what an uninterrupted in-process Session bills -- per
    variant, per RNG contract. A crash that shifted even one draw's
    stream would surface here as a tree or ledger diff.
    """
    tokens = tmp_path / "tokens"
    proc, port = start_server(
        "--workers", "1", "--cache-dir", str(tmp_path / "cache"),
        env_extra=fault_env("worker.task=kill#1", tokens),
    )
    client = ServiceClient(port=port, retries=0)
    try:
        wait_until_ready(client)
        request = {
            "request": "ensemble", "count": 3, "variant": variant,
            "seed": 99,
        }
        overrides = {"ell": 1024, "rng_contract": contract}
        response = client.run(GRAPH, request, config=overrides)
        assert _bill(response.result.results) == _bill(
            local_draws(variant, contract)
        ), f"{variant}/{contract} diverged after crash re-dispatch"
        counters = client.stats()["counters"]
        assert tokens_fired(tokens) == 1
        assert counters["worker_crashes"] == 1
        assert counters["redispatches"] == 1
        assert counters["degraded_batches"] == 0
    finally:
        assert stop_server(proc) == 0


def test_mst_killed_worker_redispatch_is_byte_identical(tmp_path):
    """The MST chaos cell: a mid-request SIGKILL changes nothing.

    Same harness as the ensemble cell -- the first shard task is killed
    mid-run, the supervisor respawns and re-dispatches -- but the
    retried workload is an MSTRequest. Idempotence holds for the same
    reason: the instance's weights are pinned to the request seed, so
    the re-dispatched run rebuilds the identical oracle-gated forest
    and bill.
    """
    tokens = tmp_path / "tokens"
    proc, port = start_server(
        "--workers", "1", "--cache-dir", str(tmp_path / "cache"),
        env_extra=fault_env("worker.task=kill#1", tokens),
    )
    client = ServiceClient(port=port, retries=0)
    try:
        wait_until_ready(client)
        request = {"request": "mst", "recipe": "node-cc-msf", "seed": 99}
        response = client.run(GRAPH, request, config={"ell": 1024})
        reference = local_mst("node-cc-msf", "v2")
        assert response.result == reference, (
            "mst diverged after crash re-dispatch"
        )
        assert response.result.oracle_match
        counters = client.stats()["counters"]
        assert tokens_fired(tokens) == 1
        assert counters["worker_crashes"] == 1
        assert counters["redispatches"] == 1
        assert counters["degraded_batches"] == 0
    finally:
        assert stop_server(proc) == 0


def test_overload_sheds_instead_of_missing_deadlines(tmp_path):
    """Under overload, no accepted request misses its deadline.

    One slot, slowed workers (a delay fault pads every batch task), and
    a burst of deadline-carrying requests: the admission queue must
    split the burst into (a) accepted requests that all complete within
    their deadline and (b) shed requests answered immediately with 429 +
    Retry-After -- never a request that waits, runs, and lands late.
    """
    deadline_ms = 1000
    proc, port = start_server(
        "--workers", "1", "--max-inflight", "1", "--queue-depth", "8",
        "--cache-dir", str(tmp_path / "cache"),
        env_extra=fault_env(
            "worker.task=delay:0.3", tmp_path / "tokens"
        ),
    )
    try:
        client = ServiceClient(port=port, retries=0)
        wait_until_ready(client)
        # Warm-up: establishes the cache AND the service-time EWMA the
        # admission queue's deadline estimates are built from.
        client.run(GRAPH, {"request": "sample", "seed": 1})

        def attempt(seed: int):
            local = ServiceClient(port=port, retries=0)
            start = time.monotonic()
            try:
                response = local.run(
                    GRAPH, {"request": "sample", "seed": seed},
                    deadline_ms=deadline_ms,
                )
            except ServiceUnavailable as error:
                return ("shed", time.monotonic() - start, error)
            return ("ok", time.monotonic() - start, response)

        with ThreadPoolExecutor(max_workers=6) as pool:
            outcomes = list(pool.map(attempt, range(2, 8)))

        accepted = [o for o in outcomes if o[0] == "ok"]
        shed = [o for o in outcomes if o[0] == "shed"]
        assert accepted, "overload must not shed everything"
        assert shed, "6 bursts into a 0.3s/task single slot must shed"
        for _, elapsed, _ in accepted:
            # The property under test: accepted => completed in budget
            # (small client-side slack for connection+parse overhead).
            assert elapsed <= deadline_ms / 1000 + 0.2, (
                f"accepted request finished late: {elapsed:.3f}s"
            )
        for _, elapsed, error in shed:
            assert elapsed < deadline_ms / 1000, (
                "shedding must be prompt, not a timed-out wait"
            )
            assert error.retry_after is not None and error.retry_after > 0
        counters = client.stats()["counters"]
        assert counters["shed_deadline"] >= 1, counters
        assert counters["completed"] == 1 + len(accepted)
        assert client.stats()["inflight"] == 0
    finally:
        assert stop_server(proc) == 0
