"""Host-invariance: any worker on any host serves byte-identical draws.

The serving layer's core reproducibility claim: because every ensemble
draw is keyed to its own spawned child of the request's pinned master
seed (PR 2), and the tiered cache stores only *deterministic* derived
numerics (PR 4), the same request answered by two different server
processes -- stand-ins for two hosts mounting one shared ``cache_dir``
volume -- returns byte-identical trees and round ledgers, equal to a
direct in-process Session. One server is cold and populates the shared
disk tier; the other warm-starts from it; invariance holding *across*
that asymmetry is precisely the cache-correctness property.

Swept over every engine variant (approximate, exact, broadcast) x both
RNG contracts (the two axes that change how randomness is consumed),
batch and streamed delivery. For the broadcast variant the invariant
additionally covers ``rounds_by_category()`` carrying the
broadcast-bandwidth category: its charges are an analytic recipe over
seed-deterministic walk statistics, so warm and cold workers on any
host bill identical category totals.
"""

from __future__ import annotations

import pytest

from repro.api import EnsembleRequest, Session
from repro.api.presets import preset_config
from repro.service.client import ServiceClient, wait_until_ready
from repro.service.protocol import ServiceLimits, parse_service_envelope

from tests.test_service import start_server, stop_server

GRAPH = {"family": "cycle", "n": 8, "seed": 0}
CELLS = [
    pytest.param(variant, contract, id=f"{variant}-{contract}")
    for variant in ("approximate", "exact", "broadcast")
    for contract in ("v1", "v2")
]


@pytest.fixture(scope="module")
def server_pair(tmp_path_factory):
    """Two servers sharing one cache volume via $REPRO_CACHE_DIR."""
    shared = tmp_path_factory.mktemp("shared-cache-volume")
    env = {"REPRO_CACHE_DIR": str(shared)}
    servers = []
    try:
        for _ in range(2):
            proc, port = start_server(
                "--workers", "2", "--cache-dir", "auto", env_extra=env
            )
            client = ServiceClient(port=port)
            wait_until_ready(client)
            servers.append((proc, client))
        yield [client for _, client in servers]
    finally:
        for proc, _ in servers:
            stop_server(proc, expect_code=None)


def local_draws(variant: str, contract: str):
    task = parse_service_envelope(
        {"graph": GRAPH, "request": {"request": "sample"}}, ServiceLimits()
    )
    graph, meta = task.build_graph()
    config = preset_config("fast-bench", ell=1024, rng_contract=contract)
    session = Session(graph, config, seed=0, meta=meta)
    response = session.run(
        EnsembleRequest(count=3, variant=variant, seed=99, jobs=1)
    )
    return response.result.results


@pytest.mark.parametrize("variant,contract", CELLS)
def test_two_servers_match_each_other_and_local(
    server_pair, variant, contract
):
    request = {
        "request": "ensemble", "count": 3, "variant": variant, "seed": 99,
    }
    overrides = {"ell": 1024, "rng_contract": contract}

    local = local_draws(variant, contract)
    server_a, server_b = server_pair
    batch_a = server_a.run(GRAPH, request, config=overrides).result.results
    batch_b = server_b.run(GRAPH, request, config=overrides).result.results
    streamed_b, summary = server_b.stream_collect(
        GRAPH, request, config=overrides
    )

    # The bill is the invariant: trees, per-draw round totals, and
    # per-category round sums are byte-equal everywhere. Raw ledger
    # *entries* are not compared -- a warm engine replays cached phase
    # numerics as one aggregated "(cached numerics)" charge where a cold
    # worker bills the ladder step by step, identical totals either way,
    # and which engines are warm is exactly what varies across hosts.
    def bill(results):
        return [
            (r.tree, r.rounds, r.rounds_by_category()) for r in results
        ]

    reference = bill(local)
    if variant == "broadcast":
        # Every charge lands in the Broadcast CC bandwidth category --
        # the new accounting regime the registry routes this variant to.
        for _, _, categories in reference:
            assert set(categories) == {"broadcast-bandwidth"}
    for label, results in (
        ("server A batch", batch_a),
        ("server B batch", batch_b),
        ("server B stream", streamed_b),
    ):
        assert bill(results) == reference, (
            f"{label} diverged from local session"
        )
    assert summary is not None and summary.degraded is False


def test_second_server_warm_starts_from_shared_volume(server_pair):
    """After the sweep, both servers see a populated shared disk tier.

    Disk hits on a server that never computed those numerics itself is
    the observable cross-process warm start (the 'two hosts, one
    volume' deployment the shard layer is built around).
    """
    server_a, server_b = server_pair
    request = {"request": "ensemble", "count": 2, "seed": 7}
    overrides = {"ell": 1024}
    _, summary_a = server_a.stream_collect(GRAPH, request, config=overrides)
    _, summary_b = server_b.stream_collect(GRAPH, request, config=overrides)
    assert summary_a is not None and summary_b is not None
    for summary in (summary_a, summary_b):
        cache = summary.cache
        assert cache, "stream summaries must carry cache counters"
        total_disk = cache.get("disk_hits", 0) + cache.get("hits", 0)
        assert total_disk > 0, cache
