"""Tests for the distributed phase driver (Outline 3 steps 1-5)."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro import graphs
from repro.clique import CongestedClique
from repro.core import SamplerConfig
from repro.core.phase import PhaseStats, run_phase_walk
from repro.errors import SamplingError
from repro.linalg import PowerLadder
from repro.walks import walk_until_distinct


class TestPhaseWalkStructure:
    def test_stops_at_quota(self, rng):
        g = graphs.cycle_with_chord(6)
        config = SamplerConfig(ell=64)
        transition = g.transition_matrix()
        for _ in range(10):
            walk = run_phase_walk(transition, 0, 3, config, rng)
            assert len(set(walk)) == 3
            assert walk.count(walk[-1]) == 1  # first occurrence of 3rd
            assert walk[0] == 0
            assert all(g.has_edge(a, b) for a, b in zip(walk, walk[1:]))

    def test_rho_validation(self, rng):
        g = graphs.path_graph(4)
        with pytest.raises(SamplingError):
            run_phase_walk(g.transition_matrix(), 0, 1, SamplerConfig(), rng)

    def test_error_policy_raises_on_short_walks(self, rng):
        g = graphs.cycle_graph(16)  # cover time >> 4 steps
        config = SamplerConfig(ell=4, on_failure="error")
        with pytest.raises(SamplingError):
            for _ in range(20):
                run_phase_walk(g.transition_matrix(), 0, 8, config, rng)

    def test_extension_policy_always_reaches_quota(self, rng):
        g = graphs.cycle_graph(16)
        config = SamplerConfig(ell=8, on_failure="extend")
        stats = PhaseStats(subset_size=16, rho_eff=8)
        walk = run_phase_walk(
            g.transition_matrix(), 0, 8, config, rng, stats=stats
        )
        assert len(set(walk)) == 8
        assert stats.extensions >= 0
        assert stats.walk_length == len(walk) - 1

    def test_respects_supplied_ladder(self, rng):
        g = graphs.complete_graph(5)
        ladder = PowerLadder(g.transition_matrix(), 32)
        walk = run_phase_walk(
            g.transition_matrix(), 0, 4, SamplerConfig(), rng, ladder=ladder
        )
        assert len(set(walk)) == 4


class TestPhaseWalkDistribution:
    """The distributed phase walk must match the stopped plain walk law
    (the composition of Lemmas 1-4)."""

    @pytest.mark.parametrize("exact_placement", [False, True])
    def test_matches_stopped_walk(self, rng, exact_placement):
        g = graphs.complete_graph(4)
        config = SamplerConfig(ell=256)
        transition = g.transition_matrix()
        rho = 3
        n_samples = 1500

        def signature(walk):
            return (min(len(walk), 10), walk[-1], walk[1])

        distributed = Counter(
            signature(
                run_phase_walk(
                    transition, 0, rho, config, rng,
                    exact_placement=exact_placement,
                )
            )
            for _ in range(n_samples)
        )
        direct = Counter(
            signature(walk_until_distinct(g, 0, rho, rng))
            for _ in range(n_samples)
        )
        keys = set(distributed) | set(direct)
        tv = 0.5 * sum(
            abs(distributed[k] / n_samples - direct[k] / n_samples)
            for k in keys
        )
        assert tv < 0.09

    def test_mcmc_matching_also_correct(self, rng):
        g = graphs.complete_graph(4)
        # Explicit proposal budget: the default 10 B^3 across every level
        # of every sample makes this test needlessly slow, and these
        # instances (B <= ~8) mix in far fewer proposals.
        config = SamplerConfig(ell=64, matching_method="mcmc", mcmc_steps=600)
        transition = g.transition_matrix()
        n_samples = 1000
        distributed = Counter(
            run_phase_walk(transition, 0, 3, config, rng)[-1]
            for _ in range(n_samples)
        )
        direct = Counter(
            walk_until_distinct(g, 0, 3, rng)[-1] for _ in range(n_samples)
        )
        tv = 0.5 * sum(
            abs(distributed[v] / n_samples - direct[v] / n_samples)
            for v in range(4)
        )
        assert tv < 0.08


class TestRoundAccounting:
    def test_clique_charged(self, rng):
        g = graphs.complete_graph(6)
        clique = CongestedClique(6)
        config = SamplerConfig(ell=64)
        run_phase_walk(
            g.transition_matrix(), 0, 3, config, rng, clique=clique
        )
        categories = clique.ledger.rounds_by_category()
        assert categories.get("midpoints/requests", 0) > 0
        assert categories.get("truncation/aggregate", 0) > 0
        assert categories.get("init/sample-end", 0) > 0

    def test_stats_populated(self, rng):
        g = graphs.complete_graph(6)
        stats = PhaseStats(subset_size=6, rho_eff=3)
        run_phase_walk(
            g.transition_matrix(), 0, 3, SamplerConfig(ell=64), rng,
            stats=stats,
        )
        assert stats.levels > 0
        assert stats.distinct_visited == 3
