"""Cross-cutting hypothesis property tests on core invariants.

Module-specific property tests live next to their units; this file holds
the deeper invariants that tie data structures to the paper's proofs:
truncation idempotence (Lemma 2's deferred-truncation argument), matching
marginals, permanent multilinearity, and walk-validity of every doubling
configuration.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro import graphs
from repro.matching import ClassifiedBipartite, permanent_ryser, sample_contingency_table
from repro.walks.fill import PartialWalk, _truncate_at_distinct

# ---------------------------------------------------------------------------
# PartialWalk truncation (the Lemma 2 mechanics)
# ---------------------------------------------------------------------------

walks = st.lists(st.integers(0, 6), min_size=1, max_size=40)
rhos = st.integers(1, 8)


@given(vertices=walks, rho=rhos)
@settings(max_examples=200, deadline=None)
def test_truncation_is_prefix(vertices, rho):
    walk = PartialWalk(1, list(vertices))
    truncated = _truncate_at_distinct(walk, rho)
    assert truncated.vertices == vertices[: len(truncated.vertices)]
    assert truncated.spacing == walk.spacing


@given(vertices=walks, rho=rhos)
@settings(max_examples=200, deadline=None)
def test_truncation_distinct_count_bound(vertices, rho):
    truncated = _truncate_at_distinct(PartialWalk(1, list(vertices)), rho)
    distinct = len(set(truncated.vertices))
    assert distinct <= rho
    if len(set(vertices)) >= rho:
        # Quota reached: ends exactly at the first occurrence of the
        # rho-th distinct vertex, which therefore appears exactly once.
        assert distinct == rho
        assert truncated.vertices.count(truncated.vertices[-1]) == 1
    else:
        assert truncated.vertices == list(vertices)


@given(vertices=walks, rho=rhos)
@settings(max_examples=200, deadline=None)
def test_truncation_idempotent(vertices, rho):
    once = _truncate_at_distinct(PartialWalk(1, list(vertices)), rho)
    twice = _truncate_at_distinct(once, rho)
    assert twice.vertices == once.vertices


@given(vertices=walks, rho_small=rhos, rho_big=rhos)
@settings(max_examples=200, deadline=None)
def test_truncation_monotone_in_rho(vertices, rho_small, rho_big):
    assume(rho_small <= rho_big)
    walk = PartialWalk(1, list(vertices))
    small = _truncate_at_distinct(walk, rho_small)
    big = _truncate_at_distinct(walk, rho_big)
    assert len(small.vertices) <= len(big.vertices)


# ---------------------------------------------------------------------------
# Contingency-table sampler marginals
# ---------------------------------------------------------------------------


@st.composite
def feasible_instances(draw):
    rows = draw(st.integers(1, 3))
    cols = draw(st.integers(1, 3))
    row_counts = [draw(st.integers(0, 3)) for _ in range(rows)]
    total = sum(row_counts)
    assume(total > 0)
    col_counts = [0] * cols
    for _ in range(total):
        col_counts[draw(st.integers(0, cols - 1))] += 1
    weights = np.array(
        [[draw(st.floats(0.1, 5.0)) for _ in range(cols)] for _ in range(rows)]
    )
    return ClassifiedBipartite(
        tuple(range(rows)), tuple(row_counts),
        tuple(range(cols)), tuple(col_counts), weights,
    )


@given(instance=feasible_instances(), seed=st.integers(0, 2**31 - 1))
@settings(max_examples=80, deadline=None)
def test_contingency_table_margins_always_hold(instance, seed):
    rng = np.random.default_rng(seed)
    table = sample_contingency_table(instance, rng)
    assert table.sum(axis=1).tolist() == list(instance.row_counts)
    assert table.sum(axis=0).tolist() == list(instance.col_counts)
    assert np.all(table >= 0)


# ---------------------------------------------------------------------------
# Permanent algebra
# ---------------------------------------------------------------------------


@given(n=st.integers(1, 5), seed=st.integers(0, 2**31 - 1),
       scale=st.floats(0.25, 4.0))
@settings(max_examples=50, deadline=None)
def test_permanent_column_multilinearity(n, seed, scale):
    rng = np.random.default_rng(seed)
    m = rng.random((n, n))
    scaled = m.copy()
    scaled[:, 0] *= scale
    assert permanent_ryser(scaled) == pytest.approx(
        scale * permanent_ryser(m), rel=1e-8
    )


@given(a=st.integers(1, 3), b=st.integers(1, 3), seed=st.integers(0, 10**6))
@settings(max_examples=50, deadline=None)
def test_permanent_block_diagonal_product(a, b, seed):
    rng = np.random.default_rng(seed)
    top = rng.random((a, a))
    bottom = rng.random((b, b))
    block = np.zeros((a + b, a + b))
    block[:a, :a] = top
    block[a:, a:] = bottom
    assert permanent_ryser(block) == pytest.approx(
        permanent_ryser(top) * permanent_ryser(bottom), rel=1e-8
    )


# ---------------------------------------------------------------------------
# Doubling walks: validity across configurations
# ---------------------------------------------------------------------------


@given(
    seed=st.integers(0, 2**31 - 1),
    tau=st.sampled_from([1, 2, 3, 8, 17]),
    balanced=st.booleans(),
)
@settings(max_examples=25, deadline=None)
def test_doubling_always_yields_valid_walks(seed, tau, balanced):
    from repro.walks import doubling_random_walk

    rng = np.random.default_rng(seed)
    g = graphs.cycle_with_chord(7)
    result = doubling_random_walk(g, tau, rng, load_balanced=balanced)
    assert result.length == 1 << max(0, math.ceil(math.log2(tau)))
    for v in range(g.n):
        walk = result.walk(v)
        assert walk[0] == v
        assert all(g.has_edge(x, y) for x, y in zip(walk, walk[1:]))


# ---------------------------------------------------------------------------
# Schur complement degree conservation
# ---------------------------------------------------------------------------


@given(seed=st.integers(0, 10**6), n=st.integers(5, 10))
@settings(max_examples=40, deadline=None)
def test_schur_effective_resistance_monotone(seed, n):
    """Eliminating vertices never disconnects S (weights stay positive
    along some spanning structure) and keeps the Laplacian PSD."""
    from repro.linalg import schur_complement_graph

    rng = np.random.default_rng(seed)
    g = graphs.erdos_renyi_graph(n, p=0.6, rng=rng)
    subset = sorted(rng.choice(n, size=3, replace=False).tolist())
    schur, _ = schur_complement_graph(g, subset)
    assert schur.is_connected()
    eigenvalues = np.linalg.eigvalsh(schur.laplacian())
    assert eigenvalues.min() > -1e-9
