"""Tests for the M_{p,q} midpoint machinery (Algorithm 2)."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro import graphs
from repro.clique import CongestedClique
from repro.core.midpoints import MidpointBank
from repro.errors import PrecisionError, WalkError
from repro.linalg import PowerLadder


@pytest.fixture
def half_power():
    g = graphs.cycle_with_chord(5)
    return PowerLadder(g.transition_matrix(), 4).power(2)


class TestSequenceGeneration:
    def test_sequences_have_requested_lengths(self, half_power, rng):
        bank = MidpointBank({(0, 2): 5, (2, 0): 3}, half_power, rng)
        assert len(bank.sequence((0, 2))) == 5
        assert len(bank.sequence((2, 0))) == 3

    def test_sequence_law_matches_formula(self, half_power, rng):
        bank = MidpointBank({(0, 2): 8000}, half_power, rng)
        law = half_power[0, :] * half_power[:, 2]
        law = law / law.sum()
        freq = Counter(int(v) for v in bank.sequence((0, 2)))
        for v, probability in enumerate(law):
            assert freq[v] / 8000 == pytest.approx(probability, abs=0.02)

    def test_zero_count_pair(self, half_power, rng):
        bank = MidpointBank({(0, 2): 0}, half_power, rng)
        assert len(bank.sequence((0, 2))) == 0

    def test_negative_count_rejected(self, half_power, rng):
        with pytest.raises(WalkError):
            MidpointBank({(0, 2): -1}, half_power, rng)

    def test_precision_floor_raises(self, rng):
        g = graphs.path_graph(4)  # bipartite: (0, 1) at even distance = 0
        half = g.transition_matrix()
        with pytest.raises(PrecisionError):
            MidpointBank({(0, 1): 1}, half, rng, normalizer_floor=0.0)


class TestQueries:
    def test_value_at(self, half_power, rng):
        bank = MidpointBank({(0, 2): 4}, half_power, rng)
        sequence = bank.sequence((0, 2))
        for i in range(4):
            assert bank.value_at((0, 2), i) == int(sequence[i])

    def test_value_at_out_of_range(self, half_power, rng):
        bank = MidpointBank({(0, 2): 2}, half_power, rng)
        with pytest.raises(WalkError):
            bank.value_at((0, 2), 2)

    def test_truncated_counts(self, half_power, rng):
        bank = MidpointBank({(0, 2): 6, (2, 4): 4}, half_power, rng)
        counts = bank.truncated_counts({(0, 2): 3, (2, 4): 0})
        manual = Counter(int(v) for v in bank.sequence((0, 2))[:3])
        assert counts == manual
        assert sum(counts.values()) == 3

    def test_truncated_counts_validation(self, half_power, rng):
        bank = MidpointBank({(0, 2): 2}, half_power, rng)
        with pytest.raises(WalkError):
            bank.truncated_counts({(0, 2): 5})
        with pytest.raises(WalkError):
            bank.truncated_counts({(9, 9): 1})

    def test_distinct_in_prefix(self, half_power, rng):
        bank = MidpointBank({(0, 2): 10}, half_power, rng)
        distinct = bank.distinct_in_prefix({(0, 2): 10})
        assert distinct == set(int(v) for v in bank.sequence((0, 2)))


class TestRoundCharging:
    def test_request_and_distribution_rounds_charged(self, half_power, rng):
        clique = CongestedClique(5)
        MidpointBank({(0, 2): 3, (2, 4): 1}, half_power, rng, clique=clique)
        categories = clique.ledger.rounds_by_category()
        assert categories.get("midpoints/requests", 0) >= 1
        assert categories.get("midpoints/distributions", 0) >= 1

    def test_aggregation_charge(self, half_power, rng):
        clique = CongestedClique(5)
        bank = MidpointBank({(0, 2): 3}, half_power, rng)
        bank.charge_aggregation(clique)
        assert clique.ledger.rounds_by_category().get(
            "truncation/aggregate", 0
        ) >= 2

    def test_no_clique_no_charge(self, half_power, rng):
        bank = MidpointBank({(0, 2): 3}, half_power, rng)
        bank.charge_aggregation(None)  # no-op
