"""Tests for the end-to-end Theorem 1 sampler."""

from __future__ import annotations

import numpy as np
import pytest

from repro import graphs
from repro.core import (
    CongestedCliqueTreeSampler,
    SamplerConfig,
    sample_spanning_tree,
)
from repro.errors import DisconnectedGraphError, GraphError
from repro.graphs import WeightedGraph, is_spanning_tree

FAST = SamplerConfig(ell=1 << 10)


class TestBasics:
    def test_returns_spanning_tree(self, rng, small_graphs):
        for name, g in small_graphs.items():
            tree = CongestedCliqueTreeSampler(g, FAST).sample_tree(rng)
            assert is_spanning_tree(g, tree), name

    def test_convenience_function(self):
        g = graphs.cycle_with_chord(6)
        tree = sample_spanning_tree(g, rng=0, config=FAST)
        assert is_spanning_tree(g, tree)

    def test_reproducible_given_seed(self):
        g = graphs.cycle_with_chord(6)
        a = sample_spanning_tree(g, rng=7, config=FAST)
        b = sample_spanning_tree(g, rng=7, config=FAST)
        assert a == b

    def test_different_seeds_vary(self):
        g = graphs.complete_graph(6)
        trees = {sample_spanning_tree(g, rng=s, config=FAST) for s in range(8)}
        assert len(trees) > 1

    def test_disconnected_rejected(self):
        g = WeightedGraph.from_edges(4, [(0, 1), (2, 3)])
        with pytest.raises(DisconnectedGraphError):
            CongestedCliqueTreeSampler(g, FAST)

    def test_too_small_rejected(self):
        g = WeightedGraph(np.zeros((1, 1)))
        with pytest.raises(GraphError):
            CongestedCliqueTreeSampler(g, FAST)

    def test_bad_variant_rejected(self):
        g = graphs.path_graph(3)
        with pytest.raises(GraphError):
            CongestedCliqueTreeSampler(g, FAST, variant="magic")

    def test_bad_start_vertex(self):
        g = graphs.path_graph(3)
        with pytest.raises(GraphError):
            CongestedCliqueTreeSampler(
                g, SamplerConfig(ell=1 << 10, start_vertex=5)
            )

    def test_two_vertex_graph(self, rng):
        g = graphs.path_graph(2)
        tree = CongestedCliqueTreeSampler(g, FAST).sample_tree(rng)
        assert tree == ((0, 1),)

    def test_tree_input_returns_itself(self, rng):
        g = graphs.binary_tree_graph(7)
        from repro.graphs import tree_key

        tree = CongestedCliqueTreeSampler(g, FAST).sample_tree(rng)
        assert tree == tree_key(g.edges())


class TestDiagnostics:
    def test_phase_count_matches_quota(self, rng):
        g = graphs.complete_graph(16)  # rho = 4: 3 new vertices per phase
        result = CongestedCliqueTreeSampler(g, FAST).sample(rng)
        assert result.phases == 5  # ceil(15 / 3)
        assert len(result.phase_stats) == result.phases
        assert result.rounds == result.ledger.total_rounds()

    def test_phase_stats_consistent(self, rng):
        g = graphs.complete_graph(9)
        result = CongestedCliqueTreeSampler(g, FAST).sample(rng)
        new_total = sum(len(s.new_vertices) for s in result.phase_stats)
        assert new_total == 8  # every non-start vertex exactly once
        for stats in result.phase_stats:
            assert stats.distinct_visited <= stats.rho_eff

    def test_matmul_dominates_rounds(self, rng):
        g = graphs.complete_graph(12)
        result = CongestedCliqueTreeSampler(g, FAST).sample(rng)
        categories = result.rounds_by_category()
        assert categories["matmul"] == max(categories.values())

    def test_sections_per_phase(self, rng):
        g = graphs.complete_graph(9)
        result = CongestedCliqueTreeSampler(g, FAST).sample(rng)
        sections = result.ledger.rounds_by_section()
        assert set(sections) == {
            f"phase-{i}" for i in range(1, result.phases + 1)
        }


class TestConfigurations:
    @pytest.mark.parametrize(
        "config",
        [
            SamplerConfig(ell=1 << 10, matching_method="exact-permanent"),
            SamplerConfig(ell=1 << 10, matching_method="mcmc"),
            SamplerConfig(ell=1 << 10, schur_method="qr-product"),
            SamplerConfig(ell=1 << 10, shortcut_method="power-iteration"),
            SamplerConfig(ell=1 << 10, rho=3),
            SamplerConfig(ell=1 << 10, start_vertex=2),
            SamplerConfig(ell=1 << 10, precision_bits=48),
            SamplerConfig(ell=1 << 10, matmul_backend="simulated-3d"),
        ],
        ids=[
            "permanent", "mcmc", "qr-schur", "power-shortcut", "rho3",
            "start2", "rounded", "simulated-matmul",
        ],
    )
    def test_all_configurations_sample_valid_trees(self, rng, config):
        g = graphs.cycle_with_chord(7)
        tree = CongestedCliqueTreeSampler(g, config).sample_tree(rng)
        assert is_spanning_tree(g, tree)

    def test_start_vertex_respected(self, rng):
        g = graphs.cycle_with_chord(7)
        config = SamplerConfig(ell=1 << 10, start_vertex=3)
        result = CongestedCliqueTreeSampler(g, config).sample(rng)
        # Vertex 3 never appears as a "new vertex" (it is the global root).
        for stats in result.phase_stats:
            assert 3 not in stats.new_vertices

    def test_simulated_matmul_backend_charges_measured_rounds(self, rng):
        g = graphs.complete_graph(9)
        config = SamplerConfig(ell=1 << 10, matmul_backend="simulated-3d")
        result = CongestedCliqueTreeSampler(g, config).sample(rng)
        categories = result.rounds_by_category()
        assert categories.get("matmul-simulated", 0) > 0

    def test_weighted_graph_supported(self, rng, weighted_triangle):
        tree = CongestedCliqueTreeSampler(
            weighted_triangle, FAST
        ).sample_tree(rng)
        assert is_spanning_tree(weighted_triangle, tree)


class TestBatchSampling:
    def test_sample_many_count_and_validity(self, rng):
        g = graphs.cycle_with_chord(6)
        sampler = CongestedCliqueTreeSampler(g, FAST)
        results = sampler.sample_many(5, rng)
        assert len(results) == 5
        for result in results:
            assert is_spanning_tree(g, result.tree)

    def test_cached_ladder_does_not_change_output_or_rounds(self):
        """Caching only reuses floating-point work: the sampled trees and
        the charged rounds are bit-identical to fresh runs."""
        g = graphs.complete_graph(9)
        fresh = [
            CongestedCliqueTreeSampler(g, FAST).sample(
                np.random.default_rng(s)
            )
            for s in (1, 2)
        ]
        sampler = CongestedCliqueTreeSampler(g, FAST)
        cached = [sampler.sample(np.random.default_rng(s)) for s in (1, 2)]
        for a, b in zip(fresh, cached):
            assert a.tree == b.tree
            assert a.rounds == b.rounds

    def test_sample_trees_shape(self, rng):
        g = graphs.path_graph(4)
        trees = CongestedCliqueTreeSampler(g, FAST).sample_trees(3, rng)
        assert len(trees) == 3

    def test_count_validation(self, rng):
        g = graphs.path_graph(4)
        with pytest.raises(GraphError):
            CongestedCliqueTreeSampler(g, FAST).sample_many(0, rng)


class TestScaling:
    def test_rounds_grow_sublinearly_in_phase_count(self, rng):
        """More vertices -> more phases -> more rounds, with per-phase cost
        dominated by the analytic matmul charge."""
        small = CongestedCliqueTreeSampler(
            graphs.complete_graph(9), FAST
        ).sample(rng)
        large = CongestedCliqueTreeSampler(
            graphs.complete_graph(25), FAST
        ).sample(rng)
        assert large.phases > small.phases
        assert large.rounds > small.rounds
