"""Cross-validation pinning the batched placement engine to the reference law.

Three layers of guarantees, strongest first:

1. **Byte identity**: for every registered graph family and both sampler
   variants, ``placement_mode="batched"`` under the v1 RNG contract and
   ``"reference"`` draw byte-identical trees and identical round ledgers
   from the same seed (the plan only memoizes deterministic structure
   and, under v1, consumes the RNG in the reference order). Reference
   mode itself is pinned to hardcoded seed trees captured before the
   batched engine existed. The v2 block contract deliberately consumes
   different bits, so batched+v2 is pinned to its *own* golden trees,
   regenerated exactly once when the contract shipped (see
   tests/README.md for the regeneration policy).
2. **DP equivalence**: a prepared contingency DP sampled repeatedly
   agrees draw-for-draw with the one-shot ``sample_contingency_table``
   under matched RNG states, for every implementation choice.
3. **Law equivalence**: sampled contingency tables over an enumerable
   instance match the exact table distribution implied by the
   ``permanent_class_dp`` factorization (chi-square), with the plan's
   digest-based dedup in the loop.
"""

from __future__ import annotations

import math
from itertools import product

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro import graphs
from repro.core.config import SamplerConfig
from repro.core.placement_plan import PlacementPlan
from repro.engine.runner import SamplerEngine
from repro.graphs.families import build_family
from repro.matching.permanent import _compositions
from repro.matching.sampler import (
    ClassifiedBipartite,
    instance_digest,
    prepare_contingency_dp,
    sample_contingency_table,
)

# Seed trees drawn from the pre-batched-engine code (fast-audit config,
# family built at n=12 with rng seed 2026, session/request seed 11).
# placement_mode="reference" must keep producing them byte-for-byte --
# and because batched mode under rng_contract="v1" consumes the RNG
# identically, so must it.
GOLDEN_SEED_TREES = {
    ("barbell", "approximate"): ((0, 1), (0, 3), (1, 2), (3, 4), (4, 5), (5, 6), (6, 7), (7, 8), (8, 11), (9, 10), (10, 11)),
    ("bipartite", "approximate"): ((0, 9), (1, 10), (2, 11), (3, 9), (4, 9), (4, 10), (5, 10), (6, 9), (7, 9), (7, 11), (8, 11)),
    ("complete", "approximate"): ((0, 3), (0, 7), (0, 9), (1, 10), (2, 3), (2, 10), (3, 6), (4, 6), (5, 11), (6, 8), (7, 11)),
    ("cycle", "approximate"): ((0, 1), (0, 11), (1, 2), (2, 3), (3, 4), (4, 5), (6, 7), (7, 8), (8, 9), (9, 10), (10, 11)),
    ("expander", "approximate"): ((0, 1), (0, 7), (0, 10), (1, 2), (1, 3), (3, 6), (4, 5), (4, 7), (7, 11), (8, 11), (9, 10)),
    ("gnp", "approximate"): ((0, 2), (0, 4), (0, 9), (1, 7), (1, 9), (3, 10), (4, 5), (5, 11), (6, 10), (8, 9), (9, 10)),
    ("grid", "approximate"): ((0, 1), (1, 2), (1, 5), (3, 7), (4, 8), (5, 6), (5, 9), (6, 7), (6, 10), (8, 9), (10, 11)),
    ("lollipop", "approximate"): ((0, 1), (0, 4), (1, 3), (1, 5), (2, 4), (5, 6), (6, 7), (7, 8), (8, 9), (9, 10), (10, 11)),
    ("path", "approximate"): ((0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7), (7, 8), (8, 9), (9, 10), (10, 11)),
    ("star", "approximate"): ((0, 1), (0, 2), (0, 3), (0, 4), (0, 5), (0, 6), (0, 7), (0, 8), (0, 9), (0, 10), (0, 11)),
    ("wheel", "approximate"): ((0, 1), (0, 3), (0, 5), (0, 6), (0, 9), (0, 10), (1, 2), (1, 11), (4, 5), (6, 7), (7, 8)),
    ("barbell", "exact"): ((0, 1), (0, 3), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7), (7, 8), (8, 10), (9, 10), (10, 11)),
    ("bipartite", "exact"): ((0, 10), (0, 11), (1, 11), (2, 9), (2, 10), (3, 9), (4, 9), (5, 11), (6, 10), (7, 10), (8, 11)),
    ("complete", "exact"): ((0, 1), (0, 4), (0, 8), (0, 9), (1, 6), (2, 7), (3, 7), (4, 5), (5, 11), (6, 10), (7, 8)),
    ("cycle", "exact"): ((0, 1), (0, 11), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7), (7, 8), (8, 9), (10, 11)),
    ("expander", "exact"): ((0, 3), (1, 2), (1, 6), (2, 3), (2, 4), (5, 10), (5, 11), (6, 8), (7, 11), (8, 9), (8, 11)),
    ("gnp", "exact"): ((0, 2), (1, 5), (1, 9), (2, 3), (2, 4), (2, 6), (3, 5), (3, 10), (3, 11), (5, 7), (6, 8)),
    ("grid", "exact"): ((0, 1), (1, 2), (2, 3), (2, 6), (3, 7), (4, 8), (5, 6), (5, 9), (6, 10), (7, 11), (8, 9)),
    ("lollipop", "exact"): ((0, 1), (0, 2), (0, 5), (3, 4), (3, 5), (5, 6), (6, 7), (7, 8), (8, 9), (9, 10), (10, 11)),
    ("path", "exact"): ((0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7), (7, 8), (8, 9), (9, 10), (10, 11)),
    ("star", "exact"): ((0, 1), (0, 2), (0, 3), (0, 4), (0, 5), (0, 6), (0, 7), (0, 8), (0, 9), (0, 10), (0, 11)),
    ("wheel", "exact"): ((0, 5), (0, 6), (0, 7), (0, 8), (0, 9), (0, 11), (1, 2), (2, 3), (3, 4), (4, 5), (10, 11)),
}

# Seed trees for the v2 block-draw contract (same instances and seeds as
# above, placement_mode="batched" + rng_contract="v2"). Regenerated
# exactly once when the v2 contract shipped; any future edit to these
# values is a contract break and needs the tests/README.md sign-off.
GOLDEN_SEED_TREES_V2 = {
    ("barbell", "approximate"): ((0, 1), (1, 2), (1, 3), (3, 4), (4, 5), (5, 6), (6, 7), (7, 8), (8, 9), (9, 11), (10, 11)),
    ("bipartite", "approximate"): ((0, 11), (1, 10), (2, 9), (2, 10), (3, 10), (4, 11), (5, 10), (5, 11), (6, 11), (7, 9), (8, 10)),
    ("complete", "approximate"): ((0, 3), (0, 8), (1, 4), (2, 5), (2, 10), (3, 6), (3, 9), (4, 8), (7, 9), (8, 11), (10, 11)),
    ("cycle", "approximate"): ((0, 1), (0, 11), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7), (7, 8), (8, 9), (9, 10)),
    ("expander", "approximate"): ((0, 3), (0, 7), (0, 10), (1, 3), (2, 6), (4, 5), (4, 8), (5, 9), (6, 8), (7, 11), (8, 11)),
    ("gnp", "approximate"): ((0, 7), (1, 2), (1, 8), (1, 11), (2, 6), (3, 11), (4, 6), (5, 6), (5, 7), (6, 10), (9, 11)),
    ("grid", "approximate"): ((0, 1), (0, 4), (1, 2), (2, 3), (2, 6), (4, 5), (6, 7), (7, 11), (8, 9), (9, 10), (10, 11)),
    ("lollipop", "approximate"): ((0, 5), (1, 2), (1, 4), (2, 3), (3, 5), (5, 6), (6, 7), (7, 8), (8, 9), (9, 10), (10, 11)),
    ("path", "approximate"): ((0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7), (7, 8), (8, 9), (9, 10), (10, 11)),
    ("star", "approximate"): ((0, 1), (0, 2), (0, 3), (0, 4), (0, 5), (0, 6), (0, 7), (0, 8), (0, 9), (0, 10), (0, 11)),
    ("wheel", "approximate"): ((0, 1), (0, 2), (0, 7), (0, 8), (0, 9), (0, 10), (1, 11), (2, 3), (4, 5), (5, 6), (6, 7)),
    ("barbell", "exact"): ((0, 1), (0, 2), (0, 3), (3, 4), (4, 5), (5, 6), (6, 7), (7, 8), (8, 9), (8, 10), (9, 11)),
    ("bipartite", "exact"): ((0, 10), (0, 11), (1, 11), (2, 9), (2, 10), (3, 10), (4, 9), (5, 11), (6, 9), (7, 10), (8, 11)),
    ("complete", "exact"): ((0, 1), (0, 4), (0, 8), (0, 10), (2, 3), (2, 7), (4, 5), (5, 11), (6, 8), (7, 8), (7, 9)),
    ("cycle", "exact"): ((0, 1), (0, 11), (1, 2), (3, 4), (4, 5), (5, 6), (6, 7), (7, 8), (8, 9), (9, 10), (10, 11)),
    ("expander", "exact"): ((0, 3), (1, 2), (1, 6), (2, 3), (2, 4), (5, 10), (6, 8), (7, 10), (7, 11), (8, 9), (8, 11)),
    ("gnp", "exact"): ((0, 2), (1, 11), (2, 3), (2, 10), (3, 5), (3, 8), (3, 11), (4, 8), (5, 7), (6, 8), (8, 9)),
    ("grid", "exact"): ((0, 1), (1, 2), (2, 3), (2, 6), (4, 5), (4, 8), (5, 6), (6, 7), (6, 10), (9, 10), (10, 11)),
    ("lollipop", "exact"): ((0, 4), (1, 2), (1, 4), (2, 5), (3, 4), (5, 6), (6, 7), (7, 8), (8, 9), (9, 10), (10, 11)),
    ("path", "exact"): ((0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7), (7, 8), (8, 9), (9, 10), (10, 11)),
    ("star", "exact"): ((0, 1), (0, 2), (0, 3), (0, 4), (0, 5), (0, 6), (0, 7), (0, 8), (0, 9), (0, 10), (0, 11)),
    ("wheel", "exact"): ((0, 3), (0, 4), (0, 6), (0, 7), (0, 8), (0, 10), (1, 2), (1, 11), (2, 3), (5, 6), (8, 9)),
}


def _draw(family: str, variant: str, mode: str, contract: str = "v1"):
    graph, __ = build_family(family, 12, np.random.default_rng(2026))
    config = SamplerConfig(
        ell=1 << 10, placement_mode=mode, rng_contract=contract
    )
    engine = SamplerEngine(graph, config, variant=variant)
    result = engine.run(np.random.default_rng(np.random.SeedSequence(11)))
    return result


class TestByteIdentity:
    """Batched+v1 == reference == seed, tree by tree and round by round."""

    @pytest.mark.parametrize(
        "family,variant", sorted(GOLDEN_SEED_TREES), ids=lambda v: str(v)
    )
    def test_reference_mode_reproduces_seed_trees(self, family, variant):
        result = _draw(family, variant, "reference")
        assert result.tree == GOLDEN_SEED_TREES[(family, variant)]

    @pytest.mark.parametrize(
        "family,variant", sorted(GOLDEN_SEED_TREES), ids=lambda v: str(v)
    )
    def test_batched_v1_matches_reference(self, family, variant):
        batched = _draw(family, variant, "batched", "v1")
        reference = _draw(family, variant, "reference")
        assert batched.tree == reference.tree
        assert batched.rounds == reference.rounds
        assert (
            batched.ledger.rounds_by_category()
            == reference.ledger.rounds_by_category()
        )
        # ...and both equal the pinned seed tree.
        assert batched.tree == GOLDEN_SEED_TREES[(family, variant)]

    @pytest.mark.parametrize(
        "family,variant", sorted(GOLDEN_SEED_TREES_V2), ids=lambda v: str(v)
    )
    def test_batched_v2_reproduces_v2_seed_trees(self, family, variant):
        result = _draw(family, variant, "batched", "v2")
        assert result.tree == GOLDEN_SEED_TREES_V2[(family, variant)]

    def test_batched_matches_reference_across_draw_sequences(self):
        """Plan reuse across sequential draws never perturbs the stream."""
        graph = graphs.complete_graph(10)
        trees = {}
        for mode in ("batched", "reference"):
            engine = SamplerEngine(
                graph,
                SamplerConfig(
                    ell=1 << 8, placement_mode=mode, rng_contract="v1"
                ),
            )
            rng = np.random.default_rng(7)
            trees[mode] = [engine.run(rng).tree for __ in range(8)]
        assert trees["batched"] == trees["reference"]

    def test_v2_draws_independent_of_plan_warmth(self):
        """A warm plan must never change which bits a v2 draw consumes:
        the k-th draw from a long-lived engine equals the k-th draw from
        a fresh engine fed the identical generator state."""
        graph = graphs.complete_graph(10)
        config = SamplerConfig(ell=1 << 8, rng_contract="v2")
        warm_engine = SamplerEngine(graph, config)
        rng = np.random.default_rng(7)
        warm = [warm_engine.run(rng).tree for __ in range(6)]
        cold = []
        rng = np.random.default_rng(7)
        for __ in range(6):
            cold.append(SamplerEngine(graph, config).run(rng).tree)
        assert warm == cold


class TestPreparedDPEquivalence:
    """prepare + sample == one-shot sample, for matched RNG states."""

    @staticmethod
    def _instances():
        rng = np.random.default_rng(99)
        yield ClassifiedBipartite(
            row_labels=(0, 1, 2),
            row_counts=(2, 1, 3),
            col_labels=("a", "b"),
            col_counts=(4, 2),
            class_weights=rng.uniform(0.1, 2.0, size=(3, 2)),
        )
        yield ClassifiedBipartite(  # a zero-weight entry, still feasible
            row_labels=(0, 1),
            row_counts=(3, 2),
            col_labels=("a", "b", "c"),
            col_counts=(2, 2, 1),
            class_weights=np.array([[1.0, 0.0, 0.5], [0.4, 1.2, 2.0]]),
        )
        yield ClassifiedBipartite(  # large enough for the vectorized path
            row_labels=tuple(range(4)),
            row_counts=(3, 3, 2, 2),
            col_labels=tuple(range(3)),
            col_counts=(4, 3, 3),
            class_weights=rng.uniform(0.05, 1.5, size=(4, 3)),
        )

    @pytest.mark.parametrize(
        "implementation", ["auto", "vectorized", "reference"]
    )
    def test_prepared_equals_one_shot(self, implementation):
        for instance in self._instances():
            prepared = prepare_contingency_dp(
                instance, implementation=implementation
            )
            for seed in range(5):
                one_shot = sample_contingency_table(
                    instance,
                    np.random.default_rng(seed),
                    implementation=implementation,
                )
                repeat = (
                    prepared.sample(np.random.default_rng(seed))
                    if prepared.consumes_rng
                    else prepared.sample()
                )
                assert np.array_equal(one_shot, repeat), (
                    implementation,
                    seed,
                )

    def test_plan_dedup_serves_isomorphic_instances(self):
        """Equal (counts, weights) with different labels share one build."""
        plan = PlacementPlan()
        weights = np.array([[1.0, 0.5], [0.25, 2.0]])
        first = ClassifiedBipartite(
            row_labels=(5, 9), row_counts=(2, 2),
            col_labels=((0, 1), (1, 0)), col_counts=(2, 2),
            class_weights=weights,
        )
        relabeled = ClassifiedBipartite(
            row_labels=(100, 200), row_counts=(2, 2),
            col_labels=("x", "y"), col_counts=(2, 2),
            class_weights=weights.copy(),
        )
        assert instance_digest(first) == instance_digest(relabeled)
        a = plan.prepared_dp(first)
        b = plan.prepared_dp(relabeled)
        assert a is b
        assert plan.dp_misses == 1 and plan.dp_hits == 1
        # Different weights => different digest => fresh build.
        other = ClassifiedBipartite(
            row_labels=(5, 9), row_counts=(2, 2),
            col_labels=((0, 1), (1, 0)), col_counts=(2, 2),
            class_weights=weights * 1.5,
        )
        assert plan.prepared_dp(other) is not a
        assert plan.dp_misses == 2


def _exact_table_law(instance: ClassifiedBipartite) -> dict[bytes, float]:
    """Exact table distribution from the permanent_class_dp factorization:
    P(T) prop to prod_{r,c} w[r,c]^{T[r,c]} / T[r,c]!."""
    weights = np.asarray(instance.class_weights, dtype=np.float64)
    a = tuple(instance.row_counts)
    b = tuple(instance.col_counts)

    tables: list[np.ndarray] = []

    def recurse(col: int, remaining: tuple[int, ...], partial: list):
        if col == len(b):
            if all(x == 0 for x in remaining):
                tables.append(np.array(partial, dtype=np.int64).T)
            return
        for allocation in _compositions(b[col], remaining):
            recurse(
                col + 1,
                tuple(r - k for r, k in zip(remaining, allocation)),
                partial + [allocation],
            )

    recurse(0, a, [])
    law: dict[bytes, float] = {}
    for table in tables:
        log_weight = 0.0
        feasible = True
        for r in range(len(a)):
            for c in range(len(b)):
                count = int(table[r, c])
                if count == 0:
                    continue
                if weights[r, c] <= 0.0:
                    feasible = False
                    break
                log_weight += (
                    count * math.log(weights[r, c]) - math.lgamma(count + 1)
                )
            if not feasible:
                break
        if feasible:
            law[table.tobytes()] = math.exp(log_weight)
    norm = sum(law.values())
    return {key: value / norm for key, value in law.items()}


class TestContingencyTableLaw:
    """Sampled table frequencies match the exact marginal distribution."""

    @pytest.mark.parametrize(
        "implementation,use_plan",
        list(product(["auto", "vectorized", "reference"], [False, True])),
    )
    def test_frequencies_match_exact_law(self, implementation, use_plan):
        instance = ClassifiedBipartite(
            row_labels=(0, 1),
            row_counts=(3, 2),
            col_labels=("a", "b"),
            col_counts=(3, 2),
            class_weights=np.array([[1.0, 0.6], [0.3, 1.8]]),
        )
        law = _exact_table_law(instance)
        assert len(law) > 1
        draws = 4000
        rng = np.random.default_rng(1234)
        plan = PlacementPlan()
        counts: dict[bytes, int] = {}
        for __ in range(draws):
            if use_plan:
                prepared = plan.prepared_dp(instance, implementation)
                table = prepared.sample(rng)
            else:
                table = sample_contingency_table(
                    instance, rng, implementation=implementation
                )
            counts[table.tobytes()] = counts.get(table.tobytes(), 0) + 1
        assert set(counts) <= set(law)
        support = list(law)
        observed = np.array([counts.get(k, 0) for k in support], dtype=float)
        expected = np.array([law[k] * draws for k in support])
        __, p_value = scipy_stats.chisquare(observed, expected)
        assert p_value > 1e-4, (implementation, use_plan, p_value)
        if use_plan:
            assert plan.dp_hits == draws - 1


class TestPlanPersistence:
    """Plans survive the npz round trip and disk-tier restarts unchanged."""

    def test_export_import_round_trip(self):
        plan = PlacementPlan()
        rng = np.random.default_rng(3)
        half = rng.uniform(0.01, 1.0, size=(6, 6))
        law1, total1 = plan.law(4, 1, 2, half)
        law2, total2 = plan.law(2, 0, 5, half)
        plan.first_visit(
            3, 4, lambda: (np.array([0, 1, 2]), np.array([0.2, 0.3, 0.5]))
        )
        restored = PlacementPlan.from_arrays(
            {k: np.asarray(v) for k, v in plan.export_arrays().items()}
        )
        r1, t1 = restored.law(4, 1, 2, half)
        assert np.array_equal(r1, law1) and t1 == total1
        r2, t2 = restored.law(2, 0, 5, half)
        assert np.array_equal(r2, law2) and t2 == total2
        neighbors, probabilities = restored.first_visit(
            3, 4, lambda: pytest.fail("should be served from the memo")
        )
        assert np.array_equal(neighbors, [0, 1, 2])
        assert restored.law_hits == 2 and restored.first_visit_hits == 1

    def test_bad_plan_arrays_raise(self):
        with pytest.raises((ValueError, KeyError)):
            PlacementPlan.from_arrays({"bogus": np.zeros(3)})
        with pytest.raises(ValueError):
            PlacementPlan.from_arrays(
                {"plan_format": np.asarray([999], dtype=np.int64)}
            )
        with pytest.raises(ValueError):
            PlacementPlan.from_arrays(
                {
                    "plan_format": np.asarray([1], dtype=np.int64),
                    "fvn/1/2": np.asarray([0, 1]),  # fvp half missing
                }
            )

    def test_warm_disk_restart_reuses_classification(self, tmp_path):
        """A restarted session loads plans and draws identical trees."""
        from repro.api import EnsembleRequest, Session, preset_config
        from repro.engine.store import PLAN_BLOB

        graph = graphs.complete_graph(24)
        config = preset_config(
            "fast-bench", ell=1 << 8, cache_dir=str(tmp_path)
        )
        cold = Session(graph, config, seed=0)
        first = cold.run(EnsembleRequest(count=2, seed=5, jobs=1))
        plan_blobs = list(tmp_path.glob(f"blobs/*/{PLAN_BLOB}"))
        assert plan_blobs, "batched runs must spill plans"

        warm = Session(graph, config, seed=0)
        second = warm.run(EnsembleRequest(count=2, seed=5, jobs=1))
        assert first.result.trees == second.result.trees
        assert [r.rounds for r in first.result.results] == [
            r.rounds for r in second.result.results
        ]

        # The restarted engine's phase-1 plan must have come from disk
        # with its laws intact (law hits on the very first warm draw).
        engine = warm.engine("approximate")
        entry = warm._cache.lookup(
            (engine._cache_token, tuple(range(graph.n)))
        )
        assert entry is not None and entry.plan is not None
        assert entry.plan.law_hits > 0

    def test_reference_mode_spills_no_plans(self, tmp_path):
        from repro.api import EnsembleRequest, Session, preset_config
        from repro.engine.store import PLAN_BLOB

        graph = graphs.complete_graph(16)
        config = preset_config(
            "fast-bench",
            ell=1 << 8,
            cache_dir=str(tmp_path),
            placement_mode="reference",
        )
        Session(graph, config, seed=0).run(
            EnsembleRequest(count=2, seed=5, jobs=1)
        )
        assert not list(tmp_path.glob(f"blobs/*/{PLAN_BLOB}"))

    def test_reference_mode_never_loads_plan_blobs(self, tmp_path):
        """A reference session warm-starting from batched spills must not
        pay for (or retain) plans it can never use."""
        from repro.api import EnsembleRequest, Session, preset_config
        from repro.engine.store import PLAN_BLOB

        graph = graphs.complete_graph(16)
        batched = preset_config(
            "fast-bench", ell=1 << 8, cache_dir=str(tmp_path)
        )
        Session(graph, batched, seed=0).run(
            EnsembleRequest(count=2, seed=5, jobs=1)
        )
        assert list(tmp_path.glob(f"blobs/*/{PLAN_BLOB}"))
        reference = preset_config(
            "fast-bench",
            ell=1 << 8,
            cache_dir=str(tmp_path),
            placement_mode="reference",
        )
        session = Session(graph, reference, seed=0)
        session.run(EnsembleRequest(count=1, seed=5, jobs=1))
        engine = session.engine("approximate")
        entry = session._cache.lookup(
            (engine._cache_token, tuple(range(graph.n)))
        )
        assert entry is not None and entry.plan is None

    def test_plan_memos_evict_lru_when_full(self):
        """A full memo displaces its LRU entry instead of refusing."""
        plan = PlacementPlan(max_laws=2)
        half = np.full((4, 4), 0.25)
        plan.law(1, 0, 1, half)
        plan.law(1, 0, 2, half)
        plan.law(1, 0, 1, half)  # refresh (0, 1): (0, 2) becomes LRU
        plan.law(1, 0, 3, half)  # evicts (0, 2)
        assert plan.evicted == 1
        assert (1, 0, 3) in plan._laws and (1, 0, 1) in plan._laws
        assert (1, 0, 2) not in plan._laws
        plan.law(1, 0, 3, half)
        assert plan.law_hits == 2  # the newest entry was admitted

    def test_cache_refresh_tracks_plan_growth(self):
        """The RAM tier's byte ledger follows plan growth via refresh."""
        from repro.engine.cache import DerivedGraphCache

        cache = DerivedGraphCache(max_entries=4)
        engine = SamplerEngine(
            graphs.complete_graph(8),
            SamplerConfig(ell=1 << 8),
            cache=cache,
        )
        engine.run(np.random.default_rng(0))
        for key, numerics in cache._entries.items():
            assert numerics.plan is not None
            assert cache._sizes[key] == numerics.nbytes(), (
                "refresh must re-measure plan-bearing entries"
            )
            assert numerics.plan.nbytes() > 0

    def test_corrupt_plan_blob_is_a_cold_plan_not_a_crash(self, tmp_path):
        from repro.api import EnsembleRequest, Session, preset_config
        from repro.engine.store import PLAN_BLOB

        graph = graphs.complete_graph(16)
        config = preset_config(
            "fast-bench", ell=1 << 8, cache_dir=str(tmp_path)
        )
        baseline = Session(graph, config, seed=0).run(
            EnsembleRequest(count=2, seed=5, jobs=1)
        )
        for blob in tmp_path.glob(f"blobs/*/{PLAN_BLOB}"):
            blob.write_bytes(b"not an npz")
        recovered = Session(graph, config, seed=0).run(
            EnsembleRequest(count=2, seed=5, jobs=1)
        )
        assert recovered.result.trees == baseline.result.trees
        # The broken blobs were dropped on load (and fresh plans respilled
        # by the recovery run), never trusted.
        for blob in tmp_path.glob(f"blobs/*/{PLAN_BLOB}"):
            assert blob.read_bytes() != b"not an npz"

    def test_ensemble_workers_share_plans(self, tmp_path):
        """jobs=2 over a shared cache_dir equals jobs=1 (plans included)."""
        from repro.api import EnsembleRequest, Session, preset_config

        graph = graphs.complete_graph(16)
        config = preset_config(
            "fast-bench", ell=1 << 8, cache_dir=str(tmp_path)
        )
        parallel = Session(graph, config, seed=0).run(
            EnsembleRequest(count=4, seed=5, jobs=2)
        )
        serial = Session(graph, config, seed=0).run(
            EnsembleRequest(count=4, seed=5, jobs=1)
        )
        assert parallel.result.trees == serial.result.trees


class TestSessionSurface:
    """The resolved mode is visible to API and CLI consumers."""

    def test_meta_carries_placement_mode(self):
        from repro.api import SampleRequest, Session, preset_config

        graph = graphs.cycle_graph(8)
        response = Session(
            graph, preset_config("fast-audit"), seed=0
        ).run(SampleRequest(seed=0))
        assert response.meta["placement_mode"] == "batched"
        response = Session(
            graph,
            preset_config("fast-audit", placement_mode="reference"),
            seed=0,
        ).run(SampleRequest(seed=0))
        assert response.meta["placement_mode"] == "reference"

    def test_unknown_placement_mode_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="placement mode"):
            SamplerConfig(placement_mode="turbo")
