"""Tests for per-machine sparse-crossover calibration (linalg.calibrate).

Calibration is a wall-clock hint: the contract under test is that
profiles persist atomically, degrade to None on any corruption, and only
steer ``auto`` backend selection when the user left the crossover knobs
at their class defaults and pointed the config at a persistence
directory.
"""

from __future__ import annotations

import json

import pytest

from repro import graphs
from repro.core import SamplerConfig
from repro.linalg.backend import auto_linalg_name
from repro.linalg.calibrate import (
    CrossoverProfile,
    calibration_path,
    load_profile,
    profile_for_config,
    run_calibration,
    save_profile,
)


def _profile(min_n=4, density=1.0):
    return CrossoverProfile(
        sparse_auto_min_n=min_n, sparse_auto_density=density, host="testhost"
    )


class TestProfilePersistence:
    def test_round_trip(self, tmp_path):
        path = save_profile(tmp_path, _profile(min_n=77, density=0.33))
        assert path == calibration_path(tmp_path)
        loaded = load_profile(tmp_path)
        assert loaded is not None
        assert loaded.sparse_auto_min_n == 77
        assert loaded.sparse_auto_density == 0.33
        assert loaded.host == "testhost"

    def test_missing_is_none(self, tmp_path):
        assert load_profile(tmp_path) is None
        assert load_profile(tmp_path / "does-not-exist") is None

    def test_corrupt_is_none(self, tmp_path):
        calibration_path(tmp_path).write_text("not json at all {")
        assert load_profile(tmp_path) is None

    def test_wrong_version_is_none(self, tmp_path):
        save_profile(tmp_path, _profile())
        payload = json.loads(calibration_path(tmp_path).read_text())
        payload["version"] = 99
        calibration_path(tmp_path).write_text(json.dumps(payload))
        assert load_profile(tmp_path) is None

    @pytest.mark.parametrize(
        "mutation",
        [
            {"sparse_auto_min_n": 1},
            {"sparse_auto_min_n": "many"},
            {"sparse_auto_density": 0.0},
            {"sparse_auto_density": 7.0},
        ],
    )
    def test_implausible_values_are_none(self, tmp_path, mutation):
        save_profile(tmp_path, _profile())
        payload = json.loads(calibration_path(tmp_path).read_text())
        payload.update(mutation)
        calibration_path(tmp_path).write_text(json.dumps(payload))
        assert load_profile(tmp_path) is None

    def test_save_creates_directory(self, tmp_path):
        nested = tmp_path / "a" / "b"
        save_profile(nested, _profile())
        assert load_profile(nested) is not None


class TestAutoConsultsProfile:
    def test_profile_for_config_requires_cache_dir(self, tmp_path):
        save_profile(tmp_path, _profile())
        assert profile_for_config(SamplerConfig()) is None
        found = profile_for_config(SamplerConfig(cache_dir=str(tmp_path)))
        assert found is not None and found.sparse_auto_min_n == 4

    def test_profile_moves_the_crossover(self, tmp_path):
        graph = graphs.cycle_graph(16)  # far below the shipped min_n=192
        config = SamplerConfig(cache_dir=str(tmp_path))
        assert auto_linalg_name(config, graph) == "dense"
        save_profile(tmp_path, _profile(min_n=4, density=1.0))
        assert auto_linalg_name(config, graph) == "sparse"

    def test_explicit_override_beats_profile(self, tmp_path):
        save_profile(tmp_path, _profile(min_n=4, density=1.0))
        graph = graphs.cycle_graph(16)
        pinned = SamplerConfig(cache_dir=str(tmp_path), sparse_auto_min_n=500)
        assert auto_linalg_name(pinned, graph) == "dense"
        pinned_density = SamplerConfig(
            cache_dir=str(tmp_path), sparse_auto_density=1e-6
        )
        assert auto_linalg_name(pinned_density, graph) == "dense"

    def test_no_profile_keeps_defaults(self, tmp_path):
        config = SamplerConfig(cache_dir=str(tmp_path))
        assert auto_linalg_name(config, graphs.cycle_graph(16)) == "dense"

    def test_profile_partitions_cache_via_resolved_backend(self, tmp_path):
        """A profile flip changes the resolved backend, hence cache keys.

        The fingerprint excludes cache fields but *includes* the resolved
        linalg backend, so numerics computed under different resolutions
        can never alias.
        """
        import numpy as np

        from repro.engine import SamplerEngine

        graph = graphs.cycle_graph(16)
        config = SamplerConfig(ell=1 << 8, cache_dir=str(tmp_path))
        dense_engine = SamplerEngine(graph, config)
        assert dense_engine.linalg.name == "dense"
        dense_engine.run(np.random.default_rng(1))
        save_profile(tmp_path, _profile(min_n=4, density=1.0))
        sparse_engine = SamplerEngine(graph, config)
        assert sparse_engine.linalg.name == "sparse"
        sparse_engine.run(np.random.default_rng(1))
        assert sparse_engine.cache.stats()["disk_hits"] == 0


class TestRunCalibration:
    def test_quick_probe_produces_plausible_profile(self):
        profile = run_calibration(
            ns=(16, 24), densities=(0.2,), quick=True, repeats=1
        )
        assert profile.sparse_auto_min_n >= 2
        assert 0.0 < profile.sparse_auto_density <= 1.0
        assert profile.created > 0
        size_rows = [r for r in profile.probe if r["probe"] == "size"]
        density_rows = [r for r in profile.probe if r["probe"] == "density"]
        assert {r["n"] for r in size_rows} == {16, 24}
        assert len(density_rows) == 1
        for row in size_rows + density_rows:
            assert row["dense_seconds"] >= 0
            assert row["sparse_seconds"] >= 0

    def test_probe_then_auto_round_trip(self, tmp_path):
        profile = run_calibration(ns=(16, 24), densities=(0.2,), quick=True)
        save_profile(tmp_path, profile)
        config = SamplerConfig(cache_dir=str(tmp_path))
        # Whatever the fit said, resolution must be well-defined.
        assert auto_linalg_name(config, graphs.cycle_graph(512)) in (
            "dense",
            "sparse",
        )
