"""Tests for permanent evaluation (Ryser + class-compressed DP)."""

from __future__ import annotations

import itertools
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MatchingError
from repro.matching import permanent_class_dp, permanent_exact, permanent_ryser


def permanent_bruteforce(matrix: np.ndarray) -> float:
    n = matrix.shape[0]
    total = 0.0
    for sigma in itertools.permutations(range(n)):
        product = 1.0
        for i, j in enumerate(sigma):
            product *= matrix[i, j]
        total += product
    return total


class TestRyser:
    def test_empty(self):
        assert permanent_ryser(np.zeros((0, 0))) == 1.0

    def test_singleton(self):
        assert permanent_ryser(np.array([[3.5]])) == pytest.approx(3.5)

    def test_two_by_two(self):
        m = np.array([[1.0, 2.0], [3.0, 4.0]])
        assert permanent_ryser(m) == pytest.approx(1 * 4 + 2 * 3)

    def test_identity(self):
        for n in range(1, 7):
            assert permanent_ryser(np.eye(n)) == pytest.approx(1.0)

    def test_all_ones_is_factorial(self):
        for n in range(1, 8):
            assert permanent_ryser(np.ones((n, n))) == pytest.approx(
                math.factorial(n)
            )

    def test_zero_row_gives_zero(self):
        m = np.ones((4, 4))
        m[2, :] = 0.0
        assert permanent_ryser(m) == pytest.approx(0.0)

    def test_matches_bruteforce_random(self, rng):
        for n in (3, 4, 5, 6):
            m = rng.random((n, n))
            assert permanent_ryser(m) == pytest.approx(
                permanent_bruteforce(m), rel=1e-9
            )

    def test_nonsquare_rejected(self):
        with pytest.raises(MatchingError):
            permanent_ryser(np.ones((2, 3)))

    def test_size_guard(self):
        with pytest.raises(MatchingError):
            permanent_ryser(np.ones((23, 23)))

    def test_dispatch(self):
        m = np.array([[1.0, 1.0], [1.0, 1.0]])
        assert permanent_exact(m) == pytest.approx(2.0)


class TestClassDP:
    def test_trivial_single_class(self):
        # One row class x N, one column class x N, weight w:
        # perm = N! * w^N.
        for n in (1, 2, 3, 5):
            value = permanent_class_dp(np.array([[2.0]]), [n], [n])
            assert value == pytest.approx(math.factorial(n) * 2.0**n)

    def test_matches_ryser_on_expansion(self, rng):
        for _ in range(10):
            r = int(rng.integers(1, 4))
            c = int(rng.integers(1, 4))
            weights = rng.random((r, c))
            row_counts = rng.integers(0, 4, size=r)
            # Build column counts with the same total.
            total = int(row_counts.sum())
            if total == 0:
                continue
            col_counts = np.zeros(c, dtype=int)
            for _ in range(total):
                col_counts[int(rng.integers(0, c))] += 1
            expanded = weights[
                np.ix_(
                    np.repeat(np.arange(r), row_counts),
                    np.repeat(np.arange(c), col_counts),
                )
            ]
            assert permanent_class_dp(
                weights, row_counts.tolist(), col_counts.tolist()
            ) == pytest.approx(permanent_ryser(expanded), rel=1e-8)

    def test_zero_weight_routes_forced(self):
        weights = np.array([[0.0, 1.0], [1.0, 0.0]])
        # Row class 0 (2 copies) must fill column class 1's 2 slots and row
        # class 1's single copy fills column class 0: 2! orderings.
        value = permanent_class_dp(weights, [2, 1], [1, 2])
        assert value == pytest.approx(2.0)

    def test_zero_weight_blocks(self):
        weights = np.array([[0.0, 1.0], [1.0, 0.0]])
        # Row class 0 (2 copies) can only reach column class 1 (1 slot):
        # no perfect matching exists.
        value = permanent_class_dp(weights, [2, 1], [2, 1])
        assert value == pytest.approx(0.0)

    def test_unbalanced_rejected(self):
        with pytest.raises(MatchingError):
            permanent_class_dp(np.ones((1, 1)), [2], [3])

    def test_negative_weights_rejected(self):
        with pytest.raises(MatchingError):
            permanent_class_dp(np.array([[-1.0]]), [1], [1])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(MatchingError):
            permanent_class_dp(np.ones((2, 2)), [1], [1, 1])

    def test_large_multiplicities_no_overflow(self):
        # The motivating regression: hundreds of copies must not overflow.
        value = permanent_class_dp(np.array([[0.5]]), [300], [300])
        assert np.isfinite(value) or value == pytest.approx(0.0) or value > 0


@given(
    n=st.integers(1, 6),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=30, deadline=None)
def test_ryser_expansion_property(n, seed):
    """Property: permanent is multilinear -- scaling one row scales perm."""
    rng = np.random.default_rng(seed)
    m = rng.random((n, n))
    base = permanent_ryser(m)
    scaled = m.copy()
    scaled[0, :] *= 3.0
    assert permanent_ryser(scaled) == pytest.approx(3.0 * base, rel=1e-8)


@given(n=st.integers(2, 5), seed=st.integers(0, 2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_ryser_row_swap_invariance(n, seed):
    """Property: permanents are invariant under row swaps."""
    rng = np.random.default_rng(seed)
    m = rng.random((n, n))
    swapped = m.copy()
    swapped[[0, 1], :] = swapped[[1, 0], :]
    assert permanent_ryser(swapped) == pytest.approx(
        permanent_ryser(m), rel=1e-8
    )
