"""The serving layer: protocol validation, HTTP endpoints, admission.

Two halves. The protocol tests are plain unit tests over
:mod:`repro.service.protocol` -- every budget and malformed-envelope
path is exercised without a socket. The server tests start real
``python -m repro serve`` subprocesses (ephemeral ``--port 0``) and
drive them with :class:`repro.service.client.ServiceClient`, pinning
the end-to-end identity contract (HTTP batch == HTTP stream == direct
in-process Session for a pinned seed) and the admission/fault behavior
the front end promises: 429 + Retry-After at ``max_inflight``,
validation rejections before any stream bytes, freed slots after client
disconnects, 504 past ``max_seconds``, and a SIGTERM drain that exits 0.
"""

from __future__ import annotations

import http.client
import json
import os
import re
import signal
import socket
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np
import pytest

from repro.api import EnsembleRequest, SampleRequest, Session
from repro.api.presets import preset_config
from repro.errors import ConfigError
from repro.service.client import (
    ServiceClient,
    ServiceRequestError,
    ServiceUnavailable,
    wait_until_ready,
)
from repro.service.protocol import (
    ServiceError,
    ServiceLimits,
    parse_service_envelope,
)

SRC = Path(__file__).resolve().parent.parent / "src"

LIMITS = ServiceLimits(
    max_draws=50, max_graph_n=64, max_jobs=2, max_body_bytes=4096
)


def envelope(graph=None, request=None, **extra):
    doc = {
        "graph": graph or {"family": "cycle", "n": 8},
        "request": request or {"request": "sample", "seed": 0},
    }
    doc.update(extra)
    return doc


class TestEnvelopeValidation:
    def test_family_spec_canonicalized(self):
        task = parse_service_envelope(envelope(), LIMITS)
        assert task.graph_spec == {"family": "cycle", "n": 8, "seed": 0}
        assert task.preset == "fast-bench"
        assert task.overrides == {}

    def test_session_key_tracks_graph_preset_config_not_request(self):
        base = parse_service_envelope(envelope(), LIMITS)
        same = parse_service_envelope(
            envelope(request={"request": "ensemble", "count": 3}), LIMITS
        )
        assert base.session_key == same.session_key
        for variation in (
            envelope(graph={"family": "cycle", "n": 10}),
            envelope(preset="paper-exact"),
            envelope(config={"ell": 2048}),
        ):
            other = parse_service_envelope(variation, LIMITS)
            assert other.session_key != base.session_key

    def test_unknown_envelope_field_rejected(self):
        with pytest.raises(ServiceError, match="unknown envelope field"):
            parse_service_envelope(envelope(bogus=1), LIMITS)

    @pytest.mark.parametrize("missing", ["graph", "request"])
    def test_missing_required_sections(self, missing):
        doc = envelope()
        del doc[missing]
        with pytest.raises(ServiceError, match=f"'{missing}'"):
            parse_service_envelope(doc, LIMITS)

    def test_non_dict_body_rejected(self):
        with pytest.raises(ServiceError, match="JSON object"):
            parse_service_envelope(["not", "an", "object"], LIMITS)

    def test_unknown_request_tag_rejected(self):
        with pytest.raises(ServiceError, match="unknown request tag"):
            parse_service_envelope(
                envelope(request={"request": "explode"}), LIMITS
            )

    def test_unknown_request_field_rejected(self):
        with pytest.raises(ServiceError):
            parse_service_envelope(
                envelope(request={"request": "sample", "frob": 1}), LIMITS
            )

    def test_unknown_preset_rejected(self):
        with pytest.raises(ServiceError, match="preset"):
            parse_service_envelope(envelope(preset="warp-speed"), LIMITS)


class TestGraphSpecValidation:
    def test_unknown_family(self):
        with pytest.raises(ServiceError, match="unknown family"):
            parse_service_envelope(
                envelope(graph={"family": "petersen++", "n": 10}), LIMITS
            )

    def test_family_min_n_enforced(self):
        with pytest.raises(ServiceError, match="needs n >="):
            parse_service_envelope(
                envelope(graph={"family": "cycle", "n": 2}), LIMITS
            )

    def test_graph_size_budget(self):
        with pytest.raises(ServiceError, match="max_graph_n"):
            parse_service_envelope(
                envelope(graph={"family": "cycle", "n": 65}), LIMITS
            )

    def test_unknown_graph_field(self):
        with pytest.raises(ServiceError, match="unknown graph field"):
            parse_service_envelope(
                envelope(graph={"family": "cycle", "n": 8, "w": 2}), LIMITS
            )

    def test_explicit_edges_build(self):
        spec = {"n": 3, "edges": [[0, 1, 1.0], [1, 2, 2.0], [0, 2, 3.0]]}
        task = parse_service_envelope(envelope(graph=spec), LIMITS)
        graph, meta = task.build_graph()
        assert meta["family"] == "explicit"
        assert graph.n == 3
        assert graph.weight(1, 2) == 2.0

    def test_disconnected_edges_rejected(self):
        spec = {"n": 4, "edges": [[0, 1, 1.0], [2, 3, 1.0]]}
        with pytest.raises(ServiceError):
            parse_service_envelope(envelope(graph=spec), LIMITS)

    def test_malformed_edges_rejected(self):
        spec = {"n": 3, "edges": [[0, 0, 1.0]]}  # self-loop
        with pytest.raises(ServiceError, match="bad graph edges"):
            parse_service_envelope(envelope(graph=spec), LIMITS)

    def test_spec_needs_family_or_edges(self):
        with pytest.raises(ServiceError, match="graph spec needs"):
            parse_service_envelope(envelope(graph={"n": 8}), LIMITS)


class TestBudgets:
    def test_draw_count_budget(self):
        with pytest.raises(ServiceError, match="max_draws"):
            parse_service_envelope(
                envelope(request={"request": "ensemble", "count": 51}),
                LIMITS,
            )

    def test_audit_samples_budget(self):
        with pytest.raises(ServiceError, match="max_draws"):
            parse_service_envelope(
                envelope(request={"request": "audit", "samples": 51}),
                LIMITS,
            )

    def test_jobs_budget(self):
        with pytest.raises(ServiceError, match="max_jobs"):
            parse_service_envelope(
                envelope(
                    request={"request": "ensemble", "count": 4, "jobs": 3}
                ),
                LIMITS,
            )

    def test_jobs_none_clamped_to_budget(self):
        """'All CPUs' is not a thing a shared server hands out."""
        task = parse_service_envelope(
            envelope(request={"request": "ensemble", "count": 4}), LIMITS
        )
        assert task.request.jobs == LIMITS.max_jobs

    def test_server_owned_config_rejected(self):
        for fields in ({"cache_dir": "/tmp/x"}, {"derived_cache": False},
                       {"cache_disk_bytes": 1}):
            with pytest.raises(ServiceError, match="server-owned"):
                parse_service_envelope(envelope(config=fields), LIMITS)

    def test_unknown_config_field_rejected(self):
        with pytest.raises(ServiceError, match="unknown config field"):
            parse_service_envelope(envelope(config={"elll": 1024}), LIMITS)

    def test_bad_config_value_rejected_with_config_error_text(self):
        with pytest.raises(ServiceError, match="bad config override"):
            parse_service_envelope(envelope(config={"ell": 3}), LIMITS)

    def test_limits_validate_themselves(self):
        with pytest.raises(ConfigError):
            ServiceLimits(max_draws=0)
        with pytest.raises(ConfigError):
            ServiceLimits(max_jobs=0)
        with pytest.raises(ConfigError):
            ServiceLimits(max_seconds=0.0)


# ---------------------------------------------------------------------------
# Live-server tests.
# ---------------------------------------------------------------------------


def start_server(*args: str, env_extra: dict | None = None):
    """Spawn ``python -m repro serve --port 0 ...``; returns (proc, port)."""
    env = {**os.environ, "PYTHONPATH": str(SRC), **(env_extra or {})}
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", *args],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env, text=True,
    )
    line = proc.stdout.readline()
    match = re.search(r"listening on http://[^:]+:(\d+)", line)
    if not match:  # startup failed; surface stderr
        proc.kill()
        raise AssertionError(
            f"server did not start: {line!r}\n{proc.stderr.read()[-2000:]}"
        )
    return proc, int(match.group(1))


def stop_server(proc, expect_code: int | None = 0) -> int:
    proc.send_signal(signal.SIGTERM)
    try:
        code = proc.wait(timeout=20)
    except subprocess.TimeoutExpired:
        proc.kill()
        raise AssertionError("server did not drain within 20s") from None
    if expect_code is not None:
        assert code == expect_code, proc.stderr.read()[-2000:]
    return code


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    """One shared server for the read-mostly endpoint tests."""
    cache = tmp_path_factory.mktemp("service-cache")
    proc, port = start_server(
        "--workers", "2", "--max-inflight", "4", "--max-draws", "64",
        "--max-graph-n", "64", "--max-body-bytes", "8K",
        "--cache-dir", str(cache),
    )
    client = ServiceClient(port=port)
    wait_until_ready(client)
    yield client
    stop_server(proc)


GRAPH = {"family": "cycle", "n": 8, "seed": 0}


def local_session(seed: int = 0) -> Session:
    task = parse_service_envelope(
        {"graph": GRAPH, "request": {"request": "sample"}}, ServiceLimits()
    )
    graph, meta = task.build_graph()
    return Session(graph, preset_config("fast-bench"), seed=seed, meta=meta)


class TestEndpoints:
    def test_healthz_and_stats(self, server):
        health = server.healthz()
        assert health["status"] == "ok"
        stats = server.stats()
        assert stats["limits"]["max_inflight"] == 4
        assert "counters" in stats and "sessions" in stats

    def test_metrics_prometheus_text_format(self, server):
        """Golden format: HELP/TYPE/sample triples, counters == /stats."""
        text = server.metrics()
        assert text.endswith("\n")
        lines = text.splitlines()
        assert lines and len(lines) % 3 == 0
        names = []
        for i in range(0, len(lines), 3):
            help_line, type_line, sample = lines[i:i + 3]
            match = re.match(r"# HELP (repro_service_\w+) \S", help_line)
            assert match, help_line
            name = match.group(1)
            assert type_line.startswith(f"# TYPE {name} ")
            assert type_line.rsplit(" ", 1)[1] in ("counter", "gauge")
            assert re.fullmatch(rf"{re.escape(name)} \d+", sample), sample
            names.append(name)
        # Exposition covers every /stats counter (same order) plus the
        # live gauges, and the values agree with the JSON view.
        stats = server.stats()
        expected = [f"repro_service_{key}" for key in stats["counters"]]
        expected += [
            "repro_service_inflight",
            "repro_service_draining",
            "repro_service_queue_depth",
            "repro_service_breaker_open",
        ]
        assert names == expected
        for key, value in stats["counters"].items():
            assert f"repro_service_{key} {int(value)}" in lines
        assert f"repro_service_inflight {stats['inflight']}" in lines
        assert "repro_service_draining 0" in lines

    def test_unknown_path_404(self, server):
        with pytest.raises(ServiceRequestError) as info:
            server._get_json("/v2/nothing")
        assert info.value.status == 404

    def test_get_on_run_405(self, server):
        with pytest.raises(ServiceRequestError) as info:
            server._get_json("/v1/run")
        assert info.value.status == 405

    def test_bad_json_400(self, server):
        conn = http.client.HTTPConnection(server.host, server.port)
        try:
            conn.request("POST", "/v1/run", body=b"{nope",
                         headers={"Content-Length": "5"})
            response = conn.getresponse()
            assert response.status == 400
            assert "not valid JSON" in json.loads(response.read())["error"]
        finally:
            conn.close()

    def test_missing_content_length_411(self, server):
        with socket.create_connection(
            (server.host, server.port), timeout=10
        ) as sock:
            sock.sendall(
                b"POST /v1/run HTTP/1.1\r\nHost: x\r\n\r\n"
            )
            head = sock.recv(4096)
        assert b"411" in head.split(b"\r\n", 1)[0]

    def test_oversized_body_413(self, server):
        doc = envelope()
        doc["graph"] = {"family": "cycle", "n": 8,
                       "seed": 0}
        body = json.dumps(doc).encode() + b" " * (9 << 10)
        conn = http.client.HTTPConnection(server.host, server.port)
        try:
            conn.request("POST", "/v1/run", body=body)
            response = conn.getresponse()
            assert response.status == 413
            assert "max_body_bytes" in json.loads(response.read())["error"]
        finally:
            conn.close()

    def test_validation_error_400_with_message(self, server):
        with pytest.raises(ServiceRequestError) as info:
            server.run(GRAPH, {"request": "ensemble", "count": 10_000})
        assert info.value.status == 400
        assert "max_draws" in str(info.value)

    def test_batch_sample_matches_local_session(self, server):
        response = server.run(GRAPH, {"request": "sample", "seed": 5})
        local = local_session().run(SampleRequest(seed=5))
        assert response.result.tree == local.result.tree
        assert response.result.rounds == local.result.rounds
        assert response.meta["family"] == "cycle"
        assert "service_seconds" in response.meta

    def test_roundbill_served(self, server):
        response = server.run(GRAPH, {"request": "roundbill", "seed": 1})
        assert response.kind == "roundbill"
        local = local_session().run(
            __import__("repro.api", fromlist=["RoundBillRequest"])
            .RoundBillRequest(seed=1)
        )
        assert response.result.to_dict() == local.result.to_dict()

    def test_stream_equals_batch_equals_local(self, server):
        request = {"request": "ensemble", "count": 5, "seed": 17}
        batch = server.run(GRAPH, request)
        streamed, summary = server.stream_collect(GRAPH, request)
        local = local_session().run(
            EnsembleRequest(count=5, seed=17, jobs=1)
        )
        local_trees = [r.tree for r in local.result.results]
        assert [r.tree for r in batch.result.results] == local_trees
        assert [r.tree for r in streamed] == local_trees
        assert [r.rounds for r in streamed] == [
            r.rounds for r in local.result.results
        ]
        assert summary is not None and summary.count == 5
        assert summary.degraded is False

    def test_stream_rejects_non_ensemble(self, server):
        with pytest.raises(ServiceRequestError, match="ensemble"):
            list(server.stream(GRAPH, {"request": "sample", "seed": 0}))

    def test_stream_rejects_leverage_audit(self, server):
        with pytest.raises(ServiceRequestError, match="batch aggregate"):
            list(server.stream(GRAPH, {
                "request": "ensemble", "count": 2, "leverage_audit": True,
            }))

    def test_stream_validation_rejected_before_any_bytes(self, server):
        """Budget violations are a 400 status, never a mid-stream error."""
        with pytest.raises(ServiceRequestError) as info:
            list(server.stream(
                GRAPH, {"request": "ensemble", "count": 10_000}
            ))
        assert info.value.status == 400

    def test_config_overrides_flow_through(self, server):
        response = server.run(
            GRAPH, {"request": "sample", "seed": 2},
            config={"rng_contract": "v1", "ell": 1024},
        )
        assert response.meta["rng_contract"] == "v1"


class TestAdmissionAndFaults:
    def test_overload_429_with_retry_after(self, tmp_path):
        # --queue-depth 0 restores the pure-reject admission policy this
        # test pins; retries=0 keeps the client from absorbing the 429.
        proc, port = start_server(
            "--workers", "1", "--max-inflight", "1", "--queue-depth", "0",
            "--cache-dir", str(tmp_path / "cache"),
        )
        client = ServiceClient(port=port, retries=0)
        try:
            wait_until_ready(client)
            # Occupy the only slot with a stream held open mid-flight:
            # read exactly one record, then probe with a second request.
            stream = client.stream(
                {"family": "cycle", "n": 16},
                {"request": "ensemble", "count": 40, "seed": 0},
            )
            next(stream)
            with pytest.raises(ServiceUnavailable) as info:
                client.run(GRAPH, {"request": "sample", "seed": 0})
            assert info.value.status == 429
            assert info.value.retry_after is not None
            assert info.value.retry_after >= 1
            stream.close()
        finally:
            stop_server(proc)

    def test_disconnect_frees_slot(self, tmp_path):
        proc, port = start_server(
            "--workers", "1", "--max-inflight", "1",
            "--cache-dir", str(tmp_path / "cache"),
        )
        client = ServiceClient(port=port)
        try:
            wait_until_ready(client)
            stream = client.stream(
                {"family": "cycle", "n": 16},
                {"request": "ensemble", "count": 40, "seed": 1},
            )
            next(stream)
            stream.close()  # drop the socket mid-stream
            deadline = time.monotonic() + 20
            while time.monotonic() < deadline:
                stats = client.stats()
                if stats["inflight"] == 0:
                    break
                time.sleep(0.1)
            assert stats["inflight"] == 0, stats
            # The slot is usable again.
            response = client.run(GRAPH, {"request": "sample", "seed": 0})
            assert response.kind == "sample"
            assert client.stats()["counters"]["client_disconnects"] >= 1
        finally:
            stop_server(proc)

    def test_wall_clock_budget_504(self, tmp_path):
        proc, port = start_server(
            "--workers", "1", "--max-seconds", "0.02",
            "--cache-dir", str(tmp_path / "cache"),
        )
        client = ServiceClient(port=port)
        try:
            wait_until_ready(client)
            with pytest.raises(ServiceRequestError) as info:
                client.run(
                    {"family": "cycle", "n": 32},
                    {"request": "ensemble", "count": 8, "seed": 0},
                )
            assert info.value.status == 504
            assert "max_seconds" in str(info.value)
        finally:
            stop_server(proc)

    def test_timeout_recycles_worker_pool(self, tmp_path):
        """A worker past max_seconds is killed and respawned, not pinned.

        With one worker and a budget nothing can meet, every batch 504s;
        pre-recycle each timeout left the lone worker abandoned-but-busy
        (the second request would have queued behind dead work). The
        recycle policy kills + respawns the pool per timeout: the
        counter tracks it, the degraded path never triggers, and the
        server stays healthy through repeated blows and a clean drain.
        """
        proc, port = start_server(
            "--workers", "1", "--max-seconds", "0.02",
            "--cache-dir", str(tmp_path / "cache"),
        )
        client = ServiceClient(port=port)
        try:
            wait_until_ready(client)
            for expected_recycles in (1, 2):
                with pytest.raises(ServiceRequestError) as info:
                    client.run(
                        {"family": "cycle", "n": 32},
                        {"request": "ensemble", "count": 8, "seed": 0},
                    )
                assert info.value.status == 504
                stats = client.stats()
                assert (
                    stats["counters"]["worker_recycles"] == expected_recycles
                ), stats["counters"]
                # Respawn, not degradation: the inline fallback that a
                # broken pool forces was never needed.
                assert stats["counters"]["degraded_batches"] == 0
            assert client.healthz()["status"] == "ok"
        finally:
            assert stop_server(proc) == 0

    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        proc, port = start_server(
            "--cache-dir", str(tmp_path / "cache"), "--drain-seconds", "10",
        )
        client = ServiceClient(port=port)
        wait_until_ready(client)
        client.run(GRAPH, {"request": "sample", "seed": 0})
        assert stop_server(proc) == 0
        # The listener is gone after the drain.
        with pytest.raises(OSError):
            socket.create_connection(("127.0.0.1", port), timeout=2).close()


class TestAdmissionQueue:
    def test_burst_queues_and_completes(self, tmp_path):
        """Past max_inflight a burst waits in the queue, not a 429.

        Four concurrent batch requests against one slot: with the queue
        enabled every one of them completes, the overflow shows up in
        the ``queued`` counter, and nothing was hard-rejected.
        """
        proc, port = start_server(
            "--workers", "1", "--max-inflight", "1", "--queue-depth", "8",
            "--cache-dir", str(tmp_path / "cache"),
        )
        client = ServiceClient(port=port, retries=0)
        try:
            wait_until_ready(client)
            with ThreadPoolExecutor(max_workers=4) as pool:
                futures = [
                    pool.submit(
                        client.run, GRAPH, {"request": "sample", "seed": s}
                    )
                    for s in range(4)
                ]
                responses = [f.result(timeout=60) for f in futures]
            assert all(r.kind == "sample" for r in responses)
            counters = client.stats()["counters"]
            assert counters["completed"] == 4
            assert counters["queued"] >= 1
            assert counters["rejected_overload"] == 0
            assert counters["shed_deadline"] == 0
        finally:
            stop_server(proc)

    def test_deadline_shed_with_429_while_queued(self, tmp_path):
        """A queued request sheds with 429 when its deadline_ms expires."""
        proc, port = start_server(
            "--workers", "1", "--max-inflight", "1", "--queue-depth", "8",
            "--cache-dir", str(tmp_path / "cache"),
        )
        client = ServiceClient(port=port, retries=0)
        try:
            wait_until_ready(client)
            # Hold the only slot open mid-stream, then race a deadline
            # request into the queue: it must come back 429, promptly.
            stream = client.stream(
                {"family": "cycle", "n": 16},
                {"request": "ensemble", "count": 40, "seed": 0},
            )
            next(stream)
            started = time.monotonic()
            with pytest.raises(ServiceUnavailable) as info:
                client.run(
                    GRAPH, {"request": "sample", "seed": 1},
                    deadline_ms=300,
                )
            waited = time.monotonic() - started
            assert info.value.status == 429
            assert info.value.retry_after is not None
            assert "deadline" in str(info.value)
            assert waited < 5.0  # shed at the deadline, not a long timeout
            stream.close()
            counters = client.stats()["counters"]
            assert counters["shed_deadline"] >= 1
            assert client.stats()["inflight"] <= 1  # no wedged slot
        finally:
            stop_server(proc)

    def test_deadline_ms_validation(self):
        with pytest.raises(ServiceError):
            parse_service_envelope(envelope(deadline_ms=0), LIMITS)
        with pytest.raises(ServiceError):
            parse_service_envelope(envelope(deadline_ms="soon"), LIMITS)
        task = parse_service_envelope(envelope(deadline_ms=1500), LIMITS)
        assert task.deadline_ms == 1500
        # deadline_ms is an admission hint: same session either way.
        bare = parse_service_envelope(envelope(), LIMITS)
        assert task.session_key == bare.session_key


class TestServeCLI:
    def test_bad_flags_rejected(self):
        env = {**os.environ, "PYTHONPATH": str(SRC)}
        result = subprocess.run(
            [sys.executable, "-m", "repro", "serve", "--workers", "0"],
            capture_output=True, text=True, env=env, timeout=60,
        )
        assert result.returncode == 2
        assert "workers" in result.stderr

    def test_eaddrinuse_one_line_error(self):
        """A taken port exits 2 with one clean line, not a traceback."""
        blocker = socket.socket()
        try:
            blocker.bind(("127.0.0.1", 0))
            blocker.listen(1)
            port = blocker.getsockname()[1]
            env = {**os.environ, "PYTHONPATH": str(SRC)}
            result = subprocess.run(
                [sys.executable, "-m", "repro", "serve",
                 "--port", str(port)],
                capture_output=True, text=True, env=env, timeout=60,
            )
        finally:
            blocker.close()
        assert result.returncode == 2
        assert "cannot serve on" in result.stderr
        assert "Traceback" not in result.stderr
        assert len(result.stderr.strip().splitlines()) == 1

    def test_bad_host_one_line_error(self):
        env = {**os.environ, "PYTHONPATH": str(SRC)}
        result = subprocess.run(
            [sys.executable, "-m", "repro", "serve",
             "--host", "no-such-host.invalid", "--port", "0"],
            capture_output=True, text=True, env=env, timeout=60,
        )
        assert result.returncode == 2
        assert "cannot serve on" in result.stderr
        assert "Traceback" not in result.stderr
