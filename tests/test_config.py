"""Tests for SamplerConfig resolution and validation."""

from __future__ import annotations

import math

import pytest

from repro.core import SamplerConfig
from repro.errors import ConfigError


class TestValidation:
    def test_defaults_valid(self):
        SamplerConfig()

    @pytest.mark.parametrize("epsilon", [0.0, 1.0, -0.5, 2.0])
    def test_bad_epsilon(self, epsilon):
        with pytest.raises(ConfigError):
            SamplerConfig(epsilon=epsilon)

    def test_bad_rho(self):
        with pytest.raises(ConfigError):
            SamplerConfig(rho=1)

    @pytest.mark.parametrize("ell", [3, 6, 1])
    def test_non_power_of_two_ell(self, ell):
        with pytest.raises(ConfigError):
            SamplerConfig(ell=ell)

    def test_bad_policies(self):
        with pytest.raises(ConfigError):
            SamplerConfig(on_failure="retry")
        with pytest.raises(ConfigError):
            SamplerConfig(matching_method="jsv")
        with pytest.raises(ConfigError):
            SamplerConfig(schur_method="magic")
        with pytest.raises(ConfigError):
            SamplerConfig(shortcut_method="magic")

    def test_bad_precision(self):
        with pytest.raises(ConfigError):
            SamplerConfig(precision_bits=4)

    def test_bad_max_extensions(self):
        with pytest.raises(ConfigError):
            SamplerConfig(max_extensions=0)

    def test_frozen(self):
        config = SamplerConfig()
        with pytest.raises(AttributeError):
            config.epsilon = 0.5


class TestResolution:
    def test_rho_sqrt_default(self):
        config = SamplerConfig()
        assert config.resolve_rho(100) == 10
        assert config.resolve_rho(101) == 10
        assert config.resolve_rho(4) == 2

    def test_rho_cbrt_for_exact(self):
        config = SamplerConfig()
        assert config.resolve_rho(64, exact_variant=True) == 4
        assert config.resolve_rho(1000, exact_variant=True) == 10

    def test_rho_never_below_two(self):
        config = SamplerConfig()
        assert config.resolve_rho(2) == 2
        assert config.resolve_rho(3, exact_variant=True) == 2

    def test_rho_override(self):
        assert SamplerConfig(rho=7).resolve_rho(1000) == 7

    def test_ell_paper_default(self):
        config = SamplerConfig(epsilon=1e-3)
        ell = config.resolve_ell(16)
        assert ell & (ell - 1) == 0
        assert ell >= 16**3

    def test_ell_override(self):
        assert SamplerConfig(ell=1 << 10).resolve_ell(100) == 1 << 10

    def test_matching_tv_budget(self):
        config = SamplerConfig(epsilon=0.01)
        budget = config.matching_tv_budget(16, 1 << 12)
        assert budget == pytest.approx(0.01 / (4 * 4 * 12))

    def test_normalizer_floor(self):
        config = SamplerConfig(normalizer_floor_exponent=3.0)
        assert config.normalizer_floor(10) == pytest.approx(1e-3)
        assert SamplerConfig().normalizer_floor(10) == pytest.approx(
            10.0 ** -40
        )
