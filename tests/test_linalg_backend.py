"""Tests for the sparse/dense dual-backend numerics layer.

The load-bearing property mirrors the cache's: the linalg backend may
only change wall-clock and memory, never outputs. Dense and sparse
engines must produce byte-identical trees and identical round ledgers
for the same seed across every registered graph family, and the
format-agnostic accessors must behave identically over ndarray and CSR
storage.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import graphs
from repro.core import SamplerConfig
from repro.engine import SamplerEngine
from repro.engine.ensemble import EnsembleEngine
from repro.errors import ConfigError, GraphError
from repro.graphs.families import FAMILY_REGISTRY, build_family
from repro.linalg import (
    DenseLinalg,
    PowerLadder,
    SparseLinalg,
    auto_linalg_name,
    is_sparse_matrix,
    matrix_col,
    matrix_density,
    matrix_entry,
    matrix_row,
    maybe_densify,
    resolve_linalg_backend,
    round_matrix_down,
    to_dense,
)
from repro.linalg.schur import schur_transition_matrix, schur_via_qr_product
from repro.linalg.shortcut import (
    shortcut_transition_matrix,
    shortcut_via_power_iteration,
)
from repro.linalg.sparse import (
    sparse_schur_transition,
    sparse_schur_via_qr_product,
    sparse_shortcut_matrix,
    sparse_shortcut_via_power_iteration,
)

# repro.linalg.sparse imports lazily/gated, so the imports above succeed
# without scipy; the tests themselves need the real thing.
sparse = pytest.importorskip("scipy.sparse")


def _dense_and_csr():
    dense = np.array([[0.0, 0.5, 0.5], [0.25, 0.0, 0.75], [1.0, 0.0, 0.0]])
    return dense, sparse.csr_array(dense)


class TestAccessors:
    def test_row_col_entry_match_across_formats(self):
        dense, csr = _dense_and_csr()
        for i in range(3):
            assert np.array_equal(matrix_row(dense, i), matrix_row(csr, i))
            assert np.array_equal(matrix_col(dense, i), matrix_col(csr, i))
            for j in range(3):
                assert matrix_entry(dense, i, j) == matrix_entry(csr, i, j)

    def test_to_dense_and_density(self):
        dense, csr = _dense_and_csr()
        assert np.array_equal(to_dense(csr), dense)
        assert to_dense(dense) is np.asarray(dense)
        assert matrix_density(dense) == pytest.approx(5 / 9)
        assert matrix_density(csr) == pytest.approx(5 / 9)
        assert is_sparse_matrix(csr) and not is_sparse_matrix(dense)

    def test_maybe_densify_thresholds(self):
        __, csr = _dense_and_csr()
        assert isinstance(maybe_densify(csr, threshold=0.1), np.ndarray)
        assert is_sparse_matrix(maybe_densify(csr, threshold=0.9))
        arr = np.zeros((2, 2))
        assert maybe_densify(arr, threshold=0.0) is arr


class TestSparseKernelsAgreeWithDense:
    """The CSR constructions match the LAPACK reference entrywise."""

    @pytest.fixture(params=["cycle", "grid", "lollipop", "gnp"])
    def instance(self, request):
        g, __ = build_family(request.param, 18, np.random.default_rng(2))
        rng = np.random.default_rng(7)
        size = int(rng.integers(3, g.n - 1))
        subset = sorted(rng.choice(g.n, size=size, replace=False).tolist())
        return g, subset

    def test_shortcut(self, instance):
        g, subset = instance
        expected = shortcut_transition_matrix(g, subset)
        got = sparse_shortcut_matrix(g, subset)
        assert np.allclose(expected, got.toarray(), atol=1e-10)

    def test_shortcut_full_vertex_set_is_identity(self, instance):
        g, __ = instance
        got = sparse_shortcut_matrix(g, list(range(g.n))).toarray()
        assert np.array_equal(got, np.eye(g.n))

    def test_shortcut_power_iteration(self, instance):
        g, subset = instance
        expected = shortcut_via_power_iteration(g, subset, beta=1e-12)
        got = sparse_shortcut_via_power_iteration(g, subset, beta=1e-12)
        assert np.allclose(expected, got.toarray(), atol=1e-9)

    def test_schur_block(self, instance):
        g, subset = instance
        expected, order = schur_transition_matrix(g, subset)
        got, got_order = sparse_schur_transition(g, subset)
        assert order == got_order
        assert np.allclose(expected, got.toarray(), atol=1e-9)

    def test_schur_qr_product(self, instance):
        g, subset = instance
        expected, __ = schur_via_qr_product(g, subset)
        got, __ = sparse_schur_via_qr_product(g, subset)
        assert np.allclose(expected, got.toarray(), atol=1e-8)

    def test_disconnected_elimination_raises(self):
        from repro.graphs.core import WeightedGraph

        # Eliminating a component cut off from S has a singular block,
        # mirroring the dense constructions' GraphError.
        two_components = WeightedGraph.from_edges(4, [(0, 1), (2, 3)])
        with pytest.raises(GraphError):
            sparse_schur_transition(two_components, [0, 1])
        with pytest.raises(GraphError):
            sparse_shortcut_matrix(graphs.path_graph(3), [])


class TestSparsePowerLadder:
    def test_powers_match_dense(self):
        g = graphs.cycle_graph(12)
        dense = PowerLadder(g.transition_matrix(), 16)
        csr = PowerLadder(sparse.csr_array(g.transition_matrix()), 16)
        for k in dense.exponents:
            assert np.allclose(
                to_dense(dense.power(k)), to_dense(csr.power(k)), atol=1e-12
            )

    def test_ladder_densifies_on_fill_in(self):
        g = graphs.complete_graph(8)
        ladder = PowerLadder(sparse.csr_array(g.transition_matrix()), 8)
        # P of K_8 is already ~88% dense: every squared power densifies.
        assert isinstance(ladder.power(8), np.ndarray)

    def test_round_matrix_down_sparse_matches_dense(self):
        dense, csr = _dense_and_csr()
        rounded = round_matrix_down(csr, 2)
        assert np.array_equal(round_matrix_down(dense, 2), rounded.toarray())
        # entries truncated to zero leave the sparse structure
        assert rounded.nnz <= csr.nnz

    def test_power_any_mixed_formats(self):
        g = graphs.wheel_graph(9)
        dense = PowerLadder(g.transition_matrix(), 8)
        csr = PowerLadder(sparse.csr_array(g.transition_matrix()), 8)
        assert np.allclose(
            to_dense(dense.power_any(5)), to_dense(csr.power_any(5)),
            atol=1e-12,
        )


class TestBackendSelection:
    def test_explicit_names(self):
        g = graphs.cycle_graph(8)
        assert isinstance(
            resolve_linalg_backend(SamplerConfig(linalg_backend="dense"), g),
            DenseLinalg,
        )
        assert isinstance(
            resolve_linalg_backend(SamplerConfig(linalg_backend="sparse"), g),
            SparseLinalg,
        )

    def test_auto_picks_sparse_only_past_crossover(self):
        config = SamplerConfig(sparse_auto_min_n=8)
        assert auto_linalg_name(config, graphs.cycle_graph(16)) == "sparse"
        assert auto_linalg_name(config, graphs.complete_graph(16)) == "dense"
        # below the size floor even a sparse family stays dense
        assert auto_linalg_name(SamplerConfig(), graphs.cycle_graph(16)) == "dense"

    def test_simulated_3d_forces_dense_auto(self):
        config = SamplerConfig(
            matmul_backend="simulated-3d", sparse_auto_min_n=8
        )
        assert auto_linalg_name(config, graphs.cycle_graph(16)) == "dense"

    def test_sparse_with_simulated_3d_rejected(self):
        with pytest.raises(ConfigError):
            SamplerConfig(linalg_backend="sparse", matmul_backend="simulated-3d")

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ConfigError):
            SamplerConfig(linalg_backend="gpu")
        with pytest.raises(ConfigError):
            SamplerConfig(sparse_auto_min_n=1)
        with pytest.raises(ConfigError):
            SamplerConfig(sparse_auto_density=0.0)

    def test_engine_resolves_auto_per_graph(self):
        config = SamplerConfig(ell=1 << 9, sparse_auto_min_n=8)
        assert SamplerEngine(graphs.cycle_graph(16), config).linalg.name == "sparse"
        assert (
            SamplerEngine(graphs.complete_graph(16), config).linalg.name
            == "dense"
        )


def _run(graph, variant, backend, seed, ell=1 << 9):
    engine = SamplerEngine(
        graph,
        SamplerConfig(ell=ell, linalg_backend=backend),
        variant=variant,
    )
    result = engine.run(np.random.default_rng(seed))
    return result, engine


class TestCrossBackendIdentity:
    """Dense and sparse engines are output-identical, per family."""

    @pytest.mark.parametrize("family", sorted(FAMILY_REGISTRY))
    def test_trees_ledgers_and_cache_stats_identical(self, family):
        graph, __ = build_family(family, 20, np.random.default_rng(11))
        dense_result, dense_engine = _run(graph, "approximate", "dense", 42)
        sparse_result, sparse_engine = _run(graph, "approximate", "sparse", 42)
        assert dense_result.tree == sparse_result.tree
        assert dense_result.rounds == sparse_result.rounds
        assert dense_result.ledger == sparse_result.ledger
        assert dense_result.phases == sparse_result.phases
        assert [s.to_dict() for s in dense_result.phase_stats] == [
            s.to_dict() for s in sparse_result.phase_stats
        ]
        # Hit/miss/eviction behavior is backend-independent; resident
        # *bytes* are not (CSR stores the same numbers more compactly).
        dense_stats = dense_engine.cache.stats()
        sparse_stats = sparse_engine.cache.stats()
        dense_stats.pop("bytes")
        sparse_stats.pop("bytes")
        assert dense_stats == sparse_stats

    @pytest.mark.parametrize("family", ["cycle", "grid", "expander"])
    def test_exact_variant_identical_on_sparse_families(self, family):
        graph, __ = build_family(family, 18, np.random.default_rng(3))
        dense_result, __ = _run(graph, "exact", "dense", 7)
        sparse_result, __ = _run(graph, "exact", "sparse", 7)
        assert dense_result.tree == sparse_result.tree
        assert dense_result.ledger == sparse_result.ledger

    def test_alternate_constructions_identical(self):
        graph = graphs.lollipop_graph(16)
        config = dict(
            ell=1 << 9,
            schur_method="qr-product",
            shortcut_method="power-iteration",
            precision_bits=40,
        )
        dense_result = SamplerEngine(
            graph, SamplerConfig(linalg_backend="dense", **config)
        ).run(np.random.default_rng(5))
        sparse_result = SamplerEngine(
            graph, SamplerConfig(linalg_backend="sparse", **config)
        ).run(np.random.default_rng(5))
        assert dense_result.tree == sparse_result.tree
        assert dense_result.ledger == sparse_result.ledger

    def test_ensemble_jobs_invariance_under_sparse_backend(self):
        graph = graphs.cycle_graph(12)
        config = SamplerConfig(ell=1 << 9, linalg_backend="sparse")
        driver = EnsembleEngine(graph, config)
        serial = driver.sample_ensemble(4, seed=99, jobs=1)
        fanned = EnsembleEngine(graph, config).sample_ensemble(
            4, seed=99, jobs=2
        )
        assert serial.trees == fanned.trees
        assert [r.rounds for r in serial.results] == [
            r.rounds for r in fanned.results
        ]

    def test_sequential_shortcutting_sampler_identical(self):
        from repro.walks.shortcutting import ShortcuttingSampler

        graph = graphs.grid_graph(4, 5)
        dense_result = ShortcuttingSampler(
            graph, linalg_backend="dense"
        ).sample(np.random.default_rng(13))
        sparse_result = ShortcuttingSampler(
            graph, linalg_backend="sparse"
        ).sample(np.random.default_rng(13))
        assert dense_result.tree == sparse_result.tree
        assert dense_result.steps_per_phase == sparse_result.steps_per_phase

    def test_doubling_accepts_backend_matrix(self):
        from repro.walks.doubling import doubling_random_walk

        graph = graphs.wheel_graph(10)
        csr = sparse.csr_array(graph.transition_matrix())
        dense_walks = doubling_random_walk(
            graph, 8, np.random.default_rng(21)
        )
        sparse_walks = doubling_random_walk(
            graph, 8, np.random.default_rng(21), transition=csr
        )
        assert np.array_equal(dense_walks.walks, sparse_walks.walks)
        assert dense_walks.rounds == sparse_walks.rounds


class TestSessionSurfacesBackend:
    def test_meta_reports_resolved_backend(self):
        from repro.api import SampleRequest, Session

        session = Session(
            graphs.cycle_graph(8),
            SamplerConfig(ell=1 << 9, linalg_backend="sparse"),
            seed=0,
        )
        response = session.run(SampleRequest(seed=1))
        assert response.meta["linalg_backend"] == "sparse"

    def test_sparse_scale_preset(self):
        from repro.api import get_preset

        preset = get_preset("sparse-scale")
        assert preset.config.linalg_backend == "sparse"
