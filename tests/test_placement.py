"""Tests for midpoint placement (Lemmas 3-4, Appendix 5.3)."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro import graphs
from repro.core.midpoints import MidpointBank
from repro.core.placement import place_by_pair_multisets, place_midpoints
from repro.core.truncation import LevelView, find_truncation_index
from repro.linalg import PowerLadder


def build_level(rng, vertices, spacing=4, graph=None):
    g = graph if graph is not None else graphs.complete_graph(5)
    ladder = PowerLadder(g.transition_matrix(), spacing)
    from repro.walks.fill import PartialWalk

    walk = PartialWalk(spacing, vertices)
    pair_counts: dict = {}
    for pair in walk.pairs():
        pair_counts[pair] = pair_counts.get(pair, 0) + 1
    half = ladder.power(spacing // 2)
    bank = MidpointBank(pair_counts, half, rng)
    return LevelView(walk, bank), half


@pytest.mark.parametrize("method", ["exact-dp", "exact-permanent", "mcmc"])
class TestPlaceMidpoints:
    def test_structure_preserved(self, rng, method):
        view, half = build_level(rng, [0, 2, 0, 3, 1])
        t_star = find_truncation_index(view, 4)
        result = place_midpoints(view, t_star, half, rng, method=method)
        # Spacing halves; even positions keep the old vertices.
        assert result.spacing == 2
        assert len(result.vertices) == t_star + 1
        for t in range(0, t_star + 1, 2):
            assert result.vertices[t] == view.walk.vertices[t // 2]

    def test_multiset_preserved(self, rng, method):
        """The placed midpoints are exactly the collected multiset."""
        view, half = build_level(rng, [0, 2, 0, 3, 1])
        t_star = find_truncation_index(view, 5)
        truncated = view.truncated_pair_counts(t_star)
        expected = view.bank.truncated_counts(truncated)
        result = place_midpoints(view, t_star, half, rng, method=method)
        placed = Counter(
            result.vertices[t] for t in range(1, t_star + 1, 2)
        )
        assert placed == expected

    def test_final_midpoint_pinned(self, rng, method):
        """The chronologically final midpoint stays exactly in place."""
        view, half = build_level(rng, [0, 2, 0, 3, 1])
        t_star = find_truncation_index(view, 5)
        t_final = t_star if t_star % 2 == 1 else t_star - 1
        true_final = view.value_at(t_final)
        result = place_midpoints(view, t_star, half, rng, method=method)
        assert result.vertices[t_final] == true_final


class TestPlacementDistribution:
    """Lemma 3/4 statistically: the reconstructed walk has the same law as
    the directly filled walk. We fix W_i = (a, b) (one gap on K4, spacing
    4) and compare the law of the two inserted midpoints after two more
    levels against direct conditional walks."""

    def _direct_law(self, rng, n_samples=2000):
        g = graphs.complete_graph(4)
        ladder = PowerLadder(g.transition_matrix(), 4)
        law = Counter()
        # Direct: fill the (0 -> 1, length 4) bridge by midpoint recursion
        # without any multiset compression.
        from repro.walks.fill import PartialWalk, _fill_level

        for _ in range(n_samples):
            walk = PartialWalk(4, [0, 1])
            walk = _fill_level(walk, ladder.power(2), rng)
            walk = _fill_level(walk, ladder.power(1), rng)
            law[tuple(walk.vertices)] += 1
        return {k: v / n_samples for k, v in law.items()}

    def _placed_law(self, rng, method, n_samples=2000):
        g = graphs.complete_graph(4)
        ladder = PowerLadder(g.transition_matrix(), 4)
        from repro.walks.fill import PartialWalk

        law = Counter()
        for _ in range(n_samples):
            walk = PartialWalk(4, [0, 1])
            for spacing in (4, 2):
                pair_counts: dict = {}
                for pair in walk.pairs():
                    pair_counts[pair] = pair_counts.get(pair, 0) + 1
                half = ladder.power(spacing // 2)
                bank = MidpointBank(pair_counts, half, rng)
                view = LevelView(walk, bank)
                walk = place_midpoints(
                    view, view.top, half, rng, method=method
                )
            law[tuple(walk.vertices)] += 1
        return {k: v / n_samples for k, v in law.items()}

    @pytest.mark.parametrize("method", ["exact-dp", "mcmc"])
    def test_reconstruction_matches_direct(self, rng, method):
        direct = self._direct_law(rng)
        placed = self._placed_law(rng, method)
        keys = set(direct) | set(placed)
        tv = 0.5 * sum(
            abs(direct.get(k, 0.0) - placed.get(k, 0.0)) for k in keys
        )
        assert tv < 0.10


class TestPairMultisetPlacement:
    """Appendix 5.3's exact placement."""

    def test_structure_and_multisets(self, rng):
        view, half = build_level(rng, [0, 2, 0, 2, 1])
        t_star = find_truncation_index(view, 5)
        result = place_by_pair_multisets(view, t_star, rng)
        assert result.spacing == 2
        truncated = view.truncated_pair_counts(t_star)
        expected = view.bank.truncated_counts(truncated)
        placed = Counter(result.vertices[t] for t in range(1, t_star + 1, 2))
        assert placed == expected

    def test_per_pair_multisets_respected(self, rng):
        """Unlike the matching placement, each pair keeps its own multiset."""
        view, half = build_level(rng, [0, 2, 0, 2, 0])
        t_star = view.top
        result = place_by_pair_multisets(view, t_star, rng)
        for pair in {(0, 2), (2, 0)}:
            slots = [
                t for t in range(1, t_star + 1, 2)
                if view.pair_of_gap((t - 1) // 2) == pair
            ]
            placed = Counter(result.vertices[t] for t in slots)
            expected = Counter(
                int(v) for v in view.bank.sequence(pair)
            )
            assert placed == expected

    def test_final_midpoint_pinned(self, rng):
        view, half = build_level(rng, [0, 2, 0, 3, 1])
        t_star = find_truncation_index(view, 5)
        t_final = t_star if t_star % 2 == 1 else t_star - 1
        true_final = view.value_at(t_final)
        result = place_by_pair_multisets(view, t_star, rng)
        assert result.vertices[t_final] == true_final

    def test_matches_direct_distribution(self, rng):
        """The exact placement reproduces the direct fill law as well."""
        g = graphs.complete_graph(4)
        ladder = PowerLadder(g.transition_matrix(), 4)
        from repro.walks.fill import PartialWalk, _fill_level

        n_samples = 2000
        direct = Counter()
        placed = Counter()
        for _ in range(n_samples):
            walk = PartialWalk(4, [0, 1])
            walk = _fill_level(walk, ladder.power(2), rng)
            walk = _fill_level(walk, ladder.power(1), rng)
            direct[tuple(walk.vertices)] += 1

            walk = PartialWalk(4, [0, 1])
            for spacing in (4, 2):
                pair_counts: dict = {}
                for pair in walk.pairs():
                    pair_counts[pair] = pair_counts.get(pair, 0) + 1
                half = ladder.power(spacing // 2)
                bank = MidpointBank(pair_counts, half, rng)
                view = LevelView(walk, bank)
                walk = place_by_pair_multisets(view, view.top, rng)
            placed[tuple(walk.vertices)] += 1
        keys = set(direct) | set(placed)
        tv = 0.5 * sum(
            abs(direct[k] / n_samples - placed[k] / n_samples) for k in keys
        )
        assert tv < 0.10
