"""Tests for the sequential shortcutting sampler ([52] lineage)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import graphs
from repro.analysis import expected_tv_noise, tv_to_uniform
from repro.errors import GraphError
from repro.graphs import is_spanning_tree
from repro.walks import ShortcuttingSampler, aldous_broder_with_stats


class TestBasics:
    def test_returns_spanning_tree(self, rng, small_graphs):
        for name, g in small_graphs.items():
            result = ShortcuttingSampler(g).sample(rng)
            assert is_spanning_tree(g, result.tree), name
            assert result.schur_steps == sum(result.steps_per_phase)
            assert result.phases == len(result.steps_per_phase)

    def test_validation(self):
        with pytest.raises(GraphError):
            ShortcuttingSampler(graphs.path_graph(4), rho=1)
        with pytest.raises(GraphError):
            ShortcuttingSampler(graphs.path_graph(4), start_vertex=8)
        disconnected = graphs.WeightedGraph.from_edges(4, [(0, 1), (2, 3)])
        with pytest.raises(Exception):
            ShortcuttingSampler(disconnected)

    def test_phase_quota_respected(self, rng):
        g = graphs.complete_graph(16)
        result = ShortcuttingSampler(g, rho=4).sample(rng)
        for distinct in result.distinct_per_phase:
            assert distinct <= 4
        assert result.phases == 5  # 15 new vertices / 3 per phase


class TestShortcuttingEffect:
    def test_saves_steps_on_lollipop(self, rng):
        """The point of shortcutting: on bottleneck graphs the summed
        Schur-walk lengths are far below the Aldous-Broder cover time."""
        g = graphs.lollipop_graph(24)
        shortcut_steps = np.mean(
            [ShortcuttingSampler(g).sample(rng).schur_steps for _ in range(6)]
        )
        ab_steps = np.mean(
            [aldous_broder_with_stats(g, rng)[1] for _ in range(6)]
        )
        assert shortcut_steps < ab_steps / 2

    def test_no_penalty_on_expander(self, rng):
        g = graphs.random_regular_graph(24, 4, rng=rng)
        shortcut_steps = np.mean(
            [ShortcuttingSampler(g).sample(rng).schur_steps for _ in range(6)]
        )
        ab_steps = np.mean(
            [aldous_broder_with_stats(g, rng)[1] for _ in range(6)]
        )
        assert shortcut_steps < 2 * ab_steps


class TestDistribution:
    def test_uniformity(self, rng):
        g = graphs.cycle_with_chord(5)
        sampler = ShortcuttingSampler(g)
        n_samples = 1200
        trees = [sampler.sample(rng).tree for _ in range(n_samples)]
        assert tv_to_uniform(g, trees) < 4 * expected_tv_noise(11, n_samples)

    def test_weighted_law(self, rng, weighted_triangle):
        from repro.analysis import empirical_tree_distribution, tv_distance
        from repro.graphs import uniform_tree_distribution

        sampler = ShortcuttingSampler(weighted_triangle)
        trees = [sampler.sample(rng).tree for _ in range(1200)]
        target = uniform_tree_distribution(weighted_triangle)
        empirical = empirical_tree_distribution(trees)
        assert tv_distance(empirical, dict(target)) < 0.06
