"""Tests for the electrical-network substrate (resistances, leverage)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import graphs
from repro.errors import GraphError
from repro.graphs import hitting_time_matrix, uniform_tree_distribution
from repro.graphs.electrical import (
    commute_time,
    cover_time_resistance_bound,
    edge_leverage_scores,
    effective_resistance,
    effective_resistance_matrix,
    foster_sum,
    laplacian_pseudoinverse,
)


class TestPseudoinverse:
    def test_pseudoinverse_identities(self, small_graphs):
        for name, g in small_graphs.items():
            laplacian = g.laplacian()
            pinv = laplacian_pseudoinverse(g)
            assert np.allclose(
                laplacian @ pinv @ laplacian, laplacian, atol=1e-7
            ), name
            # Kernel: the all-ones vector.
            assert np.allclose(pinv @ np.ones(g.n), 0.0, atol=1e-8), name


class TestEffectiveResistance:
    def test_single_edge(self):
        g = graphs.path_graph(2)
        assert effective_resistance(g, 0, 1) == pytest.approx(1.0)

    def test_series_law(self):
        # Path of k unit edges: R(0, k) = k.
        g = graphs.path_graph(5)
        assert effective_resistance(g, 0, 4) == pytest.approx(4.0)

    def test_parallel_law(self):
        # Two parallel unit paths of length 2: R = (2 * 2) / (2 + 2) = 1.
        g = graphs.theta_graph(2, 2, 1)
        # Between the two terminals: 1-edge path in parallel with two
        # 2-edge paths: 1 || 2 || 2 = 1 / (1 + 1/2 + 1/2) = 0.5.
        assert effective_resistance(g, 0, 1) == pytest.approx(0.5)

    def test_complete_graph_closed_form(self):
        # K_n: R(u, v) = 2 / n.
        for n in (3, 5, 8):
            g = graphs.complete_graph(n)
            assert effective_resistance(g, 0, 1) == pytest.approx(2.0 / n)

    def test_weighted_edge(self, weighted_triangle):
        # Triangle weights: (0,1)=1, (1,2)=2, (0,2)=3. R(0,1):
        # direct 1 ohm || series (1/3 + 1/2) ohm -> (1 * 5/6) / (1 + 5/6).
        expected = (1.0 * (5.0 / 6.0)) / (1.0 + 5.0 / 6.0)
        assert effective_resistance(weighted_triangle, 0, 1) == pytest.approx(
            expected
        )

    def test_triangle_inequality(self, small_graphs):
        """Effective resistance is a metric."""
        for name, g in small_graphs.items():
            r = effective_resistance_matrix(g)
            n = g.n
            for u in range(n):
                for v in range(n):
                    for w in range(n):
                        assert r[u, w] <= r[u, v] + r[v, w] + 1e-9, name

    def test_out_of_range(self):
        with pytest.raises(GraphError):
            effective_resistance(graphs.path_graph(3), 0, 5)


class TestCommuteTime:
    def test_matches_hitting_times(self, small_graphs):
        """C(u, v) = H(u, v) + H(v, u) = 2 W R_eff(u, v) [18]."""
        for name, g in small_graphs.items():
            hitting = hitting_time_matrix(g)
            for u, v in [(0, g.n - 1), (0, 1)]:
                if u == v:
                    continue
                expected = hitting[u, v] + hitting[v, u]
                assert commute_time(g, u, v) == pytest.approx(
                    expected, rel=1e-6
                ), name


class TestFoster:
    def test_foster_theorem(self, small_graphs):
        """sum_e w(e) R_eff(e) = n - 1 on every connected graph."""
        for name, g in small_graphs.items():
            assert foster_sum(g) == pytest.approx(g.n - 1, rel=1e-8), name

    def test_foster_weighted(self, weighted_triangle):
        assert foster_sum(weighted_triangle) == pytest.approx(2.0)


class TestLeverageScores:
    def test_marginals_match_enumeration(self, small_graphs):
        """P(e in T) over enumerated trees equals w(e) R_eff(e)."""
        for name, g in small_graphs.items():
            target = uniform_tree_distribution(g)
            leverage = edge_leverage_scores(g)
            for edge, score in leverage.items():
                marginal = sum(
                    p for tree, p in target.items() if edge in tree
                )
                assert marginal == pytest.approx(score, abs=1e-8), (name, edge)

    def test_bridge_has_leverage_one(self):
        g = graphs.path_graph(4)
        for score in edge_leverage_scores(g).values():
            assert score == pytest.approx(1.0)

    def test_scores_in_unit_interval(self, rng):
        g = graphs.erdos_renyi_graph(20, rng=rng)
        for score in edge_leverage_scores(g).values():
            assert 0.0 < score <= 1.0 + 1e-9


class TestCoverBound:
    def test_dominates_empirical(self, rng):
        from repro.graphs import empirical_cover_time

        for g in (graphs.complete_graph(8), graphs.cycle_graph(10)):
            bound = cover_time_resistance_bound(g)
            empirical = empirical_cover_time(g, trials=10, rng=rng)
            assert bound >= empirical * 0.5  # bound is asymptotic; mild slack


class TestSamplerMarginalsAgainstLeverage:
    """The second validation axis: sampler edge frequencies vs closed-form
    leverage scores -- works on graphs too big to enumerate."""

    @pytest.mark.slow
    def test_theorem1_sampler_edge_marginals(self):
        from repro.core import CongestedCliqueTreeSampler, SamplerConfig

        rng = np.random.default_rng(77)
        g = graphs.wheel_graph(8)
        leverage = edge_leverage_scores(g)
        sampler = CongestedCliqueTreeSampler(g, SamplerConfig(ell=1 << 10))
        n_samples = 600
        counts = {edge: 0 for edge in leverage}
        for _ in range(n_samples):
            for edge in sampler.sample_tree(rng):
                counts[edge] += 1
        for edge, score in leverage.items():
            assert counts[edge] / n_samples == pytest.approx(
                score, abs=0.08
            ), edge


@given(n=st.integers(3, 9), seed=st.integers(0, 10**6))
@settings(max_examples=25, deadline=None)
def test_foster_property_random_graphs(n, seed):
    rng = np.random.default_rng(seed)
    g = graphs.erdos_renyi_graph(n, p=0.7, rng=rng)
    assert foster_sum(g) == pytest.approx(n - 1, rel=1e-7)
