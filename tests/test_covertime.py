"""Tests for hitting/cover time machinery."""

from __future__ import annotations

import math

import pytest

from repro import graphs
from repro.errors import GraphError
from repro.graphs import (
    cover_time_bound,
    empirical_cover_time,
    hitting_time_matrix,
    max_hitting_time,
)
from repro.graphs.covertime import nominal_walk_length, worst_case_cover_bound


class TestHittingTimes:
    def test_path2(self):
        h = hitting_time_matrix(graphs.path_graph(2))
        assert h[0, 1] == pytest.approx(1.0)
        assert h[0, 0] == pytest.approx(0.0)

    def test_complete_graph_closed_form(self):
        # K_n: hitting time between distinct vertices is n - 1.
        for n in (3, 5, 8):
            h = hitting_time_matrix(graphs.complete_graph(n))
            assert h[0, 1] == pytest.approx(n - 1)

    def test_cycle_closed_form(self):
        # Cycle C_n: H(u, v) = d (n - d) for distance d.
        n = 8
        h = hitting_time_matrix(graphs.cycle_graph(n))
        assert h[0, 1] == pytest.approx(1 * (n - 1))
        assert h[0, 4] == pytest.approx(4 * (n - 4))

    def test_path_endpoint_quadratic(self):
        # Path P_n: H(0, n-1) = (n-1)^2.
        n = 6
        h = hitting_time_matrix(graphs.path_graph(n))
        assert h[0, n - 1] == pytest.approx((n - 1) ** 2)

    def test_symmetry_on_vertex_transitive(self):
        h = hitting_time_matrix(graphs.cycle_graph(7))
        assert h[0, 3] == pytest.approx(h[3, 0])

    def test_lollipop_hitting_is_cubic_scale(self):
        # The lollipop's clique-to-path-end hitting time grows ~ n^3.
        small = max_hitting_time(graphs.lollipop_graph(8))
        large = max_hitting_time(graphs.lollipop_graph(16))
        assert large / small > 4.0  # much faster than linear growth


class TestCoverTime:
    def test_bound_dominates_max_hitting(self, small_graphs):
        for name, g in small_graphs.items():
            assert cover_time_bound(g) >= max_hitting_time(g) - 1e-9, name

    def test_worst_case_bound(self):
        assert worst_case_cover_bound(10) == pytest.approx(2 * 45 * 9)
        assert worst_case_cover_bound(10, m=10) == pytest.approx(180)

    def test_empirical_within_matthews(self, rng):
        g = graphs.complete_graph(8)
        empirical = empirical_cover_time(g, trials=20, rng=rng)
        # K_8 coupon collector: 7 * H_7 ~ 18.2.
        expected = 7 * sum(1 / k for k in range(1, 8))
        assert 0.5 * expected < empirical < 2.5 * expected

    def test_empirical_single_vertex(self, rng):
        from repro.graphs import WeightedGraph
        import numpy as np

        g = WeightedGraph(np.zeros((1, 1)))
        assert empirical_cover_time(g, rng=rng) == 0.0

    def test_expander_cover_near_nlogn(self, rng):
        g = graphs.random_regular_graph(32, 4, rng=rng)
        empirical = empirical_cover_time(g, trials=8, rng=rng)
        assert empirical < 12 * 32 * math.log(32)


class TestNominalWalkLength:
    def test_is_power_of_two(self):
        for n in (4, 10, 100):
            ell = nominal_walk_length(n, 1e-3)
            assert ell & (ell - 1) == 0

    def test_dominates_n_cubed(self):
        for n in (4, 16, 64):
            assert nominal_walk_length(n, 1e-3) >= n**3

    def test_monotone_in_epsilon(self):
        assert nominal_walk_length(16, 1e-9) >= nominal_walk_length(16, 1e-1)

    def test_invalid_inputs(self):
        with pytest.raises(GraphError):
            nominal_walk_length(0, 0.1)
        with pytest.raises(GraphError):
            nominal_walk_length(4, 0.0)
        with pytest.raises(GraphError):
            nominal_walk_length(4, 1.5)
