"""Tests for the executable Lenzen routing protocol."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clique.lenzen import (
    RoutedMessage,
    lenzen_route,
    route_with_splitting,
)
from repro.clique.routing import lenzen_rounds
from repro.errors import BandwidthError, ModelError


def all_delivered(messages, outcome):
    delivered = [
        (m.src, m.dst, m.payload)
        for inbox in outcome.inboxes.values()
        for m in inbox
    ]
    expected = [(m.src, m.dst, m.payload) for m in messages]
    return sorted(delivered) == sorted(expected)


class TestAdmissibleRouting:
    def test_empty(self):
        outcome = lenzen_route([], 8)
        assert outcome.rounds == 0
        assert outcome.inboxes == {}

    def test_single_message(self):
        messages = [RoutedMessage(0, 3, "x")]
        outcome = lenzen_route(messages, 4)
        assert all_delivered(messages, outcome)
        assert outcome.rounds <= 2

    def test_all_to_all_permutation(self):
        n = 16
        messages = [RoutedMessage(s, (s + 5) % n) for s in range(n)]
        outcome = lenzen_route(messages, n)
        assert all_delivered(messages, outcome)
        assert outcome.rounds <= 3

    def test_full_admissible_load_constant_rounds(self, rng):
        """The theorem's content: n words per machine, O(1) rounds."""
        n = 24
        messages = []
        recv_budget = {d: n for d in range(n)}
        for s in range(n):
            for _ in range(n):
                candidates = [d for d, b in recv_budget.items() if b > 0]
                if not candidates:
                    break
                d = int(rng.choice(candidates))
                recv_budget[d] -= 1
                messages.append(RoutedMessage(s, d))
        outcome = lenzen_route(messages, n)
        assert all_delivered(messages, outcome)
        assert outcome.rounds <= 4  # O(1), independent of the pattern

    def test_skewed_but_admissible(self):
        """One receiver takes its full n-word budget from n senders."""
        n = 16
        messages = [RoutedMessage(s, 0) for s in range(n)]
        outcome = lenzen_route(messages, n)
        assert all_delivered(messages, outcome)
        assert outcome.rounds <= 3

    def test_inadmissible_rejected(self):
        n = 4
        messages = [RoutedMessage(0, 1) for _ in range(n + 1)]
        with pytest.raises(BandwidthError):
            lenzen_route(messages, n)

    def test_bad_machine_rejected(self):
        with pytest.raises(ModelError):
            lenzen_route([RoutedMessage(0, 9)], 4)


class TestSplitting:
    def test_overloaded_sender_splits(self):
        n = 4
        messages = [RoutedMessage(0, i % n) for i in range(3 * n)]
        outcome = route_with_splitting(messages, n)
        assert all_delivered(messages, outcome)
        assert outcome.supersteps == 3

    def test_overloaded_receiver_splits(self):
        n = 4
        messages = [RoutedMessage(i % n, 0) for i in range(2 * n)]
        outcome = route_with_splitting(messages, n)
        assert all_delivered(messages, outcome)
        assert outcome.supersteps == 2

    def test_rounds_match_formula_scale(self):
        """The executable protocol's rounds stay within a small constant
        of the lenzen_rounds accounting formula used everywhere else."""
        n = 8
        messages = [RoutedMessage(0, i % n) for i in range(5 * n)]
        outcome = route_with_splitting(messages, n)
        formula = lenzen_rounds(5 * n, 5, n)
        assert outcome.rounds <= 3 * formula

    def test_empty(self):
        assert route_with_splitting([], 4).rounds == 0


@given(
    n=st.integers(2, 16),
    seed=st.integers(0, 2**31 - 1),
    density=st.floats(0.1, 1.0),
)
@settings(max_examples=40, deadline=None)
def test_routing_properties(n, seed, density):
    """Property: any batch is fully delivered; rounds <= 3 per superstep."""
    rng = np.random.default_rng(seed)
    count = int(density * n * n)
    messages = [
        RoutedMessage(int(rng.integers(0, n)), int(rng.integers(0, n)), i)
        for i in range(count)
    ]
    outcome = route_with_splitting(messages, n)
    assert all_delivered(messages, outcome)
    if outcome.supersteps:
        assert outcome.rounds <= 4 * outcome.supersteps
