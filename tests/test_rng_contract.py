"""The v2 batched-randomness contract: accounting, determinism, hygiene.

The v2 contract replaces per-decision ``rng.choice(p=...)`` calls with
one uniform block per level (and per DP layer) resolved by
``searchsorted`` against precomputed CDFs. Its load-bearing properties:

1. **Stream accounting** -- a v2 draw makes O(levels + DP layers)
   generator invocations, not O(pairs + columns): the whole point of the
   contract. Counted with an instrumented ``Generator`` subclass.
2. **Determinism** -- v2 draws are byte-identical across ensemble
   job counts, cache tiers (cold / warm-memory / warm-disk), linalg
   backends, and plan warmth. The bits consumed depend only on the
   (seed, config numerics) pair, never on how the plan was populated.
3. **Normalize-once** -- plan-served laws are divided (v1) or cumsummed
   (v2) exactly once and memoized; the old per-draw renormalization on
   the hot path is pinned out.
4. **DP-seed persistence** -- the hottest prepared-DP CDF tables ride
   plan.npz to disk, and a restarted process serves its first block
   draws from the seeded memo without rebuilding the DP.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import graphs
from repro.core.config import SamplerConfig
from repro.core.placement_plan import PlacementPlan
from repro.engine.runner import SamplerEngine
from repro.errors import ConfigError


class CountingGenerator(np.random.Generator):
    """A Generator that counts its own invocations (any drawing method)."""

    def __init__(self, seed):
        super().__init__(np.random.PCG64(seed))
        self.calls = 0

    def random(self, *args, **kwargs):
        self.calls += 1
        return super().random(*args, **kwargs)

    def choice(self, *args, **kwargs):
        self.calls += 1
        return super().choice(*args, **kwargs)

    def permutation(self, *args, **kwargs):
        self.calls += 1
        return super().permutation(*args, **kwargs)

    def integers(self, *args, **kwargs):
        self.calls += 1
        return super().integers(*args, **kwargs)


class TestConfigSurface:
    def test_default_is_v2(self):
        assert SamplerConfig().rng_contract == "v2"
        assert SamplerConfig().effective_rng_contract == "v2"

    def test_reference_mode_downgrades_to_v1(self):
        """v2 block draws hang off the PlacementPlan; reference mode has
        no plan, so its effective contract is always v1."""
        config = SamplerConfig(placement_mode="reference", rng_contract="v2")
        assert config.effective_rng_contract == "v1"

    def test_explicit_v1_stays_v1(self):
        config = SamplerConfig(rng_contract="v1")
        assert config.effective_rng_contract == "v1"

    def test_unknown_contract_rejected(self):
        with pytest.raises(ConfigError, match="rng contract"):
            SamplerConfig(rng_contract="v3")

    def test_contract_excluded_from_numerics_fingerprint(self):
        """v1 and v2 sessions share numerics cache entries: the contract
        changes which bits the walk layer consumes, never the derived
        graphs (same exclusion set as placement_mode)."""
        from repro.engine.cache import NON_NUMERICS_FIELDS, config_fingerprint

        assert "rng_contract" in NON_NUMERICS_FIELDS
        v1 = config_fingerprint(
            SamplerConfig(rng_contract="v1"),
            resolved_ell=1 << 8,
            linalg_backend="dense",
        )
        v2 = config_fingerprint(
            SamplerConfig(rng_contract="v2"),
            resolved_ell=1 << 8,
            linalg_backend="dense",
        )
        assert v1 == v2


class TestStreamAccounting:
    """v2 invocation counts scale with levels, not pairs or columns."""

    def _count(self, contract: str) -> tuple[int, int]:
        graph = graphs.complete_graph(16)
        config = SamplerConfig(ell=1 << 8, rng_contract=contract)
        engine = SamplerEngine(graph, config)
        engine.run(np.random.default_rng(0))  # warm the plan first
        rng = CountingGenerator(1)
        result = engine.run(rng)
        return rng.calls, result.phases

    def test_v2_is_block_scaled_v1_is_decision_scaled(self):
        v1_calls, __ = self._count("v1")
        v2_calls, phases = self._count("v2")
        # Structural ceiling: per phase, the v2 walk layer draws one
        # block per level for the midpoint bank, at most three blocks
        # per level for placement (DP table + expansion + multiset
        # shuffle), one end-vertex uniform, and one first-visit block
        # (measured 87 calls against a 240 ceiling at these sizes).
        levels = int(math.log2(1 << 8)) + 2
        assert v2_calls <= phases * (4 * levels + 8)
        # ...and the old contract pays per decision: the gap is the
        # speedup's source, so pin it wide (measured ~4.5x here).
        assert 3 * v2_calls < v1_calls

    def test_v2_counts_stable_across_warm_draws(self):
        """Plan warmth changes invocation counts by nothing at all."""
        graph = graphs.complete_graph(16)
        engine = SamplerEngine(
            graph, SamplerConfig(ell=1 << 8, rng_contract="v2")
        )
        counts = []
        for seed in range(3):
            rng = CountingGenerator(seed)
            engine.run(rng)
            counts.append(rng.calls)
        # Trajectories differ, so totals may wobble by the per-phase
        # constants -- but never by a per-pair/per-column factor.
        assert max(counts) - min(counts) <= 4 * len(counts) * 16


class TestV2Determinism:
    """Same seed => same bytes, whatever produced the numerics."""

    def test_identical_across_jobs(self, tmp_path):
        from repro.api import EnsembleRequest, Session, preset_config

        graph = graphs.complete_graph(16)
        config = preset_config(
            "fast-bench", ell=1 << 8, cache_dir=str(tmp_path)
        )
        assert config.effective_rng_contract == "v2"
        parallel = Session(graph, config, seed=0).run(
            EnsembleRequest(count=4, seed=5, jobs=2)
        )
        serial = Session(graph, config, seed=0).run(
            EnsembleRequest(count=4, seed=5, jobs=1)
        )
        assert parallel.result.trees == serial.result.trees
        assert [r.rounds for r in parallel.result.results] == [
            r.rounds for r in serial.result.results
        ]

    def test_identical_across_cache_tiers(self, tmp_path):
        from repro.api import EnsembleRequest, Session, preset_config

        graph = graphs.complete_graph(16)
        tiered = preset_config(
            "fast-bench", ell=1 << 8, cache_dir=str(tmp_path)
        )
        cacheless = preset_config("fast-bench", ell=1 << 8, cache_dir=None)
        request = EnsembleRequest(count=3, seed=5, jobs=1)
        cold = Session(graph, tiered, seed=0).run(request)
        warm_disk = Session(graph, tiered, seed=0).run(request)
        no_cache = Session(graph, cacheless, seed=0).run(request)
        assert cold.result.trees == warm_disk.result.trees
        assert cold.result.trees == no_cache.result.trees
        assert [r.rounds for r in cold.result.results] == [
            r.rounds for r in warm_disk.result.results
        ]

    @pytest.mark.parametrize("family", ["cycle", "complete", "gnp"])
    def test_identical_across_linalg_backends(self, family):
        from repro.graphs.families import build_family

        graph, __ = build_family(family, 20, np.random.default_rng(5))
        trees = {}
        for backend in ("dense", "sparse"):
            config = SamplerConfig(
                ell=1 << 8, rng_contract="v2", linalg_backend=backend
            )
            engine = SamplerEngine(graph, config)
            rng = np.random.default_rng(11)
            results = [engine.run(rng) for __ in range(3)]
            trees[backend] = [r.tree for r in results]
            if backend == "dense":
                rounds = [r.rounds for r in results]
            else:
                assert [r.rounds for r in results] == rounds
        assert trees["dense"] == trees["sparse"]


class TestNormalizeOnce:
    """Plan laws normalize (v1) or cumsum (v2) exactly once, ever."""

    @staticmethod
    def _half(n=6, seed=3):
        return np.random.default_rng(seed).uniform(0.01, 1.0, size=(n, n))

    def test_probabilities_memoized(self):
        plan = PlacementPlan()
        half = self._half()
        first, total1 = plan.probabilities(3, 0, 1, half)
        second, total2 = plan.probabilities(3, 0, 1, half)
        assert second is first  # the divide ran exactly once
        assert total1 == total2
        law, total = plan.law(3, 0, 1, half)
        np.testing.assert_array_equal(first, law / total)

    def test_cdf_memoized_and_unnormalized(self):
        plan = PlacementPlan()
        half = self._half()
        first, total = plan.cdf(3, 0, 1, half)
        second, __ = plan.cdf(3, 0, 1, half)
        assert second is first  # the cumsum ran exactly once
        law, law_total = plan.law(3, 0, 1, half)
        np.testing.assert_array_equal(first, np.cumsum(law))
        assert total == law_total  # the Section 5.2 floor sees v1's float

    def test_derived_memos_evict_with_their_law(self):
        plan = PlacementPlan(max_laws=1)
        half = self._half()
        plan.probabilities(1, 0, 1, half)
        plan.cdf(1, 0, 1, half)
        plan.law(1, 0, 2, half)  # evicts (1, 0, 1)
        assert (1, 0, 1) not in plan._probabilities
        assert (1, 0, 1) not in plan._cdfs

    def test_sample_midpoint_shares_one_normalization(self):
        """The fill hot path (sampler draw after draw over one plan)
        reuses the single cached normalized vector -- the per-draw
        renormalization regression this pins out."""
        from repro.walks.fill import sample_midpoint

        plan = PlacementPlan()
        half = self._half()
        rng = np.random.default_rng(0)
        sample_midpoint(half, 0, 1, rng, count=3, plan=plan, level=2)
        cached = plan._probabilities[(2, 0, 1)]
        sample_midpoint(half, 0, 1, rng, count=3, plan=plan, level=2)
        assert plan._probabilities[(2, 0, 1)] is cached
        assert plan.law_hits >= 1

    def test_unnormalized_input_normalizes_exactly_once(self):
        """An unnormalized law (sum far from 1) yields correctly scaled
        probabilities from the memo -- not a double divide, not none."""
        plan = PlacementPlan()
        half = self._half() * 37.0  # wildly unnormalized
        probabilities, total = plan.probabilities(2, 1, 4, half)
        assert abs(probabilities.sum() - 1.0) < 1e-12
        again, __ = plan.probabilities(2, 1, 4, half)
        assert again is probabilities
        assert abs(again.sum() - 1.0) < 1e-12  # a second divide would shrink it


class TestDpSeedPersistence:
    """Prepared-DP CDF tables ride plan.npz across process restarts."""

    def _sessions(self, tmp_path):
        from repro.api import EnsembleRequest, Session, preset_config

        graph = graphs.complete_graph(24)
        config = preset_config(
            "fast-bench", ell=1 << 8, cache_dir=str(tmp_path)
        )
        request = EnsembleRequest(count=2, seed=5, jobs=1)
        return graph, config, request, Session

    def test_plan_blob_carries_dp_seeds(self, tmp_path):
        from repro.engine.store import PLAN_BLOB

        graph, config, request, Session = self._sessions(tmp_path)
        Session(graph, config, seed=0).run(request)
        seeded = 0
        for blob in tmp_path.glob(f"blobs/*/{PLAN_BLOB}"):
            with np.load(blob) as arrays:
                keys = list(arrays.keys())
            namespaces = {k.split("/", 1)[0] for k in keys if "/" in k}
            if "dpk" in namespaces:
                # A complete record: keys, counts, allocations, cdfs.
                assert {"dpk", "dpc", "dpa", "dpf"} <= namespaces
                seeded += 1
        assert seeded > 0, "the hot phase-1 entry must spill DP seeds"

    def test_warm_restart_serves_first_draw_from_seed(self, tmp_path):
        from repro.engine.store import PLAN_BLOB

        graph, config, request, Session = self._sessions(tmp_path)
        cold = Session(graph, config, seed=0).run(request)

        # The spilled blobs restore their seeds through from_arrays (the
        # vectorized-DP phases export; trivially small phases don't).
        seeded_blobs = 0
        for blob in tmp_path.glob(f"blobs/*/{PLAN_BLOB}"):
            with np.load(blob) as arrays:
                if not any(k.startswith("dpk/") for k in arrays.keys()):
                    continue
                plan = PlacementPlan.from_arrays(
                    {k: np.asarray(v) for k, v in arrays.items()}
                )
            assert plan._dp_seeds, "a dpk-bearing blob must restore seeds"
            seeded_blobs += 1
        assert seeded_blobs > 0

        warm = Session(graph, config, seed=0)
        second = warm.run(request)
        assert second.result.trees == cold.result.trees
        # At least one evaluator in the warm run was restored from its
        # seeded CDF memo and served every draw without running the
        # forward/backward build (the first-draw-after-restart floor
        # this removes).
        restored = [
            prepared
            for entry in warm._cache.memory._entries.values()
            if entry.plan is not None
            for prepared in entry.plan._dps.values()
            if getattr(prepared, "_built", True) is False
        ]
        assert restored
        assert all(prepared._cdf_memo for prepared in restored)

    def test_seeded_draws_match_built_draws(self, tmp_path):
        """Restored-from-seed evaluators draw byte-identical tables to
        freshly built ones -- restart warmth never changes outputs."""
        graph, config, request, Session = self._sessions(tmp_path)
        cold = Session(graph, config, seed=0).run(request)
        warm = Session(graph, config, seed=0).run(request)
        assert warm.result.trees == cold.result.trees
        assert [r.rounds for r in warm.result.results] == [
            r.rounds for r in cold.result.results
        ]
