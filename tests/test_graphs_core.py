"""Unit tests for repro.graphs.core.WeightedGraph."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import graphs
from repro.errors import DisconnectedGraphError, GraphError, WeightError
from repro.graphs import WeightedGraph


class TestConstruction:
    def test_from_edges_basic(self):
        g = WeightedGraph.from_edges(3, [(0, 1), (1, 2)])
        assert g.n == 3
        assert g.m == 2
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)
        assert not g.has_edge(0, 2)

    def test_from_edges_weighted(self):
        g = WeightedGraph.from_edges(2, [(0, 1, 2.5)])
        assert g.weight(0, 1) == pytest.approx(2.5)

    def test_duplicate_edges_accumulate(self):
        g = WeightedGraph.from_edges(2, [(0, 1), (0, 1)])
        assert g.weight(0, 1) == pytest.approx(2.0)

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(GraphError):
            WeightedGraph.from_edges(2, [(0, 2)])

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            WeightedGraph.from_edges(2, [(1, 1)])

    def test_non_positive_weight_rejected(self):
        with pytest.raises(WeightError):
            WeightedGraph.from_edges(2, [(0, 1, 0.0)])
        with pytest.raises(WeightError):
            WeightedGraph.from_edges(2, [(0, 1, -1.0)])

    def test_asymmetric_matrix_rejected(self):
        w = np.zeros((2, 2))
        w[0, 1] = 1.0
        with pytest.raises(GraphError):
            WeightedGraph(w)

    def test_nonzero_diagonal_rejected(self):
        w = np.eye(3)
        with pytest.raises(GraphError):
            WeightedGraph(w)

    def test_nan_weight_rejected(self):
        w = np.zeros((2, 2))
        w[0, 1] = w[1, 0] = np.nan
        with pytest.raises(WeightError):
            WeightedGraph(w)

    def test_nonsquare_rejected(self):
        with pytest.raises(GraphError):
            WeightedGraph(np.zeros((2, 3)))

    def test_weights_frozen(self):
        g = WeightedGraph.from_edges(2, [(0, 1)])
        with pytest.raises(ValueError):
            g.weights[0, 1] = 5.0


class TestNetworkxRoundTrip:
    def test_round_trip_preserves_structure(self):
        g = graphs.cycle_with_chord(6)
        back = WeightedGraph.from_networkx(g.to_networkx())
        assert back == g

    def test_round_trip_preserves_weights(self, weighted_triangle):
        back = WeightedGraph.from_networkx(weighted_triangle.to_networkx())
        assert back.weight(1, 2) == pytest.approx(2.0)
        assert back.weight(0, 2) == pytest.approx(3.0)


class TestDerivedMatrices:
    def test_transition_rows_sum_to_one(self, small_graphs):
        for name, g in small_graphs.items():
            rows = g.transition_matrix().sum(axis=1)
            assert np.allclose(rows, 1.0), name

    def test_transition_uniform_on_unweighted(self):
        g = graphs.star_graph(5)
        p = g.transition_matrix()
        assert p[0, 1] == pytest.approx(1.0 / 4.0)
        assert p[1, 0] == pytest.approx(1.0)

    def test_transition_weighted_proportional(self, weighted_triangle):
        p = weighted_triangle.transition_matrix()
        # Vertex 0 has edges weight 1 (to 1) and 3 (to 2).
        assert p[0, 1] == pytest.approx(1.0 / 4.0)
        assert p[0, 2] == pytest.approx(3.0 / 4.0)

    def test_laplacian_rows_sum_to_zero(self, small_graphs):
        for name, g in small_graphs.items():
            assert np.allclose(g.laplacian().sum(axis=1), 0.0), name

    def test_laplacian_psd(self, small_graphs):
        for name, g in small_graphs.items():
            eigenvalues = np.linalg.eigvalsh(g.laplacian())
            assert eigenvalues.min() > -1e-9, name

    def test_degrees_match_weights(self, weighted_triangle):
        assert weighted_triangle.degree(0) == pytest.approx(4.0)
        assert weighted_triangle.unweighted_degree(0) == 2


class TestStructure:
    def test_connected_families(self, small_graphs):
        for name, g in small_graphs.items():
            assert g.is_connected(), name

    def test_disconnected_detected(self):
        g = WeightedGraph.from_edges(4, [(0, 1), (2, 3)])
        assert not g.is_connected()
        with pytest.raises(DisconnectedGraphError):
            g.require_connected()

    def test_empty_and_singleton_connected(self):
        assert WeightedGraph(np.zeros((1, 1))).is_connected()

    def test_neighbors_sorted(self):
        g = graphs.wheel_graph(6)
        assert list(g.neighbors(0)) == [1, 2, 3, 4, 5]

    def test_edges_canonical_order(self):
        g = graphs.path_graph(4)
        assert g.edges() == ((0, 1), (1, 2), (2, 3))

    def test_is_unweighted(self, weighted_triangle):
        assert graphs.path_graph(3).is_unweighted()
        assert not weighted_triangle.is_unweighted()

    def test_integer_weight_validation(self, weighted_triangle):
        weighted_triangle.validate_integer_weights()
        with pytest.raises(WeightError):
            weighted_triangle.validate_integer_weights(max_weight=2)
        frac = WeightedGraph.from_edges(2, [(0, 1, 0.5)])
        with pytest.raises(WeightError):
            frac.validate_integer_weights()

    def test_subgraph_relabeling(self):
        g = graphs.cycle_graph(5)
        sub = g.subgraph([1, 2, 3])
        assert sub.n == 3
        assert sub.has_edge(0, 1) and sub.has_edge(1, 2)
        assert not sub.has_edge(0, 2)

    def test_equality_and_hash(self):
        a = graphs.path_graph(4)
        b = graphs.path_graph(4)
        assert a == b
        assert hash(a) == hash(b)
        assert a != graphs.cycle_graph(4)


@given(n=st.integers(2, 12), seed=st.integers(0, 2**31 - 1))
@settings(max_examples=25, deadline=None)
def test_random_graph_transition_stochastic(n, seed):
    """Property: any generated graph has a row-stochastic walk matrix."""
    rng = np.random.default_rng(seed)
    g = graphs.erdos_renyi_graph(n, p=0.7, rng=rng)
    p = g.transition_matrix()
    assert np.allclose(p.sum(axis=1), 1.0)
    assert np.all(p >= 0)


@given(n=st.integers(3, 10))
@settings(max_examples=20, deadline=None)
def test_cycle_laplacian_eigen_structure(n):
    """Property: cycle Laplacian has one zero eigenvalue (connectivity)."""
    g = graphs.cycle_graph(n)
    eigenvalues = np.sort(np.linalg.eigvalsh(g.laplacian()))
    assert abs(eigenvalues[0]) < 1e-9
    assert eigenvalues[1] > 1e-9
