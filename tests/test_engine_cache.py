"""Tests for the cross-sample derived-graph cache (engine layer 2).

The load-bearing property: the cache may only change wall-clock, never
outputs or round bills. Same-seed runs with and without the cache must
produce byte-identical trees and identical round charges, for both
sampler variants and both matmul backends.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import graphs
from repro.core import CongestedCliqueTreeSampler, SamplerConfig
from repro.engine import DerivedGraphCache, SamplerEngine
from repro.errors import ConfigError


class Sized:
    """Byte-sized stub entry for exercising the cache's byte accounting."""

    def __init__(self, size):
        self._size = size

    def nbytes(self):
        return self._size


def _draws(graph, config, variant, seed, count=4):
    sampler = CongestedCliqueTreeSampler(graph, config, variant=variant)
    return sampler.sample_many(count, np.random.default_rng(seed))


class TestCacheTransparency:
    @pytest.mark.parametrize("variant", ["approximate", "exact"])
    def test_same_trees_and_rounds_with_and_without_cache(self, variant):
        g = graphs.erdos_renyi_graph(20, rng=np.random.default_rng(7))
        cached = _draws(g, SamplerConfig(ell=1 << 10), variant, seed=5)
        uncached = _draws(
            g, SamplerConfig(ell=1 << 10, derived_cache=False), variant, seed=5
        )
        assert [r.tree for r in cached] == [r.tree for r in uncached]
        assert [r.rounds for r in cached] == [r.rounds for r in uncached]
        assert [r.rounds_by_category() for r in cached] == [
            r.rounds_by_category() for r in uncached
        ]

    @pytest.mark.parametrize("variant", ["approximate", "exact"])
    def test_transparency_with_simulated_backend(self, variant):
        """Measured (3D protocol) charges replay exactly on cache hits."""
        g = graphs.cycle_with_chord(12)
        base = dict(ell=1 << 9, matmul_backend="simulated-3d")
        cached = _draws(g, SamplerConfig(**base), variant, seed=3)
        uncached = _draws(
            g, SamplerConfig(**base, derived_cache=False), variant, seed=3
        )
        assert [r.tree for r in cached] == [r.tree for r in uncached]
        assert [r.rounds_by_category() for r in cached] == [
            r.rounds_by_category() for r in uncached
        ]

    def test_transparency_with_precision_bits(self):
        """Lemma 7 entry widths survive the replay charge recipe."""
        g = graphs.complete_graph(10)
        cached = _draws(
            g, SamplerConfig(ell=1 << 9, precision_bits=48), "approximate", 1
        )
        uncached = _draws(
            g,
            SamplerConfig(
                ell=1 << 9, precision_bits=48, derived_cache=False
            ),
            "approximate",
            1,
        )
        assert [r.tree for r in cached] == [r.tree for r in uncached]
        assert [r.rounds for r in cached] == [r.rounds for r in uncached]


class TestCacheBehavior:
    def test_phase_one_hits_across_draws(self):
        g = graphs.complete_graph(12)
        sampler = CongestedCliqueTreeSampler(g, SamplerConfig(ell=1 << 9))
        sampler.sample_many(5, np.random.default_rng(0))
        stats = sampler.engine.cache.stats()
        # Phase 1 runs on S = V every draw: at least draws-1 hits.
        assert stats["hits"] >= 4
        assert stats["misses"] >= 1

    def test_disabled_cache_is_none(self):
        g = graphs.path_graph(5)
        engine = SamplerEngine(g, SamplerConfig(ell=1 << 9, derived_cache=False))
        assert engine.cache is None
        engine.run(np.random.default_rng(0))  # still samples fine

    def test_external_cache_shared_between_engines(self):
        g = graphs.complete_graph(9)
        cache = DerivedGraphCache(max_entries=32)
        config = SamplerConfig(ell=1 << 9)
        a = SamplerEngine(g, config, cache=cache)
        b = SamplerEngine(g, config, cache=cache)
        a.run(np.random.default_rng(1))
        misses_after_a = cache.misses
        b.run(np.random.default_rng(2))
        # Engine b's phase 1 reuses engine a's entry.
        assert cache.hits >= 1
        assert cache.misses >= misses_after_a

    def test_shared_cache_isolates_different_graphs(self):
        """A shared cache must never serve another graph's numerics."""
        cache = DerivedGraphCache(max_entries=32)
        config = SamplerConfig(ell=1 << 9)
        g_a = graphs.complete_graph(9)
        g_b = graphs.wheel_graph(9)
        a = SamplerEngine(g_a, config, cache=cache)
        b = SamplerEngine(g_b, config, cache=cache)
        result_a = a.run(np.random.default_rng(1))
        hits_after_a = cache.hits
        result_b = b.run(np.random.default_rng(1))
        # Same n, same subsets -- but b must miss a's entries entirely.
        assert cache.hits == hits_after_a
        from repro.graphs import is_spanning_tree

        assert is_spanning_tree(g_a, result_a.tree)
        assert is_spanning_tree(g_b, result_b.tree)

    def test_shared_cache_isolates_different_configs(self):
        """Numerics-relevant config changes partition the shared cache."""
        cache = DerivedGraphCache(max_entries=32)
        g = graphs.complete_graph(9)
        a = SamplerEngine(g, SamplerConfig(ell=1 << 9), cache=cache)
        b = SamplerEngine(g, SamplerConfig(ell=1 << 10), cache=cache)
        a.run(np.random.default_rng(1))
        hits_after_a = cache.hits
        b.run(np.random.default_rng(1))
        assert cache.hits == hits_after_a  # different ell => no sharing

    @pytest.mark.parametrize(
        "override",
        [
            {"precision_bits": 48},
            {"normalizer_floor_exponent": 20.0},
            {"linalg_backend": "sparse"},
            {"extra": {"experiment": "A"}},
        ],
    )
    def test_fingerprint_covers_every_config_field(self, override):
        """Regression: the key is a *complete* config fingerprint.

        The old key hashed a hand-picked field list, so two sessions
        sharing a cache with configs differing in an unlisted
        numerics-affecting knob (precision/truncation, the linalg
        backend, user extras) exchanged stale PhaseNumerics. Any field
        difference must now partition the cache.
        """
        cache = DerivedGraphCache(max_entries=32)
        g = graphs.cycle_graph(9)
        base = SamplerEngine(g, SamplerConfig(ell=1 << 9), cache=cache)
        other = SamplerEngine(
            g, SamplerConfig(ell=1 << 9, **override), cache=cache
        )
        base.run(np.random.default_rng(1))
        hits_before = cache.hits
        other.run(np.random.default_rng(1))
        assert cache.hits == hits_before, override

    def test_identical_configs_still_share(self):
        """The complete fingerprint must not break legitimate sharing."""
        cache = DerivedGraphCache(max_entries=32)
        g = graphs.cycle_graph(9)
        config = SamplerConfig(ell=1 << 9, extra={"experiment": "A"})
        a = SamplerEngine(g, config, cache=cache)
        b = SamplerEngine(
            g, SamplerConfig(ell=1 << 9, extra={"experiment": "A"}),
            cache=cache,
        )
        a.run(np.random.default_rng(1))
        b.run(np.random.default_rng(2))
        assert cache.hits >= 1  # b reuses a's phase-1 entry

    @pytest.mark.parametrize(
        "override",
        [
            {"cache_dir": "ignored-dir"},
            {"cache_memory_bytes": 1 << 20},
            {"derived_cache_entries": 7},
        ],
    )
    def test_cache_behavior_fields_do_not_partition(self, override, tmp_path):
        """Regression: cache location/sizing must NOT partition the key.

        Two sessions pointed at one shared store with different byte
        budgets (or different cache_dir spellings) compute identical
        numerics; keying on those fields would make them unable to share
        a single entry -- defeating the disk tier entirely.
        """
        if "cache_dir" in override:
            override = {"cache_dir": str(tmp_path)}
        cache = DerivedGraphCache(max_entries=32)
        g = graphs.cycle_graph(9)
        base = SamplerEngine(g, SamplerConfig(ell=1 << 9), cache=cache)
        other = SamplerEngine(
            g, SamplerConfig(ell=1 << 9, **override), cache=cache
        )
        base.run(np.random.default_rng(1))
        hits_before = cache.hits
        other.run(np.random.default_rng(2))
        assert cache.hits > hits_before, override  # phase-1 entry shared

    def test_fingerprint_excludes_exactly_the_non_numerics_fields(self):
        """Every config field is either fingerprinted or non-numerics.

        The exclusion set is cache sizing/location knobs plus
        placement_mode -- the walk-layer execution mode reads phase
        numerics but never changes their bytes (and the modes draw
        byte-identical trees), so batched and reference sessions must
        share one cache entry per subset.
        """
        from dataclasses import fields

        from repro.engine.cache import NON_NUMERICS_FIELDS, config_fingerprint

        config = SamplerConfig(ell=1 << 9)
        fingerprint = config_fingerprint(
            config, resolved_ell=1 << 9, linalg_backend="dense"
        )
        for field in fields(config):
            appears = f"'{field.name}'" in fingerprint
            if field.name in NON_NUMERICS_FIELDS:
                assert not appears, field.name
            else:
                assert appears, field.name

    def test_placement_mode_shares_cache_entries(self):
        """Flipping placement_mode may not partition a shared cache."""
        from repro.engine.cache import config_fingerprint

        batched = SamplerConfig(ell=1 << 9)
        reference = SamplerConfig(ell=1 << 9, placement_mode="reference")
        assert config_fingerprint(
            batched, resolved_ell=1 << 9, linalg_backend="dense"
        ) == config_fingerprint(
            reference, resolved_ell=1 << 9, linalg_backend="dense"
        )

    def test_byte_budget_evicts_lru(self):
        cache = DerivedGraphCache(max_entries=64, max_bytes=100)
        cache.store(("a",), Sized(40))
        cache.store(("b",), Sized(40))
        assert cache.bytes_used == 80
        cache.lookup(("a",))  # refresh a: b becomes LRU
        cache.store(("c",), Sized(40))
        assert cache.evictions == 1
        assert cache.lookup(("b",)) is None
        assert cache.lookup(("a",)) is not None
        assert cache.lookup(("c",)) is not None
        assert cache.bytes_used == 80
        assert cache.stats()["bytes"] == 80

    def test_oversized_entry_cannot_blow_past_budget(self):
        """One entry bigger than the whole budget never stays resident --
        and is refused at the door, so it cannot flush the resident
        working set on its way through either."""

        cache = DerivedGraphCache(max_entries=64, max_bytes=100)
        cache.store(("small",), Sized(60))
        cache.store(("huge",), Sized(1000))
        assert cache.bytes_used <= 100
        assert cache.lookup(("huge",)) is None
        assert cache.lookup(("small",)) is not None  # working set intact
        assert cache.evictions == 1
        # Re-storing an existing key with an oversized payload drops it.
        cache.store(("small",), Sized(1000))
        assert cache.lookup(("small",)) is None
        assert cache.bytes_used == 0

    def test_restore_same_key_reaccounts_bytes(self):
        cache = DerivedGraphCache(max_bytes=1000)
        cache.store(("k",), Sized(400))
        cache.store(("k",), Sized(100))
        assert cache.bytes_used == 100
        assert len(cache) == 1

    def test_phase_numerics_nbytes_counts_matrices_once(self):
        g = graphs.complete_graph(8)
        engine = SamplerEngine(g, SamplerConfig(ell=1 << 8))
        engine.run(np.random.default_rng(0))
        for numerics in engine.cache._entries.values():
            total = numerics.nbytes()
            assert total > 0
            # With bits=None the ladder's base power IS the transition
            # matrix; identity dedup must not double-count it.
            if numerics.ladder.power(1) is numerics.transition:
                from repro.linalg.backend import matrix_nbytes

                individual = matrix_nbytes(numerics.shortcut) + sum(
                    matrix_nbytes(numerics.ladder.power(k))
                    for k in numerics.ladder.exponents
                ) + matrix_nbytes(numerics.transition)
                # An attached placement plan (batched mode) is charged to
                # the entry too -- it lives and dies with it.
                plan_bytes = (
                    0 if numerics.plan is None else numerics.plan.nbytes()
                )
                assert total == (
                    individual - matrix_nbytes(numerics.transition)
                    + plan_bytes
                )

    def test_lru_eviction_bounds_entries(self):
        cache = DerivedGraphCache(max_entries=2)
        for key in [(1,), (2,), (3,)]:
            cache.store(key, object())
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.lookup((1,)) is None  # evicted (oldest)
        assert cache.lookup((3,)) is not None

    def test_clear_and_stats(self):
        cache = DerivedGraphCache()
        cache.store((0, 1), object())
        assert cache.stats()["entries"] == 1
        cache.clear()
        assert len(cache) == 0
        assert cache.lookup((0, 1)) is None

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ConfigError):
            DerivedGraphCache(max_entries=0)
        with pytest.raises(ConfigError):
            SamplerConfig(derived_cache_entries=0)
