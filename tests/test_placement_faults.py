"""Fault injection for the placement layer and its fallback boundaries.

Covers the failure surfaces the batched rewrite must preserve:

- zero-weight columns and infeasible (zero-permanent) instances raise
  ``MatchingError`` from every DP implementation and from prepared
  builds;
- degenerate single-class instances take the closed-form path (no
  randomness) and still reject infeasible weights;
- the ``_DP_STATE_BUDGET`` guard falls back to the Appendix 5.3
  per-pair-multiset placement -- same law, tested end to end in both
  placement modes (previously untested);
- the int64 mixed-radix overflow guard in the vectorized DP falls back
  to the reference recursion (previously untested);
- the Section 5.2 precision floor still aborts into the brute-force
  sequential fill identically in both modes (exercising the plan-aware
  ``_fill_level`` path).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import graphs
from repro.core.config import SamplerConfig
from repro.engine.runner import SamplerEngine
from repro.errors import MatchingError
from repro.graphs.spanning import is_spanning_tree
from repro.matching.sampler import (
    ClassifiedBipartite,
    _PreparedReference,
    _trivial_table,
    prepare_contingency_dp,
    sample_contingency_table,
)

from statutil import assert_matches_tree_law, draw_trees

ALL_IMPLEMENTATIONS = ["auto", "vectorized", "reference"]


class TestInfeasibleInstances:
    def _zero_column_instance(self) -> ClassifiedBipartite:
        """Column class 'b' has zero weight to every row class."""
        return ClassifiedBipartite(
            row_labels=(0, 1),
            row_counts=(2, 2),
            col_labels=("a", "b"),
            col_counts=(2, 2),
            class_weights=np.array([[1.0, 0.0], [0.5, 0.0]]),
        )

    def _zero_permanent_instance(self) -> ClassifiedBipartite:
        """Feasibility needs row 0 in both columns, but it has only one
        unit of multiplicity for column b's two positions."""
        return ClassifiedBipartite(
            row_labels=(0, 1),
            row_counts=(1, 3),
            col_labels=("a", "b"),
            col_counts=(2, 2),
            class_weights=np.array([[1.0, 1.0], [1.0, 0.0]]),
        )

    @pytest.mark.parametrize("implementation", ALL_IMPLEMENTATIONS)
    def test_zero_weight_column_raises(self, implementation):
        with pytest.raises(MatchingError, match="permanent is zero"):
            sample_contingency_table(
                self._zero_column_instance(),
                np.random.default_rng(0),
                implementation=implementation,
            )

    @pytest.mark.parametrize("implementation", ALL_IMPLEMENTATIONS)
    def test_zero_weight_column_raises_at_prepare_time(self, implementation):
        with pytest.raises(MatchingError, match="permanent is zero"):
            prepare_contingency_dp(
                self._zero_column_instance(), implementation=implementation
            )

    @pytest.mark.parametrize("implementation", ALL_IMPLEMENTATIONS)
    def test_zero_permanent_raises(self, implementation):
        with pytest.raises(MatchingError, match="permanent is zero"):
            sample_contingency_table(
                self._zero_permanent_instance(),
                np.random.default_rng(0),
                implementation=implementation,
            )

    def test_negative_weights_rejected_by_instance(self):
        with pytest.raises(MatchingError, match="non-negative"):
            ClassifiedBipartite(
                row_labels=(0,),
                row_counts=(1,),
                col_labels=("a",),
                col_counts=(1,),
                class_weights=np.array([[-1.0]]),
            )


class TestDegenerateSingleClassInstances:
    def test_single_column_class_is_forced(self):
        instance = ClassifiedBipartite(
            row_labels=(0, 1, 2),
            row_counts=(2, 1, 4),
            col_labels=("only",),
            col_counts=(7,),
            class_weights=np.array([[1.0], [0.5], [2.0]]),
        )
        table = sample_contingency_table(instance, np.random.default_rng(0))
        assert table.tolist() == [[2], [1], [4]]
        prepared = prepare_contingency_dp(instance)
        assert not prepared.consumes_rng
        assert prepared.sample().tolist() == [[2], [1], [4]]

    def test_single_row_class_is_forced(self):
        instance = ClassifiedBipartite(
            row_labels=(9,),
            row_counts=(5,),
            col_labels=("a", "b", "c"),
            col_counts=(2, 2, 1),
            class_weights=np.array([[1.0, 2.0, 3.0]]),
        )
        table = sample_contingency_table(instance, np.random.default_rng(0))
        assert table.tolist() == [[2, 2, 1]]

    def test_single_class_zero_weight_still_rejected(self):
        instance = ClassifiedBipartite(
            row_labels=(0, 1),
            row_counts=(1, 1),
            col_labels=("only",),
            col_counts=(2,),
            class_weights=np.array([[1.0], [0.0]]),
        )
        with pytest.raises(MatchingError, match="permanent is zero"):
            _trivial_table(instance)
        with pytest.raises(MatchingError, match="permanent is zero"):
            sample_contingency_table(instance, np.random.default_rng(0))

    @pytest.mark.parametrize("mode", ["batched", "reference"])
    def test_degenerate_single_pair_phase_end_to_end(self, mode):
        """A 2-path's phases put every midpoint position in one pair
        class -- the trivial-table path end to end, in both modes."""
        graph = graphs.path_graph(2)
        engine = SamplerEngine(
            graph, SamplerConfig(ell=1 << 4, placement_mode=mode)
        )
        result = engine.run(np.random.default_rng(0))
        assert is_spanning_tree(graph, result.tree)


class TestStateBudgetFallback:
    def test_cost_estimate_overflow_saturates(self):
        from collections import Counter

        from repro.core.placement import _dp_cost_estimate

        huge = Counter({v: 10**6 for v in range(20)})
        estimate = _dp_cost_estimate(huge, [1, 3, 5])
        assert estimate > 1e18  # saturated, not overflowed

    @pytest.mark.parametrize("mode", ["batched", "reference"])
    def test_budget_fallback_draws_valid_trees(self, mode, monkeypatch):
        """With the budget forced to 1 every placement takes the
        Appendix 5.3 per-pair path; trees stay valid and both modes
        agree (the fallback sits before any plan involvement)."""
        import repro.core.placement as placement

        monkeypatch.setattr(placement, "_DP_STATE_BUDGET", 1)
        graph = graphs.complete_graph(8)
        engine = SamplerEngine(
            graph, SamplerConfig(ell=1 << 6, placement_mode=mode)
        )
        rng = np.random.default_rng(5)
        trees = [engine.run(rng).tree for __ in range(4)]
        for tree in trees:
            assert is_spanning_tree(graph, tree)

    def test_budget_fallback_preserves_the_tree_law(self, monkeypatch):
        """The fallback resamples the same conditional law exactly: the
        chi-square harness cannot tell it from the DP path."""
        import repro.core.placement as placement

        monkeypatch.setattr(placement, "_DP_STATE_BUDGET", 1)
        graph = graphs.complete_graph(4)
        trees = draw_trees(
            graph, 1200, config=SamplerConfig(ell=1 << 6), seed=48
        )
        assert_matches_tree_law(graph, trees, label="budget-fallback")


class TestRadixOverflowFallback:
    def _radix_overflow_instance(self) -> ClassifiedBipartite:
        """63 unit row classes: the mixed-radix state encoding needs
        2^63 codes, past the int64 guard."""
        return ClassifiedBipartite(
            row_labels=tuple(range(63)),
            row_counts=(1,) * 63,
            col_labels=("a", "b"),
            col_counts=(62, 1),
            class_weights=np.ones((63, 2)),
        )

    def test_vectorized_request_falls_back_to_reference(self):
        instance = self._radix_overflow_instance()
        prepared = prepare_contingency_dp(instance, implementation="vectorized")
        assert isinstance(prepared, _PreparedReference)

    def test_fallback_samples_the_reference_stream(self):
        """Same seed => byte-identical tables via either entry point."""
        instance = self._radix_overflow_instance()
        for seed in range(3):
            fallback = sample_contingency_table(
                instance,
                np.random.default_rng(seed),
                implementation="vectorized",
            )
            reference = sample_contingency_table(
                instance,
                np.random.default_rng(seed),
                implementation="reference",
            )
            assert np.array_equal(fallback, reference)
            assert fallback.sum() == 63
            assert (fallback.sum(axis=1) <= 1).all()


class TestPrecisionFloorFallback:
    @pytest.mark.parametrize("mode", ["batched", "reference"])
    def test_brute_force_fallback_matches_across_modes(self, mode):
        """An absurd normalizer floor forces the Section 5.2 brute-force
        sequential fill (the plan-aware _fill_level path); both modes
        must still draw the same valid trees. Pinned to the v1 contract:
        cross-mode byte identity is exactly the v1 guarantee (v2 block
        draws consume different bits by design)."""
        graph = graphs.complete_graph(6)
        config = SamplerConfig(
            ell=1 << 6,
            placement_mode=mode,
            rng_contract="v1",
            normalizer_floor_exponent=0.001,  # floor ~ 1: always trips
        )
        engine = SamplerEngine(graph, config)
        result = engine.run(np.random.default_rng(3))
        assert is_spanning_tree(graph, result.tree)
        assert sum(
            stats.brute_force_fallbacks for stats in result.phase_stats
        ) > 0
        if not hasattr(self, "_trees"):
            type(self)._trees = {}
        type(self)._trees[mode] = result.tree
        if len(type(self)._trees) == 2:
            assert (
                type(self)._trees["batched"] == type(self)._trees["reference"]
            )

    def test_brute_force_fallback_under_v2(self):
        """The same floor trips under the v2 block contract: the
        PrecisionError must surface *before* any randomness is consumed
        (the bank validates every pair's normalizer first), so the
        fallback rerun still draws a valid tree."""
        graph = graphs.complete_graph(6)
        config = SamplerConfig(
            ell=1 << 6,
            placement_mode="batched",
            rng_contract="v2",
            normalizer_floor_exponent=0.001,
        )
        engine = SamplerEngine(graph, config)
        for seed in range(4):
            result = engine.run(np.random.default_rng(seed))
            assert is_spanning_tree(graph, result.tree)
            assert sum(
                stats.brute_force_fallbacks for stats in result.phase_stats
            ) > 0
