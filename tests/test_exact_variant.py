"""Tests for the exact sampler (Appendix 5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import graphs
from repro.core import (
    ExactTreeSampler,
    SamplerConfig,
    exact_sample_with_diagnostics,
    sample_spanning_tree_exact,
)
from repro.graphs import is_spanning_tree

FAST = SamplerConfig(ell=1 << 10)


class TestBasics:
    def test_returns_spanning_tree(self, rng, small_graphs):
        for name, g in small_graphs.items():
            tree = ExactTreeSampler(g, FAST).sample_tree(rng)
            assert is_spanning_tree(g, tree), name

    def test_convenience_function(self):
        g = graphs.cycle_with_chord(6)
        tree = sample_spanning_tree_exact(g, rng=3, config=FAST)
        assert is_spanning_tree(g, tree)

    def test_diagnostics_shape(self, rng):
        g = graphs.complete_graph(8)
        result = exact_sample_with_diagnostics(g, rng=rng, config=FAST)
        assert result.phases == len(result.phase_stats)
        assert result.rounds > 0

    def test_variant_flag(self):
        g = graphs.path_graph(4)
        assert ExactTreeSampler(g, FAST).variant == "exact"


class TestRhoCubeRoot:
    def test_rho_smaller_than_approximate(self, rng):
        """rho = n^(1/3) < n^(1/2): more phases than the approximate
        variant on the same graph."""
        g = graphs.complete_graph(27)
        exact = ExactTreeSampler(g, FAST).sample(rng)
        from repro.core import CongestedCliqueTreeSampler

        approx = CongestedCliqueTreeSampler(g, FAST).sample(rng)
        # rho_exact = 3 -> 13 phases; rho_approx = 5 -> 7 phases.
        assert exact.phases > approx.phases
        assert all(s.rho_eff <= 3 for s in exact.phase_stats)

    def test_no_extension_failures_degrade_tree(self, rng):
        """Short nominal walks force extensions; trees stay valid."""
        g = graphs.cycle_graph(12)
        config = SamplerConfig(ell=1 << 5)
        for _ in range(5):
            tree = ExactTreeSampler(g, config).sample_tree(rng)
            assert is_spanning_tree(g, tree)


class TestPrecisionFallback:
    def test_brute_force_fallback_triggers_and_is_correct(self, rng):
        """An absurdly high normalizer floor makes every level fail the
        Section 5.2 check; the sampler must fall back and still produce
        valid trees (charging the collect-the-network rounds)."""
        g = graphs.cycle_with_chord(6)
        config = SamplerConfig(ell=1 << 8, normalizer_floor_exponent=0.1)
        sampler = ExactTreeSampler(g, config)
        result = sampler.sample(rng)
        assert is_spanning_tree(g, result.tree)
        assert any(s.brute_force_fallbacks > 0 for s in result.phase_stats)
        assert result.rounds_by_category().get("fallback/collect-network", 0) > 0
