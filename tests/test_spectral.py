"""Tests for spectral machinery: closed forms and cross-checks."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import graphs
from repro.errors import GraphError
from repro.graphs.spectral import (
    cover_time_spectral_bound,
    is_expander,
    mixing_time_bound,
    relaxation_time,
    spectral_gap,
    walk_eigenvalues,
)


class TestEigenvalues:
    def test_top_eigenvalue_is_one(self, small_graphs):
        for name, g in small_graphs.items():
            eigenvalues = walk_eigenvalues(g)
            assert eigenvalues[0] == pytest.approx(1.0), name
            assert np.all(eigenvalues <= 1.0 + 1e-9), name
            assert np.all(eigenvalues >= -1.0 - 1e-9), name

    def test_complete_graph_closed_form(self):
        # K_n walk spectrum: 1 and -1/(n-1) with multiplicity n-1.
        n = 6
        eigenvalues = walk_eigenvalues(graphs.complete_graph(n))
        assert eigenvalues[0] == pytest.approx(1.0)
        assert np.allclose(eigenvalues[1:], -1.0 / (n - 1))

    def test_cycle_closed_form(self):
        # C_n walk spectrum: cos(2 pi k / n).
        n = 8
        eigenvalues = np.sort(walk_eigenvalues(graphs.cycle_graph(n)))
        expected = np.sort([math.cos(2 * math.pi * k / n) for k in range(n)])
        assert np.allclose(eigenvalues, expected, atol=1e-9)

    def test_bipartite_has_minus_one(self):
        eigenvalues = walk_eigenvalues(graphs.path_graph(4))
        assert eigenvalues[-1] == pytest.approx(-1.0)

    def test_lazy_shifts_to_unit_interval(self):
        eigenvalues = walk_eigenvalues(graphs.path_graph(4), lazy=True)
        assert np.all(eigenvalues >= -1e-9)
        assert eigenvalues[0] == pytest.approx(1.0)


class TestGapsAndTimes:
    def test_bipartite_plain_gap_zero(self):
        assert spectral_gap(graphs.path_graph(4), lazy=False) == pytest.approx(
            0.0, abs=1e-9
        )
        assert spectral_gap(graphs.path_graph(4), lazy=True) > 0

    def test_complete_graph_large_gap(self):
        gap = spectral_gap(graphs.complete_graph(10), lazy=True)
        assert gap > 0.5

    def test_relaxation_monotone_with_bottleneck(self):
        assert relaxation_time(graphs.barbell_graph(12)) > relaxation_time(
            graphs.complete_graph(12)
        )

    def test_relaxation_raises_on_zero_gap(self):
        with pytest.raises(GraphError):
            relaxation_time(graphs.path_graph(4), lazy=False)

    def test_mixing_bound_scales_with_relaxation(self):
        fast = mixing_time_bound(graphs.complete_graph(12))
        slow = mixing_time_bound(graphs.barbell_graph(12))
        assert slow > fast

    def test_mixing_epsilon_validation(self):
        with pytest.raises(GraphError):
            mixing_time_bound(graphs.complete_graph(5), epsilon=2.0)

    def test_mixing_bound_dominates_empirical_mixing(self):
        """Powers of the lazy walk reach near-stationarity within the
        bound (checked in TV on a small graph)."""
        g = graphs.cycle_with_chord(6)
        t = int(math.ceil(mixing_time_bound(g, epsilon=0.1)))
        lazy = (np.eye(g.n) + g.transition_matrix()) / 2.0
        power = np.linalg.matrix_power(lazy, t)
        degrees = g.degrees()
        stationary = degrees / degrees.sum()
        worst_tv = 0.5 * np.abs(power - stationary[None, :]).sum(axis=1).max()
        assert worst_tv <= 0.1 + 1e-9


class TestExpanderCertificate:
    def test_random_regular_is_expander(self, rng):
        g = graphs.random_regular_graph(64, 4, rng=rng)
        assert is_expander(g)

    def test_cycle_is_not(self):
        assert not is_expander(graphs.cycle_graph(64))

    def test_irregular_is_not(self):
        assert not is_expander(graphs.star_graph(16))

    def test_weighted_is_not(self, weighted_triangle):
        assert not is_expander(weighted_triangle)


class TestCoverBound:
    def test_expander_cover_is_nlogn_scale(self, rng):
        from repro.graphs import cover_time_bound

        g = graphs.random_regular_graph(32, 4, rng=rng)
        spectral = cover_time_spectral_bound(g)
        matthews = cover_time_bound(g)
        n = 32
        assert spectral < 60 * n * math.log(n)
        # Both are upper bounds on the true cover time; they agree in
        # order of magnitude on expanders.
        assert spectral / 50 < matthews < spectral * 50

    def test_barbell_spectral_bound_explodes(self):
        good = cover_time_spectral_bound(graphs.complete_graph(12))
        bad = cover_time_spectral_bound(graphs.barbell_graph(12))
        assert bad > 5 * good
