"""The VariantSpec registry: contents, policies, and layer derivation.

The registry is the single source of truth for variant dispatch -- these
tests pin its contents (names, rho policies, communication models), the
helper views each layer consumes, and that the layers actually derive
from it: requests, presets, config rho resolution, and the CLI's
``--variant`` choices. The final test enforces the refactor's grep-clean
guarantee -- no hardcoded ``("approximate", "exact")`` membership tuple
survives anywhere in ``src/`` outside the registry module itself.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.api.presets import PRESETS, Preset
from repro.api.requests import AuditRequest, EnsembleRequest, SampleRequest
from repro.core.config import SamplerConfig
from repro.core.variants import (
    BROADCAST_BANDWIDTH,
    VARIANTS,
    VariantSpec,
    engine_variant_names,
    ensemble_variant_names,
    get_variant,
    sample_variant_names,
    variant_names,
)
from repro.errors import ConfigError

SRC = Path(__file__).resolve().parent.parent / "src"


class TestRegistryContents:
    def test_registered_names_and_order(self):
        assert variant_names() == (
            "approximate", "exact", "fastcover", "broadcast"
        )

    def test_specs_are_frozen(self):
        with pytest.raises(AttributeError):
            VARIANTS["approximate"].rho_policy = "full"

    def test_get_variant_unknown(self):
        with pytest.raises(ConfigError, match="unknown variant 'warp'"):
            get_variant("warp")

    def test_bandwidth_category_iff_broadcast_model(self):
        for spec in VARIANTS.values():
            if spec.comm_model == "broadcast":
                assert spec.bandwidth_category == BROADCAST_BANDWIDTH
            else:
                assert spec.bandwidth_category is None

    def test_view_helpers(self):
        assert sample_variant_names() == variant_names()
        assert ensemble_variant_names() == (
            "approximate", "exact", "broadcast"
        )
        assert engine_variant_names() == ("approximate", "exact", "broadcast")

    def test_broadcast_spec_shape(self):
        spec = get_variant("broadcast")
        assert spec.engine_driven and spec.ensemble
        assert not spec.exact_placement
        assert spec.rho_policy == "full"
        assert "Anari-Haqi" in spec.paper_ref


class TestRhoPolicies:
    def test_sqrt_policy(self):
        assert get_variant("approximate").resolve_rho(16) == 4
        assert get_variant("approximate").resolve_rho(17) == 4

    def test_cbrt_policy(self):
        assert get_variant("exact").resolve_rho(27) == 3
        assert get_variant("exact").resolve_rho(64) == 4

    def test_full_policy(self):
        assert get_variant("broadcast").resolve_rho(10) == 10
        assert get_variant("fastcover").resolve_rho(10) == 10

    @pytest.mark.parametrize("name", variant_names())
    def test_floor_of_two(self, name):
        assert get_variant(name).resolve_rho(2) == 2
        assert get_variant(name).resolve_rho(3) >= 2

    def test_config_resolve_rho_dispatches_through_registry(self):
        config = SamplerConfig()
        assert config.resolve_rho(64, variant="approximate") == 8
        assert config.resolve_rho(64, variant="exact") == 4
        assert config.resolve_rho(64, variant="broadcast") == 64
        # Explicit rho always wins over the policy.
        assert SamplerConfig(rho=5).resolve_rho(64, variant="broadcast") == 5
        # The legacy boolean keeps its meaning when no variant is named.
        assert config.resolve_rho(64, exact_variant=True) == 4
        with pytest.raises(ConfigError, match="unknown variant"):
            config.resolve_rho(64, variant="warp")


class TestLayersDeriveFromRegistry:
    def test_sample_request_accepts_every_variant(self):
        for name in sample_variant_names():
            assert SampleRequest(variant=name).variant == name
        with pytest.raises(ConfigError, match="unknown sample variant"):
            SampleRequest(variant="warp")

    def test_ensemble_request_tracks_ensemble_view(self):
        for name in ensemble_variant_names():
            assert EnsembleRequest(variant=name).variant == name
        with pytest.raises(ConfigError, match="unknown ensemble variant"):
            EnsembleRequest(variant="fastcover")

    def test_audit_request_tracks_ensemble_view(self):
        assert AuditRequest(variant="broadcast").variant == "broadcast"
        with pytest.raises(ConfigError, match="unknown audit variant"):
            AuditRequest(variant="fastcover")

    def test_presets_validate_their_variant_at_definition_time(self):
        with pytest.raises(ConfigError, match="unknown variant"):
            Preset("bad", "names a ghost", "warp", SamplerConfig())
        assert PRESETS["paper-broadcast"].variant == "broadcast"

    def test_cli_choices_follow_registry(self, capsys):
        from repro.cli import _make_parser

        parser = _make_parser()
        args = parser.parse_args(["sample", "--variant", "broadcast"])
        assert args.variant == "broadcast"
        args = parser.parse_args(["ensemble", "--variant", "broadcast"])
        assert args.variant == "broadcast"
        with pytest.raises(SystemExit):
            parser.parse_args(["ensemble", "--variant", "fastcover"])
        capsys.readouterr()  # swallow argparse's usage message

    def test_no_hardcoded_variant_tuples_outside_registry(self):
        """Grep-clean: the refactor left no literal membership pair."""
        pattern = re.compile(
            r"""\(\s*['"]approximate['"]\s*,\s*['"]exact['"]\s*[,)]"""
        )
        offenders = []
        for path in SRC.rglob("*.py"):
            if path.name == "variants.py" and path.parent.name == "core":
                continue
            if pattern.search(path.read_text()):
                offenders.append(str(path.relative_to(SRC)))
        assert not offenders, (
            f"hardcoded ('approximate', 'exact') tuple in {offenders}; "
            "derive variant sets from repro.core.variants instead"
        )


class TestNewVariantRegistration:
    def test_registering_a_variant_propagates_everywhere(self):
        """The refactor's point: one dict entry, every layer follows."""
        spec = VariantSpec(
            name="test-ghost",
            description="registration smoke test",
            paper_ref="none",
            rounds_formula="O(1)",
            rho_policy="sqrt",
            exact_placement=False,
            comm_model="unicast",
            bandwidth_category=None,
            engine_driven=True,
            ensemble=True,
        )
        VARIANTS[spec.name] = spec
        try:
            assert "test-ghost" in sample_variant_names()
            assert "test-ghost" in ensemble_variant_names()
            assert SampleRequest(variant="test-ghost").variant == "test-ghost"
            assert EnsembleRequest(variant="test-ghost").variant == (
                "test-ghost"
            )
            assert SamplerConfig().resolve_rho(100, variant="test-ghost") == 10
        finally:
            del VARIANTS[spec.name]
        with pytest.raises(ConfigError):
            SampleRequest(variant="test-ghost")
