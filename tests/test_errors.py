"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in dir(errors):
        obj = getattr(errors, name)
        if isinstance(obj, type) and issubclass(obj, Exception):
            assert issubclass(obj, errors.ReproError), name


def test_hierarchy_shape():
    assert issubclass(errors.DisconnectedGraphError, errors.GraphError)
    assert issubclass(errors.WeightError, errors.GraphError)
    assert issubclass(errors.BandwidthError, errors.ModelError)
    assert issubclass(errors.ProtocolError, errors.ModelError)
    assert issubclass(errors.WalkError, errors.SamplingError)
    assert issubclass(errors.MatchingError, errors.SamplingError)


def test_single_catch_all():
    with pytest.raises(errors.ReproError):
        raise errors.PrecisionError("precision fell through the floor")
