"""Statistical uniformity validation of every sampler (E2).

These are the library's most important tests: each sampler's empirical
tree distribution is compared in total variation against the exact
Matrix-Tree ground truth, with thresholds calibrated to sampling noise.
They use moderate sample counts to stay fast; the benchmarks run the same
comparison at higher resolution.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import graphs
from repro.analysis import (
    chi_square_uniformity,
    expected_tv_noise,
    tv_to_uniform,
)
from repro.core import (
    CongestedCliqueTreeSampler,
    ExactTreeSampler,
    SamplerConfig,
    sample_tree_fast_cover,
)
from repro.graphs import uniform_tree_distribution

GRAPH = graphs.cycle_with_chord(5)  # 11 spanning trees
NUM_TREES = 11
FAST = SamplerConfig(ell=1 << 10)


def assert_uniform(trees, *, p_floor=1e-3, tv_factor=4.0):
    n_samples = len(trees)
    tv = tv_to_uniform(GRAPH, trees)
    noise = expected_tv_noise(NUM_TREES, n_samples)
    assert tv < tv_factor * noise, f"TV {tv:.4f} vs noise {noise:.4f}"
    __, p_value = chi_square_uniformity(GRAPH, trees)
    assert p_value > p_floor, f"chi-square rejects uniformity (p={p_value:.2e})"


@pytest.mark.slow
class TestTheorem1Sampler:
    def test_uniform(self):
        rng = np.random.default_rng(11)
        sampler = CongestedCliqueTreeSampler(GRAPH, FAST)
        assert_uniform([sampler.sample_tree(rng) for _ in range(1500)])

    def test_uniform_with_mcmc_matching(self):
        rng = np.random.default_rng(12)
        # Explicit small proposal budget: placement instances on this
        # graph can hold hundreds of midpoints, where the default budget
        # costs seconds per draw. The chain starts at the true placement
        # (already stationary), so the budget does not affect exactness
        # -- see place_midpoints; cold-start mixing is exercised in
        # tests/test_matching_sampler.py instead.
        config = SamplerConfig(
            ell=1 << 10, matching_method="mcmc", mcmc_steps=200
        )
        sampler = CongestedCliqueTreeSampler(GRAPH, config)
        assert_uniform([sampler.sample_tree(rng) for _ in range(800)])

    def test_uniform_with_reduced_precision(self):
        """Section 2.5: the algorithm stays within eps at finite precision."""
        rng = np.random.default_rng(13)
        config = SamplerConfig(ell=1 << 10, precision_bits=48)
        sampler = CongestedCliqueTreeSampler(GRAPH, config)
        assert_uniform([sampler.sample_tree(rng) for _ in range(1200)])


@pytest.mark.slow
class TestExactSampler:
    def test_uniform(self):
        rng = np.random.default_rng(21)
        sampler = ExactTreeSampler(GRAPH, FAST)
        assert_uniform([sampler.sample_tree(rng) for _ in range(1500)])


@pytest.mark.slow
class TestFastCoverSampler:
    def test_uniform(self):
        rng = np.random.default_rng(31)
        assert_uniform(
            [sample_tree_fast_cover(GRAPH, rng).tree for _ in range(1200)]
        )


@pytest.mark.slow
class TestWeightedTarget:
    def test_weighted_tree_law(self, weighted_triangle):
        """Footnote 1: weighted inputs sample trees prop to weight products."""
        rng = np.random.default_rng(41)
        sampler = CongestedCliqueTreeSampler(weighted_triangle, FAST)
        trees = [sampler.sample_tree(rng) for _ in range(1500)]
        target = uniform_tree_distribution(weighted_triangle)
        from repro.analysis import empirical_tree_distribution, tv_distance

        empirical = empirical_tree_distribution(trees)
        assert tv_distance(empirical, dict(target)) < 0.05
