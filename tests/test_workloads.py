"""The WorkloadSpec registry: contents, routing, and layer derivation.

Sibling of ``tests/test_variants.py`` one level up: the workload
registry is the single source of truth for *which workloads the stack
serves* -- request-kind ownership, streaming eligibility, CLI
subcommands, recipes, weight modes, and oracles. These tests pin the
registered contents, prove the layers (request validation, the session
and service streaming gates, CLI choices, the service envelope) derive
from it, ghost-register a workload and a recipe to show one dict entry
propagates everywhere, and enforce the grep-clean guarantee: no
hardcoded workload membership tuple survives in ``src/`` outside the
registry module itself.
"""

from __future__ import annotations

import dataclasses
import re
from pathlib import Path

import pytest

from repro.api.requests import REQUEST_TYPES, MSTRequest
from repro.core.workloads import (
    WORKLOADS,
    WorkloadRecipe,
    WorkloadSpec,
    get_workload,
    streaming_request_kinds,
    workload_for_request,
    workload_names,
    workload_recipe_names,
    workload_request_kinds,
)
from repro.errors import ConfigError
from repro.service.protocol import (
    ServiceError,
    ServiceLimits,
    parse_service_envelope,
)

SRC = Path(__file__).resolve().parent.parent / "src"


class TestRegistryContents:
    def test_registered_names_and_order(self):
        assert workload_names() == ("spanning-tree", "pagerank", "mst")

    def test_specs_are_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            WORKLOADS["mst"].oracle = "nothing"

    def test_get_workload_unknown(self):
        with pytest.raises(ConfigError, match="unknown workload 'warp'"):
            get_workload("warp")

    def test_request_kind_ownership_is_a_partition(self):
        """Every kind belongs to exactly one workload."""
        kinds = workload_request_kinds()
        assert len(kinds) == len(set(kinds))
        for kind in kinds:
            assert kind in workload_for_request(kind).request_kinds

    def test_request_types_and_registry_cover_each_other(self):
        """The wire tag set and the registry's kind set are one set."""
        assert set(REQUEST_TYPES) == set(workload_request_kinds())

    def test_streaming_kinds_are_a_subset_of_owned_kinds(self):
        assert streaming_request_kinds() == ("ensemble", "mst")
        for spec in WORKLOADS.values():
            assert set(spec.streaming_kinds) <= set(spec.request_kinds)

    def test_unowned_kind_rejected(self):
        with pytest.raises(ConfigError, match="no registered workload"):
            workload_for_request("teleport")

    def test_mst_spec_shape(self):
        spec = get_workload("mst")
        assert spec.recipe_names() == ("kkt-o1", "node-cc-msf")
        assert spec.default_recipe == "kkt-o1"
        assert spec.oracle == "kruskal"
        assert spec.weight_modes == ("random", "tie-prone", "graph")
        kkt = spec.get_recipe("kkt-o1")
        node_cc = spec.get_recipe("node-cc-msf")
        assert "1707.08484" in kkt.paper_ref
        assert "1807.08738" in node_cc.paper_ref
        # Distinct comm regimes keep distinct ledger categories
        # (mirroring the variants registry's broadcast-bandwidth rule).
        assert kkt.comm_model != node_cc.comm_model
        assert not set(kkt.categories) & set(node_cc.categories)

    def test_recipe_resolution(self):
        spec = get_workload("mst")
        assert spec.resolve_recipe(None).name == "kkt-o1"
        assert spec.resolve_recipe("node-cc-msf").name == "node-cc-msf"
        with pytest.raises(ConfigError, match="unknown mst recipe"):
            spec.get_recipe("warp")
        # A workload without recipes has no default to fall back on.
        with pytest.raises(ConfigError, match="no default recipe"):
            get_workload("pagerank").resolve_recipe(None)
        assert workload_recipe_names("spanning-tree") == ()


class TestLayersDeriveFromRegistry:
    def test_mst_request_validates_against_registry(self):
        for name in workload_recipe_names("mst"):
            assert MSTRequest(recipe=name).recipe == name
        with pytest.raises(ConfigError, match="unknown mst recipe"):
            MSTRequest(recipe="warp")
        with pytest.raises(ConfigError, match="unknown weight mode"):
            MSTRequest(weights="warp")

    def test_cli_surfaces_every_registered_command(self, capsys):
        from repro.cli import _make_parser

        parser = _make_parser()
        for spec in WORKLOADS.values():
            for command in spec.cli_commands:
                args = parser.parse_args([command, "--json"])
                assert args.command == command
        args = parser.parse_args(["mst", "--recipe", "node-cc-msf"])
        assert args.recipe == "node-cc-msf"
        with pytest.raises(SystemExit):
            parser.parse_args(["mst", "--recipe", "warp"])
        capsys.readouterr()  # swallow argparse's usage message

    def test_service_envelope_accepts_every_registered_kind_shape(self):
        task = parse_service_envelope(
            {
                "graph": {"family": "cycle", "n": 8, "seed": 0},
                "request": {"request": "mst", "recipe": "node-cc-msf"},
            },
            ServiceLimits(),
        )
        assert isinstance(task.request, MSTRequest)
        # Validation errors surface as the service's own typed error.
        with pytest.raises(ServiceError, match="unknown mst recipe"):
            parse_service_envelope(
                {
                    "graph": {"family": "cycle", "n": 8, "seed": 0},
                    "request": {"request": "mst", "recipe": "warp"},
                },
                ServiceLimits(),
            )

    def test_no_hardcoded_workload_tuples_outside_registry(self):
        """Grep-clean: recipe/mode/streaming sets live in the registry.

        A literal ``("kkt-o1", "node-cc-msf")``, ``("random",
        "tie-prone", ...)`` or ``("ensemble", "mst")`` membership tuple
        anywhere else in ``src/`` would mean a layer stopped deriving
        from the registry.
        """
        patterns = [
            re.compile(
                r"""\(\s*['"]kkt-o1['"]\s*,\s*['"]node-cc-msf['"]\s*[,)]"""
            ),
            re.compile(
                r"""\(\s*['"]random['"]\s*,\s*['"]tie-prone['"]\s*[,)]"""
            ),
            re.compile(
                r"""\(\s*['"]ensemble['"]\s*,\s*['"]mst['"]\s*[,)]"""
            ),
        ]
        offenders = []
        for path in SRC.rglob("*.py"):
            if path.name == "workloads.py" and path.parent.name == "core":
                continue
            text = path.read_text()
            for pattern in patterns:
                if pattern.search(text):
                    offenders.append(str(path.relative_to(SRC)))
        assert not offenders, (
            f"hardcoded workload membership tuple in {offenders}; "
            "derive workload sets from repro.core.workloads instead"
        )


class TestGhostRegistration:
    def test_registering_a_workload_propagates_everywhere(self):
        """The tentpole's point: one dict entry, every layer follows."""
        spec = WorkloadSpec(
            name="test-ghost",
            description="registration smoke test",
            paper_ref="none",
            request_kinds=("ghostwork",),
            streaming_kinds=("ghostwork",),
        )
        WORKLOADS[spec.name] = spec
        try:
            assert "test-ghost" in workload_names()
            assert workload_for_request("ghostwork") is spec
            assert "ghostwork" in workload_request_kinds()
            # Both streaming gates (Session.stream and /v1/stream) call
            # this helper, so the ghost kind is now stream-eligible with
            # no session or server edits.
            assert "ghostwork" in streaming_request_kinds()
        finally:
            del WORKLOADS[spec.name]
        with pytest.raises(ConfigError):
            workload_for_request("ghostwork")

    def test_registering_a_recipe_propagates_everywhere(self):
        """One extra recipe on the mst spec reaches request validation,
        the CLI's --recipe choices, and the service envelope."""
        original = WORKLOADS["mst"]
        ghost = WorkloadRecipe(
            name="ghost-recipe",
            description="registration smoke test",
            paper_ref="none",
            comm_model="unicast",
            rounds_formula="O(1)",
            categories=("ghost-rounds",),
        )
        WORKLOADS["mst"] = dataclasses.replace(
            original, recipes=original.recipes + (ghost,)
        )
        try:
            assert "ghost-recipe" in workload_recipe_names("mst")
            assert MSTRequest(recipe="ghost-recipe").recipe == "ghost-recipe"
            from repro.cli import _make_parser

            args = _make_parser().parse_args(
                ["mst", "--recipe", "ghost-recipe"]
            )
            assert args.recipe == "ghost-recipe"
            task = parse_service_envelope(
                {
                    "graph": {"family": "cycle", "n": 8, "seed": 0},
                    "request": {"request": "mst", "recipe": "ghost-recipe"},
                },
                ServiceLimits(),
            )
            assert task.request.recipe == "ghost-recipe"
        finally:
            WORKLOADS["mst"] = original
        with pytest.raises(ConfigError):
            MSTRequest(recipe="ghost-recipe")
