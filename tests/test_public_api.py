"""Public-API surface tests: imports, __all__ hygiene, docstrings.

A downstream user's first contact with the library is ``import repro``
and tab completion; these tests pin that surface so refactors cannot
silently break it.
"""

from __future__ import annotations

import importlib
import inspect

import pytest

import repro

SUBPACKAGES = [
    "repro.analysis",
    "repro.api",
    "repro.clique",
    "repro.core",
    "repro.engine",
    "repro.graphs",
    "repro.linalg",
    "repro.matching",
    "repro.walks",
]


class TestImports:
    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_subpackage_imports(self, name):
        module = importlib.import_module(name)
        assert module.__doc__, f"{name} lacks a module docstring"

    def test_top_level_all_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_all_entries_resolve(self, name):
        module = importlib.import_module(name)
        for attr in getattr(module, "__all__", []):
            assert hasattr(module, attr), f"{name}.{attr}"

    def test_version_string(self):
        assert repro.__version__.count(".") == 2


class TestDocstrings:
    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_public_callables_documented(self, name):
        """Every public function/class exported by a subpackage has a
        docstring (deliverable (e): doc comments on every public item)."""
        module = importlib.import_module(name)
        for attr in getattr(module, "__all__", []):
            obj = getattr(module, attr)
            if inspect.isfunction(obj) or inspect.isclass(obj):
                assert obj.__doc__, f"{name}.{attr} lacks a docstring"

    def test_public_methods_documented(self):
        """Spot check: key classes document their public methods."""
        from repro.clique import CongestedClique, RoundLedger
        from repro.core import CongestedCliqueTreeSampler
        from repro.graphs import WeightedGraph

        for cls in (CongestedClique, RoundLedger, CongestedCliqueTreeSampler,
                    WeightedGraph):
            for name, member in inspect.getmembers(cls):
                if name.startswith("_") or not callable(member):
                    continue
                assert member.__doc__, f"{cls.__name__}.{name}"


class TestConvenienceEntryPoints:
    def test_sample_spanning_tree_is_importable_from_top(self):
        from repro import sample_spanning_tree  # noqa: F401
        from repro import sample_spanning_tree_exact  # noqa: F401
        from repro import sample_tree_fast_cover  # noqa: F401

    def test_error_base_importable(self):
        from repro import ReproError

        assert issubclass(ReproError, Exception)
