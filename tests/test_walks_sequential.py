"""Tests for sequential walks and the classical spanning-tree baselines."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro import graphs
from repro.analysis import expected_tv_noise, tv_to_uniform
from repro.errors import GraphError, WalkError
from repro.graphs import is_spanning_tree, uniform_tree_distribution
from repro.walks import (
    aldous_broder_tree,
    aldous_broder_with_stats,
    distinct_vertex_count,
    first_visit_edges,
    random_walk,
    random_weight_mst_tree,
    walk_until_distinct,
    wilson_tree,
    wilson_tree_with_stats,
)


class TestRandomWalk:
    def test_length_and_adjacency(self, rng):
        g = graphs.cycle_with_chord(6)
        walk = random_walk(g, 0, 40, rng)
        assert len(walk) == 41
        assert walk[0] == 0
        assert all(g.has_edge(a, b) for a, b in zip(walk, walk[1:]))

    def test_zero_length(self, rng):
        g = graphs.path_graph(3)
        assert random_walk(g, 1, 0, rng) == [1]

    def test_negative_length_rejected(self, rng):
        with pytest.raises(WalkError):
            random_walk(graphs.path_graph(3), 0, -1, rng)

    def test_bad_start_rejected(self, rng):
        with pytest.raises(GraphError):
            random_walk(graphs.path_graph(3), 7, 1, rng)

    def test_weighted_step_law(self, rng, weighted_triangle):
        walks = [random_walk(weighted_triangle, 0, 1, rng)[1] for _ in range(3000)]
        freq = Counter(walks)
        # From 0: weight 1 to vertex 1, weight 3 to vertex 2.
        assert freq[2] / 3000 == pytest.approx(0.75, abs=0.04)


class TestWalkUntilDistinct:
    def test_stops_exactly_at_target(self, rng):
        g = graphs.cycle_graph(8)
        walk = walk_until_distinct(g, 0, 4, rng)
        assert distinct_vertex_count(walk) == 4
        # The final vertex is the 4th distinct one, appearing only there.
        assert walk.count(walk[-1]) == 1

    def test_target_one_is_trivial(self, rng):
        g = graphs.path_graph(3)
        assert walk_until_distinct(g, 2, 1, rng) == [2]

    def test_invalid_target(self, rng):
        g = graphs.path_graph(3)
        with pytest.raises(WalkError):
            walk_until_distinct(g, 0, 4, rng)

    def test_max_steps_guard(self, rng):
        g = graphs.path_graph(8)
        with pytest.raises(WalkError):
            walk_until_distinct(g, 0, 8, rng, max_steps=1)


class TestFirstVisitEdges:
    def test_simple_extraction(self):
        walk = [0, 1, 0, 2, 1, 3]
        assert first_visit_edges(walk) == [(0, 1), (0, 2), (1, 3)]

    def test_empty_walk(self):
        assert first_visit_edges([]) == []

    def test_covering_walk_gives_tree(self, rng):
        g = graphs.complete_graph(6)
        walk = walk_until_distinct(g, 0, 6, rng)
        edges = first_visit_edges(walk)
        assert is_spanning_tree(g, edges)


class TestAldousBroder:
    def test_returns_spanning_tree(self, rng, small_graphs):
        for name, g in small_graphs.items():
            tree = aldous_broder_tree(g, rng)
            assert is_spanning_tree(g, tree), name

    def test_uniformity(self, rng):
        g = graphs.cycle_with_chord(5)
        n_samples = 2500
        trees = [aldous_broder_tree(g, rng) for _ in range(n_samples)]
        noise = expected_tv_noise(11, n_samples)
        assert tv_to_uniform(g, trees) < 4 * noise


class TestWilson:
    def test_returns_spanning_tree(self, rng, small_graphs):
        for name, g in small_graphs.items():
            tree = wilson_tree(g, rng)
            assert is_spanning_tree(g, tree), name

    def test_uniformity(self, rng):
        g = graphs.theta_graph(2, 2, 2)
        n_samples = 3000
        trees = [wilson_tree(g, rng) for _ in range(n_samples)]
        noise = expected_tv_noise(12, n_samples)
        assert tv_to_uniform(g, trees) < 4 * noise

    def test_weighted_law(self, rng, weighted_triangle):
        """Weighted Wilson samples trees prop to their weight product."""
        target = uniform_tree_distribution(weighted_triangle)
        trees = Counter(wilson_tree(weighted_triangle, rng) for _ in range(4000))
        heaviest = max(target, key=target.get)
        assert trees[heaviest] / 4000 == pytest.approx(
            target[heaviest], abs=0.04
        )

    def test_root_invariance(self, rng):
        """Wilson's output law does not depend on the root choice."""
        g = graphs.cycle_with_chord(5)
        a = Counter(wilson_tree(g, rng, root=0) for _ in range(2000))
        b = Counter(wilson_tree(g, rng, root=3) for _ in range(2000))
        overlap = sum(min(a[t] / 2000, b[t] / 2000) for t in set(a) | set(b))
        assert overlap > 0.9

    def test_bad_root(self, rng):
        with pytest.raises(GraphError):
            wilson_tree(graphs.path_graph(3), rng, root=5)


class TestStatsVariants:
    def test_aldous_broder_steps_reported(self, rng):
        g = graphs.complete_graph(8)
        tree, steps = aldous_broder_with_stats(g, rng)
        assert is_spanning_tree(g, tree)
        assert steps >= g.n - 1  # covering needs at least n - 1 steps

    def test_wilson_steps_reported(self, rng):
        g = graphs.cycle_with_chord(8)
        tree, steps = wilson_tree_with_stats(g, rng)
        assert is_spanning_tree(g, tree)
        assert steps >= g.n - 1

    def test_wilson_faster_than_ab_on_lollipop(self, rng):
        """The introduction's contrast: cover time vs mean hitting time."""
        g = graphs.lollipop_graph(20)
        ab = np.mean([aldous_broder_with_stats(g, rng)[1] for _ in range(8)])
        wilson = np.mean([wilson_tree_with_stats(g, rng)[1] for _ in range(8)])
        assert wilson < ab

    def test_ab_steps_near_cover_time(self, rng):
        from repro.graphs import cover_time_bound

        g = graphs.complete_graph(10)
        steps = np.mean(
            [aldous_broder_with_stats(g, rng)[1] for _ in range(20)]
        )
        # Coupon collector ~ (n-1) H_{n-1} ~ 25; Matthews bound is close.
        assert steps < 2 * cover_time_bound(g)


class TestRandomWeightMST:
    """Section 1.4's strawman (experiment E9): provably non-uniform."""

    def test_returns_spanning_tree(self, rng, small_graphs):
        for name, g in small_graphs.items():
            tree = random_weight_mst_tree(g, rng)
            assert is_spanning_tree(g, tree), name

    def test_biased_away_from_uniform(self, rng):
        """On the theta graph the MST law measurably differs from uniform
        [39]: short paths are cut at the wrong rate. TV ~ 0.10 on
        theta(1, 1, 3), orders of magnitude above sampling noise.
        """
        from repro.analysis import chi_square_uniformity

        g = graphs.theta_graph(1, 1, 3)
        n_samples = 4000
        trees = [random_weight_mst_tree(g, rng) for _ in range(n_samples)]
        tv = tv_to_uniform(g, trees)
        num_trees = len(uniform_tree_distribution(g))
        noise = expected_tv_noise(num_trees, n_samples)
        assert tv > 5 * noise  # systematic bias dominates sampling noise
        __, p_value = chi_square_uniformity(g, trees)
        assert p_value < 1e-6

    def test_tree_on_tree_graph_is_identity(self, rng):
        g = graphs.binary_tree_graph(7)
        from repro.graphs import tree_key

        assert random_weight_mst_tree(g, rng) == tree_key(g.edges())


class TestBarnesFeige:
    """Direction 4 / [8]: a length-n walk visits Omega(n^{1/3}) vertices."""

    @pytest.mark.parametrize("n", [27, 64])
    def test_distinct_vertices_lower_bound(self, rng, n):
        for factory in (graphs.path_graph, graphs.lollipop_graph,
                        graphs.cycle_graph):
            g = factory(n)
            counts = [
                distinct_vertex_count(random_walk(g, 0, n, rng))
                for _ in range(10)
            ]
            assert np.mean(counts) >= round(n ** (1.0 / 3.0))
