"""Tests for the tiered persistent derived-graph store (engine.store).

The load-bearing properties:

1. Reproducibility -- the disk tier cold, warm, or disabled never changes
   sampled trees or round ledgers (extends the in-memory cache's
   transparency contract across process "restarts").
2. Robustness -- corrupt blobs, corrupt indexes, and crashes mid-write
   degrade to cache misses, never to wrong numerics or exceptions.
3. Accounting -- byte budgets bound both tiers, and the per-tier
   counters surface end-to-end.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro import graphs
from repro.core import SamplerConfig
from repro.engine import (
    DerivedGraphCache,
    DiskTier,
    SamplerEngine,
    TieredPhaseStore,
    open_phase_store,
    resolve_cache_root,
    sample_tree_ensemble,
)
from repro.engine.store import key_digest
from repro.errors import ConfigError


def _config(tmp_path=None, **overrides):
    base = dict(ell=1 << 9)
    if tmp_path is not None:
        base["cache_dir"] = str(tmp_path)
    base.update(overrides)
    return SamplerConfig(**base)


def _run(graph, config, seed, variant="approximate"):
    engine = SamplerEngine(graph, config, variant=variant)
    result = engine.run(np.random.default_rng(seed))
    return result, engine


# ---------------------------------------------------------------------------
# Reproducibility: cold / warm-memory / warm-disk / disabled
# ---------------------------------------------------------------------------


class TestTieredTransparency:
    @pytest.mark.parametrize("family", ["cycle", "complete", "grid", "gnp"])
    @pytest.mark.parametrize("variant", ["approximate", "exact"])
    def test_cold_warm_disk_disabled_identical(self, tmp_path, family, variant):
        """Byte-identical trees + identical ledgers across all cache modes."""
        from repro.graphs.families import build_family

        graph, __ = build_family(family, 16, np.random.default_rng(2))
        disabled, __ = _run(
            graph, _config(derived_cache=False), 9, variant
        )
        memory_only, __ = _run(graph, _config(), 9, variant)
        cold_disk, cold_engine = _run(graph, _config(tmp_path), 9, variant)
        warm_disk, warm_engine = _run(graph, _config(tmp_path), 9, variant)

        results = [disabled, memory_only, cold_disk, warm_disk]
        assert len({r.tree for r in results}) == 1
        assert len({r.rounds for r in results}) == 1
        reference = disabled.rounds_by_category()
        for result in results[1:]:
            assert result.rounds_by_category() == reference
        # The warm engine really did serve from disk, not recompute.
        assert cold_engine.cache.stats()["spills"] > 0
        assert warm_engine.cache.stats()["disk_hits"] > 0
        assert warm_engine.cache.stats()["misses"] == 0

    def test_sparse_numerics_roundtrip_identical(self, tmp_path):
        """CSR entries survive the .npz round trip bit-for-bit."""
        graph = graphs.cycle_graph(36)
        config = _config(tmp_path, linalg_backend="sparse")
        cold, __ = _run(graph, config, 4)
        warm, warm_engine = _run(graph, config, 4)
        assert cold.tree == warm.tree
        assert cold.rounds == warm.rounds
        assert warm_engine.cache.stats()["disk_hits"] > 0

    def test_precision_bits_survive_restart(self, tmp_path):
        """Lemma 7 charge recipes (entry words) replay from disk."""
        graph = graphs.complete_graph(10)
        config = _config(tmp_path, precision_bits=48)
        cold, __ = _run(graph, config, 1)
        warm, __ = _run(graph, config, 1)
        assert cold.tree == warm.tree
        assert cold.rounds_by_category() == warm.rounds_by_category()

    def test_simulated_3d_charges_replay_from_disk(self, tmp_path):
        """Measured (3D protocol) round bills replay across restarts."""
        graph = graphs.cycle_with_chord(12)
        config = _config(tmp_path, matmul_backend="simulated-3d")
        cold, __ = _run(graph, config, 3)
        warm, __ = _run(graph, config, 3)
        assert cold.tree == warm.tree
        assert cold.rounds_by_category() == warm.rounds_by_category()


# ---------------------------------------------------------------------------
# Multiprocess warm starts (satellite: ensemble workers share the disk tier)
# ---------------------------------------------------------------------------


class TestMultiprocessWarmStart:
    def test_jobs_and_cache_modes_agree(self, tmp_path):
        """jobs>1 over a shared cache_dir == jobs=1 == cold cacheless run."""
        graph = graphs.cycle_graph(14)
        shared = _config(tmp_path)
        cold = sample_tree_ensemble(
            graph, 6, config=_config(derived_cache=False), seed=5, jobs=1
        )
        serial = sample_tree_ensemble(graph, 6, config=shared, seed=5, jobs=1)
        parallel = sample_tree_ensemble(graph, 6, config=shared, seed=5, jobs=2)
        assert cold.trees == serial.trees == parallel.trees
        assert [r.rounds for r in cold.results] == [
            r.rounds for r in serial.results
        ] == [r.rounds for r in parallel.results]
        # The shared directory holds the spilled numerics afterwards.
        assert DiskTier(tmp_path).entry_count() > 0

    def test_restarted_ensemble_hits_disk(self, tmp_path):
        """A same-seed rerun in a fresh 'process' serves from the disk tier."""
        graph = graphs.cycle_graph(14)
        config = _config(tmp_path)
        first = sample_tree_ensemble(graph, 4, config=config, seed=8, jobs=1)
        engine = SamplerEngine(graph, config)
        driver_result = sample_tree_ensemble(
            graph, 4, config=config, seed=8, jobs=1
        )
        assert first.trees == driver_result.trees
        warm_engine = SamplerEngine(graph, config)
        warm_engine.run(np.random.default_rng(0))
        assert warm_engine.cache.stats()["disk_hits"] > 0
        assert engine.cache.stats()["disk_entries"] > 0


# ---------------------------------------------------------------------------
# DiskTier robustness: corruption, crashes, races
# ---------------------------------------------------------------------------


def _make_numerics(graph=None, n=8, subset=None):
    """A real PhaseNumerics via a cold engine build."""
    graph = graph if graph is not None else graphs.complete_graph(n)
    engine = SamplerEngine(graph, SamplerConfig(ell=1 << 8))
    engine.run(np.random.default_rng(0))
    cache = engine.cache
    key, numerics = next(iter(cache._entries.items()))
    return key, numerics


class TestDiskTierRobustness:
    def test_roundtrip(self, tmp_path):
        key, numerics = _make_numerics()
        tier = DiskTier(tmp_path)
        assert tier.store(key, numerics) is True
        loaded = tier.lookup(key)
        assert loaded is not None
        np.testing.assert_array_equal(
            np.asarray(loaded.shortcut), np.asarray(numerics.shortcut)
        )
        np.testing.assert_array_equal(
            np.asarray(loaded.transition), np.asarray(numerics.transition)
        )
        assert loaded.order == numerics.order
        assert loaded.ladder.exponents == numerics.ladder.exponents
        for k in numerics.ladder.exponents:
            np.testing.assert_array_equal(
                np.asarray(loaded.ladder.power(k)),
                np.asarray(numerics.ladder.power(k)),
            )
        assert loaded.ladder_squarings == numerics.ladder_squarings
        assert loaded.ladder_entry_words == numerics.ladder_entry_words
        assert loaded.shortcut_squarings == numerics.shortcut_squarings

    def test_duplicate_store_is_noop(self, tmp_path):
        key, numerics = _make_numerics()
        tier = DiskTier(tmp_path)
        assert tier.store(key, numerics) is True
        assert tier.store(key, numerics) is False
        assert tier.entry_count() == 1

    def test_missing_entry_is_miss(self, tmp_path):
        tier = DiskTier(tmp_path)
        assert tier.lookup(("nope", (1, 2, 3))) is None
        assert tier.misses == 1

    def test_truncated_blob_is_miss_not_crash(self, tmp_path):
        key, numerics = _make_numerics()
        tier = DiskTier(tmp_path)
        tier.store(key, numerics)
        entry_dir = tier.blobs / key_digest(key)
        blob = next(p for p in entry_dir.iterdir() if p.suffix == ".npy")
        blob.write_bytes(blob.read_bytes()[:16])  # truncate mid-header
        assert tier.lookup(key) is None
        # The broken entry was dropped; a fresh store repairs it.
        assert tier.store(key, numerics) is True
        assert tier.lookup(key) is not None

    def test_corrupt_meta_is_miss(self, tmp_path):
        key, numerics = _make_numerics()
        tier = DiskTier(tmp_path)
        tier.store(key, numerics)
        (tier.blobs / key_digest(key) / "meta.json").write_text("{not json")
        assert tier.lookup(key) is None

    def test_unknown_version_is_miss(self, tmp_path):
        key, numerics = _make_numerics()
        tier = DiskTier(tmp_path)
        tier.store(key, numerics)
        meta_path = tier.blobs / key_digest(key) / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["version"] = 99
        meta_path.write_text(json.dumps(meta))
        assert tier.lookup(key) is None

    def test_corrupt_index_rebuilt_from_blobs(self, tmp_path):
        key, numerics = _make_numerics()
        tier = DiskTier(tmp_path)
        tier.store(key, numerics)
        (tmp_path / "index.json").write_text("][ definitely not json")
        assert tier.total_bytes() > 0  # rebuilt by scanning
        assert tier.lookup(key) is not None

    def test_crash_mid_write_leaves_consistent_store(self, tmp_path, monkeypatch):
        """A writer dying before the atomic rename publishes nothing."""
        key, numerics = _make_numerics()
        tier = DiskTier(tmp_path)

        def crash(src, dst):
            raise OSError("injected crash before rename")

        monkeypatch.setattr(os, "rename", crash)
        assert tier.store(key, numerics) is False
        monkeypatch.undo()
        # Nothing half-written is visible; index stays consistent.
        assert tier.lookup(key) is None
        assert tier.entry_count() == 0
        assert tier.total_bytes() == 0
        # Recovery needs no cleanup step.
        assert tier.store(key, numerics) is True
        assert tier.lookup(key) is not None

    def test_orphaned_blob_dir_does_not_wedge_the_digest(self, tmp_path):
        """A blob dir that lost its meta.json must be repairable.

        Regression: store() used to rename onto the non-empty debris
        directory, fail with ENOTEMPTY forever, and the key recomputed
        on every run with no way to heal.
        """
        key, numerics = _make_numerics()
        tier = DiskTier(tmp_path)
        tier.store(key, numerics)
        entry_dir = tier.blobs / key_digest(key)
        (entry_dir / "meta.json").unlink()  # half-deleted entry
        assert tier.lookup(key) is None
        assert tier.store(key, numerics) is True  # debris cleared, republished
        assert tier.lookup(key) is not None

    def test_corruption_cleanup_drops_index_record(self, tmp_path):
        """No phantom bytes: a discarded blob leaves the ledger too."""
        key, numerics = _make_numerics()
        tier = DiskTier(tmp_path)
        tier.store(key, numerics)
        assert tier.total_bytes() > 0
        (tier.blobs / key_digest(key) / "meta.json").write_text("{broken")
        assert tier.lookup(key) is None  # triggers discard
        assert tier.total_bytes() == 0
        assert tier.entry_count() == 0

    def test_hits_do_not_rewrite_the_index(self, tmp_path):
        """The hot read path touches meta.json mtimes, never index.json."""
        key, numerics = _make_numerics()
        tier = DiskTier(tmp_path)
        tier.store(key, numerics)
        index_path = tmp_path / "index.json"
        before = index_path.stat().st_mtime_ns
        for _ in range(3):
            assert tier.lookup(key) is not None
        assert index_path.stat().st_mtime_ns == before

    def test_leftover_tmp_dir_is_invisible(self, tmp_path):
        """Crash leftovers are not entries and don't break the index."""
        tier = DiskTier(tmp_path)
        leftover = tier.blobs / ".tmp-deadbeef-1-1"
        leftover.mkdir()
        (leftover / "shortcut.npy").write_bytes(b"partial")
        assert tier.entry_count() == 0
        assert tier.total_bytes() == 0
        key, numerics = _make_numerics()
        assert tier.store(key, numerics) is True

    def test_csr_blob_without_scipy_is_miss_not_deletion(self, tmp_path, monkeypatch):
        """A scipy-less reader must not destroy a peer's valid CSR blobs."""
        engine = SamplerEngine(
            graphs.cycle_graph(24),
            SamplerConfig(ell=1 << 8, linalg_backend="sparse"),
        )
        engine.run(np.random.default_rng(0))
        key, numerics = next(iter(engine.cache._entries.items()))
        tier = DiskTier(tmp_path)
        assert tier.store(key, numerics) is True
        import repro.engine.store as store_module

        monkeypatch.setattr(store_module, "HAVE_SCIPY", False)
        assert tier.lookup(key) is None  # plain miss...
        monkeypatch.undo()
        assert tier.lookup(key) is not None  # ...entry left for scipy readers

    def test_rename_race_loser_discards_tmp(self, tmp_path):
        """Two workers publishing the same digest: one wins, no debris."""
        key, numerics = _make_numerics()
        a = DiskTier(tmp_path)
        b = DiskTier(tmp_path)
        assert a.store(key, numerics) is True
        assert b.store(key, numerics) is False  # sees the published entry
        assert a.entry_count() == 1
        assert not any(
            p.name.startswith(".tmp-") for p in a.blobs.iterdir()
        )

    def test_disk_byte_budget_evicts_lru(self, tmp_path):
        graph = graphs.complete_graph(8)
        engine = SamplerEngine(graph, SamplerConfig(ell=1 << 8))
        engine.run(np.random.default_rng(0))
        entries = list(engine.cache._entries.items())[:3]
        assert len(entries) == 3
        probe = DiskTier(tmp_path / "probe")
        for key, numerics in entries:
            probe.store(key, numerics)
        total = probe.total_bytes()
        assert total > 0
        budget = total - 1  # can't hold all three
        tier = DiskTier(tmp_path / "real", max_bytes=budget)
        for key, numerics in entries:
            tier.store(key, numerics)
        assert tier.evictions >= 1
        assert tier.total_bytes() <= budget
        # LRU: the first-stored entry went first.
        assert tier.lookup(entries[0][0]) is None

    def test_oversized_entry_refused_keeps_working_set(self, tmp_path):
        """Mirror of the RAM tier: a blob bigger than the whole budget
        must not flush every resident blob on its way through."""
        key, numerics = _make_numerics()
        probe = DiskTier(tmp_path / "probe")
        probe.store(key, numerics)
        entry_bytes = probe.total_bytes()
        tier = DiskTier(tmp_path / "real", max_bytes=entry_bytes - 1)
        assert tier.store(key, numerics) is False
        assert tier.entry_count() == 0
        assert tier.evictions == 0
        assert not any(
            p.name.startswith(".tmp-") for p in tier.blobs.iterdir()
        )

    def test_lost_index_record_heals_on_touch(self, tmp_path):
        """Concurrent index races (last write wins) must self-heal.

        A record dropped from index.json while its blob stays published
        would otherwise be invisible to byte accounting and eviction
        forever; a lookup hit or duplicate store re-registers it.
        """
        key, numerics = _make_numerics()
        tier = DiskTier(tmp_path)
        tier.store(key, numerics)
        recorded = tier.total_bytes()
        (tmp_path / "index.json").write_text("{}")  # simulated lost write
        assert tier.total_bytes() == 0
        assert tier.lookup(key) is not None  # hit heals the ledger
        assert tier.total_bytes() == recorded
        (tmp_path / "index.json").write_text("{}")
        assert tier.store(key, numerics) is False  # duplicate store heals too
        assert tier.total_bytes() == recorded

    def test_invalid_budget_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            DiskTier(tmp_path, max_bytes=0)


# ---------------------------------------------------------------------------
# TTL expiry (cache --prune-expired)
# ---------------------------------------------------------------------------


class TestPruneExpired:
    @staticmethod
    def _populate(tmp_path, n=8):
        """Two published entries (phase 1 + a later phase) via a real run."""
        graph = graphs.complete_graph(n)
        engine = SamplerEngine(graph, _config(tmp_path))
        engine.run(np.random.default_rng(0))
        return DiskTier(tmp_path)

    @staticmethod
    def _backdate(tier, digest, age_seconds):
        clock = os.stat(tier.blobs / digest / "meta.json").st_mtime
        stamp = clock - age_seconds
        os.utime(tier.blobs / digest / "meta.json", (stamp, stamp))

    def test_expired_entries_go_fresh_entries_stay(self, tmp_path):
        tier = self._populate(tmp_path)
        digests = sorted(d.name for d in tier.blobs.iterdir())
        assert len(digests) >= 2
        self._backdate(tier, digests[0], 10 * 86400)
        removed = tier.prune_expired(7 * 86400.0)
        assert removed == 1
        assert digests[0] not in {d.name for d in tier.blobs.iterdir()}
        assert tier.entry_count() == len(digests) - 1
        # Nothing else is within the window: a second sweep is a no-op.
        assert tier.prune_expired(7 * 86400.0) == 0

    def test_hit_refreshes_the_clock(self, tmp_path):
        """An entry read after backdating is no longer expired: the TTL
        clock is recency of *use*, not creation time."""
        key, numerics = _make_numerics()
        tier = DiskTier(tmp_path)
        tier.store(key, numerics)
        digest = key_digest(key)
        self._backdate(tier, digest, 10 * 86400)
        assert tier.lookup(key) is not None  # touches meta.json
        assert tier.prune_expired(7 * 86400.0) == 0
        assert tier.entry_count() == 1

    def test_phantom_records_are_expired(self, tmp_path):
        """A ledger record whose directory vanished counts as expired and
        is dropped without disturbing live entries."""
        import shutil

        tier = self._populate(tmp_path)
        digests = sorted(d.name for d in tier.blobs.iterdir())
        shutil.rmtree(tier.blobs / digests[0])
        assert digests[0] in tier._read_index()  # ledger remembers it
        removed = tier.prune_expired(365 * 86400.0)
        assert removed == 1
        assert digests[0] not in tier._read_index()
        assert tier.entry_count() == len(digests) - 1

    def test_corrupt_index_rebuilds_before_expiry(self, tmp_path):
        tier = self._populate(tmp_path)
        entries = tier.entry_count()
        (tmp_path / "index.json").write_text("{{{ not json")
        assert tier.prune_expired(7 * 86400.0) == 0
        assert tier.entry_count() == entries

    def test_zero_ttl_expires_everything_stale(self, tmp_path):
        tier = self._populate(tmp_path)
        entries = tier.entry_count()
        # All clocks are in the past (if only by microseconds).
        assert tier.prune_expired(0.0) == entries
        assert tier.entry_count() == 0

    def test_invalid_ttl_rejected(self, tmp_path):
        tier = DiskTier(tmp_path)
        for bad in (-1.0, float("nan"), float("inf")):
            with pytest.raises(ConfigError):
                tier.prune_expired(bad)


# ---------------------------------------------------------------------------
# TieredPhaseStore composition
# ---------------------------------------------------------------------------


class TestTieredPhaseStore:
    def test_promote_and_write_through(self, tmp_path):
        key, numerics = _make_numerics()
        store = TieredPhaseStore(
            DerivedGraphCache(max_entries=4), DiskTier(tmp_path)
        )
        store.store(key, numerics)
        assert store.stats()["spills"] == 1
        # Memory hit: no disk traffic.
        assert store.lookup(key) is not None
        assert store.stats()["hits"] == 1
        assert store.stats()["disk_hits"] == 0
        # Drop RAM (simulated restart): next lookup promotes from disk.
        store.clear()
        assert store.lookup(key) is not None
        stats = store.stats()
        assert stats["disk_hits"] == 1
        assert stats["promotes"] == 1
        assert stats["misses"] == 0
        # Promoted entry is resident again.
        assert len(store) == 1

    def test_full_miss_counts_once(self, tmp_path):
        store = TieredPhaseStore(DerivedGraphCache(), DiskTier(tmp_path))
        assert store.lookup(("absent", (0,))) is None
        stats = store.stats()
        assert stats["misses"] == 1
        assert stats["disk_hits"] == 0

    def test_memory_eviction_keeps_disk_copy(self, tmp_path):
        graph = graphs.complete_graph(8)
        engine = SamplerEngine(graph, SamplerConfig(ell=1 << 8))
        engine.run(np.random.default_rng(0))
        entries = list(engine.cache._entries.items())[:3]
        store = TieredPhaseStore(
            DerivedGraphCache(max_entries=1), DiskTier(tmp_path)
        )
        for key, numerics in entries:
            store.store(key, numerics)
        assert len(store) == 1  # RAM holds only the most recent
        # Everything is still served (from disk, via promote).
        for key, __ in entries:
            assert store.lookup(key) is not None

    def test_open_phase_store_shapes(self, tmp_path):
        assert open_phase_store(SamplerConfig(derived_cache=False)) is None
        memory = open_phase_store(SamplerConfig())
        assert isinstance(memory, DerivedGraphCache)
        tiered = open_phase_store(SamplerConfig(cache_dir=str(tmp_path)))
        assert isinstance(tiered, TieredPhaseStore)
        assert tiered.disk.root == tmp_path

    def test_budgets_flow_from_config(self, tmp_path):
        store = open_phase_store(
            SamplerConfig(
                cache_dir=str(tmp_path),
                cache_memory_bytes=12345,
                cache_disk_bytes=67890,
                derived_cache_entries=7,
            )
        )
        assert store.memory.max_bytes == 12345
        assert store.memory.max_entries == 7
        assert store.disk.max_bytes == 67890


# ---------------------------------------------------------------------------
# cache_dir resolution + config validation
# ---------------------------------------------------------------------------


class TestCacheDirConfig:
    def test_resolve_explicit_path(self, tmp_path):
        assert resolve_cache_root(str(tmp_path)) == tmp_path

    def test_resolve_auto_honours_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envroot"))
        assert resolve_cache_root("auto") == tmp_path / "envroot"
        monkeypatch.delenv("REPRO_CACHE_DIR")
        default = resolve_cache_root("auto")
        assert default.name == "repro-spanning-trees"

    def test_cache_dir_requires_derived_cache(self, tmp_path):
        with pytest.raises(ConfigError):
            SamplerConfig(cache_dir=str(tmp_path), derived_cache=False)

    def test_disk_budget_requires_cache_dir(self):
        with pytest.raises(ConfigError):
            SamplerConfig(cache_disk_bytes=1 << 20)

    def test_invalid_budgets_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            SamplerConfig(cache_memory_bytes=0)
        with pytest.raises(ConfigError):
            SamplerConfig(cache_dir=str(tmp_path), cache_disk_bytes=0)
        with pytest.raises(ConfigError):
            SamplerConfig(cache_dir="  ")
