"""Tests for the matrix power ladder and Lemma 7 rounding."""

from __future__ import annotations

import numpy as np
import pytest

from repro import graphs
from repro.clique import RoundLedger
from repro.errors import GraphError, PrecisionError
from repro.linalg import PowerLadder, lemma7_error_bound, round_matrix_down


class TestRounding:
    def test_subtractive(self):
        m = np.array([[0.7, 0.3], [0.5, 0.5]])
        rounded = round_matrix_down(m, 4)
        assert np.all(rounded <= m + 1e-15)
        assert np.all(m - rounded < 2.0**-4)

    def test_high_precision_identity(self):
        m = np.array([[0.5, 0.5], [0.25, 0.75]])
        assert np.allclose(round_matrix_down(m, 52), m, atol=1e-15)

    def test_bits_validation(self):
        with pytest.raises(PrecisionError):
            round_matrix_down(np.eye(2), 0)


class TestLemma7Bound:
    def test_unrolled_recurrence(self):
        # E(1) <= delta; E(2) <= (n+1) E(1) + delta; E(4) <= (n+1) E(2) + d.
        assert lemma7_error_bound(3, 1, 0.5) == pytest.approx(0.5)
        assert lemma7_error_bound(3, 2, 0.5) == pytest.approx(0.5 * (1 + 4))
        assert lemma7_error_bound(3, 4, 0.5) == pytest.approx(0.5 * (1 + 4 + 16))

    def test_monotone_in_k(self):
        assert lemma7_error_bound(4, 16, 1e-9) >= lemma7_error_bound(4, 4, 1e-9)

    def test_invalid_k(self):
        with pytest.raises(GraphError):
            lemma7_error_bound(4, 0, 1e-9)


class TestPowerLadder:
    def test_exact_powers(self):
        g = graphs.cycle_with_chord(5)
        p = g.transition_matrix()
        ladder = PowerLadder(p, 8)
        assert np.allclose(ladder.power(1), p)
        assert np.allclose(ladder.power(2), p @ p)
        assert np.allclose(ladder.power(8), np.linalg.matrix_power(p, 8))
        assert ladder.exponents == (1, 2, 4, 8)

    def test_missing_power_raises(self):
        p = graphs.path_graph(3).transition_matrix()
        ladder = PowerLadder(p, 4)
        with pytest.raises(GraphError):
            ladder.power(3)
        with pytest.raises(GraphError):
            ladder.power(8)

    def test_power_any_binary_decomposition(self):
        p = graphs.cycle_with_chord(5).transition_matrix()
        ladder = PowerLadder(p, 16)
        for k in (1, 3, 5, 7, 11, 16):
            assert np.allclose(
                ladder.power_any(k), np.linalg.matrix_power(p, k), atol=1e-12
            )
        with pytest.raises(GraphError):
            ladder.power_any(0)
        with pytest.raises(GraphError):
            ladder.power_any(17)

    def test_non_power_of_two_ell_rejected(self):
        p = graphs.path_graph(3).transition_matrix()
        with pytest.raises(GraphError):
            PowerLadder(p, 6)

    def test_nonsquare_rejected(self):
        with pytest.raises(GraphError):
            PowerLadder(np.zeros((2, 3)), 4)

    def test_rounded_ladder_error_within_lemma7(self):
        g = graphs.complete_graph(6)
        p = g.transition_matrix()
        bits = 30
        ladder = PowerLadder(p, 16, bits=bits)
        exact = np.linalg.matrix_power(p, 16)
        observed = np.max(np.abs(exact - ladder.power(16)))
        assert observed <= ladder.max_subtractive_error_bound()
        # Rounded entries never exceed the exact ones (subtractive).
        assert np.all(ladder.power(16) <= exact + 1e-12)

    def test_exact_ladder_reports_zero_error(self):
        p = graphs.path_graph(3).transition_matrix()
        assert PowerLadder(p, 4).max_subtractive_error_bound() == 0.0

    def test_ledger_charged_per_squaring(self):
        g = graphs.cycle_graph(6)
        ledger = RoundLedger()
        PowerLadder(g.transition_matrix(), 16, ledger=ledger)
        # 4 squarings, each one matmul.
        per = ledger.model.matmul_rounds(6)
        assert ledger.total_rounds() == 4 * per

    def test_rounded_ladder_entry_words_cheaper(self):
        g = graphs.cycle_graph(64)
        exact_ledger, rounded_ledger = RoundLedger(), RoundLedger()
        PowerLadder(g.transition_matrix(), 4, ledger=exact_ledger)
        PowerLadder(g.transition_matrix(), 4, bits=8, ledger=rounded_ledger)
        # 8-bit entries (2 words at n = 64) are cheaper than the default
        # O(log n)-word estimate used for full-precision entries.
        assert rounded_ledger.total_rounds() <= exact_ledger.total_rounds()

    def test_stationary_convergence(self):
        """Huge powers converge to the stationary distribution (the regime
        the sampler's Theta~(n^3)-length ladders operate in)."""
        g = graphs.cycle_with_chord(5)  # aperiodic thanks to the chord
        p = g.transition_matrix()
        ladder = PowerLadder(p, 1 << 16)
        top = ladder.power(1 << 16)
        degrees = g.degrees()
        stationary = degrees / degrees.sum()
        for row in top:
            assert np.allclose(row, stationary, atol=1e-8)
