"""Wire-format tests: lossless JSON round trips for every result type.

`from_dict(to_dict(x))` must reconstruct an equal object after passing
through an actual JSON encode/decode (not just dict identity), for the
request dataclasses, the engine results (including their nested
`RoundLedger` and `PhaseStats`), the flat reports, and the full
`Response` envelope.
"""

from __future__ import annotations

import json

import pytest

from repro import graphs
from repro.api import (
    AuditRequest,
    EnsembleRequest,
    FastCoverReport,
    Response,
    RoundBillRequest,
    SampleRequest,
    Session,
    response_from_dict,
)
from repro.clique.cost import CostModel, RoundLedger
from repro.core.phase import PhaseStats
from repro.engine.ensemble import EnsembleResult
from repro.engine.results import SampleResult
from repro.errors import ConfigError


def json_round_trip(payload: dict) -> dict:
    """Force an actual wire trip: encode to JSON text and back."""
    return json.loads(json.dumps(payload))


@pytest.fixture(scope="module")
def session() -> Session:
    return Session(graphs.cycle_graph(6), "fast-audit", seed=5)


class TestLeafTypes:
    def test_round_ledger(self):
        ledger = RoundLedger(CostModel(matmul_constant=2.0))
        ledger.charge("matmul", 7, "unit test")
        with ledger.section("phase-1"):
            ledger.charge_matmul(8, count=2, note="ladder")
        rebuilt = RoundLedger.from_dict(json_round_trip(ledger.to_dict()))
        assert rebuilt == ledger
        assert rebuilt.total_rounds() == ledger.total_rounds()
        assert rebuilt.rounds_by_category() == ledger.rounds_by_category()

    def test_phase_stats(self):
        stats = PhaseStats(
            subset_size=6, rho_eff=2, walk_length=40, distinct_visited=2,
            levels=3, extensions=1, new_vertices=[4, 2],
        )
        assert PhaseStats.from_dict(json_round_trip(stats.to_dict())) == stats


class TestResultRoundTrips:
    def test_sample_result(self, session):
        result = session.run(SampleRequest(seed=1)).result
        rebuilt = SampleResult.from_dict(json_round_trip(result.to_dict()))
        assert rebuilt == result
        assert rebuilt.tree == result.tree
        assert rebuilt.ledger.total_rounds() == result.rounds

    def test_ensemble_result(self, session):
        result = session.run(EnsembleRequest(count=3, seed=2, jobs=1)).result
        rebuilt = EnsembleResult.from_dict(json_round_trip(result.to_dict()))
        assert rebuilt == result
        assert rebuilt.trees == result.trees

    def test_audit_report(self, session):
        report = session.run(AuditRequest(samples=60, seed=3)).result
        rebuilt = type(report).from_dict(json_round_trip(report.to_dict()))
        assert rebuilt == report

    def test_roundbill_report(self, session):
        report = session.run(RoundBillRequest(seed=4)).result
        rebuilt = type(report).from_dict(json_round_trip(report.to_dict()))
        assert rebuilt == report

    def test_fastcover_report(self, session):
        report = session.run(SampleRequest(variant="fastcover", seed=5)).result
        rebuilt = FastCoverReport.from_dict(json_round_trip(report.to_dict()))
        assert rebuilt == report


class TestResponseEnvelope:
    @pytest.mark.parametrize(
        "request_obj",
        [
            SampleRequest(seed=1),
            SampleRequest(variant="fastcover", seed=2),
            EnsembleRequest(count=3, seed=3, jobs=1, leverage_audit=True),
            AuditRequest(samples=40, seed=4),
            RoundBillRequest(seed=5),
        ],
        ids=["sample", "fastcover", "ensemble", "audit", "roundbill"],
    )
    def test_full_envelope_round_trip(self, session, request_obj):
        response = session.run(request_obj)
        wire = json_round_trip(response.to_dict())
        rebuilt = response_from_dict(wire)
        assert rebuilt.kind == response.kind
        assert rebuilt.meta == response.meta
        assert rebuilt.result == response.result
        # a second trip is stable (canonical wire form)
        assert rebuilt.to_dict() == wire

    def test_to_json_is_loadable(self, session):
        response = session.run(SampleRequest(seed=9))
        assert json.loads(response.to_json())["kind"] == "sample"

    def test_unknown_result_type_rejected(self):
        with pytest.raises(ConfigError, match="unknown result type"):
            response_from_dict(
                {"kind": "sample", "result_type": "Hologram", "result": {}}
            )

    def test_streamed_results_serialize_like_batch(self, session):
        request = EnsembleRequest(count=3, seed=8, jobs=1)
        batch = session.run(request).result.results
        streamed = list(session.stream(request))
        assert [r.to_dict() for r in streamed] == [
            r.to_dict() for r in batch
        ]


class TestNonFiniteWireSafety:
    """--json output must stay RFC 8259 even for degenerate statistics."""

    @staticmethod
    def _nan_response():
        from repro.api.responses import AuditReport

        report = AuditReport(
            spanning_trees=1,
            samples=0,
            tv_to_uniform=float("nan"),
            chi_square_p=float("inf"),
            noise_floor=float("-inf"),
            verdict="DEGENERATE",
            mean_rounds=0.0,
        )
        return Response(
            kind="audit", result=report, meta={"tv": float("nan")}
        )

    def test_to_json_emits_no_bare_nan_tokens(self):
        text = self._nan_response().to_json()
        # strict parsing (RFC 8259) must succeed: no NaN/Infinity tokens
        payload = json.loads(
            text, parse_constant=lambda token: pytest.fail(token)
        )
        assert payload["result"]["tv_to_uniform"] == "NaN"
        assert payload["result"]["chi_square_p"] == "Infinity"
        assert payload["result"]["noise_floor"] == "-Infinity"
        assert payload["meta"]["tv"] == "NaN"

    def test_nonfinite_round_trip_restores_floats(self):
        import math

        response = self._nan_response()
        rebuilt = response_from_dict(json.loads(response.to_json()))
        assert math.isnan(rebuilt.result.tv_to_uniform)
        assert rebuilt.result.chi_square_p == float("inf")
        assert rebuilt.result.noise_floor == float("-inf")
        assert math.isnan(rebuilt.meta["tv"])
        assert rebuilt.result.verdict == "DEGENERATE"
        # finite fields are untouched
        assert rebuilt.result.mean_rounds == 0.0

    def test_sanitize_and_restore_are_inverse_on_finite_payloads(self):
        from repro.api.responses import restore_nonfinite, sanitize_nonfinite

        payload = {"a": 1.5, "b": ["x", 2, {"c": 0.0}], "d": None}
        assert restore_nonfinite(sanitize_nonfinite(payload)) == payload

    def test_literal_sentinel_strings_survive_round_trip(self):
        """A user string that *looks* like a sentinel must stay a string."""
        from repro.api.responses import RoundBillReport

        report = RoundBillReport(
            approximate_rounds=1, approximate_phases=1, exact_rounds=1,
            exact_phases=1, fastcover_rounds=1, fastcover_walk_length=1,
        )
        meta = {"note": "Infinity", "nested": ["NaN", "\\NaN", "-Infinity"]}
        response = Response(kind="roundbill", result=report, meta=meta)
        rebuilt = response_from_dict(json.loads(response.to_json()))
        assert rebuilt.meta == meta  # strings, not floats
        # the in-memory dict path is the same sanitized structure, so it
        # restores identically without a JSON text trip
        assert response_from_dict(response.to_dict()).meta == meta

    def test_finite_responses_unchanged_by_strict_emitter(self, session):
        response = session.run(SampleRequest(seed=9))
        assert json.loads(response.to_json()) == json_round_trip(
            response.to_dict()
        )


class TestEnvelopeShape:
    def test_result_type_tags(self, session):
        assert (
            session.run(SampleRequest(seed=1)).to_dict()["result_type"]
            == "SampleResult"
        )
        assert (
            session.run(RoundBillRequest(seed=1)).to_dict()["result_type"]
            == "RoundBillReport"
        )

    def test_meta_is_json_safe(self, session):
        response = session.run(
            EnsembleRequest(count=4, seed=6, jobs=1, leverage_audit=True)
        )
        json.dumps(response.meta)  # must not raise

    def test_response_is_dataclass_with_kind(self, session):
        response = session.run(SampleRequest(seed=0))
        assert isinstance(response, Response)
        assert response.kind == "sample"
