"""Tests for the load-balanced doubling algorithm (Section 3, Theorem 2)."""

from __future__ import annotations

import math
from collections import Counter

import numpy as np
import pytest

from repro import graphs
from repro.errors import WalkError
from repro.graphs import is_spanning_tree
from repro.walks import doubling_random_walk, spanning_tree_via_doubling
from repro.walks.sequential import random_walk


class TestWalkValidity:
    def test_every_vertex_gets_a_walk(self, rng):
        g = graphs.cycle_with_chord(8)
        result = doubling_random_walk(g, 16, rng)
        assert result.walks.shape == (8, 17)
        for v in range(8):
            walk = result.walk(v)
            assert walk[0] == v
            assert all(g.has_edge(a, b) for a, b in zip(walk, walk[1:]))

    def test_length_rounds_up_to_power_of_two(self, rng):
        g = graphs.complete_graph(6)
        result = doubling_random_walk(g, 10, rng)
        assert result.length == 16

    def test_invalid_inputs(self, rng):
        g = graphs.path_graph(4)
        with pytest.raises(WalkError):
            doubling_random_walk(g, 0, rng)

    def test_single_step_walk(self, rng):
        g = graphs.path_graph(4)
        result = doubling_random_walk(g, 1, rng)
        assert result.length == 1
        assert result.iterations == []

    def test_iteration_count(self, rng):
        g = graphs.complete_graph(6)
        result = doubling_random_walk(g, 32, rng)
        assert len(result.iterations) == 5  # log2(32)
        ks = [it.k for it in result.iterations]
        assert ks == [32, 16, 8, 4, 2]


class TestWalkDistribution:
    def test_marginal_matches_direct_walk(self, rng):
        """Each constructed walk is individually a faithful random walk:
        compare the law of the position at time 4."""
        g = graphs.cycle_with_chord(5)
        n_samples = 1500
        doubled = Counter(
            doubling_random_walk(g, 4, rng).walk(0)[4] for _ in range(n_samples)
        )
        direct = Counter(
            random_walk(g, 0, 4, rng)[4] for _ in range(n_samples)
        )
        tv = 0.5 * sum(
            abs(doubled[v] / n_samples - direct[v] / n_samples)
            for v in range(5)
        )
        assert tv < 0.07


class TestLoadBalancing:
    """Lemma 10 (E8): hashed routing keeps per-machine loads near k log n."""

    def test_balanced_load_bound(self, rng):
        n, tau = 32, 64
        g = graphs.star_graph(n)
        result = doubling_random_walk(g, tau, rng, load_balanced=True)
        c = 1
        k = 64
        bound = 16 * c * k * math.ceil(math.log2(n))
        assert result.max_tuples_received <= bound

    def test_naive_hotspot_on_star(self, rng):
        """Without hashing, the star's hub receives ~half of ALL prefixes."""
        n, tau = 32, 64
        g = graphs.star_graph(n)
        balanced = doubling_random_walk(g, tau, rng, load_balanced=True)
        naive = doubling_random_walk(g, tau, rng, load_balanced=False)
        assert naive.max_tuples_received > 3 * balanced.max_tuples_received

    def test_naive_fine_on_regular_graph(self, rng):
        """On near-regular graphs the naive variant is intrinsically
        balanced (the paper's remark after Corollary 1)."""
        g = graphs.random_regular_graph(32, 4, rng=rng)
        naive = doubling_random_walk(g, 64, rng, load_balanced=False)
        balanced = doubling_random_walk(g, 64, rng, load_balanced=True)
        assert naive.max_tuples_received < 4 * balanced.max_tuples_received


class TestRoundScaling:
    """Theorem 2 (E3): rounds ~ (tau / n) log tau log n for long walks."""

    def test_rounds_grow_roughly_linearly_in_tau(self, rng):
        g = graphs.random_regular_graph(16, 4, rng=rng)
        short = doubling_random_walk(g, 64, rng).rounds
        long = doubling_random_walk(g, 512, rng).rounds
        ratio = long / short
        assert 3.0 < ratio < 24.0  # ~8x walk -> ~8-12x rounds with logs

    def test_short_walk_logarithmic_rounds(self, rng):
        g = graphs.random_regular_graph(64, 4, rng=rng)
        result = doubling_random_walk(g, 8, rng)
        # tau = O(n / log n): every iteration fits the bandwidth budget,
        # so rounds stay within a polylog envelope.
        assert result.rounds <= 12 * math.ceil(math.log2(8)) + 20


class TestSpanningTreeViaDoubling:
    """Corollary 1 (E4)."""

    def test_returns_valid_tree(self, rng):
        g = graphs.random_regular_graph(16, 4, rng=rng)
        tree, result = spanning_tree_via_doubling(g, rng)
        assert is_spanning_tree(g, tree)
        assert result.rounds > 0

    def test_retry_doubles_on_short_walks(self, rng):
        g = graphs.cycle_graph(12)  # cover time ~ n^2 >> n
        tree, result = spanning_tree_via_doubling(g, rng, walk_length=4)
        assert is_spanning_tree(g, tree)
        # Must have gone through multiple attempts.
        assert len({it.k for it in result.iterations}) >= 2

    def test_uniformity(self, rng):
        from repro.analysis import expected_tv_noise, tv_to_uniform

        g = graphs.cycle_with_chord(5)
        n_samples = 1200
        trees = [
            spanning_tree_via_doubling(g, rng)[0] for _ in range(n_samples)
        ]
        assert tv_to_uniform(g, trees) < 4 * expected_tv_noise(11, n_samples)
