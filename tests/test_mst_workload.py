"""The MST workload's correctness spine: every result oracle-gated.

The distributed MST runner and the sequential Kruskal oracle share the
``(weight, edge index)`` total order, under which the minimum spanning
forest is *unique* -- so the gate is exact edge-set AND byte-exact
weight equality, never a tolerance, on every registered graph family,
both recipes, and both RNG contracts:

- **unique-weight instances** (``weights="random"``: i.i.d. uniform
  draws, distinct with probability 1): exact forest + weight equality
  against Kruskal and Boruvka;
- **tie-prone instances** (``weights="tie-prone"``: draws quantized to
  multiples of 1/8, exactly representable so partial sums are
  order-independent): the deliberately different ``tie_break="reverse"``
  Kruskal oracle may pick a different forest, but total weight equality
  must still be byte-exact -- the tie-robust invariant;
- **round bills**: ledger totals equal the closed forms in
  :mod:`repro.core.rounds` and land only in the recipe's registered
  ledger categories;
- **RNG contracts**: weights depend only on (edge order, mode, seed),
  so reports are byte-identical under ``rng_contract`` v1 and v2.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import MSTRequest, Session, preset_config, response_from_dict
from repro.core.mst import resolve_weights, run_mst
from repro.core.rounds import mst_kkt_rounds, mst_node_cc_rounds
from repro.core.workloads import get_workload
from repro.errors import ConfigError
from repro.graphs.families import build_family, family_names
from repro.walks.sequential import boruvka_forest, forest_weight, kruskal_forest

MST = get_workload("mst")
FAMILY_CELLS = [
    pytest.param(family, recipe, id=f"{family}-{recipe}")
    for family in family_names()
    for recipe in MST.recipe_names()
]


def small_graph(family: str, n: int = 12):
    graph, meta = build_family(family, n, np.random.default_rng(0))
    return graph, meta


class TestOracleGate:
    @pytest.mark.parametrize("family,recipe", FAMILY_CELLS)
    def test_distributed_equals_kruskal_on_unique_weights(
        self, family, recipe
    ):
        """Unique weights: exact forest and byte-exact weight equality."""
        graph, _ = small_graph(family)
        weights = resolve_weights(graph, "random", 7)
        assert len(set(weights.tolist())) == len(weights)  # unique w.p. 1
        result = run_mst(
            graph, recipe=MST.get_recipe(recipe), weights=weights
        )
        forest, weight = kruskal_forest(graph, weights)
        assert result.forest == forest
        assert result.total_weight == weight  # byte-exact, not approx

    @pytest.mark.parametrize("family,recipe", FAMILY_CELLS)
    def test_tie_prone_instances_keep_weight_equality(self, family, recipe):
        """Ties: any valid tie-break agrees on weight, byte-exactly.

        The shared-order Kruskal oracle must still match edge-for-edge;
        the reverse-tie-break oracle is a *different* valid MSF whose
        total weight must nevertheless be byte-equal (quantized weights
        sum order-independently).
        """
        graph, _ = small_graph(family)
        weights = resolve_weights(graph, "tie-prone", 7)
        assert len(set(weights.tolist())) < len(weights), (
            "tie-prone instances must actually tie"
        )
        result = run_mst(
            graph, recipe=MST.get_recipe(recipe), weights=weights
        )
        forest, weight = kruskal_forest(graph, weights)
        assert result.forest == forest and result.total_weight == weight
        reverse_forest, reverse_weight = kruskal_forest(
            graph, weights, tie_break="reverse"
        )
        assert result.total_weight == reverse_weight
        if reverse_forest != result.forest:
            # The interesting case: different forests, equal weight.
            assert forest_weight(weights, [
                i for i, _ in enumerate(graph.edges())
                if (min(*graph.edges()[i]), max(*graph.edges()[i]))
                in reverse_forest
            ]) == result.total_weight

    @pytest.mark.parametrize("family", family_names())
    def test_boruvka_oracle_agrees_with_kruskal(self, family):
        graph, _ = small_graph(family)
        for mode in ("random", "tie-prone", "graph"):
            weights = resolve_weights(graph, mode, 3)
            k_forest, k_weight = kruskal_forest(graph, weights)
            b_forest, b_weight, phases = boruvka_forest(graph, weights)
            assert b_forest == k_forest
            assert b_weight == k_weight
            assert 1 <= phases <= max(1, int(np.ceil(np.log2(graph.n))))

    def test_oracle_rejects_malformed_weights(self):
        graph, _ = small_graph("cycle")
        from repro.errors import WalkError

        with pytest.raises(WalkError, match="one weight per edge"):
            kruskal_forest(graph, [1.0, 2.0])
        with pytest.raises(WalkError, match="finite"):
            kruskal_forest(graph, [float("nan")] * len(graph.edges()))
        with pytest.raises(WalkError, match="tie_break"):
            kruskal_forest(
                graph, resolve_weights(graph, "random", 0), tie_break="x"
            )


class TestRoundBills:
    @pytest.mark.parametrize("family", ("gnp", "cycle", "complete"))
    def test_kkt_ledger_matches_closed_form(self, family):
        graph, _ = small_graph(family, 16)
        weights = resolve_weights(graph, "random", 1)
        result = run_mst(
            graph, recipe=MST.get_recipe("kkt-o1"), weights=weights
        )
        assert result.rounds == result.ledger.total_rounds()
        assert result.rounds == mst_kkt_rounds(graph.n, len(graph.edges()))
        assert set(result.ledger.rounds_by_category()) <= set(
            MST.get_recipe("kkt-o1").categories
        )

    @pytest.mark.parametrize("family", ("gnp", "cycle", "complete"))
    def test_node_cc_ledger_matches_closed_form(self, family):
        graph, _ = small_graph(family, 16)
        weights = resolve_weights(graph, "random", 1)
        result = run_mst(
            graph, recipe=MST.get_recipe("node-cc-msf"), weights=weights
        )
        assert result.rounds == result.ledger.total_rounds()
        assert result.rounds == mst_node_cc_rounds(graph.n, result.phases)
        assert set(result.ledger.rounds_by_category()) <= set(
            MST.get_recipe("node-cc-msf").categories
        )

    def test_unimplemented_recipe_fails_loudly(self):
        from repro.core.workloads import WorkloadRecipe

        graph, _ = small_graph("cycle")
        ghost = WorkloadRecipe(
            name="ghost", description="", paper_ref="", comm_model="unicast",
            rounds_formula="O(1)",
        )
        with pytest.raises(ConfigError, match="no registered billing"):
            run_mst(
                graph, recipe=ghost,
                weights=resolve_weights(graph, "random", 0),
            )


class TestSessionGate:
    def session(self, family="gnp", n=24, contract="v2"):
        graph, meta = small_graph(family, n)
        config = preset_config("fast-bench", rng_contract=contract)
        return Session(graph, config, seed=0, meta=meta)

    def test_report_carries_the_oracle_verdict(self):
        response = self.session().run(MSTRequest(seed=7))
        report = response.result
        assert report.oracle == "kruskal"
        assert report.oracle_match is True
        assert report.oracle_weight == report.total_weight
        assert len(report.forest) == response.meta["n"] - 1
        assert response.meta["comm_model"] == "unicast"

    @pytest.mark.parametrize("recipe", MST.recipe_names())
    @pytest.mark.parametrize("mode", MST.weight_modes)
    def test_both_rng_contracts_report_identically(self, recipe, mode):
        """Weights derive from (edge order, mode, seed) alone, so the
        report is byte-identical under either randomness contract."""
        reports = [
            self.session(contract=contract)
            .run(MSTRequest(recipe=recipe, weights=mode, seed=11))
            .result
            for contract in ("v1", "v2")
        ]
        assert reports[0] == reports[1]

    def test_pinned_seed_is_session_history_invariant(self):
        fresh = self.session().run(MSTRequest(seed=5)).result
        busy = self.session()
        busy.run(MSTRequest(seed=1))
        busy.run(MSTRequest(weights="tie-prone"))  # lineage consumer
        assert busy.run(MSTRequest(seed=5)).result == fresh

    def test_stream_equals_run(self):
        batch = self.session().run(MSTRequest(seed=7)).result
        stats: dict = {}
        streamed = list(
            self.session().stream(MSTRequest(seed=7), stats=stats)
        )
        assert streamed == [batch]
        assert stats["degraded"] is False

    def test_wire_round_trip_is_lossless(self):
        response = self.session().run(
            MSTRequest(recipe="node-cc-msf", weights="tie-prone", seed=3)
        )
        rebuilt = response_from_dict(json.loads(response.to_json()))
        assert rebuilt.result == response.result
        assert rebuilt.result.rounds_by_category() == (
            response.result.rounds_by_category()
        )


class TestCLI:
    def test_mst_json_smoke(self, capsys):
        from repro.cli import main

        assert main([
            "mst", "--family", "gnp", "--n", "16", "--seed", "7", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["result_type"] == "MSTReport"
        assert payload["result"]["oracle_match"] is True

    def test_mst_human_rendering_names_the_oracle(self, capsys):
        from repro.cli import main

        assert main([
            "mst", "--family", "cycle", "--n", "8",
            "--recipe", "node-cc-msf", "--weights", "tie-prone",
        ]) == 0
        out = capsys.readouterr().out
        assert "oracle (kruskal)" in out
        assert "match: yes" in out
        assert "node-congested-clique" in out
