"""Tests for the distributed truncation search (Algorithm 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import graphs
from repro.clique import CongestedClique
from repro.core.midpoints import MidpointBank
from repro.core.truncation import (
    LevelView,
    check_truncation_point,
    find_truncation_index,
    find_truncation_index_fast,
)
from repro.errors import WalkError
from repro.linalg import PowerLadder
from repro.walks.fill import PartialWalk


def make_view(rng, walk_vertices, spacing=4, graph=None):
    g = graph if graph is not None else graphs.complete_graph(5)
    ladder = PowerLadder(g.transition_matrix(), spacing)
    walk = PartialWalk(spacing, walk_vertices)
    pair_counts = {}
    for pair in walk.pairs():
        pair_counts[pair] = pair_counts.get(pair, 0) + 1
    bank = MidpointBank(pair_counts, ladder.power(spacing // 2), rng)
    return LevelView(walk, bank)


class TestLevelView:
    def test_positions_and_values(self, rng):
        view = make_view(rng, [0, 2, 0, 3])
        assert view.top == 6
        assert view.value_at(0) == 0
        assert view.value_at(2) == 2
        assert view.value_at(6) == 3
        # Odd positions come from the bank's sequences.
        assert view.value_at(1) == view.bank.value_at((0, 2), 0)
        assert view.value_at(5) == view.bank.value_at((0, 3), 0)

    def test_repeated_pairs_use_occurrence_order(self, rng):
        view = make_view(rng, [0, 2, 0, 2])
        # Gaps: (0,2), (2,0), (0,2) -> second (0,2) is occurrence 1.
        assert view.value_at(5) == view.bank.value_at((0, 2), 1)

    def test_out_of_range(self, rng):
        view = make_view(rng, [0, 2])
        with pytest.raises(WalkError):
            view.value_at(3)
        with pytest.raises(WalkError):
            view.value_at(-1)

    def test_truncated_pair_counts(self, rng):
        view = make_view(rng, [0, 2, 0, 2])
        assert view.truncated_pair_counts(0) == {}
        assert view.truncated_pair_counts(1) == {(0, 2): 1}
        assert view.truncated_pair_counts(4) == {(0, 2): 1, (2, 0): 1}
        assert view.truncated_pair_counts(6) == {(0, 2): 2, (2, 0): 1}

    def test_midpoint_positions(self, rng):
        view = make_view(rng, [0, 2, 0])
        assert view.midpoint_positions_upto(4) == [1, 3]
        assert view.midpoint_positions_upto(2) == [1]


class TestCheckTruncationPoint:
    def test_matches_sequential_scan(self, rng):
        """The predicate is True exactly up to the first occurrence of the
        rho-th distinct vertex of the conceptual filled walk."""
        for trial in range(30):
            local_rng = np.random.default_rng(trial)
            view = make_view(local_rng, [0, 2, 0, 3, 0])
            filled = [view.value_at(t) for t in range(view.top + 1)]
            for rho in (2, 3, 4):
                seen: set[int] = set()
                t_star = view.top
                for t, v in enumerate(filled):
                    if v not in seen:
                        seen.add(v)
                        if len(seen) == rho:
                            t_star = t
                            break
                for t in range(view.top + 1):
                    expected = t <= t_star
                    assert check_truncation_point(view, t, rho) == expected, (
                        trial, rho, t, filled,
                    )

    def test_monotone(self, rng):
        view = make_view(rng, [0, 2, 0, 3])
        values = [check_truncation_point(view, t, 3) for t in range(view.top + 1)]
        # Once False, always False.
        if False in values:
            first_false = values.index(False)
            assert not any(values[first_false:])


class TestFindTruncationIndex:
    def test_agrees_with_linear_scan(self, rng):
        for trial in range(30):
            local_rng = np.random.default_rng(1000 + trial)
            view = make_view(local_rng, [0, 2, 0, 3, 0, 2])
            for rho in (2, 3, 4, 5):
                expected = view.top
                seen: set[int] = set()
                for t in range(view.top + 1):
                    v = view.value_at(t)
                    if v not in seen:
                        seen.add(v)
                        if len(seen) == rho:
                            expected = t
                            break
                assert find_truncation_index(view, rho) == expected

    def test_rho_validation(self, rng):
        view = make_view(rng, [0, 2])
        with pytest.raises(WalkError):
            find_truncation_index(view, 1)

    def test_charges_rounds_per_probe(self, rng):
        clique = CongestedClique(5)
        view = make_view(rng, [0, 2, 0, 3, 0, 2])
        find_truncation_index(view, 3, clique=clique)
        assert clique.ledger.rounds_by_category().get(
            "truncation/aggregate", 0
        ) > 0


class TestFastTruncationIndex:
    """The batched-mode direct scan: same answer, same probe charges."""

    def test_matches_probing_search_and_charges(self, rng):
        for trial in range(40):
            local_rng = np.random.default_rng(2000 + trial)
            vertices = [
                int(v) for v in local_rng.integers(0, 5, size=1 + 2 * int(
                    local_rng.integers(1, 5)
                ))
            ]
            for rho in (2, 3, 4, 5):
                # Two identically seeded views: MidpointBank consumes rng.
                probing_view = make_view(
                    np.random.default_rng(7000 + trial), vertices
                )
                fast_view = make_view(
                    np.random.default_rng(7000 + trial), vertices
                )
                probing_clique = CongestedClique(5)
                fast_clique = CongestedClique(5)
                expected = find_truncation_index(
                    probing_view, rho, clique=probing_clique
                )
                fast = find_truncation_index_fast(
                    fast_view, rho, clique=fast_clique
                )
                assert fast == expected, (trial, rho, vertices)
                assert (
                    fast_clique.ledger.rounds_by_category()
                    == probing_clique.ledger.rounds_by_category()
                ), (trial, rho, vertices)

    def test_rho_validation(self, rng):
        view = make_view(rng, [0, 2])
        with pytest.raises(WalkError):
            find_truncation_index_fast(view, 1)
