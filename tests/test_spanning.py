"""Tests for Matrix-Tree counting, enumeration, and tree encodings."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import graphs
from repro.errors import DisconnectedGraphError, GraphError
from repro.graphs import (
    WeightedGraph,
    count_spanning_trees,
    enumerate_spanning_trees,
    is_spanning_tree,
    tree_key,
    uniform_tree_distribution,
)
from repro.graphs.spanning import tree_weight


class TestTreeKey:
    def test_normalizes_edge_orientation(self):
        assert tree_key([(2, 1), (0, 1)]) == tree_key([(1, 2), (1, 0)])

    def test_sorted_output(self):
        assert tree_key([(3, 2), (1, 0)]) == ((0, 1), (2, 3))


class TestIsSpanningTree:
    def test_accepts_path_tree(self):
        g = graphs.cycle_graph(4)
        assert is_spanning_tree(g, [(0, 1), (1, 2), (2, 3)])

    def test_rejects_cycle(self):
        g = graphs.complete_graph(4)
        assert not is_spanning_tree(g, [(0, 1), (1, 2), (0, 2)])

    def test_rejects_wrong_count(self):
        g = graphs.complete_graph(4)
        assert not is_spanning_tree(g, [(0, 1), (1, 2)])

    def test_rejects_non_edges(self):
        g = graphs.path_graph(4)
        assert not is_spanning_tree(g, [(0, 1), (1, 2), (0, 3)])

    def test_rejects_duplicate_edges(self):
        g = graphs.complete_graph(4)
        assert not is_spanning_tree(g, [(0, 1), (1, 0), (2, 3)])


class TestMatrixTree:
    @pytest.mark.parametrize(
        "factory, expected",
        [
            (lambda: graphs.cycle_graph(5), 5),
            (lambda: graphs.cycle_graph(8), 8),
            (lambda: graphs.complete_graph(4), 16),   # Cayley 4^2
            (lambda: graphs.complete_graph(5), 125),  # Cayley 5^3
            (lambda: graphs.path_graph(6), 1),
            (lambda: graphs.star_graph(7), 1),
            (lambda: graphs.wheel_graph(4), 16),      # W3 = K4
        ],
    )
    def test_known_counts(self, factory, expected):
        assert count_spanning_trees(factory()) == pytest.approx(expected)

    def test_disconnected_counts_zero(self):
        g = WeightedGraph.from_edges(4, [(0, 1), (2, 3)])
        assert count_spanning_trees(g) == pytest.approx(0.0)

    def test_weighted_count_is_total_tree_weight(self, weighted_triangle):
        # Trees: {01,12}=2, {01,02}=3, {12,02}=6 -> total 11.
        assert count_spanning_trees(weighted_triangle) == pytest.approx(11.0)

    def test_singleton(self):
        assert count_spanning_trees(WeightedGraph.from_edges(1, [])) == 1.0


class TestEnumeration:
    def test_matches_matrix_tree(self, small_graphs):
        for name, g in small_graphs.items():
            trees = enumerate_spanning_trees(g)
            assert len(trees) == pytest.approx(
                count_spanning_trees(g), rel=1e-9
            ), name

    def test_each_enumerated_is_valid(self):
        g = graphs.cycle_with_chord(5)
        for tree in enumerate_spanning_trees(g):
            assert is_spanning_tree(g, tree)

    def test_no_duplicates(self):
        g = graphs.complete_graph(4)
        trees = enumerate_spanning_trees(g)
        assert len(set(trees)) == len(trees)

    def test_disconnected_raises(self):
        g = WeightedGraph.from_edges(4, [(0, 1), (2, 3)])
        with pytest.raises(DisconnectedGraphError):
            enumerate_spanning_trees(g)

    def test_limit_guard(self):
        g = graphs.complete_graph(9)
        with pytest.raises(GraphError):
            enumerate_spanning_trees(g, limit=10)


class TestUniformDistribution:
    def test_unweighted_uniform(self):
        g = graphs.cycle_graph(6)
        dist = uniform_tree_distribution(g)
        assert len(dist) == 6
        assert all(p == pytest.approx(1.0 / 6.0) for p in dist.values())

    def test_weighted_proportional(self, weighted_triangle):
        dist = uniform_tree_distribution(weighted_triangle)
        probs = sorted(dist.values())
        assert probs == pytest.approx([2 / 11, 3 / 11, 6 / 11])

    def test_sums_to_one(self, small_graphs):
        for name, g in small_graphs.items():
            assert sum(uniform_tree_distribution(g).values()) == pytest.approx(
                1.0
            ), name

    def test_tree_weight_unweighted_is_one(self):
        g = graphs.cycle_graph(4)
        for tree in enumerate_spanning_trees(g):
            assert tree_weight(g, tree) == pytest.approx(1.0)


@given(n=st.integers(3, 8), extra_seed=st.integers(0, 1000))
@settings(max_examples=20, deadline=None)
def test_matrix_tree_equals_enumeration_on_random_graphs(n, extra_seed):
    """Property: Kirchhoff's count equals brute-force enumeration."""
    import numpy as np

    rng = np.random.default_rng(extra_seed)
    g = graphs.erdos_renyi_graph(n, p=0.6, rng=rng)
    if g.m > 16:
        return  # keep enumeration cheap
    assert len(enumerate_spanning_trees(g)) == pytest.approx(
        count_spanning_trees(g), rel=1e-8
    )


@given(
    deletions=st.lists(st.integers(0, 9), max_size=3, unique=True),
)
@settings(max_examples=20, deadline=None)
def test_deletion_monotonicity(deletions):
    """Property: deleting edges never increases the spanning tree count."""
    g = graphs.complete_graph(5)
    edges = list(g.edges())
    kept = [e for i, e in enumerate(edges) if i not in set(deletions)]
    smaller = WeightedGraph.from_edges(5, kept)
    assert count_spanning_trees(smaller) <= count_spanning_trees(g) + 1e-9
