"""Tests for the command-line interface."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import FAMILIES, build_graph, main
from repro.errors import ReproError


class TestBuildGraph:
    def test_every_family_instantiates_connected(self, rng):
        for name in FAMILIES:
            g = build_graph(name, 16, rng)
            assert g.is_connected(), name
            assert g.n >= 8, name

    def test_unknown_family(self, rng):
        with pytest.raises(ReproError):
            build_graph("hypercube", 16, rng)


class TestSampleCommand:
    @pytest.mark.parametrize("variant", ["approximate", "exact", "fastcover"])
    def test_sample_runs(self, capsys, variant):
        code = main([
            "sample", "--family", "complete", "--n", "8",
            "--variant", variant, "--seed", "1", "--ell", "1024",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "rounds" in out
        assert "tree" in out

    def test_json_output_parses(self, capsys):
        code = main([
            "sample", "--family", "cycle", "--n", "6", "--json",
            "--ell", "1024",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "sample"
        assert payload["meta"]["n"] == 6
        assert len(payload["result"]["tree"]) == 5

    def test_json_envelope_loads_as_typed_response(self, capsys):
        from repro.api import response_from_dict

        main(["sample", "--family", "cycle", "--n", "6", "--json",
              "--ell", "1024", "--seed", "3"])
        response = response_from_dict(json.loads(capsys.readouterr().out))
        assert response.kind == "sample"
        assert response.result.rounds > 0
        assert len(response.result.tree) == 5

    def test_json_golden(self, capsys):
        """Golden test: the --json envelope for a pinned seed/instance.

        Regenerated once for the v2 RNG contract (see tests/README.md);
        the v1 bit stream remains pinned via --rng-contract v1 below.
        """
        code = main([
            "sample", "--family", "cycle", "--n", "6", "--json",
            "--seed", "0", "--ell", "1024",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "sample"
        assert payload["result_type"] == "SampleResult"
        for key, value in {
            "family": "cycle", "requested_n": 6, "n": 6,
            "size_adjusted": False, "variant": "approximate", "seed": 0,
            "rng_contract": "v2",
        }.items():
            assert payload["meta"][key] == value, key
        assert payload["result"]["tree"] == [
            [0, 5], [1, 2], [2, 3], [3, 4], [4, 5]
        ]
        assert payload["result"]["rounds"] == 1110
        assert payload["result"]["phases"] == 5

    def test_json_golden_v1_contract(self, capsys):
        """The pre-v2 bit stream stays reachable: --rng-contract v1
        reproduces the exact envelope pinned before the contract change."""
        code = main([
            "sample", "--family", "cycle", "--n", "6", "--json",
            "--seed", "0", "--ell", "1024", "--rng-contract", "v1",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["meta"]["rng_contract"] == "v1"
        assert payload["result"]["tree"] == [
            [0, 5], [1, 2], [2, 3], [3, 4], [4, 5]
        ]
        assert payload["result"]["rounds"] == 1111
        assert payload["result"]["phases"] == 5

    def test_deterministic_given_seed(self, capsys):
        argv = ["sample", "--family", "wheel", "--n", "8", "--json",
                "--seed", "9", "--ell", "1024"]
        main(argv)
        first = json.loads(capsys.readouterr().out)
        main(argv)
        second = json.loads(capsys.readouterr().out)
        # Identical modulo wall-clock timing, which is honest about time.
        first["meta"].pop("seconds")
        second["meta"].pop("seconds")
        assert first == second


class TestRoundsCommand:
    def test_prints_comparison(self, capsys):
        code = main(["rounds", "--family", "complete", "--n", "9",
                     "--ell", "1024"])
        assert code == 0
        out = capsys.readouterr().out
        assert "approximate" in out
        assert "exact" in out
        assert "fastcover" in out


class TestPageRankCommand:
    def test_prints_error_and_top_vertices(self, capsys):
        code = main(["pagerank", "--family", "wheel", "--n", "12",
                     "--walks", "16"])
        assert code == 0
        out = capsys.readouterr().out
        assert "L1 error" in out
        assert "vertex" in out


class TestAuditCommand:
    def test_uniform_verdict_on_cycle(self, capsys):
        code = main(["audit", "--family", "cycle", "--n", "6",
                     "--samples", "400", "--ell", "1024"])
        assert code == 0
        out = capsys.readouterr().out
        assert "UNIFORM" in out

    def test_refuses_huge_tree_counts(self, capsys):
        code = main(["audit", "--family", "complete", "--n", "16"])
        assert code == 2
        assert "smaller instance" in capsys.readouterr().err


class TestFamiliesCommand:
    def test_lists_all(self, capsys):
        assert main(["families"]) == 0
        out = capsys.readouterr().out.split()
        assert sorted(out) == sorted(FAMILIES)

    def test_json_registry(self, capsys):
        """families --json exposes the registry's machine-readable form."""
        assert main(["families", "--json"]) == 0
        catalog = json.loads(capsys.readouterr().out)
        assert sorted(row["name"] for row in catalog) == sorted(FAMILIES)
        by_name = {row["name"]: row for row in catalog}
        assert by_name["expander"]["randomized"] is True
        assert "even" in by_name["expander"]["size_rule"]
        for row in catalog:
            assert row["description"], row["name"]


class TestVersionFlag:
    def test_version_prints_and_exits(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        import repro

        assert repro.__version__ in out


class TestExpanderSizeAdjustment:
    """Regression: odd expander sizes must be surfaced, never silent."""

    def test_odd_n_surfaced_in_json_meta(self, capsys):
        code = main(["sample", "--family", "expander", "--n", "9",
                     "--json", "--ell", "1024"])
        assert code == 0
        meta = json.loads(capsys.readouterr().out)["meta"]
        assert meta["requested_n"] == 9
        assert meta["n"] == 10
        assert meta["size_adjusted"] is True

    def test_odd_n_noted_in_human_output(self, capsys):
        code = main(["sample", "--family", "expander", "--n", "9",
                     "--ell", "1024"])
        assert code == 0
        out = capsys.readouterr().out
        assert "adjusted n 9 -> 10" in out
        assert "n=10" in out

    def test_even_n_not_flagged(self, capsys):
        code = main(["sample", "--family", "expander", "--n", "8",
                     "--json", "--ell", "1024"])
        assert code == 0
        meta = json.loads(capsys.readouterr().out)["meta"]
        assert meta["size_adjusted"] is False


class TestCacheDirFlag:
    def test_sample_with_cache_dir_warm_restart(self, capsys, tmp_path):
        argv = ["sample", "--family", "cycle", "--n", "8", "--json",
                "--seed", "2", "--ell", "512",
                "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        cold = json.loads(capsys.readouterr().out)
        assert cold["meta"]["cache"]["spills"] > 0
        assert main(argv) == 0
        warm = json.loads(capsys.readouterr().out)
        # Fresh process-equivalent: everything served from the disk tier.
        assert warm["meta"]["cache"]["disk_hits"] > 0
        assert warm["meta"]["cache"]["misses"] == 0
        assert warm["result"]["tree"] == cold["result"]["tree"]
        assert warm["result"]["rounds"] == cold["result"]["rounds"]

    def test_ensemble_json_envelope_has_cache_stats(self, capsys, tmp_path):
        assert main([
            "ensemble", "--family", "cycle", "--n", "8", "--samples", "3",
            "--jobs", "1", "--json", "--ell", "512", "--seed", "1",
            "--cache-dir", str(tmp_path),
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        cache = payload["meta"]["cache"]
        assert cache["spills"] > 0
        assert cache["disk_entries"] > 0

    def test_human_rendering_prints_cache_line(self, capsys, tmp_path):
        assert main([
            "sample", "--family", "cycle", "--n", "8", "--seed", "2",
            "--ell", "512", "--cache-dir", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "cache:" in out
        assert "spills" in out


class TestPlacementModeFlag:
    def test_meta_carries_default_mode(self, capsys):
        assert main(["sample", "--family", "cycle", "--n", "6", "--json",
                     "--ell", "1024"]) == 0
        meta = json.loads(capsys.readouterr().out)["meta"]
        assert meta["placement_mode"] == "batched"

    def test_reference_override_is_byte_identical(self, capsys):
        """Reference mode always runs the v1 stream, so byte identity
        with batched holds exactly when batched is pinned to v1 too."""
        base = ["sample", "--family", "complete", "--n", "9", "--json",
                "--seed", "4", "--ell", "1024"]
        assert main(base + ["--rng-contract", "v1"]) == 0
        batched = json.loads(capsys.readouterr().out)
        assert main(base + ["--placement-mode", "reference"]) == 0
        reference = json.loads(capsys.readouterr().out)
        assert reference["meta"]["placement_mode"] == "reference"
        assert reference["result"]["tree"] == batched["result"]["tree"]
        assert reference["result"]["rounds"] == batched["result"]["rounds"]

    def test_rejects_unknown_mode(self, capsys):
        with pytest.raises(SystemExit):
            main(["sample", "--family", "cycle", "--n", "6",
                  "--placement-mode", "turbo"])


class TestRngContractFlag:
    def test_meta_carries_default_contract(self, capsys):
        assert main(["sample", "--family", "cycle", "--n", "6", "--json",
                     "--ell", "1024"]) == 0
        meta = json.loads(capsys.readouterr().out)["meta"]
        assert meta["rng_contract"] == "v2"

    def test_reference_mode_reports_effective_v1(self, capsys):
        """v2 block draws need a plan; reference mode therefore always
        reports (and runs) the v1 contract even when v2 is requested."""
        assert main(["sample", "--family", "cycle", "--n", "6", "--json",
                     "--ell", "1024", "--placement-mode", "reference",
                     "--rng-contract", "v2"]) == 0
        meta = json.loads(capsys.readouterr().out)["meta"]
        assert meta["rng_contract"] == "v1"

    def test_rejects_unknown_contract(self, capsys):
        with pytest.raises(SystemExit):
            main(["sample", "--family", "cycle", "--n", "6",
                  "--rng-contract", "v3"])


class TestCacheCommand:
    def _populate(self, cache_dir) -> None:
        assert main([
            "sample", "--family", "cycle", "--n", "8", "--seed", "2",
            "--ell", "512", "--cache-dir", str(cache_dir), "--json",
        ]) == 0

    def test_stats_on_populated_dir(self, capsys, tmp_path):
        self._populate(tmp_path)
        capsys.readouterr()
        assert main(["cache", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert f"derived-graph cache at {tmp_path}" in out
        assert "entries:" in out
        assert "calibration profile: absent" in out

    def test_stats_json_golden_shape(self, capsys, tmp_path):
        self._populate(tmp_path)
        capsys.readouterr()
        assert main(["cache", "--cache-dir", str(tmp_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["action"] == "stats"
        assert payload["root"] == str(tmp_path)
        assert payload["entries"] > 0
        assert payload["bytes"] > 0
        assert payload["calibration_profile"] is False
        assert "evicted" not in payload

    def test_prune_to_zero_empties_store(self, capsys, tmp_path):
        self._populate(tmp_path)
        capsys.readouterr()
        assert main(["cache", "--cache-dir", str(tmp_path),
                     "--prune-to", "0", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["action"] == "prune"
        assert payload["evicted"] > 0
        assert payload["entries"] == 0
        assert payload["bytes"] == 0

    def test_prune_keeps_entries_under_budget(self, capsys, tmp_path):
        self._populate(tmp_path)
        capsys.readouterr()
        assert main(["cache", "--cache-dir", str(tmp_path), "--json"]) == 0
        before = json.loads(capsys.readouterr().out)
        assert main(["cache", "--cache-dir", str(tmp_path),
                     "--prune-to", "1G", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["evicted"] == 0
        assert payload["entries"] == before["entries"]

    def test_clear_removes_everything_but_not_calibration(
        self, capsys, tmp_path
    ):
        self._populate(tmp_path)
        (tmp_path / "calibration.json").write_text("{}")
        capsys.readouterr()
        assert main(["cache", "--cache-dir", str(tmp_path), "--clear"]) == 0
        out = capsys.readouterr().out
        assert "cleared" in out
        assert "entries: 0" in out
        assert "calibration profile: present" in out
        assert (tmp_path / "calibration.json").exists()

    def test_warm_restart_after_prune_recovers(self, capsys, tmp_path):
        """Pruning is maintenance, not corruption: the next run simply
        recomputes and respills."""
        self._populate(tmp_path)
        assert main(["cache", "--cache-dir", str(tmp_path),
                     "--prune-to", "0"]) == 0
        capsys.readouterr()
        self._populate(tmp_path)
        payload = json.loads(capsys.readouterr().out)
        assert payload["meta"]["cache"]["spills"] > 0

    def test_prune_expired_evicts_only_stale_entries(
        self, capsys, tmp_path
    ):
        import os

        self._populate(tmp_path)
        capsys.readouterr()
        clocks = sorted(tmp_path.glob("blobs/*/meta.json"))
        assert len(clocks) >= 2
        stamp = clocks[0].stat().st_mtime - 10 * 86400
        os.utime(clocks[0], (stamp, stamp))
        assert main(["cache", "--cache-dir", str(tmp_path),
                     "--prune-expired", "7", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["action"] == "prune-expired"
        assert payload["evicted"] == 1
        assert payload["entries"] == len(clocks) - 1

    def test_prune_expired_human_rendering(self, capsys, tmp_path):
        self._populate(tmp_path)
        capsys.readouterr()
        assert main(["cache", "--cache-dir", str(tmp_path),
                     "--prune-expired", "30"]) == 0
        out = capsys.readouterr().out
        assert "pruned: 0 entries evicted" in out

    def test_prune_expired_zero_days_empties_store(self, capsys, tmp_path):
        self._populate(tmp_path)
        capsys.readouterr()
        assert main(["cache", "--cache-dir", str(tmp_path),
                     "--prune-expired", "0", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["evicted"] > 0
        assert payload["entries"] == 0

    def test_prune_expired_rejects_negative_days(self, capsys, tmp_path):
        self._populate(tmp_path)
        code = main(["cache", "--cache-dir", str(tmp_path),
                     "--prune-expired=-1"])
        assert code != 0

    def test_prune_expired_excludes_other_actions(self, capsys, tmp_path):
        with pytest.raises(SystemExit):
            main(["cache", "--cache-dir", str(tmp_path),
                  "--prune-expired", "7", "--clear"])

    def test_rejects_malformed_byte_size(self, capsys):
        with pytest.raises(SystemExit):
            main(["cache", "--prune-to", "lots"])

    @pytest.mark.parametrize("bogus", ["inf", "-inf", "nan", "-5", "1e40"])
    def test_rejects_non_finite_byte_sizes(self, capsys, bogus):
        """Regression: 'inf' used to escape as an OverflowError traceback."""
        with pytest.raises(SystemExit):
            # `=` form so argparse cannot mistake "-inf" for an option.
            main(["cache", f"--prune-to={bogus}"])
        assert "byte size" in capsys.readouterr().err

    def test_byte_size_suffix_parsing(self):
        from repro.cli import _parse_byte_size

        assert _parse_byte_size("500000") == 500000
        assert _parse_byte_size("256K") == 256 * 1024
        assert _parse_byte_size("1.5M") == int(1.5 * 1024 * 1024)
        assert _parse_byte_size("2G") == 2 * 1024**3
        assert _parse_byte_size("0") == 0

    def test_stats_on_missing_dir_does_not_create_it(self, capsys, tmp_path):
        missing = tmp_path / "not" / "created"
        assert main(["cache", "--cache-dir", str(missing)]) == 0
        assert "no cache directory" in capsys.readouterr().out
        assert not missing.exists()
        assert main(["cache", "--cache-dir", str(missing), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["exists"] is False
        assert not missing.exists()


class TestCalibrateCommand:
    def test_quick_calibrate_writes_profile(self, capsys, tmp_path):
        assert main([
            "calibrate", "--cache-dir", str(tmp_path), "--quick",
        ]) == 0
        out = capsys.readouterr().out
        assert "sparse_auto_min_n" in out
        assert (tmp_path / "calibration.json").exists()
        from repro.linalg.calibrate import load_profile

        assert load_profile(tmp_path) is not None

    def test_quick_calibrate_json(self, capsys, tmp_path):
        assert main([
            "calibrate", "--cache-dir", str(tmp_path), "--quick", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["sparse_auto_min_n"] >= 2
        assert 0.0 < payload["sparse_auto_density"] <= 1.0
        assert payload["path"] == str(tmp_path / "calibration.json")
        assert any(row.get("probe") == "size" for row in payload["probe"])
