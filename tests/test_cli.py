"""Tests for the command-line interface."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import FAMILIES, build_graph, main
from repro.errors import ReproError


class TestBuildGraph:
    def test_every_family_instantiates_connected(self, rng):
        for name in FAMILIES:
            g = build_graph(name, 16, rng)
            assert g.is_connected(), name
            assert g.n >= 8, name

    def test_unknown_family(self, rng):
        with pytest.raises(ReproError):
            build_graph("hypercube", 16, rng)


class TestSampleCommand:
    @pytest.mark.parametrize("variant", ["approximate", "exact", "fastcover"])
    def test_sample_runs(self, capsys, variant):
        code = main([
            "sample", "--family", "complete", "--n", "8",
            "--variant", variant, "--seed", "1", "--ell", "1024",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "rounds" in out
        assert "tree" in out

    def test_json_output_parses(self, capsys):
        code = main([
            "sample", "--family", "cycle", "--n", "6", "--json",
            "--ell", "1024",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n"] == 6
        assert len(payload["tree"]) == 5

    def test_deterministic_given_seed(self, capsys):
        argv = ["sample", "--family", "wheel", "--n", "8", "--json",
                "--seed", "9", "--ell", "1024"]
        main(argv)
        first = capsys.readouterr().out
        main(argv)
        second = capsys.readouterr().out
        assert first == second


class TestRoundsCommand:
    def test_prints_comparison(self, capsys):
        code = main(["rounds", "--family", "complete", "--n", "9",
                     "--ell", "1024"])
        assert code == 0
        out = capsys.readouterr().out
        assert "approximate" in out
        assert "exact" in out
        assert "fastcover" in out


class TestPageRankCommand:
    def test_prints_error_and_top_vertices(self, capsys):
        code = main(["pagerank", "--family", "wheel", "--n", "12",
                     "--walks", "16"])
        assert code == 0
        out = capsys.readouterr().out
        assert "L1 error" in out
        assert "vertex" in out


class TestAuditCommand:
    def test_uniform_verdict_on_cycle(self, capsys):
        code = main(["audit", "--family", "cycle", "--n", "6",
                     "--samples", "400", "--ell", "1024"])
        assert code == 0
        out = capsys.readouterr().out
        assert "UNIFORM" in out

    def test_refuses_huge_tree_counts(self, capsys):
        code = main(["audit", "--family", "complete", "--n", "16"])
        assert code == 2
        assert "smaller instance" in capsys.readouterr().err


class TestFamiliesCommand:
    def test_lists_all(self, capsys):
        assert main(["families"]) == 0
        out = capsys.readouterr().out.split()
        assert sorted(out) == sorted(FAMILIES)
