"""Tests for the command-line interface."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import FAMILIES, build_graph, main
from repro.errors import ReproError


class TestBuildGraph:
    def test_every_family_instantiates_connected(self, rng):
        for name in FAMILIES:
            g = build_graph(name, 16, rng)
            assert g.is_connected(), name
            assert g.n >= 8, name

    def test_unknown_family(self, rng):
        with pytest.raises(ReproError):
            build_graph("hypercube", 16, rng)


class TestSampleCommand:
    @pytest.mark.parametrize("variant", ["approximate", "exact", "fastcover"])
    def test_sample_runs(self, capsys, variant):
        code = main([
            "sample", "--family", "complete", "--n", "8",
            "--variant", variant, "--seed", "1", "--ell", "1024",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "rounds" in out
        assert "tree" in out

    def test_json_output_parses(self, capsys):
        code = main([
            "sample", "--family", "cycle", "--n", "6", "--json",
            "--ell", "1024",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "sample"
        assert payload["meta"]["n"] == 6
        assert len(payload["result"]["tree"]) == 5

    def test_json_envelope_loads_as_typed_response(self, capsys):
        from repro.api import response_from_dict

        main(["sample", "--family", "cycle", "--n", "6", "--json",
              "--ell", "1024", "--seed", "3"])
        response = response_from_dict(json.loads(capsys.readouterr().out))
        assert response.kind == "sample"
        assert response.result.rounds > 0
        assert len(response.result.tree) == 5

    def test_json_golden(self, capsys):
        """Golden test: the --json envelope for a pinned seed/instance."""
        code = main([
            "sample", "--family", "cycle", "--n", "6", "--json",
            "--seed", "0", "--ell", "1024",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "sample"
        assert payload["result_type"] == "SampleResult"
        for key, value in {
            "family": "cycle", "requested_n": 6, "n": 6,
            "size_adjusted": False, "variant": "approximate", "seed": 0,
        }.items():
            assert payload["meta"][key] == value, key
        assert payload["result"]["tree"] == [
            [0, 5], [1, 2], [2, 3], [3, 4], [4, 5]
        ]
        assert payload["result"]["rounds"] == 1111
        assert payload["result"]["phases"] == 5

    def test_deterministic_given_seed(self, capsys):
        argv = ["sample", "--family", "wheel", "--n", "8", "--json",
                "--seed", "9", "--ell", "1024"]
        main(argv)
        first = json.loads(capsys.readouterr().out)
        main(argv)
        second = json.loads(capsys.readouterr().out)
        # Identical modulo wall-clock timing, which is honest about time.
        first["meta"].pop("seconds")
        second["meta"].pop("seconds")
        assert first == second


class TestRoundsCommand:
    def test_prints_comparison(self, capsys):
        code = main(["rounds", "--family", "complete", "--n", "9",
                     "--ell", "1024"])
        assert code == 0
        out = capsys.readouterr().out
        assert "approximate" in out
        assert "exact" in out
        assert "fastcover" in out


class TestPageRankCommand:
    def test_prints_error_and_top_vertices(self, capsys):
        code = main(["pagerank", "--family", "wheel", "--n", "12",
                     "--walks", "16"])
        assert code == 0
        out = capsys.readouterr().out
        assert "L1 error" in out
        assert "vertex" in out


class TestAuditCommand:
    def test_uniform_verdict_on_cycle(self, capsys):
        code = main(["audit", "--family", "cycle", "--n", "6",
                     "--samples", "400", "--ell", "1024"])
        assert code == 0
        out = capsys.readouterr().out
        assert "UNIFORM" in out

    def test_refuses_huge_tree_counts(self, capsys):
        code = main(["audit", "--family", "complete", "--n", "16"])
        assert code == 2
        assert "smaller instance" in capsys.readouterr().err


class TestFamiliesCommand:
    def test_lists_all(self, capsys):
        assert main(["families"]) == 0
        out = capsys.readouterr().out.split()
        assert sorted(out) == sorted(FAMILIES)

    def test_json_registry(self, capsys):
        """families --json exposes the registry's machine-readable form."""
        assert main(["families", "--json"]) == 0
        catalog = json.loads(capsys.readouterr().out)
        assert sorted(row["name"] for row in catalog) == sorted(FAMILIES)
        by_name = {row["name"]: row for row in catalog}
        assert by_name["expander"]["randomized"] is True
        assert "even" in by_name["expander"]["size_rule"]
        for row in catalog:
            assert row["description"], row["name"]


class TestVersionFlag:
    def test_version_prints_and_exits(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        import repro

        assert repro.__version__ in out


class TestExpanderSizeAdjustment:
    """Regression: odd expander sizes must be surfaced, never silent."""

    def test_odd_n_surfaced_in_json_meta(self, capsys):
        code = main(["sample", "--family", "expander", "--n", "9",
                     "--json", "--ell", "1024"])
        assert code == 0
        meta = json.loads(capsys.readouterr().out)["meta"]
        assert meta["requested_n"] == 9
        assert meta["n"] == 10
        assert meta["size_adjusted"] is True

    def test_odd_n_noted_in_human_output(self, capsys):
        code = main(["sample", "--family", "expander", "--n", "9",
                     "--ell", "1024"])
        assert code == 0
        out = capsys.readouterr().out
        assert "adjusted n 9 -> 10" in out
        assert "n=10" in out

    def test_even_n_not_flagged(self, capsys):
        code = main(["sample", "--family", "expander", "--n", "8",
                     "--json", "--ell", "1024"])
        assert code == 0
        meta = json.loads(capsys.readouterr().out)["meta"]
        assert meta["size_adjusted"] is False


class TestCacheDirFlag:
    def test_sample_with_cache_dir_warm_restart(self, capsys, tmp_path):
        argv = ["sample", "--family", "cycle", "--n", "8", "--json",
                "--seed", "2", "--ell", "512",
                "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        cold = json.loads(capsys.readouterr().out)
        assert cold["meta"]["cache"]["spills"] > 0
        assert main(argv) == 0
        warm = json.loads(capsys.readouterr().out)
        # Fresh process-equivalent: everything served from the disk tier.
        assert warm["meta"]["cache"]["disk_hits"] > 0
        assert warm["meta"]["cache"]["misses"] == 0
        assert warm["result"]["tree"] == cold["result"]["tree"]
        assert warm["result"]["rounds"] == cold["result"]["rounds"]

    def test_ensemble_json_envelope_has_cache_stats(self, capsys, tmp_path):
        assert main([
            "ensemble", "--family", "cycle", "--n", "8", "--samples", "3",
            "--jobs", "1", "--json", "--ell", "512", "--seed", "1",
            "--cache-dir", str(tmp_path),
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        cache = payload["meta"]["cache"]
        assert cache["spills"] > 0
        assert cache["disk_entries"] > 0

    def test_human_rendering_prints_cache_line(self, capsys, tmp_path):
        assert main([
            "sample", "--family", "cycle", "--n", "8", "--seed", "2",
            "--ell", "512", "--cache-dir", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "cache:" in out
        assert "spills" in out


class TestCalibrateCommand:
    def test_quick_calibrate_writes_profile(self, capsys, tmp_path):
        assert main([
            "calibrate", "--cache-dir", str(tmp_path), "--quick",
        ]) == 0
        out = capsys.readouterr().out
        assert "sparse_auto_min_n" in out
        assert (tmp_path / "calibration.json").exists()
        from repro.linalg.calibrate import load_profile

        assert load_profile(tmp_path) is not None

    def test_quick_calibrate_json(self, capsys, tmp_path):
        assert main([
            "calibrate", "--cache-dir", str(tmp_path), "--quick", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["sparse_auto_min_n"] >= 2
        assert 0.0 < payload["sparse_auto_density"] <= 1.0
        assert payload["path"] == str(tmp_path / "calibration.json")
        assert any(row.get("probe") == "size" for row in payload["probe"])
