"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import graphs


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic per-test randomness."""
    return np.random.default_rng(0xC11C0)


@pytest.fixture
def small_graphs() -> dict:
    """A zoo of small connected graphs exercising different structures."""
    return {
        "path4": graphs.path_graph(4),
        "cycle5": graphs.cycle_graph(5),
        "k4": graphs.complete_graph(4),
        "star6": graphs.star_graph(6),
        "chord5": graphs.cycle_with_chord(5),
        "theta": graphs.theta_graph(2, 2, 3),
        "grid23": graphs.grid_graph(2, 3),
        "fig2": graphs.figure2_graph(),
        "lollipop8": graphs.lollipop_graph(8),
        "wheel6": graphs.wheel_graph(6),
    }


@pytest.fixture
def weighted_triangle() -> "graphs.WeightedGraph":
    """Triangle with weights 1, 2, 3 -- tree law proportional to weights."""
    return graphs.WeightedGraph.from_edges(
        3, [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)]
    )
