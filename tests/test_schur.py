"""Tests for Schur complement graphs (Definitions 1-2, Corollary 3, E13)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import graphs
from repro.errors import GraphError
from repro.linalg import (
    first_hit_distribution,
    schur_by_elimination,
    schur_complement_graph,
    schur_complement_laplacian,
    schur_transition_matrix,
    schur_via_qr_product,
)


class TestFigure2:
    """The paper's own worked example (E6): star with hub C."""

    def test_schur_is_uniform_triangle(self):
        g = graphs.figure2_graph()
        transition, order = schur_transition_matrix(g, [0, 1, 3])
        assert order == [0, 1, 3]
        expected = np.full((3, 3), 0.5)
        np.fill_diagonal(expected, 0.0)
        assert np.allclose(transition, expected)

    def test_schur_graph_weights_uniform(self):
        g = graphs.figure2_graph()
        schur, order = schur_complement_graph(g, [0, 1, 3])
        weights = schur.weights
        off_diagonal = weights[~np.eye(3, dtype=bool)]
        assert np.allclose(off_diagonal, off_diagonal[0])


class TestLaplacianBlockElimination:
    def test_subset_everything_is_identity_operation(self):
        g = graphs.cycle_graph(5)
        full = schur_complement_laplacian(g.laplacian(), range(5))
        assert np.allclose(full, g.laplacian())

    def test_result_is_laplacian(self, small_graphs):
        """Fact 2.3.6 of [55]: Schur complements of Laplacians are Laplacians."""
        for name, g in small_graphs.items():
            if g.n < 3:
                continue
            subset = list(range(0, g.n, 2)) or [0]
            if len(subset) < 2:
                subset = [0, 1]
            schur = schur_complement_laplacian(g.laplacian(), subset)
            assert np.allclose(schur.sum(axis=1), 0.0, atol=1e-9), name
            off = schur[~np.eye(len(subset), dtype=bool)]
            assert np.all(off <= 1e-9), name

    def test_path_elimination_series_resistance(self):
        # Eliminating the middle of a 3-path gives weight 1/2 (series law).
        g = graphs.path_graph(3)
        schur, order = schur_complement_graph(g, [0, 2])
        assert order == [0, 2]
        assert schur.weight(0, 1) == pytest.approx(0.5)

    def test_triangle_elimination_parallel_composition(self):
        # Eliminating one corner of a triangle: direct edge 1 plus the
        # series path 1/2 through the eliminated vertex = 3/2.
        g = graphs.complete_graph(3)
        schur, _ = schur_complement_graph(g, [0, 1])
        assert schur.weight(0, 1) == pytest.approx(1.5)

    def test_invalid_subsets(self):
        g = graphs.path_graph(4)
        with pytest.raises(GraphError):
            schur_complement_laplacian(g.laplacian(), [])
        with pytest.raises(GraphError):
            schur_complement_laplacian(g.laplacian(), [0, 9])


class TestCrossValidation:
    """Three independent constructions must agree (E13/E14)."""

    def _subsets(self, n):
        yield [0, n - 1]
        yield list(range(0, n, 2))
        yield list(range(n // 2))

    def test_block_vs_single_elimination(self, small_graphs):
        for name, g in small_graphs.items():
            for subset in self._subsets(g.n):
                if len(subset) < 2:
                    continue
                block, _ = schur_complement_graph(g, subset)
                single, _ = schur_by_elimination(g, subset)
                assert np.allclose(
                    block.weights, single.weights, atol=1e-8
                ), (name, subset)

    def test_block_vs_qr_product(self, small_graphs):
        for name, g in small_graphs.items():
            for subset in self._subsets(g.n):
                if len(subset) < 2:
                    continue
                block, _ = schur_transition_matrix(g, subset)
                qr, _ = schur_via_qr_product(g, subset)
                assert np.allclose(block, qr, atol=1e-8), (name, subset)

    def test_definition2_first_hit_semantics(self, small_graphs):
        """S[u, v] = P(v is the first vertex of S \\ {u} hit from u)."""
        for name, g in small_graphs.items():
            subset = sorted({0, 1, g.n - 1})
            if len(subset) < 2:
                continue
            transition, order = schur_transition_matrix(g, subset)
            for i, u in enumerate(order):
                law = first_hit_distribution(g, subset, u)
                assert np.allclose(transition[i], law, atol=1e-8), (name, u)

    def test_transition_rows_stochastic(self, small_graphs):
        for name, g in small_graphs.items():
            subset = [0, 1, g.n - 1] if g.n > 2 else [0, 1]
            transition, _ = schur_transition_matrix(g, sorted(set(subset)))
            assert np.allclose(transition.sum(axis=1), 1.0), name
            assert np.allclose(np.diagonal(transition), 0.0), name


class TestWalkEquivalence:
    """Theorem 2.4 of [69]: the Schur walk is the S-restricted G walk."""

    def test_restricted_walk_distribution(self, rng):
        g = graphs.cycle_with_chord(6)
        subset = [0, 2, 4]
        transition, order = schur_transition_matrix(g, subset)
        index = {v: i for i, v in enumerate(order)}
        # Empirically walk on G, restrict to S, compare one-step law.
        from repro.walks import random_walk

        start = 0
        counts = np.zeros(len(order))
        trials = 4000
        for _ in range(trials):
            walk = random_walk(g, start, 50, rng)
            nxt = next((v for v in walk[1:] if v in index and v != start), None)
            if nxt is None:  # pragma: no cover - vanishing probability
                continue
            counts[index[nxt]] += 1
        empirical = counts / counts.sum()
        assert np.allclose(empirical, transition[index[start]], atol=0.05)


class TestFirstHitEdgeCases:
    def test_start_must_be_in_subset(self):
        g = graphs.path_graph(4)
        with pytest.raises(GraphError):
            first_hit_distribution(g, [0, 3], 1)

    def test_two_vertex_subset_is_certain(self):
        g = graphs.path_graph(4)
        law = first_hit_distribution(g, [0, 3], 0)
        assert law == pytest.approx([0.0, 1.0])


@given(seed=st.integers(0, 10_000), n=st.integers(4, 9))
@settings(max_examples=20, deadline=None)
def test_schur_preserves_tree_count_ratio(seed, n):
    """Property: Schur(G, S) has Laplacian = block elimination, hence its
    tree count equals count(G) / det(L_{CC}) -- verified indirectly by
    checking the two elimination orders agree."""
    rng = np.random.default_rng(seed)
    g = graphs.erdos_renyi_graph(n, p=0.7, rng=rng)
    subset = sorted(rng.choice(n, size=max(2, n // 2), replace=False).tolist())
    block, _ = schur_complement_graph(g, subset)
    single, _ = schur_by_elimination(g, subset)
    assert np.allclose(block.weights, single.weights, atol=1e-8)
