"""Session API tests: lifecycle, streaming identity, presets, dispatch.

The acceptance bar for the session layer: every request kind executes
through one `Session`, streaming yields byte-identical trees and round
bills to the batch path for the same seed, and the shared derived-graph
cache/RNG lineage behave as documented.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import graphs
from repro.api import (
    AuditRequest,
    EnsembleRequest,
    PageRankRequest,
    PRESETS,
    RoundBillRequest,
    SampleRequest,
    Session,
    get_preset,
    preset_config,
    request_from_dict,
    resolve_config,
)
from repro.core import SamplerConfig
from repro.errors import ConfigError, ReproError

CONFIG = "fast-audit"


@pytest.fixture
def session() -> Session:
    return Session(graphs.cycle_graph(6), CONFIG, seed=11)


class TestSessionLifecycle:
    def test_run_sample(self, session):
        response = session.run(SampleRequest(seed=5))
        assert response.kind == "sample"
        assert len(response.result.tree) == 5
        assert response.result.rounds > 0
        assert response.meta["n"] == 6
        assert response.meta["seconds"] >= 0

    def test_exact_and_approximate_share_one_cache(self, session):
        session.run(SampleRequest(variant="approximate", seed=1))
        assert session.cache_stats()["misses"] > 0
        before = session.cache_stats()["hits"]
        # Phase 1 numerics (S = V) are variant-independent; the exact
        # engine must warm-start from the approximate engine's entries.
        session.run(SampleRequest(variant="exact", seed=2))
        assert session.cache_stats()["hits"] > before

    def test_seedless_requests_consume_lineage(self, session):
        first = session.run(SampleRequest())
        second = session.run(SampleRequest())
        # Lineage children differ, and sessions opened with the same root
        # seed replay the same lineage.
        replay = Session(graphs.cycle_graph(6), CONFIG, seed=11)
        assert replay.run(SampleRequest()).result.tree == first.result.tree
        assert replay.run(SampleRequest()).result.tree == second.result.tree

    def test_explicit_seed_is_history_independent(self, session):
        session.run(SampleRequest())  # advance the lineage
        pinned = session.run(SampleRequest(seed=42))
        fresh = Session(graphs.cycle_graph(6), CONFIG).run(
            SampleRequest(seed=42)
        )
        assert pinned.result.tree == fresh.result.tree
        assert pinned.result.rounds == fresh.result.rounds

    def test_fastcover_variant(self, session):
        response = session.run(SampleRequest(variant="fastcover", seed=3))
        assert response.kind == "sample"
        assert len(response.result.tree) == 5
        assert response.result.walk_length > 0

    def test_roundbill(self, session):
        response = session.run(RoundBillRequest(seed=0))
        bill = response.result
        assert bill.approximate_rounds > 0
        assert bill.exact_rounds > 0
        assert bill.fastcover_rounds > 0
        assert response.meta["m"] == 6

    def test_audit_uniform_on_cycle(self, session):
        response = session.run(AuditRequest(samples=100, seed=2))
        assert response.result.spanning_trees == 6
        assert response.result.verdict in ("UNIFORM", "BIASED")
        assert response.result.noise_floor > 0

    def test_audit_refuses_huge_enumeration(self):
        session = Session(graphs.complete_graph(16), CONFIG)
        with pytest.raises(ReproError, match="smaller instance"):
            session.run(AuditRequest(samples=10))

    def test_pagerank(self, session):
        response = session.run(
            PageRankRequest(walks_per_vertex=8, seed=1)
        )
        assert len(response.result.scores) == 6
        assert response.result.l1_error >= 0

    def test_unknown_request_type_rejected(self, session):
        with pytest.raises(ConfigError, match="unsupported request"):
            session.run(object())

    def test_session_meta_merged_into_responses(self):
        session = Session(
            graphs.cycle_graph(6), CONFIG, meta={"family": "cycle"}
        )
        response = session.run(SampleRequest(seed=0))
        assert response.meta["family"] == "cycle"


class TestStreaming:
    def test_stream_matches_batch_trees_and_round_bills(self, session):
        request = EnsembleRequest(count=8, seed=7, jobs=2)
        batch = session.run(request)
        streamed = list(session.stream(request))
        assert [r.tree for r in streamed] == batch.result.trees
        assert [r.rounds for r in streamed] == [
            r.rounds for r in batch.result.results
        ]

    def test_stream_sequential_matches_parallel(self, session):
        request_seq = EnsembleRequest(count=6, seed=9, jobs=1)
        request_par = EnsembleRequest(count=6, seed=9, jobs=3)
        assert [r.tree for r in session.stream(request_seq)] == [
            r.tree for r in session.stream(request_par)
        ]

    def test_stream_is_incremental(self, session):
        iterator = session.stream(EnsembleRequest(count=4, seed=1, jobs=1))
        first = next(iterator)
        assert len(first.tree) == 5
        assert len(list(iterator)) == 3

    def test_stream_rejects_non_streamable_requests(self, session):
        """Only kinds the workload registry marks streamable stream."""
        with pytest.raises(ConfigError, match="streamable"):
            next(session.stream(SampleRequest()))

    def test_stream_rejects_leverage_audit(self, session):
        """The audit is batch-level; stream() must refuse rather than
        silently drop it."""
        request = EnsembleRequest(count=4, seed=1, leverage_audit=True)
        with pytest.raises(ConfigError, match="leverage_audit"):
            next(session.stream(request))

    def test_ensemble_leverage_audit_attached(self, session):
        response = session.run(
            EnsembleRequest(count=10, seed=4, jobs=1, leverage_audit=True)
        )
        leverage = response.meta["leverage"]
        assert leverage["num_trees"] == 10
        assert 0 <= leverage["max_abs_deviation"] <= 1


class TestPresets:
    def test_registry_names(self):
        assert {"paper-approximate", "paper-exact", "fast-bench",
                "fast-audit"} <= set(PRESETS)

    def test_paper_presets_use_paper_defaults(self):
        assert get_preset("paper-approximate").config == SamplerConfig()
        assert get_preset("paper-exact").variant == "exact"

    def test_preset_config_overrides(self):
        config = preset_config("fast-bench", ell=1 << 10)
        assert config.ell == 1 << 10
        # the base recipe is untouched
        assert get_preset("fast-bench").config.ell == 1 << 12

    def test_resolve_config_accepts_all_shapes(self):
        assert resolve_config(None) == SamplerConfig()
        assert resolve_config("fast-audit").ell == 1 << 10
        custom = SamplerConfig(ell=1 << 8)
        assert resolve_config(custom) is custom

    def test_unknown_preset_rejected(self):
        with pytest.raises(ConfigError, match="unknown preset"):
            get_preset("warp-speed")

    def test_session_accepts_preset_names(self):
        session = Session(graphs.cycle_graph(5), "fast-audit")
        assert session.config.ell == 1 << 10

    def test_preset_variant_is_session_default(self):
        """Regression: Session(graph, "paper-exact") must run the exact
        sampler for requests that don't pin a variant."""
        session = Session(graphs.cycle_graph(5), "paper-exact", seed=1)
        assert session.default_variant == "exact"
        response = session.run(SampleRequest(seed=2))
        assert response.meta["variant"] == "exact"
        # an explicit request variant still wins
        pinned = session.run(SampleRequest(variant="approximate", seed=2))
        assert pinned.meta["variant"] == "approximate"
        # and the no-arg engine accessor agrees with the default
        assert session.engine().variant == "exact"


class TestRequestValidation:
    def test_sample_variant_validated(self):
        with pytest.raises(ConfigError):
            SampleRequest(variant="quantum")

    def test_ensemble_bounds_validated(self):
        with pytest.raises(ConfigError):
            EnsembleRequest(count=0)
        with pytest.raises(ConfigError):
            EnsembleRequest(jobs=0)
        with pytest.raises(ConfigError):
            EnsembleRequest(variant="fastcover")

    def test_pagerank_bounds_validated(self):
        with pytest.raises(ConfigError):
            PageRankRequest(damping=1.5)

    def test_request_wire_round_trip(self):
        for request in (
            SampleRequest(variant="exact", seed=3),
            EnsembleRequest(count=7, jobs=2, leverage_audit=True),
            AuditRequest(samples=9, seed=1),
            RoundBillRequest(seed=5),
            PageRankRequest(damping=0.5, walks_per_vertex=4),
        ):
            assert request_from_dict(request.to_dict()) == request

    def test_unknown_request_tag_rejected(self):
        with pytest.raises(ConfigError, match="unknown request tag"):
            request_from_dict({"request": "teleport"})

    def test_unknown_request_field_rejected(self):
        """Regression: a misspelled field must fail loudly, not silently
        run a default-valued workload."""
        with pytest.raises(ConfigError, match="unknown field"):
            request_from_dict({"request": "ensemble", "cout": 5000})

    def test_stream_can_be_abandoned_early(self, session):
        """Closing the stream mid-way must not hang on queued work."""
        iterator = session.stream(EnsembleRequest(count=12, seed=2, jobs=2))
        first = next(iterator)
        assert len(first.tree) == 5
        iterator.close()  # must return promptly, cancelling queued chunks


class TestLegacyShims:
    """The pre-session entry points still work over the same engines."""

    def test_sample_spanning_tree(self):
        from repro import sample_spanning_tree

        tree = sample_spanning_tree(graphs.cycle_graph(5), rng=0)
        assert len(tree) == 4

    def test_sample_many(self):
        from repro.core import CongestedCliqueTreeSampler

        sampler = CongestedCliqueTreeSampler(
            graphs.cycle_graph(5), preset_config("fast-audit")
        )
        results = sampler.sample_many(3, np.random.default_rng(1))
        assert len(results) == 3

    def test_sample_tree_ensemble(self):
        from repro.engine import sample_tree_ensemble

        result = sample_tree_ensemble(
            graphs.cycle_graph(5), 4,
            config=preset_config("fast-audit"), seed=2, jobs=1,
        )
        assert result.count == 4


class TestSessionCacheMeta:
    """Cache statistics surface on every response envelope (satellite)."""

    def test_every_request_kind_carries_cache_meta(self, session):
        for request in [
            SampleRequest(seed=1),
            EnsembleRequest(count=2, seed=2, jobs=1),
            RoundBillRequest(seed=3),
            PageRankRequest(seed=4),
        ]:
            response = session.run(request)
            cache = response.meta["cache"]
            assert isinstance(cache, dict), request.kind
            for key in ("hits", "misses", "evictions", "entries", "bytes"):
                assert isinstance(cache[key], int), (request.kind, key)

    def test_counters_accumulate_across_requests(self, session):
        first = session.run(SampleRequest(seed=1)).meta["cache"]
        second = session.run(SampleRequest(seed=2)).meta["cache"]
        assert second["hits"] >= first["hits"]
        assert second["hits"] > 0  # phase-1 entry reused across draws

    def test_disabled_cache_reports_empty(self):
        from repro.api import preset_config as _pc

        session = Session(
            graphs.cycle_graph(6),
            _pc("fast-audit", derived_cache=False),
            seed=1,
        )
        response = session.run(SampleRequest(seed=1))
        assert response.meta["cache"] == {}

    def test_tiered_session_reports_disk_counters(self, tmp_path):
        from repro.api import preset_config as _pc

        config = _pc("fast-audit", cache_dir=str(tmp_path))
        cold = Session(graphs.cycle_graph(6), config, seed=1)
        cold_meta = cold.run(SampleRequest(seed=1)).meta["cache"]
        assert cold_meta["spills"] > 0
        warm = Session(graphs.cycle_graph(6), config, seed=1)
        warm_meta = warm.run(SampleRequest(seed=1)).meta["cache"]
        assert warm_meta["disk_hits"] > 0
        assert warm_meta["misses"] == 0

    def test_warm_service_preset_is_registered(self):
        preset = get_preset("warm-service")
        assert preset.config.cache_dir == "auto"
        assert preset.config.cache_memory_bytes > 0
        assert preset.config.cache_disk_bytes > 0

    def test_meta_cache_survives_json_round_trip(self, tmp_path):
        import json as json_module

        from repro.api import preset_config as _pc, response_from_dict

        config = _pc("fast-audit", cache_dir=str(tmp_path))
        session = Session(graphs.cycle_graph(6), config, seed=1)
        response = session.run(SampleRequest(seed=1))
        decoded = response_from_dict(json_module.loads(response.to_json()))
        assert decoded.meta["cache"] == response.meta["cache"]
