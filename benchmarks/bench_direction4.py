"""E15 (Section 1.4, Direction 4): the simpler doubling-phase sampler.

Paper claim (speculative): length-n walks visit Omega(n^{1/3}) distinct
vertices (Barnes-Feige, unweighted), so per-phase doubling walks might
cover the graph in O(n^{2/3}) phases -- but no such bound is known for
the weighted Schur complements after phase 1, and even optimistically the
round count would trail Theorem 1. Measured: phase counts and per-phase
distinct-vertex minima of the Direction 4 sampler across n and families
-- the exact data point the paper flags as open.
"""

from __future__ import annotations


from repro import graphs
from repro.core import CongestedCliqueTreeSampler, Direction4Sampler, SamplerConfig

NS = [27, 64, 125]


def test_direction4_phase_counts(benchmark, report, rng):
    rows = []

    def experiment():
        for n in NS:
            for name, factory in (
                ("expander", lambda: graphs.random_regular_graph(n, 4, rng=rng)),
                ("lollipop", lambda: graphs.lollipop_graph(n)),
            ):
                g = factory()
                result = Direction4Sampler(g).sample(rng)
                main = CongestedCliqueTreeSampler(
                    g, SamplerConfig(ell=1 << 12)
                ).sample(rng)
                # The final phase mops up however few vertices remain, so
                # the Barnes-Feige comparison uses non-final phases only.
                non_final = result.distinct_per_phase[:-1] or (
                    result.distinct_per_phase
                )
                rows.append((n, name, result.phases, min(non_final), main.phases))
        return rows

    benchmark.pedantic(experiment, rounds=1, iterations=1)

    lines = [
        f"{'n':>5s} {'family':<10s} {'D4 phases':>9s} {'n^(2/3)':>8s} "
        f"{'min distinct*':>13s} {'n^(1/3)':>8s} {'Thm1 phases':>11s}",
        "(* minimum over non-final phases; the last phase only mops up)",
    ]
    for n, name, phases, min_distinct, main_phases in rows:
        lines.append(
            f"{n:>5d} {name:<10s} {phases:>9d} {n ** (2 / 3):>8.1f} "
            f"{min_distinct:>13d} {n ** (1 / 3):>8.1f} {main_phases:>11d}"
        )
    lines += [
        "shape check: Direction 4 phase counts stay at or below n^{2/3}; "
        "per-phase distinct minima sit above the Barnes-Feige n^{1/3} floor "
        "even on the weighted Schur complements (evidence for the open "
        "conjecture), but Theorem 1's sqrt(n)-quota phases remain the "
        "better-understood route",
    ]
    report("E15 / Direction 4: doubling-phase sampler", lines)
    for n, name, phases, min_distinct, _ in rows:
        assert phases <= 2 * n ** (2 / 3) + 2, (n, name)
