"""Cold vs warm-memory vs warm-disk ensemble draws over the tiered cache.

The tiered derived-graph store (:mod:`repro.engine.store`) exists for one
reason: a restarted process (service restart, fresh CLI invocation,
ensemble worker) should not rebuild ShortCut/Schur matrices and Lemma 7
power ladders that some earlier process already computed for the same
``(G, S, config)``. This bench measures exactly that contract on the
dense reference path, where the derived-graph numerics dominate a draw:

- **cold** -- fresh session over an empty cache directory (computes and
  spills everything);
- **warm-memory** -- the same session re-running the same-seed request
  (every phase served from the RAM tier);
- **warm-disk** -- a *new* session over the now-populated directory
  (fresh RAM tier, every phase promoted from the disk tier -- the
  process-restart scenario).

All three runs produce byte-identical trees and round bills (asserted
here, property-tested in tests/test_engine_store.py); only wall-clock
may differ. The non-cacheable floor is the walk itself (midpoint
placement, matching draws, first-visit edges), which is why the speedup
grows with n: numerics cost scales ~n^3 while the walk floor grows far
slower.

The bench pins ``rho = 16`` rather than the paper's round-optimal
``rho = floor(sqrt(n))``: the placement DP's wall-clock grows ~B^4 in
the per-phase quota B = rho, so at n = 1024 the default rho = 32 buries
a warm run under ~60s of *uncacheable* matching draws per ensemble.
A wall-clock-tuned service keeps rho small -- more phases, hence more
derived-graph bundles, exactly the work the cache absorbs (the output
law is rho-independent; only rounds and seconds move).

Acceptance gate (full mode): warm-disk restart >= 3x faster than cold at
n = 1024. Results land in ``BENCH_cache_warmstart.json`` next to this
file.

Runs standalone (the CI smoke job) or under pytest-benchmark::

    PYTHONPATH=src python benchmarks/bench_cache_warmstart.py --smoke
    pytest benchmarks/bench_cache_warmstart.py --benchmark-only
"""

from __future__ import annotations

import argparse
import json
import shutil
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.api import EnsembleRequest, Session, preset_config
from repro.graphs.families import build_family

FAMILY = "complete"  # keeps the dense reference path: numerics-dominated
FULL_NS = [256, 512, 1024]
SMOKE_NS = [48, 64]
DRAWS = 2
FULL_ELL = 1 << 10
SMOKE_ELL = 1 << 8
RHO = 16  # wall-clock-tuned quota; see the module docstring
OUTPUT = Path(__file__).resolve().parent / "BENCH_cache_warmstart.json"


def _timed_run(session: Session, draws: int):
    start = time.perf_counter()
    response = session.run(EnsembleRequest(count=draws, seed=0, jobs=1))
    return time.perf_counter() - start, response


def measure_instance(n: int, ell: int, draws: int = DRAWS) -> dict:
    """One cold/warm-memory/warm-disk triple over a private cache dir."""
    cache_dir = tempfile.mkdtemp(prefix="bench-warmstart-")
    try:
        config = preset_config(
            "fast-bench",
            ell=ell,
            rho=RHO,
            cache_dir=cache_dir,
            derived_cache_entries=1024,
            cache_memory_bytes=2 << 30,
        )
        graph, __ = build_family(FAMILY, n, np.random.default_rng(9000 + n))
        cold_session = Session(graph, config, seed=0)
        cold_seconds, cold = _timed_run(cold_session, draws)
        warm_mem_seconds, warm_mem = _timed_run(cold_session, draws)
        restarted = Session(graph, config, seed=0)  # fresh RAM tier
        warm_disk_seconds, warm_disk = _timed_run(restarted, draws)

        # The cache may only change wall-clock -- never outputs.
        assert (
            cold.result.trees == warm_mem.result.trees == warm_disk.result.trees
        ), "cache tiers changed sampled trees"
        cold_rounds = [r.rounds for r in cold.result.results]
        assert cold_rounds == [
            r.rounds for r in warm_mem.result.results
        ] == [
            r.rounds for r in warm_disk.result.results
        ], "cache tiers changed round bills"
        disk_stats = restarted.cache_stats()
        return {
            "family": FAMILY,
            "n": int(graph.n),
            "draws": int(draws),
            "ell": int(ell),
            "rho": RHO,
            "linalg_backend": cold.meta["linalg_backend"],
            "cold_seconds": round(cold_seconds, 4),
            "warm_memory_seconds": round(warm_mem_seconds, 4),
            "warm_disk_seconds": round(warm_disk_seconds, 4),
            "speedup_memory": round(cold_seconds / max(warm_mem_seconds, 1e-9), 3),
            "speedup_disk": round(cold_seconds / max(warm_disk_seconds, 1e-9), 3),
            "disk_entries": int(disk_stats["disk_entries"]),
            "disk_mb": round(disk_stats["disk_bytes"] / 2**20, 2),
            "disk_hits_on_restart": int(disk_stats["disk_hits"]),
        }
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)


def run_benchmark(ns: list[int], ell: int) -> dict:
    rows = [measure_instance(n, ell) for n in ns]
    return {
        "bench": "cache_warmstart",
        "family": FAMILY,
        "draws": DRAWS,
        "ell": ell,
        "ns": ns,
        "results": rows,
    }


def _render(payload: dict) -> list[str]:
    lines = [
        f"{'n':>5s} {'cold s':>8s} {'mem s':>8s} {'disk s':>8s} "
        f"{'mem x':>6s} {'disk x':>7s} {'entries':>8s} {'disk MB':>8s}"
    ]
    for row in payload["results"]:
        lines.append(
            f"{row['n']:>5d} {row['cold_seconds']:>8.2f} "
            f"{row['warm_memory_seconds']:>8.2f} "
            f"{row['warm_disk_seconds']:>8.2f} "
            f"{row['speedup_memory']:>5.1f}x {row['speedup_disk']:>6.1f}x "
            f"{row['disk_entries']:>8d} {row['disk_mb']:>8.1f}"
        )
    return lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help=f"small-n grid {SMOKE_NS} for CI (no acceptance assertion)",
    )
    parser.add_argument(
        "--out", type=Path, default=OUTPUT,
        help="output JSON path (default: BENCH_cache_warmstart.json)",
    )
    args = parser.parse_args(argv)
    ns, ell = (SMOKE_NS, SMOKE_ELL) if args.smoke else (FULL_NS, FULL_ELL)
    payload = run_benchmark(ns, ell)
    payload["mode"] = "smoke" if args.smoke else "full"
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    for line in _render(payload):
        print(line)
    print(f"wrote {args.out}")
    return 0


def test_cache_warmstart(benchmark, report):
    """Pytest-benchmark wrapper with the acceptance gate."""
    payload = {}

    def experiment():
        payload.update(run_benchmark(FULL_NS, FULL_ELL))
        return payload

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    payload["mode"] = "full"
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    report("tiered-cache warm-start speedups", _render(payload))

    top = [row for row in payload["results"] if row["n"] >= 1024]
    assert top, "grid must include n >= 1024"
    assert any(row["speedup_disk"] >= 3.0 for row in top), top


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
