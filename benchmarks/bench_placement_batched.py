"""Batched vs reference placement on the fully-warm service path.

PR 4's tiered cache made phase numerics essentially free on warm runs,
leaving the *uncacheable* walk layer -- midpoint placement above all --
as the per-draw floor (ROADMAP "Walk-layer hot spots": placement was
~2/3 of a fully warm n = 512 draw). The batched placement engine
(:class:`repro.core.placement_plan.PlacementPlan`) attacks exactly that
floor: per-pair midpoint laws, contingency-DP forward/backward passes,
and first-visit edge distributions are deterministic in the phase
numerics, so the plan computes them once and every warm draw reruns only
the randomness-consuming sampling passes.

This bench measures the contract on the warm-service path (complete
graph, dense numerics, wall-clock-tuned ``rho = 16`` -- see
``bench_cache_warmstart.py`` for why small rho is the service setting):

- **cold** -- first same-seed request over an empty cache dir (computes
  numerics and, in batched mode, builds + spills the plan);
- **warm per-draw** -- steady-state per-draw seconds of a same-seed
  request after one warm-up run (numerics from RAM, plan memos hot).

Both modes draw byte-identical trees (asserted here, property-tested in
tests/test_placement_batched.py); only wall-clock may differ.

Acceptance gate (full mode): batched >= 2x reference warm per-draw at
n = 512. Results land in ``BENCH_placement_batched.json``.

Runs standalone (the CI smoke job) or under pytest-benchmark::

    PYTHONPATH=src python benchmarks/bench_placement_batched.py --smoke
    pytest benchmarks/bench_placement_batched.py --benchmark-only
"""

from __future__ import annotations

import argparse
import json
import math
import shutil
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.api import EnsembleRequest, Session, preset_config
from repro.graphs.families import build_family

FAMILY = "complete"  # dense path: the placement floor dominates warm draws
FULL_NS = [256, 512]
SMOKE_NS = [48, 64]
WARM_DRAWS = 4
REPEATS = 3
FULL_ELL = 1 << 10
SMOKE_ELL = 1 << 8
RHO = 16  # wall-clock-tuned service quota (see module docstring)
OUTPUT = Path(__file__).resolve().parent / "BENCH_placement_batched.json"


def _measure_mode(graph, mode: str, ell: int, cache_dir: str) -> dict:
    config = preset_config(
        "fast-bench",
        ell=ell,
        rho=RHO,
        cache_dir=cache_dir,
        placement_mode=mode,
        derived_cache_entries=1024,
        cache_memory_bytes=2 << 30,
    )
    # The fully-warm scenario is the same-seed request replayed against a
    # warm session (numerics in RAM, plan memos hot) -- the same contract
    # bench_cache_warmstart measures across tiers. Fresh seeds would pull
    # never-seen phase subsets and re-measure numerics, not placement.
    session = Session(graph, config, seed=0)
    request = EnsembleRequest(count=1, seed=0, jobs=1)
    start = time.perf_counter()
    cold = session.run(request)
    cold_seconds = time.perf_counter() - start
    session.run(request)  # warm-up: plan DP builds happen here
    # Best of REPEATS timed blocks: same-seed warm draws are
    # deterministic, so spread between repeats is host noise, not work.
    warm_seconds = math.inf
    warm = None
    for __ in range(REPEATS):
        start = time.perf_counter()
        for __ in range(WARM_DRAWS):
            warm = session.run(request)
        warm_seconds = min(warm_seconds, time.perf_counter() - start)
    assert warm.result.trees == cold.result.trees
    return {
        "mode": mode,
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "warm_per_draw": round(warm_seconds / WARM_DRAWS, 4),
        "trees": cold.result.trees,
        "rounds": [r.rounds for r in cold.result.results],
    }


def measure_instance(n: int, ell: int) -> dict:
    """One reference/batched pair over private cache dirs."""
    graph, __ = build_family(FAMILY, n, np.random.default_rng(9000 + n))
    rows = {}
    for mode in ("reference", "batched"):
        cache_dir = tempfile.mkdtemp(prefix=f"bench-placement-{mode}-")
        try:
            rows[mode] = _measure_mode(graph, mode, ell, cache_dir)
        finally:
            shutil.rmtree(cache_dir, ignore_errors=True)
    # Identical outputs are part of the contract being benchmarked.
    assert rows["batched"]["trees"] == rows["reference"]["trees"], (
        "placement modes drew different trees"
    )
    assert rows["batched"]["rounds"] == rows["reference"]["rounds"], (
        "placement modes billed different rounds"
    )
    for row in rows.values():
        del row["trees"], row["rounds"]
    speedup = rows["reference"]["warm_per_draw"] / max(
        rows["batched"]["warm_per_draw"], 1e-9
    )
    return {
        "family": FAMILY,
        "n": int(graph.n),
        "ell": int(ell),
        "rho": RHO,
        "warm_draws": WARM_DRAWS,
        "reference": rows["reference"],
        "batched": rows["batched"],
        "speedup_warm": round(speedup, 3),
    }


def run_benchmark(ns: list[int], ell: int) -> dict:
    return {
        "bench": "placement_batched",
        "family": FAMILY,
        "ell": ell,
        "rho": RHO,
        "ns": ns,
        "results": [measure_instance(n, ell) for n in ns],
    }


def _render(payload: dict) -> list[str]:
    lines = [
        f"{'n':>5s} {'ref cold':>9s} {'ref warm':>9s} {'bat cold':>9s} "
        f"{'bat warm':>9s} {'speedup':>8s}"
    ]
    for row in payload["results"]:
        lines.append(
            f"{row['n']:>5d} {row['reference']['cold_seconds']:>9.2f} "
            f"{row['reference']['warm_per_draw']:>9.3f} "
            f"{row['batched']['cold_seconds']:>9.2f} "
            f"{row['batched']['warm_per_draw']:>9.3f} "
            f"{row['speedup_warm']:>7.2f}x"
        )
    return lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help=f"small-n grid {SMOKE_NS} for CI (no acceptance assertion)",
    )
    parser.add_argument(
        "--out", type=Path, default=OUTPUT,
        help="output JSON path (default: BENCH_placement_batched.json)",
    )
    args = parser.parse_args(argv)
    ns, ell = (SMOKE_NS, SMOKE_ELL) if args.smoke else (FULL_NS, FULL_ELL)
    payload = run_benchmark(ns, ell)
    payload["mode"] = "smoke" if args.smoke else "full"
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    for line in _render(payload):
        print(line)
    print(f"wrote {args.out}")
    return 0


def test_placement_batched(benchmark, report):
    """Pytest-benchmark wrapper with the acceptance gate."""
    payload = {}

    def experiment():
        payload.update(run_benchmark(FULL_NS, FULL_ELL))
        return payload

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    payload["mode"] = "full"
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    report("batched placement warm-path speedups", _render(payload))

    top = [row for row in payload["results"] if row["n"] >= 512]
    assert top, "grid must include n >= 512"
    assert any(row["speedup_warm"] >= 2.0 for row in top), top


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
