"""E10 (Lemma 7 / Section 2.5): matrix powers at bounded precision.

Paper claim: the power ladder can be run with entries truncated to
O(log(1/delta)) bits while keeping subtractive error below beta (Lemma
7's E(k) <= (n+1) E(k/2) + delta recurrence), and the whole sampler stays
within eps of uniform under approximate probabilities (Lemma 9).
Measured: observed ladder error vs the Lemma 7 bound across bit widths,
and end-to-end sampler uniformity at reduced precision.
"""

from __future__ import annotations

import numpy as np

from repro import graphs
from repro.analysis import expected_tv_noise, tv_to_uniform
from repro.core import CongestedCliqueTreeSampler, SamplerConfig
from repro.linalg import PowerLadder

GRAPH = graphs.cycle_with_chord(5)
ELL = 1 << 10


def test_lemma7_error_growth(benchmark, report):
    g = graphs.complete_graph(8)
    p = g.transition_matrix()
    exact = np.linalg.matrix_power(p, 64)
    observed = {}

    def experiment():
        for bits in (20, 30, 40, 50):
            ladder = PowerLadder(p, 64, bits=bits)
            observed[bits] = (
                float(np.max(np.abs(exact - ladder.power(64)))),
                ladder.max_subtractive_error_bound(),
            )
        return observed

    benchmark.pedantic(experiment, rounds=1, iterations=1)

    lines = [f"{'bits':>5s} {'observed error':>15s} {'Lemma 7 bound':>14s}"]
    for bits, (err, bound) in observed.items():
        lines.append(f"{bits:>5d} {err:>15.3e} {bound:>14.3e}")
    lines.append("shape check: observed error always below the bound, "
                 "shrinking ~2^-bits")
    report("E10 / Lemma 7: bounded-precision matrix powers", lines)
    for bits, (err, bound) in observed.items():
        assert err <= bound


def test_reduced_precision_sampler_uniformity(benchmark, report):
    rng = np.random.default_rng(5150)
    config = SamplerConfig(ell=ELL, precision_bits=48)
    sampler = CongestedCliqueTreeSampler(GRAPH, config)
    n_samples = 700

    def experiment():
        return [sampler.sample_tree(rng) for _ in range(n_samples)]

    trees = benchmark.pedantic(experiment, rounds=1, iterations=1)
    tv = tv_to_uniform(GRAPH, trees)
    noise = expected_tv_noise(11, n_samples)
    report(
        "E10b / Lemma 9: sampler at 48-bit precision",
        [f"TV = {tv:.4f} vs noise floor {noise:.4f} ({n_samples} samples)",
         "shape check: reduced-precision pipeline still samples uniformly"],
    )
    assert tv < 4 * noise
