"""Overload behavior of the admission queue: shed accurately, never late.

The fault-tolerance tentpole claims the deadline-aware admission queue
turns overload into *accurate* load shedding: when offered load exceeds
capacity, excess requests are refused up front with 429 + Retry-After,
and every request the queue *accepts* still completes inside its
deadline -- bounded p99, no accepted-but-late stragglers.

This bench drives a real ``python -m repro serve`` subprocess at
controlled overload factors (1x / 2x / 4x the single slot's service
rate) and in two admission modes:

- **queue** -- the bounded deadline-aware queue (``--queue-depth 8``):
  bursts are absorbed up to the deadline's wait budget, the rest shed;
- **reject** -- the pre-queue policy (``--queue-depth 0``): anything
  arriving while the slot is busy is refused immediately (the
  comparison shows what the queue buys at 1x: near-zero shedding where
  pure reject refuses roughly half the burst's jittered arrivals).

Service time is pinned by the chaos harness rather than by real
numerics: a ``worker.task=delay`` fault pads every (warm, cached) batch
task to SERVICE_DELAY seconds. That makes the capacity -- and therefore
the *ideal* shed rate ``max(0, 1 - 1/factor)`` -- analytic and
host-independent, so the headline **shed-accuracy ratio**
(observed shed rate / ideal shed rate at 2x, queue mode) is
dimensionless: machine speed cancels, admission-policy drift does not.

Acceptance (full mode / pytest wrapper): at 2x overload in queue mode,
zero accepted responses finish past their deadline (beyond a small
client-side measurement grace) and the shed-accuracy ratio stays near
1. ``--gate BASELINE`` fails when the ratio grows >40% over the
checked-in baseline -- i.e. the queue started shedding work it used to
serve. Smoke mode keeps the same request count and deadline so the
gated cell (2x, queue) is like-for-like against a full-mode baseline.

Runs standalone (the CI smoke job) or under pytest-benchmark::

    PYTHONPATH=src python benchmarks/bench_service_overload.py --smoke
    pytest benchmarks/bench_service_overload.py --benchmark-only
"""

from __future__ import annotations

import argparse
import json
import os
import re
import shutil
import signal
import statistics
import subprocess
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.service.client import (
    ServiceClient,
    ServiceUnavailable,
    wait_until_ready,
)

GRAPH = {"family": "cycle", "n": 8, "seed": 0}
SERVICE_DELAY = 0.15  # injected per-task floor: capacity = 1/0.15 req/s
DEADLINE_MS = 600  # wait budget ~3 queue positions at SERVICE_DELAY
GRACE_MS = 100  # client-side measurement slack (connect + parse)
REQUESTS = 12  # per pass; identical in smoke so the gate compares equals
FULL_FACTORS = [1, 2, 4]
SMOKE_FACTORS = [1, 2]
QUEUE_DEPTHS = {"queue": 8, "reject": 0}
OUTPUT = Path(__file__).resolve().parent / "BENCH_service_overload.json"
SRC = Path(__file__).resolve().parent.parent / "src"


def start_server(cache_dir: str, queue_depth: int):
    env = {
        **os.environ,
        "PYTHONPATH": str(SRC),
        # The chaos delay fault is the service-time shim (see module
        # docstring); unlimited rule, no token dir needed.
        "REPRO_FAULTS": f"worker.task=delay:{SERVICE_DELAY}",
    }
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", "--port", "0",
            "--workers", "1", "--max-inflight", "1",
            "--queue-depth", str(queue_depth),
            "--cache-dir", cache_dir,
        ],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, env=env, text=True,
    )
    line = proc.stdout.readline()
    match = re.search(r"listening on http://[^:]+:(\d+)", line)
    if not match:
        proc.kill()
        raise RuntimeError(f"server failed to start: {line!r}")
    port = int(match.group(1))
    client = ServiceClient(port=port, retries=0)
    wait_until_ready(client)
    # Warm-ups: populate the cache (so real compute ~0 and service time
    # ~= the injected delay plus fixed serving overhead) and converge
    # the service-time EWMA that both the admission queue's deadline
    # estimates and this bench's offered-load calibration are built
    # from. Several passes so the cold first sample's weight decays.
    for seed in range(1, 7):
        client.run(GRAPH, {"request": "sample", "seed": seed})
    service = client.stats()["queue"]["service_ewma_seconds"]
    return proc, port, float(service or SERVICE_DELAY)


def stop_server(proc) -> None:
    proc.send_signal(signal.SIGTERM)
    try:
        proc.wait(timeout=30)
    except subprocess.TimeoutExpired:
        proc.kill()


def load_pass(port: int, factor: float, service: float) -> dict:
    """Offer REQUESTS at ``factor`` x capacity; classify every outcome.

    ``service`` is the *measured* per-request service time (the
    server's own EWMA after warm-up: injected delay + fixed serving
    overhead), so "factor x" is relative to true capacity and the
    ideal shed rate ``1 - 1/factor`` is meaningful on any host.
    """
    period = service / factor

    def one(seed: int):
        client = ServiceClient(port=port, retries=0)
        start = time.perf_counter()
        try:
            response = client.run(
                GRAPH, {"request": "sample", "seed": seed},
                deadline_ms=DEADLINE_MS,
            )
            assert response.kind == "sample"
            return ("ok", time.perf_counter() - start)
        except ServiceUnavailable as error:
            assert error.retry_after is not None and error.retry_after > 0
            return ("shed", time.perf_counter() - start)

    with ThreadPoolExecutor(max_workers=REQUESTS) as pool:
        futures = []
        for index in range(REQUESTS):
            futures.append(pool.submit(one, 1000 + index))
            time.sleep(period)
        outcomes = [future.result() for future in futures]

    accepted = sorted(lat for kind, lat in outcomes if kind == "ok")
    shed = [lat for kind, lat in outcomes if kind == "shed"]
    violations = sum(
        1 for lat in accepted if lat * 1e3 > DEADLINE_MS + GRACE_MS
    )
    shed_rate = len(shed) / REQUESTS
    ideal = max(0.0, 1.0 - 1.0 / factor)
    return {
        "factor": factor,
        "accepted": len(accepted),
        "shed": len(shed),
        "shed_rate": round(shed_rate, 3),
        "ideal_shed_rate": round(ideal, 3),
        # observed/ideal, the dimensionless gated quantity; None at 1x
        # where the ideal is zero (nothing to normalize by).
        "shed_accuracy": round(shed_rate / ideal, 3) if ideal else None,
        "p50_ms": round(statistics.median(accepted) * 1e3, 1)
        if accepted else None,
        "p99_ms": round(accepted[-1] * 1e3, 1) if accepted else None,
        "deadline_violations": violations,
    }


def run_benchmark(factors: list[float]) -> dict:
    results = []
    for mode, depth in QUEUE_DEPTHS.items():
        cache_dir = tempfile.mkdtemp(prefix="bench-overload-")
        proc = None
        try:
            proc, port, service = start_server(cache_dir, depth)
            for factor in factors:
                row = load_pass(port, factor, service)
                row["mode"] = mode
                row["service_ewma_ms"] = round(service * 1e3, 1)
                results.append(row)
                time.sleep(2 * service)  # drain between passes
        finally:
            if proc is not None:
                stop_server(proc)
            shutil.rmtree(cache_dir, ignore_errors=True)
    return {
        "bench": "service_overload",
        "graph": GRAPH,
        "service_delay_s": SERVICE_DELAY,
        "deadline_ms": DEADLINE_MS,
        "grace_ms": GRACE_MS,
        "requests": REQUESTS,
        "factors": factors,
        "results": results,
    }


def _row(payload: dict, mode: str, factor: float) -> dict:
    for row in payload["results"]:
        if row["mode"] == mode and row["factor"] == factor:
            return row
    raise KeyError(f"no cell mode={mode} factor={factor} in payload")


def check_regression(
    payload: dict, baseline: dict, tolerance: float = 0.40
) -> tuple[bool, str]:
    """Gate the dimensionless shed-accuracy ratio at (2x, queue).

    A growing ratio means the queue sheds requests it used to serve
    within deadline -- admission-accuracy regression. Lower (closer to
    the analytic ideal of 1.0) is better, so the gate is one-sided.
    """
    cell = _row(payload, "queue", 2)
    current = cell["shed_accuracy"]
    reference = _row(baseline, "queue", 2)["shed_accuracy"]
    if current is None or reference is None:
        return False, "shed_accuracy missing at the gated (2x, queue) cell"
    # One-request counting slack: with REQUESTS-sized passes a single
    # jittered shed moves the ratio by 1/(ideal * REQUESTS), which is
    # noise, not policy drift.
    slack = 1.0 / (cell["ideal_shed_rate"] * payload["requests"])
    limit = reference * (1.0 + tolerance) + slack
    verdict = "ok" if current <= limit else "REGRESSION"
    return current <= limit, (
        f"shed-accuracy at 2x (queue): {current:.3f} vs baseline "
        f"{reference:.3f} (limit {limit:.3f}): {verdict}"
    )


def _render(payload: dict) -> list[str]:
    lines = [
        f"{'mode':>7s} {'factor':>6s} {'acc':>4s} {'shed':>4s} "
        f"{'shed%':>6s} {'ideal%':>6s} {'p50':>7s} {'p99':>7s} {'late':>4s}"
    ]
    for row in payload["results"]:
        p50 = f"{row['p50_ms']:.0f}ms" if row["p50_ms"] is not None else "-"
        p99 = f"{row['p99_ms']:.0f}ms" if row["p99_ms"] is not None else "-"
        lines.append(
            f"{row['mode']:>7s} {row['factor']:>5.0f}x {row['accepted']:>4d} "
            f"{row['shed']:>4d} {100 * row['shed_rate']:>5.0f}% "
            f"{100 * row['ideal_shed_rate']:>5.0f}% {p50:>7s} {p99:>7s} "
            f"{row['deadline_violations']:>4d}"
        )
    return lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help=f"factors {SMOKE_FACTORS} only for CI (same request count, "
             "so the gated 2x cell is comparable to a full baseline)",
    )
    parser.add_argument(
        "--out", type=Path, default=OUTPUT,
        help="output JSON path (default: BENCH_service_overload.json)",
    )
    parser.add_argument(
        "--gate", type=Path, metavar="BASELINE",
        help="fail (exit 1) if the (2x, queue) shed-accuracy ratio "
             "regresses >40%% vs this baseline JSON",
    )
    args = parser.parse_args(argv)
    factors = SMOKE_FACTORS if args.smoke else FULL_FACTORS
    payload = run_benchmark(factors)
    payload["mode"] = "smoke" if args.smoke else "full"
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    for line in _render(payload):
        print(line)
    print(f"wrote {args.out}")
    late = sum(row["deadline_violations"] for row in payload["results"])
    if late:
        print(f"FAIL: {late} accepted response(s) finished past deadline")
        return 1
    if args.gate is not None:
        baseline = json.loads(args.gate.read_text())
        passed, message = check_regression(payload, baseline)
        print(message)
        if not passed:
            return 1
    return 0


def test_service_overload(benchmark, report):
    """Pytest-benchmark wrapper with the acceptance assertions."""
    payload = {}

    def experiment():
        payload.update(run_benchmark(FULL_FACTORS))
        return payload

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    payload["mode"] = "full"
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    report("service overload shedding (queue vs reject)", _render(payload))

    # Acceptance: at 2x overload the queue sheds (capacity is exceeded),
    # every accepted response lands inside its deadline, and accuracy
    # stays near the analytic ideal.
    cell = _row(payload, "queue", 2)
    assert cell["shed"] >= 1, cell
    assert cell["deadline_violations"] == 0, cell
    assert cell["shed_accuracy"] is not None and cell["shed_accuracy"] < 2.0
    for row in payload["results"]:
        assert row["deadline_violations"] == 0, row


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
