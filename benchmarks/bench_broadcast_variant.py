"""Broadcast CC variant vs the unicast default: rounds and wall-clock.

The broadcast sampler (``variant="broadcast"``, Anari-Haqi) runs one
full-cover phase and bills an analytic polylog recipe to the dedicated
broadcast-bandwidth ledger category, where the unicast Theorem 1 driver
pays Lenzen-routed message loads across ~sqrt(n) phases. This bench pins
the two claims the variant ships on:

- **rounds-vs-n** -- the broadcast bill stays within a small constant of
  ``broadcast_variant_rounds(n)`` (log^4 n) and undercuts the unicast
  bill at every measured n;
- **wall-clock** -- the single full-cover phase is not a simulation-time
  regression: warm per-draw stays within a small factor of the unicast
  default on the same host (both variants share the phase-numerics
  cache substrate, so warm is the honest comparison).

The two bills are *different bandwidth regimes* -- the ratio reported
here is a scaling observation, never a summable saving (see README
"Communication models").

Acceptance gate (full mode): at the top n, broadcast rounds < unicast
rounds AND broadcast rounds <= 8 x log^4 n. Results land in
``BENCH_broadcast_variant.json``.

Runs standalone (the CI smoke job) or under pytest-benchmark::

    PYTHONPATH=src python benchmarks/bench_broadcast_variant.py --smoke
    pytest benchmarks/bench_broadcast_variant.py --benchmark-only
"""

from __future__ import annotations

import argparse
import json
import math
import shutil
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.api import EnsembleRequest, Session, preset_config
from repro.core.rounds import broadcast_variant_rounds
from repro.graphs.families import build_family

FAMILY = "complete"  # dense path: phase numerics dominate, walks mix fast
FULL_NS = [64, 128, 256]
SMOKE_NS = [16, 32]
WARM_DRAWS = 4
REPEATS = 3
POLYLOG_SLACK = 8.0  # same constant test_polylog_scale_vs_unicast pins
OUTPUT = Path(__file__).resolve().parent / "BENCH_broadcast_variant.json"


def _ell_for(n: int) -> int:
    # Full-cover walks need ~n log n steps of headroom; 8n (a power of
    # two for power-of-two n) covers the grid without Las-Vegas retries.
    return max(1 << 8, 8 * n)


def _measure_variant(graph, variant: str, cache_dir: str) -> dict:
    config = preset_config(
        "fast-bench",
        ell=_ell_for(graph.n),
        cache_dir=cache_dir,
        derived_cache_entries=1024,
        cache_memory_bytes=2 << 30,
    )
    session = Session(graph, config, seed=0)
    request = EnsembleRequest(count=1, seed=0, jobs=1, variant=variant)
    start = time.perf_counter()
    cold = session.run(request)
    cold_seconds = time.perf_counter() - start
    session.run(request)  # warm-up: numerics and plans now cached
    warm_seconds = math.inf
    warm = None
    for __ in range(REPEATS):
        start = time.perf_counter()
        for __ in range(WARM_DRAWS):
            warm = session.run(request)
        warm_seconds = min(warm_seconds, time.perf_counter() - start)
    result = cold.result.results[0]
    assert warm.result.trees == cold.result.trees  # same-seed determinism
    return {
        "variant": variant,
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "warm_per_draw": round(warm_seconds / WARM_DRAWS, 4),
        "rounds": int(result.rounds),
        "phases": int(result.phases),
        "rounds_by_category": {
            k: int(v) for k, v in result.rounds_by_category().items()
        },
    }


def measure_instance(n: int) -> dict:
    """One broadcast/approximate pair over private cache dirs."""
    graph, __ = build_family(FAMILY, n, np.random.default_rng(9100 + n))
    rows = {}
    for variant in ("approximate", "broadcast"):
        cache_dir = tempfile.mkdtemp(prefix=f"bench-broadcast-{variant}-")
        try:
            rows[variant] = _measure_variant(graph, variant, cache_dir)
        finally:
            shutil.rmtree(cache_dir, ignore_errors=True)
    polylog = broadcast_variant_rounds(n)
    return {
        "family": FAMILY,
        "n": int(graph.n),
        "ell": _ell_for(n),
        "warm_draws": WARM_DRAWS,
        "approximate": rows["approximate"],
        "broadcast": rows["broadcast"],
        "round_ratio_unicast_over_broadcast": round(
            rows["approximate"]["rounds"]
            / max(rows["broadcast"]["rounds"], 1),
            3,
        ),
        "log4_n": round(polylog, 1),
        "broadcast_rounds_over_log4_n": round(
            rows["broadcast"]["rounds"] / polylog, 3
        ),
    }


def run_benchmark(ns: list[int]) -> dict:
    return {
        "bench": "broadcast_variant",
        "family": FAMILY,
        "ns": ns,
        "polylog_slack": POLYLOG_SLACK,
        "results": [measure_instance(n) for n in ns],
    }


def _render(payload: dict) -> list[str]:
    lines = [
        f"{'n':>5s} {'uni rounds':>10s} {'bc rounds':>10s} {'ratio':>6s} "
        f"{'bc/log^4':>8s} {'uni warm':>9s} {'bc warm':>9s}"
    ]
    for row in payload["results"]:
        lines.append(
            f"{row['n']:>5d} {row['approximate']['rounds']:>10d} "
            f"{row['broadcast']['rounds']:>10d} "
            f"{row['round_ratio_unicast_over_broadcast']:>5.1f}x "
            f"{row['broadcast_rounds_over_log4_n']:>8.2f} "
            f"{row['approximate']['warm_per_draw']:>9.3f} "
            f"{row['broadcast']['warm_per_draw']:>9.3f}"
        )
    return lines


def _assert_gates(payload: dict) -> None:
    for row in payload["results"]:
        assert set(row["broadcast"]["rounds_by_category"]) == {
            "broadcast-bandwidth"
        }, row
        assert row["broadcast"]["rounds"] < row["approximate"]["rounds"], row
        assert (
            row["broadcast"]["rounds"]
            <= POLYLOG_SLACK * broadcast_variant_rounds(row["n"])
        ), row


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help=f"small-n grid {SMOKE_NS} for CI (no acceptance assertion)",
    )
    parser.add_argument(
        "--out", type=Path, default=OUTPUT,
        help="output JSON path (default: BENCH_broadcast_variant.json)",
    )
    args = parser.parse_args(argv)
    ns = SMOKE_NS if args.smoke else FULL_NS
    payload = run_benchmark(ns)
    payload["mode"] = "smoke" if args.smoke else "full"
    if not args.smoke:
        _assert_gates(payload)
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    for line in _render(payload):
        print(line)
    print(f"wrote {args.out}")
    return 0


def test_broadcast_variant(benchmark, report):
    """Pytest-benchmark wrapper with the acceptance gate."""
    payload = {}

    def experiment():
        payload.update(run_benchmark(FULL_NS))
        return payload

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    payload["mode"] = "full"
    _assert_gates(payload)
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    report("broadcast vs unicast rounds and wall-clock", _render(payload))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
