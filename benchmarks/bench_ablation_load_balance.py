"""E8 (Lemma 10/11 ablation): hashed load balancing vs naive doubling.

Paper claim: naive key-addressed doubling can force Omega(n^2 log n) bits
through one machine (Section 3's motivation); the 8c log n-wise hashed
routing caps per-machine tuple loads at 16 c k log n w.h.p. (Lemma 10).
Measured: worst per-machine tuple loads and total rounds for both
variants on a skewed (star) and a regular (expander) topology.
"""

from __future__ import annotations

import math


from repro import graphs
from repro.walks import doubling_random_walk

N = 64
TAU = 128


def test_load_balancing_ablation(benchmark, report, rng):
    topologies = {
        "star (skewed)": graphs.star_graph(N),
        "expander (regular)": graphs.random_regular_graph(N, 4, rng=rng),
        "lollipop (mixed)": graphs.lollipop_graph(N),
    }
    results = {}

    def experiment():
        for name, g in topologies.items():
            balanced = doubling_random_walk(g, TAU, rng, load_balanced=True)
            naive = doubling_random_walk(g, TAU, rng, load_balanced=False)
            results[name] = (balanced, naive)
        return results

    benchmark.pedantic(experiment, rounds=1, iterations=1)

    bound = 16 * 1 * TAU * math.ceil(math.log2(N))
    lines = [
        f"n = {N}, tau = {TAU}; Lemma 10 load bound: 16 c k log n = {bound}",
        f"{'topology':<20s} {'bal.load':>9s} {'naive.load':>10s} "
        f"{'bal.rounds':>10s} {'naive.rounds':>12s}",
    ]
    for name, (balanced, naive) in results.items():
        lines.append(
            f"{name:<20s} {balanced.max_tuples_received:>9d} "
            f"{naive.max_tuples_received:>10d} {balanced.rounds:>10d} "
            f"{naive.rounds:>12d}"
        )
    lines.append(
        "shape check: balanced loads within the Lemma 10 bound everywhere; "
        "naive routing hot-spots on the star"
    )
    report("E8 / Lemma 10-11 ablation: load-balanced vs naive doubling", lines)
    star_balanced, star_naive = results["star (skewed)"]
    assert star_balanced.max_tuples_received <= bound
    assert star_naive.max_tuples_received > 2 * star_balanced.max_tuples_received
