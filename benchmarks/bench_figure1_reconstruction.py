"""E7 (Figure 1 / Lemma 3): matching-based walk reconstruction is lossless.

Paper claim: the leader can reconstruct a correctly distributed walk from
just the midpoint multiset + a weighted perfect matching (Lemma 3 / 4).
Measured: TV distance between directly filled level transitions and
matching-reconstructed ones on the Figure 1 walk shape, for both the
exact-DP and MCMC matching samplers.
"""

from __future__ import annotations

from collections import Counter


from repro import graphs
from repro.core.midpoints import MidpointBank
from repro.core.placement import place_midpoints
from repro.core.truncation import LevelView
from repro.linalg import PowerLadder
from repro.walks.fill import PartialWalk, _fill_level

N_SAMPLES = 2500


def _tv(a: Counter, b: Counter, total: int) -> float:
    keys = set(a) | set(b)
    return 0.5 * sum(abs(a[k] / total - b[k] / total) for k in keys)


def test_figure1_reconstruction_fidelity(benchmark, report, rng):
    g = graphs.complete_graph(5)
    ladder = PowerLadder(g.transition_matrix(), 8)
    half = ladder.power(2)
    base = [1, 3, 2, 1, 3, 2, 1, 2, 3]  # the figure's partial walk
    pair_counts: dict = {}
    for pair in zip(base, base[1:]):
        pair_counts[pair] = pair_counts.get(pair, 0) + 1

    tvs = {}

    def experiment():
        # Two *independent* direct batches calibrate the empirical noise
        # floor: reconstruction is lossless iff its TV to a direct batch
        # matches the TV between two direct batches.
        def project(vertices):
            # Small-support statistic: the first and last inserted
            # midpoints (support <= 25, so TVs are interpretable).
            return (vertices[1], vertices[-2])

        direct_a = Counter()
        direct_b = Counter()
        direct_a_proj = Counter()
        direct_b_proj = Counter()
        for _ in range(N_SAMPLES):
            walk_a = _fill_level(PartialWalk(4, list(base)), half, rng).vertices
            walk_b = _fill_level(PartialWalk(4, list(base)), half, rng).vertices
            direct_a[tuple(walk_a)] += 1
            direct_b[tuple(walk_b)] += 1
            direct_a_proj[project(walk_a)] += 1
            direct_b_proj[project(walk_b)] += 1
        tvs["direct-vs-direct full walks (noise floor)"] = _tv(
            direct_a, direct_b, N_SAMPLES
        )
        tvs["direct-vs-direct projected (noise floor)"] = _tv(
            direct_a_proj, direct_b_proj, N_SAMPLES
        )
        for method in ("exact-dp", "mcmc"):
            rebuilt = Counter()
            rebuilt_proj = Counter()
            for _ in range(N_SAMPLES):
                bank = MidpointBank(pair_counts, half, rng)
                view = LevelView(PartialWalk(4, list(base)), bank)
                vertices = place_midpoints(
                    view, view.top, half, rng, method=method
                ).vertices
                rebuilt[tuple(vertices)] += 1
                rebuilt_proj[project(vertices)] += 1
            tvs[f"{method} full walks"] = _tv(direct_a, rebuilt, N_SAMPLES)
            tvs[f"{method} projected"] = _tv(direct_a_proj, rebuilt_proj, N_SAMPLES)
        return tvs

    benchmark.pedantic(experiment, rounds=1, iterations=1)

    lines = [
        f"W_i = {base} (8 midpoints, 4 distinct pairs), {N_SAMPLES} trials",
        *(f"TV: {m} = {tv:.4f}" for m, tv in tvs.items()),
        "shape check: reconstruction TVs indistinguishable from the "
        "direct-vs-direct noise floors on both statistics (Lemma 3 "
        "exactness; MCMC within its Lemma 4 budget)",
    ]
    report("E7 / Figure 1: multiset + matching reconstruction", lines)
    full_floor = tvs["direct-vs-direct full walks (noise floor)"]
    proj_floor = tvs["direct-vs-direct projected (noise floor)"]
    assert tvs["exact-dp full walks"] < 1.35 * full_floor + 0.02
    assert tvs["mcmc full walks"] < 1.5 * full_floor + 0.03
    assert tvs["exact-dp projected"] < 3 * proj_floor + 0.02
    assert tvs["mcmc projected"] < 3 * proj_floor + 0.03
