"""E9 (Section 1.4): the random-weight MST strawman is not uniform.

Paper claim: assigning random [0,1] edge weights and taking the MST --
tempting, since MST is O(1) rounds in the CongestedClique -- samples
spanning trees from a distribution "well known to differ from the uniform
distribution" [39]. Measured: TV distance and chi-square p-values of the
strawman vs our sampler on graphs where the bias is pronounced.
"""

from __future__ import annotations


from repro import graphs
from repro.analysis import (
    chi_square_uniformity,
    expected_tv_noise,
    tv_to_uniform,
)
from repro.api import get_preset
from repro.core import CongestedCliqueTreeSampler
from repro.graphs import count_spanning_trees
from repro.walks import random_weight_mst_tree

CONFIG = get_preset("fast-audit").config
N_SAMPLES = 1500


def test_mst_strawman_bias(benchmark, report, rng):
    cases = {
        "theta(1,1,3)": graphs.theta_graph(1, 1, 3),
        "theta(1,2,2)": graphs.theta_graph(1, 2, 2),
        "cycle+chord(6)": graphs.cycle_with_chord(6),
    }
    results = {}

    def experiment():
        for name, g in cases.items():
            mst_trees = [random_weight_mst_tree(g, rng) for _ in range(N_SAMPLES)]
            our_trees = [
                CongestedCliqueTreeSampler(g, CONFIG).sample_tree(rng)
                for _ in range(N_SAMPLES // 3)
            ]
            results[name] = (
                tv_to_uniform(g, mst_trees),
                chi_square_uniformity(g, mst_trees)[1],
                tv_to_uniform(g, our_trees),
                chi_square_uniformity(g, our_trees)[1],
                int(round(count_spanning_trees(g))),
            )
        return results

    benchmark.pedantic(experiment, rounds=1, iterations=1)

    lines = [
        f"{'graph':<16s} {'MST TV':>8s} {'MST p':>9s} {'ours TV':>8s} "
        f"{'ours p':>9s} {'noise':>7s}",
    ]
    for name, (mst_tv, mst_p, our_tv, our_p, trees) in results.items():
        noise = expected_tv_noise(trees, N_SAMPLES)
        lines.append(
            f"{name:<16s} {mst_tv:>8.4f} {mst_p:>9.1e} {our_tv:>8.4f} "
            f"{our_p:>9.1e} {noise:>7.4f}"
        )
    lines.append(
        "shape check: MST chi-square p-values collapse to ~0 on the theta "
        "graphs while our sampler stays at the noise floor"
    )
    report("E9 / Section 1.4: random-weight MST is biased", lines)
    assert results["theta(1,1,3)"][1] < 1e-6   # strawman rejected
    assert results["theta(1,1,3)"][3] > 1e-3   # ours accepted
