"""E12 (Direction 4 / Barnes-Feige [8]): distinct vertices of length-n walks.

Paper context: a length-n walk visits Omega(n^{1/3}) distinct vertices on
unweighted graphs, suggesting a conceptually simpler O(n^{2/3})-phase
algorithm (Direction 4) -- but the bound fails on weighted (Schur) graphs.
Measured: mean distinct-vertex counts of length-n walks across families
and n, with the fitted growth exponent against the 1/3 lower bound.
"""

from __future__ import annotations

import numpy as np

from repro import graphs
from repro.analysis import loglog_fit
from repro.walks import distinct_vertex_count, random_walk

NS = [27, 64, 125, 216]
TRIALS = 30


def test_barnes_feige_distinct_counts(benchmark, report, rng):
    families = {
        "lollipop": graphs.lollipop_graph,
        "path": graphs.path_graph,
        "cycle": graphs.cycle_graph,
        "complete": graphs.complete_graph,
    }
    means = {name: [] for name in families}

    def experiment():
        for name, factory in families.items():
            for n in NS:
                g = factory(n)
                counts = [
                    distinct_vertex_count(random_walk(g, 0, n, rng))
                    for _ in range(TRIALS)
                ]
                means[name].append(float(np.mean(counts)))
        return means

    benchmark.pedantic(experiment, rounds=1, iterations=1)

    lines = [f"{'family':<10s}" + "".join(f" n={n:<8d}" for n in NS) + " exponent"]
    for name, values in means.items():
        exponent, _ = loglog_fit(NS, values)
        lines.append(
            f"{name:<10s}"
            + "".join(f" {v:<9.1f}" for v in values)
            + f" {exponent:.2f}"
        )
    lines += [
        "Barnes-Feige floor: n^{1/3} = "
        + ", ".join(f"{n ** (1/3):.1f}" for n in NS),
        "shape check: every family sits above the n^{1/3} floor; growth "
        "exponents between 1/3 (lollipop-ish) and 1 (complete)",
    ]
    report("E12 / Barnes-Feige: distinct vertices in length-n walks", lines)
    for name, values in means.items():
        for n, v in zip(NS, values):
            assert v >= n ** (1.0 / 3.0) * 0.9, (name, n, v)
