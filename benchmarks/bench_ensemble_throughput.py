"""E22 (engine): ensemble throughput -- EnsembleEngine vs the seed loop.

The ROADMAP's hot-path target: ensemble workloads (uniformity audits,
TV estimation, leverage marginals) draw hundreds of trees from one
sampler. The seed architecture paid the full per-draw cost in a Python
loop -- per-draw derived-graph rebuilds and the pure-Python contingency
DP. The engine batches this: a cross-sample
:class:`~repro.engine.cache.DerivedGraphCache`, the vectorized placement
DP, and multi-process fan-out via
:meth:`~repro.engine.ensemble.EnsembleEngine.sample_ensemble`.

Measured here, for n in {32, 64, 128} at 200 draws:

- ``baseline``: the seed's ``sample_many`` loop, reconstructed faithfully
  (per-draw numeric rebuilds via ``derived_cache=False`` and the original
  DP via ``matching_method="exact-dp-reference"``), timed over a smaller
  sample and reported as trees/second;
- ``single``: ``sample_ensemble(200, jobs=1)``;
- ``multi``: ``sample_ensemble(200, jobs=2)`` (recorded even on 1-CPU
  hosts, where it only adds fork overhead).

Acceptance gate: single-process engine >= 2x baseline throughput at
n = 64, with byte-identical trees across jobs counts. Results land in
``BENCH_ensemble_throughput.json`` next to this file.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro import graphs
from repro.api import get_preset, preset_config
from repro.core import CongestedCliqueTreeSampler
from repro.engine import EnsembleEngine

NS = [32, 64, 128]
DRAWS = 200
BASELINE_DRAWS = 30  # seed loop is slow; rate extrapolates linearly
OUTPUT = Path(__file__).resolve().parent / "BENCH_ensemble_throughput.json"


def _graph(n: int) -> "graphs.WeightedGraph":
    return graphs.erdos_renyi_graph(n, rng=np.random.default_rng(2200 + n))


def _baseline_rate(n: int) -> float:
    """Trees/second of the seed-equivalent sample_many Python loop."""
    config = preset_config(
        "fast-audit",
        derived_cache=False,
        matching_method="exact-dp-reference",
    )
    sampler = CongestedCliqueTreeSampler(_graph(n), config)
    rng = np.random.default_rng(77)
    start = time.perf_counter()
    sampler.sample_many(BASELINE_DRAWS, rng)
    return BASELINE_DRAWS / (time.perf_counter() - start)


def test_ensemble_throughput(benchmark, report):
    rows = []

    def experiment():
        for n in NS:
            engine = EnsembleEngine(_graph(n), get_preset("fast-audit").config)
            single = engine.sample_ensemble(DRAWS, seed=7, jobs=1)
            multi = engine.sample_ensemble(DRAWS, seed=7, jobs=2)
            baseline = _baseline_rate(n)
            rows.append(
                {
                    "n": n,
                    "family": "gnp",
                    "draws": DRAWS,
                    "baseline_trees_per_s": round(baseline, 3),
                    "single_trees_per_s": round(single.trees_per_second(), 3),
                    "multi_trees_per_s": round(multi.trees_per_second(), 3),
                    "multi_jobs": multi.jobs,
                    "speedup_single_vs_baseline": round(
                        single.trees_per_second() / baseline, 3
                    ),
                    "identical_trees_across_jobs": single.trees == multi.trees,
                    "cache": single.cache_stats,
                }
            )
        return rows

    benchmark.pedantic(experiment, rounds=1, iterations=1)

    payload = {
        "bench": "ensemble_throughput",
        "draws": DRAWS,
        "baseline_draws": BASELINE_DRAWS,
        "cpu_count": os.cpu_count(),
        "results": rows,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [
        f"{'n':>5s} {'baseline t/s':>13s} {'engine t/s':>11s} "
        f"{'multi t/s':>10s} {'speedup':>8s}"
    ]
    for row in rows:
        lines.append(
            f"{row['n']:>5d} {row['baseline_trees_per_s']:>13.2f} "
            f"{row['single_trees_per_s']:>11.2f} "
            f"{row['multi_trees_per_s']:>10.2f} "
            f"{row['speedup_single_vs_baseline']:>7.2f}x"
        )
    lines.append(
        "shape check: engine >= 2x the seed loop at n=64 (derived-graph "
        "cache + vectorized placement DP), trees byte-identical across "
        f"jobs counts; JSON at {OUTPUT.name}"
    )
    report("E22 / ensemble throughput (engine vs seed loop)", lines)

    for row in rows:
        assert row["identical_trees_across_jobs"], row["n"]
        # Small-n instances spend little in the optimized paths; the
        # engine must still never regress materially.
        assert row["speedup_single_vs_baseline"] > 0.9, row
    n64 = next(row for row in rows if row["n"] == 64)
    assert n64["speedup_single_vs_baseline"] >= 2.0, n64
