"""E17 (substitution ablation): analytic alpha=0.157 vs executable matmul.

Paper context: Theorem 1's O~(n^{1/2+alpha}) uses the fast
(Strassen-based) clique multiplication of [17] as a black box. Our
default reproduces that as an analytic charge; the executable alternative
is [17]'s combinatorial 3D protocol at O(n^{1/3}) rounds. This bench runs
the full sampler under both backends and reports how the headline
exponent moves -- the cost of refusing the black box.
"""

from __future__ import annotations

import numpy as np

from repro import graphs
from repro.analysis import loglog_fit
from repro.clique.cost import ALPHA
from repro.core import CongestedCliqueTreeSampler, SamplerConfig

NS = [16, 32, 64]


def test_matmul_backend_ablation(benchmark, report):
    results = {"analytic": {}, "simulated-3d": {}}

    def experiment():
        for backend in results:
            for n in NS:
                rng = np.random.default_rng(9000 + n)
                g = graphs.random_regular_graph(n, 4, rng=rng)
                config = SamplerConfig(ell=1 << 12, matmul_backend=backend)
                results[backend][n] = CongestedCliqueTreeSampler(
                    g, config
                ).sample(rng)
        return results

    benchmark.pedantic(experiment, rounds=1, iterations=1)

    lines = [
        f"{'n':>5s} {'analytic rounds':>15s} {'simulated-3d rounds':>19s}",
    ]
    for n in NS:
        lines.append(
            f"{n:>5d} {results['analytic'][n].rounds:>15d} "
            f"{results['simulated-3d'][n].rounds:>19d}"
        )
    exp_a, _ = loglog_fit(NS, [results["analytic"][n].rounds for n in NS])
    exp_s, _ = loglog_fit(NS, [results["simulated-3d"][n].rounds for n in NS])
    lines += [
        f"fitted exponents: analytic {exp_a:.3f} "
        f"(target 0.5 + {ALPHA} + polylog), executable {exp_s:.3f} "
        f"(target 0.5 + 1/3 + polylog)",
        "shape check: both sublinear and nearly identical at these sizes "
        "(ceil(n^{1/3}) vs ceil(n^{0.157}) log n cross over only at much "
        "larger n); asymptotically the executable protocol pays "
        "n^{1/3 - alpha} more per phase -- the price of refusing the "
        "fast-multiplication black box",
    ]
    report("E17 / matmul backend ablation (black box vs executable)", lines)
    for n in NS:
        assert (
            results["simulated-3d"][n].rounds
            >= results["analytic"][n].rounds * 0.8
        )
    assert exp_s < 1.2  # still o(n) after the substitution at these sizes
