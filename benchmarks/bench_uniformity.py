"""E2 (Lemmas 4/6): output distribution is within eps of uniform.

Paper claim: TV distance <= eps = 1/n^c from the uniform spanning-tree
distribution. Measured: empirical TV against exact Matrix-Tree enumeration
on a small graph for both sampler variants, next to the sampling-noise
floor of a perfect sampler and the (biased) random-weight MST strawman.
"""

from __future__ import annotations

from repro import graphs
from repro.analysis import (
    chi_square_uniformity,
    expected_tv_noise,
    tv_to_uniform,
)
from repro.api import get_preset
from repro.graphs import count_spanning_trees
from repro.walks import random_weight_mst_tree, wilson_tree

GRAPH = graphs.cycle_with_chord(5)
CONFIG = get_preset("fast-audit").config
N_SAMPLES = 800


def test_uniformity_tv(benchmark, report, rng):
    results = {}

    def experiment():
        # The paper samplers draw their batches through the ensemble
        # engine (per-draw spawned seeds, warm derived-graph cache); the
        # sequential baselines keep their plain loops.
        from repro.engine import sample_tree_ensemble

        batches = {
            "theorem1": sample_tree_ensemble(
                GRAPH, N_SAMPLES, config=CONFIG, seed=rng, jobs=1
            ).trees,
            "exact": sample_tree_ensemble(
                GRAPH, N_SAMPLES, config=CONFIG, variant="exact",
                seed=rng, jobs=1,
            ).trees,
            "wilson (reference)": [
                wilson_tree(GRAPH, rng) for _ in range(N_SAMPLES)
            ],
            "random-weight MST": [
                random_weight_mst_tree(GRAPH, rng) for _ in range(N_SAMPLES)
            ],
        }
        for name, trees in batches.items():
            results[name] = (
                tv_to_uniform(GRAPH, trees),
                chi_square_uniformity(GRAPH, trees)[1],
            )
        return results

    benchmark.pedantic(experiment, rounds=1, iterations=1)

    num_trees = int(round(count_spanning_trees(GRAPH)))
    noise = expected_tv_noise(num_trees, N_SAMPLES)
    lines = [
        f"graph: cycle+chord n=5, {num_trees} trees; {N_SAMPLES} samples each",
        f"perfect-sampler TV noise floor: {noise:.4f}",
        f"{'sampler':<22s} {'TV':>8s} {'chi2 p':>10s}",
    ]
    for name, (tv, p) in results.items():
        lines.append(f"{name:<22s} {tv:>8.4f} {p:>10.2e}")
    lines.append(
        "shape check: both paper samplers at the noise floor; MST strawman "
        "rejected (Section 1.4)"
    )
    report("E2 / Lemmas 4+6: TV distance to uniform", lines)
    assert results["theorem1"][0] < 4 * noise
    assert results["exact"][0] < 4 * noise
