"""E11 (Lemma 3 + JSV substitution ablation): matching sampler choices.

Paper claim: any weighted-perfect-matching sampler with per-draw TV error
eps/(4 sqrt n log ell) keeps the walk correct (Lemma 4); the paper plugs
in JSV+JVV. We ablate our three realizations -- exact class DP (default),
exact self-reducible Ryser, Metropolis MCMC -- on an instance shaped like
the sampler's own placement step, measuring wall-clock and distributional
agreement on the *contingency-table* projection (the statistic the walk
reconstruction actually consumes; the finer within-class orderings are
uniform by symmetry for every sampler).
"""

from __future__ import annotations

import time
from collections import Counter

import numpy as np

from repro.matching import (
    ClassifiedBipartite,
    sample_contingency_table,
    sample_matching_exact,
    sample_matching_mcmc,
)

# A representative placement instance: 3 midpoint classes with counts
# (3, 2, 2) into 2 pair classes with counts (4, 3) -- the shape produced
# by a level with ~7 midpoints.
INSTANCE = ClassifiedBipartite(
    row_labels=(0, 1, 2),
    row_counts=(3, 2, 2),
    col_labels=("pq", "rs"),
    col_counts=(4, 3),
    class_weights=np.array([[0.4, 0.1], [0.2, 0.5], [0.3, 0.3]]),
)
N_SAMPLES = 1500


def _table_from_permutation(assignment, rows, col_class_of) -> tuple:
    """Project an expanded-matrix permutation onto its contingency table."""
    table = Counter()
    for row, col in enumerate(assignment):
        table[(rows[row], col_class_of[col])] += 1
    return tuple(sorted(table.items()))


def test_matching_sampler_ablation(benchmark, report, rng):
    expanded = INSTANCE.expanded_weights()
    rows = [0] * 3 + [1] * 2 + [2] * 2
    col_class_of = ["pq"] * 4 + ["rs"] * 3
    laws: dict[str, Counter] = {}
    timings: dict[str, float] = {}

    def experiment():
        start = time.perf_counter()
        laws["exact-dp"] = Counter(
            tuple(
                sorted(
                    ((INSTANCE.row_labels[r], INSTANCE.col_labels[c]), int(v))
                    for (r, c), v in np.ndenumerate(
                        sample_contingency_table(INSTANCE, rng)
                    )
                    if v > 0
                )
            )
            for _ in range(N_SAMPLES)
        )
        timings["exact-dp"] = time.perf_counter() - start

        start = time.perf_counter()
        laws["exact-permanent"] = Counter(
            _table_from_permutation(
                sample_matching_exact(expanded, rng), rows, col_class_of
            )
            for _ in range(N_SAMPLES)
        )
        timings["exact-permanent"] = time.perf_counter() - start

        start = time.perf_counter()
        laws["mcmc"] = Counter(
            _table_from_permutation(
                sample_matching_mcmc(expanded, steps=800, rng=rng),
                rows, col_class_of,
            )
            for _ in range(N_SAMPLES)
        )
        timings["mcmc"] = time.perf_counter() - start
        return laws

    benchmark.pedantic(experiment, rounds=1, iterations=1)

    reference = laws["exact-dp"]
    support = len(set().union(*laws.values()))
    noise = np.sqrt(support / (2 * np.pi * N_SAMPLES))
    lines = [
        f"instance: 7 midpoints, 3 value classes, 2 pair classes; "
        f"{N_SAMPLES} draws each; {support} observed tables "
        f"(empirical-vs-empirical noise ~ {2 * noise:.3f})",
        f"{'sampler':<17s} {'secs':>7s} {'TV vs exact-dp':>15s}",
    ]
    tvs = {}
    for name, law in laws.items():
        keys = set(law) | set(reference)
        tv = 0.5 * sum(
            abs(law[k] / N_SAMPLES - reference[k] / N_SAMPLES) for k in keys
        )
        tvs[name] = tv
        lines.append(f"{name:<17s} {timings[name]:>7.2f} {tv:>15.4f}")
    lines.append(
        "shape check: all three samplers agree within sampling noise on "
        "the table law; class DP is the cheapest by a wide margin"
    )
    report("E11 / matching sampler ablation (JSV substitution)", lines)
    for name, tv in tvs.items():
        assert tv < max(0.1, 3 * 2 * noise), name
