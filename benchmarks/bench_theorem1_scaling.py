"""E1 (Theorem 1): round complexity of the main sampler scales as
O~(n^{1/2 + alpha}) with Theta(sqrt n) phases.

Paper claim: O~(n^{0.657}) rounds; sqrt(n) phases each costing O~(n^alpha)
matrix-multiplication rounds (Lemma 5). Measured: ledger round totals
across n on expanders, with the log-log fitted exponent reported next to
the claimed one. Absolute constants are simulator-specific; the exponent
and the matmul-dominance of the cost profile are the reproduction targets.
"""

from __future__ import annotations

import numpy as np

from repro import graphs
from repro.analysis import loglog_fit
from repro.clique.cost import ALPHA
from repro.api import get_preset
from repro.core import CongestedCliqueTreeSampler, expected_phases

CONFIG = get_preset("fast-bench").config
NS = [16, 32, 64, 96, 128]


def _run(n: int, seed: int):
    rng = np.random.default_rng(seed)
    g = graphs.random_regular_graph(n, 4, rng=rng)
    return CongestedCliqueTreeSampler(g, CONFIG).sample(rng)


def test_theorem1_round_scaling(benchmark, report):
    results = {}

    def experiment():
        for n in NS:
            results[n] = _run(n, seed=n)
        return results

    benchmark.pedantic(experiment, rounds=1, iterations=1)

    rounds = [results[n].rounds for n in NS]
    phases = [results[n].phases for n in NS]
    exponent, _ = loglog_fit(NS, rounds)
    phase_exp, _ = loglog_fit(NS, phases)
    lines = [
        f"{'n':>5s} {'rounds':>9s} {'phases':>7s} {'exp.phases':>10s} {'matmul%':>8s}",
    ]
    for n in NS:
        res = results[n]
        matmul = res.rounds_by_category().get("matmul", 0)
        lines.append(
            f"{n:>5d} {res.rounds:>9d} {res.phases:>7d} "
            f"{expected_phases(n, int(np.sqrt(n))):>10.1f} "
            f"{100 * matmul / res.rounds:>7.1f}%"
        )
    # One log n factor comes from Lemma 7's O(log n)-word entries; deflate
    # it to compare against the paper's exponent at these small n.
    deflated, _ = loglog_fit(
        NS, [r / np.log2(n) for n, r in zip(NS, rounds)]
    )
    lines += [
        f"fitted round exponent: {exponent:.3f} raw, {deflated:.3f} after "
        f"deflating one log n (paper: {0.5 + ALPHA:.3f} + polylog factors)",
        f"fitted phase exponent: {phase_exp:.3f}  (paper: 0.5)",
        "shape check: sublinear rounds (exponent < 1), matmul dominates",
    ]
    report("E1 / Theorem 1: O~(n^{1/2+alpha}) round scaling", lines)
    benchmark.extra_info["fitted_exponent"] = exponent
    assert exponent < 1.0  # the headline sublinearity
    assert 0.3 < phase_exp < 0.7
