"""Batched RNG contract (v2) vs the per-decision stream (v1), fully warm.

PR 5's placement plan made every *deterministic* placement structure a
memo hit on warm draws, which left the per-decision randomness calls as
the warm floor: one ``rng.choice(p=...)`` per midpoint, per DP column,
per first-visit edge -- each paying generator dispatch plus a normalizing
divide. The v2 contract batches them: one uniform block per level (and
per DP layer), resolved by ``searchsorted`` against CDFs the plan caches
alongside its laws, with zero divides on the draw path (uniforms are
scaled by ``cdf[-1]`` instead).

This bench measures both contracts at ``placement_mode="batched"`` on
the warm-service path (complete graph, dense numerics, wall-clock-tuned
``rho = 16`` -- the same scenario as ``bench_placement_batched.py``,
whose reference-mode numbers are the PR 5 baseline):

- **cold** -- first same-seed request over an empty cache dir;
- **warm per-draw** -- steady-state per-draw seconds after a warm-up.

The contracts deliberately draw *different* trees from the same seed
(different bits consumed -- v2 has its own golden fixtures, gated on the
chi-square/exact-TV harness). What stays identical, asserted per draw
below, are the analytic round charges -- the categories whose bills are
determined by ``(n, ell, rho, phases)`` alone (matmul, midpoint
requests, end-vertex and first-visit protocol steps) -- plus the phase
count itself. Trajectory-*scaled* categories (truncation probes,
per-pair distribution loads and broadcasts, DP submatrix sizes) follow
the drawn walk and may differ by a fraction of a percent, exactly as
two different v1 seeds would.

Acceptance gate (full mode): v2 >= 1.8x v1 warm per-draw at n = 512.
Results land in ``BENCH_rng_batched.json``; the CI smoke job re-runs the
small grid and fails if the v2/v1 ratio regresses >25% vs the checked-in
baseline (the ratio normalizes out host speed).

Runs standalone (the CI smoke job) or under pytest-benchmark::

    PYTHONPATH=src python benchmarks/bench_rng_batched.py --smoke
    pytest benchmarks/bench_rng_batched.py --benchmark-only
"""

from __future__ import annotations

import argparse
import json
import math
import shutil
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.api import EnsembleRequest, Session, preset_config
from repro.graphs.families import build_family

FAMILY = "complete"  # dense path: the walk-layer floor dominates warm draws
FULL_NS = [256, 512]
SMOKE_NS = [48, 64]
WARM_DRAWS = 4
REPEATS = 3
FULL_ELL = 1 << 10
SMOKE_ELL = 1 << 8
RHO = 16  # wall-clock-tuned service quota (see bench_cache_warmstart.py)
OUTPUT = Path(__file__).resolve().parent / "BENCH_rng_batched.json"

# Charge categories whose per-draw bills are analytic in
# (n, ell, rho, phase count) -- identical across contracts by
# construction, asserted per draw. The remaining categories scale with
# the drawn trajectory, which the contract deliberately changes.
ANALYTIC_CATEGORIES = (
    "matmul",
    "init/sample-end",
    "first-visit-edges",
    "midpoints/requests",
)


def _measure_contract(graph, contract: str, ell: int, cache_dir: str) -> dict:
    config = preset_config(
        "fast-bench",
        ell=ell,
        rho=RHO,
        cache_dir=cache_dir,
        placement_mode="batched",
        rng_contract=contract,
        derived_cache_entries=1024,
        cache_memory_bytes=2 << 30,
    )
    # Fully-warm scenario: the same-seed request replayed against a warm
    # session (numerics in RAM, plan memos + CDFs hot). Fresh seeds would
    # pull never-seen phase subsets and re-measure numerics, not the
    # randomness contract.
    session = Session(graph, config, seed=0)
    request = EnsembleRequest(count=1, seed=0, jobs=1)
    start = time.perf_counter()
    cold = session.run(request)
    cold_seconds = time.perf_counter() - start
    session.run(request)  # warm-up: plan DP builds + CDF memos fill here
    warm_seconds = math.inf
    warm = None
    for __ in range(REPEATS):
        start = time.perf_counter()
        for __ in range(WARM_DRAWS):
            warm = session.run(request)
        warm_seconds = min(warm_seconds, time.perf_counter() - start)
    # Same seed + same contract => byte-identical replay, warm or cold.
    assert warm.result.trees == cold.result.trees
    results = cold.result.results
    return {
        "contract": contract,
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "warm_per_draw": round(warm_seconds / WARM_DRAWS, 4),
        "trees": cold.result.trees,
        "phases": [r.phases for r in results],
        "analytic_rounds": [
            {
                category: int(r.rounds_by_category().get(category, 0))
                for category in ANALYTIC_CATEGORIES
            }
            for r in results
        ],
    }


def measure_instance(n: int, ell: int) -> dict:
    """One v1/v2 pair over private cache dirs."""
    graph, __ = build_family(FAMILY, n, np.random.default_rng(9000 + n))
    rows = {}
    for contract in ("v1", "v2"):
        cache_dir = tempfile.mkdtemp(prefix=f"bench-rng-{contract}-")
        try:
            rows[contract] = _measure_contract(graph, contract, ell, cache_dir)
        finally:
            shutil.rmtree(cache_dir, ignore_errors=True)
    # The contract changes which bits are consumed -- so trees differ --
    # but never the analytic round charges or the phase structure.
    assert rows["v1"]["trees"] != rows["v2"]["trees"], (
        "contracts drew identical trees; the v2 path did not engage"
    )
    assert rows["v1"]["phases"] == rows["v2"]["phases"], (
        "contracts disagreed on phase counts"
    )
    assert rows["v1"]["analytic_rounds"] == rows["v2"]["analytic_rounds"], (
        "contracts billed different analytic rounds"
    )
    for row in rows.values():
        del row["trees"]
    speedup = rows["v1"]["warm_per_draw"] / max(
        rows["v2"]["warm_per_draw"], 1e-9
    )
    return {
        "family": FAMILY,
        "n": int(graph.n),
        "ell": int(ell),
        "rho": RHO,
        "warm_draws": WARM_DRAWS,
        "v1": rows["v1"],
        "v2": rows["v2"],
        "speedup_warm": round(speedup, 3),
    }


def run_benchmark(ns: list[int], ell: int) -> dict:
    return {
        "bench": "rng_batched",
        "family": FAMILY,
        "ell": ell,
        "rho": RHO,
        "ns": ns,
        "results": [measure_instance(n, ell) for n in ns],
    }


def best_ratio(payload: dict) -> float:
    """Best (smallest) v2/v1 warm per-draw ratio across the grid.

    The ratio normalizes out host speed -- v1 on the same host is the
    proxy -- so a smoke run on a slow CI box is comparable to the
    checked-in full-grid baseline.
    """
    return min(
        row["v2"]["warm_per_draw"] / max(row["v1"]["warm_per_draw"], 1e-9)
        for row in payload["results"]
    )


def check_regression(
    payload: dict, baseline: dict, tolerance: float = 0.25
) -> tuple[bool, str]:
    current = best_ratio(payload)
    reference = best_ratio(baseline)
    limit = reference * (1.0 + tolerance)
    verdict = "ok" if current <= limit else "REGRESSION"
    return current <= limit, (
        f"v2/v1 warm per-draw ratio {current:.3f} vs baseline "
        f"{reference:.3f} (limit {limit:.3f}): {verdict}"
    )


def _render(payload: dict) -> list[str]:
    lines = [
        f"{'n':>5s} {'v1 cold':>9s} {'v1 warm':>9s} {'v2 cold':>9s} "
        f"{'v2 warm':>9s} {'speedup':>8s}"
    ]
    for row in payload["results"]:
        lines.append(
            f"{row['n']:>5d} {row['v1']['cold_seconds']:>9.2f} "
            f"{row['v1']['warm_per_draw']:>9.3f} "
            f"{row['v2']['cold_seconds']:>9.2f} "
            f"{row['v2']['warm_per_draw']:>9.3f} "
            f"{row['speedup_warm']:>7.2f}x"
        )
    return lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help=f"small-n grid {SMOKE_NS} for CI (no acceptance assertion)",
    )
    parser.add_argument(
        "--out", type=Path, default=OUTPUT,
        help="output JSON path (default: BENCH_rng_batched.json)",
    )
    parser.add_argument(
        "--gate", type=Path, metavar="BASELINE",
        help="fail (exit 1) if the v2/v1 warm per-draw ratio regresses "
             ">25%% vs this baseline JSON's ratio",
    )
    args = parser.parse_args(argv)
    ns, ell = (SMOKE_NS, SMOKE_ELL) if args.smoke else (FULL_NS, FULL_ELL)
    payload = run_benchmark(ns, ell)
    payload["mode"] = "smoke" if args.smoke else "full"
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    for line in _render(payload):
        print(line)
    print(f"wrote {args.out}")
    if args.gate is not None:
        baseline = json.loads(args.gate.read_text())
        passed, message = check_regression(payload, baseline)
        print(message)
        if not passed:
            return 1
    return 0


def test_rng_batched(benchmark, report):
    """Pytest-benchmark wrapper with the acceptance gate."""
    payload = {}

    def experiment():
        payload.update(run_benchmark(FULL_NS, FULL_ELL))
        return payload

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    payload["mode"] = "full"
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    report("batched RNG contract warm-path speedups", _render(payload))

    top = [row for row in payload["results"] if row["n"] >= 512]
    assert top, "grid must include n >= 512"
    assert any(row["speedup_warm"] >= 1.8 for row in top), top


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
