"""E19 ([52] lineage): shortcutting eliminates the cover-time bottleneck.

Paper context (Sections 1, 1.3): Aldous-Broder wastes its Theta(mn)
budget re-crossing already-visited regions; Kelner-Madry shortcutting --
walking the Schur complement of the unvisited region -- removes exactly
that waste, and the paper's phases are its distributed incarnation.
Measured: total walk steps of plain Aldous-Broder vs the sequential
shortcutting sampler across families and sizes; the ratio should explode
on bottleneck graphs and stay near 1 on expanders.
"""

from __future__ import annotations

import numpy as np

from repro import graphs
from repro.walks import ShortcuttingSampler, aldous_broder_with_stats

TRIALS = 6


def test_shortcutting_step_savings(benchmark, report, rng):
    cases = {
        "lollipop(32)": graphs.lollipop_graph(32),
        "lollipop(48)": graphs.lollipop_graph(48),
        "barbell(30)": graphs.barbell_graph(30),
        "expander(32)": graphs.random_regular_graph(32, 4, rng=rng),
        "cycle(32)": graphs.cycle_graph(32),
    }
    rows = {}

    def experiment():
        for name, g in cases.items():
            ab = np.mean(
                [aldous_broder_with_stats(g, rng)[1] for _ in range(TRIALS)]
            )
            sampler = ShortcuttingSampler(g)
            shortcut = np.mean(
                [sampler.sample(rng).schur_steps for _ in range(TRIALS)]
            )
            rows[name] = (float(ab), float(shortcut))
        return rows

    benchmark.pedantic(experiment, rounds=1, iterations=1)

    lines = [
        f"{TRIALS} trees per sampler per graph",
        f"{'graph':<14s} {'AB steps':>9s} {'shortcut steps':>14s} {'ratio':>6s}",
    ]
    for name, (ab, shortcut) in rows.items():
        lines.append(
            f"{name:<14s} {ab:>9.0f} {shortcut:>14.0f} {ab / shortcut:>6.1f}"
        )
    lines.append(
        "shape check: shortcutting wins big exactly on the bottleneck "
        "graphs whose cover time is super-linear -- the effect the paper's "
        "phases distribute"
    )
    report("E19 / Kelner-Madry shortcutting: step savings", lines)
    ab, shortcut = rows["lollipop(48)"]
    assert ab / shortcut > 3.0
    ab, shortcut = rows["expander(32)"]
    assert ab / shortcut > 0.5  # no pathological penalty