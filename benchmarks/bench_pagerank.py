"""E16 (Section 1.2 application): PageRank from polylog-length walks.

Paper claim: Theorem 2's short-walk regime (O(log tau) rounds for tau =
O(n / log n)) makes O(polylog n)-length walks -- "of particular interest
for approximating PageRank" [7, 57] -- essentially free. Measured: L1
error of the walk-based PageRank estimator against the exact solution as
the walk budget grows, and the round bill of each budget.
"""

from __future__ import annotations


from repro import graphs
from repro.walks import pagerank_exact, pagerank_via_walks

N = 64
BUDGETS = [4, 16, 64, 256]


def test_pagerank_convergence(benchmark, report, rng):
    g = graphs.erdos_renyi_graph(N, rng=rng)
    exact = pagerank_exact(g, damping=0.85)
    results = {}

    def experiment():
        for budget in BUDGETS:
            estimate = pagerank_via_walks(
                g, damping=0.85, walks_per_vertex=budget, rng=rng
            )
            results[budget] = (estimate.l1_error(exact), estimate.rounds,
                               estimate.walk_length)
        return results

    benchmark.pedantic(experiment, rounds=1, iterations=1)

    lines = [
        f"n = {N} G(n, p); damping 0.85; exact PageRank via linear solve",
        f"{'walks/vertex':>12s} {'L1 error':>9s} {'rounds':>7s} {'walk len':>9s}",
    ]
    for budget, (err, rounds, length) in results.items():
        lines.append(f"{budget:>12d} {err:>9.4f} {rounds:>7d} {length:>9d}")
    lines.append(
        "shape check: error shrinks ~1/sqrt(budget); every batch costs only "
        "the Theorem 2 short-walk round bill"
    )
    report("E16 / PageRank via Theorem 2 walks", lines)
    assert results[BUDGETS[-1]][0] < results[BUDGETS[0]][0]
    assert results[BUDGETS[-1]][0] < 0.15
