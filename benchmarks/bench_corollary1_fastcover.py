"""E4 (Corollary 1): spanning trees in O~(tau/n) rounds for cover time tau.

Paper claim: graphs with cover time tau admit O~(tau/n)-round sampling;
for the O(n log n)-cover-time families the paper names (expanders,
G(n, p), K_{n - sqrt n, sqrt n}) that is polylogarithmic. Measured:
rounds of the doubling-based sampler on those families vs the lollipop
(Theta(n^3) cover time), normalized by tau/n.
"""

from __future__ import annotations

import math


from repro import graphs
from repro.core import sample_tree_fast_cover

N = 32


def test_corollary1_round_scaling(benchmark, report, rng):
    families = {
        "expander (4-regular)": graphs.random_regular_graph(N, 4, rng=rng),
        "G(n, 3 log n / n)": graphs.erdos_renyi_graph(N, rng=rng),
        "K_{n-sqrt n, sqrt n}": graphs.complete_bipartite_unbalanced(N),
        "lollipop": graphs.lollipop_graph(N),
    }
    results = {}

    def experiment():
        for name, g in families.items():
            results[name] = sample_tree_fast_cover(g, rng)
        return results

    benchmark.pedantic(experiment, rounds=1, iterations=1)

    lines = [
        f"n = {N}",
        f"{'family':<22s} {'cover~':>9s} {'rounds':>7s} {'rounds/(tau/n)':>14s}",
    ]
    for name, res in results.items():
        tau_over_n = max(res.cover_time_estimate / N, 1.0)
        lines.append(
            f"{name:<22s} {res.cover_time_estimate:>9.0f} {res.rounds:>7d} "
            f"{res.rounds / tau_over_n:>14.1f}"
        )
    polylog3 = math.log2(N) ** 3
    lines += [
        f"log^3 n = {polylog3:.0f} for reference",
        "shape check: small-cover families cost a polylog-ish round count; "
        "the lollipop pays its Theta(n^3) cover time (why Theorem 1 exists)",
    ]
    report("E4 / Corollary 1: O~(tau/n)-round sampling", lines)
    small = results["expander (4-regular)"].rounds
    big = results["lollipop"].rounds
    assert big > 3 * small
