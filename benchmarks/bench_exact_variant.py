"""E5 (Appendix 5): the exact variant costs O~(n^{2/3 + alpha}) rounds.

Paper claim: removing all sampling error raises the round complexity from
O~(n^{1/2 + alpha}) to O~(n^{2/3 + alpha}) = O(n^{0.824}) because rho
drops from sqrt(n) to n^{1/3} (more phases). Measured: round totals and
phase counts for both variants across n, with fitted exponents and the
exact/approximate round ratio trend.
"""

from __future__ import annotations

import numpy as np

from repro import graphs
from repro.analysis import loglog_fit
from repro.clique.cost import ALPHA
from repro.api import get_preset
from repro.core import CongestedCliqueTreeSampler, ExactTreeSampler

CONFIG = get_preset("fast-bench").config
NS = [16, 32, 64, 96]


def test_exact_variant_scaling(benchmark, report):
    approx, exact = {}, {}

    def experiment():
        for n in NS:
            rng = np.random.default_rng(1000 + n)
            g = graphs.random_regular_graph(n, 4, rng=rng)
            approx[n] = CongestedCliqueTreeSampler(g, CONFIG).sample(rng)
            exact[n] = ExactTreeSampler(g, CONFIG).sample(rng)
        return approx, exact

    benchmark.pedantic(experiment, rounds=1, iterations=1)

    exp_a, _ = loglog_fit(NS, [approx[n].rounds for n in NS])
    exp_e, _ = loglog_fit(NS, [exact[n].rounds for n in NS])
    lines = [
        f"{'n':>5s} {'approx rounds':>13s} {'phases':>7s} "
        f"{'exact rounds':>12s} {'phases':>7s} {'ratio':>6s}",
    ]
    for n in NS:
        ratio = exact[n].rounds / approx[n].rounds
        lines.append(
            f"{n:>5d} {approx[n].rounds:>13d} {approx[n].phases:>7d} "
            f"{exact[n].rounds:>12d} {exact[n].phases:>7d} {ratio:>6.2f}"
        )
    lines += [
        f"fitted exponents: approx {exp_a:.3f} (claim {0.5 + ALPHA:.3f}+polylog), "
        f"exact {exp_e:.3f} (claim {2/3 + ALPHA:.3f}+polylog)",
        f"exponent gap exact - approx: {exp_e - exp_a:.3f} "
        f"(claim: 2/3 - 1/2 = {1/6:.3f}; shared polylogs cancel in the gap)",
        "shape check: exact variant uniformly more expensive, gap widening "
        "with n (phase-count blowup from rho = n^{1/3})",
    ]
    report("E5 / Appendix: exact sampling at O~(n^{2/3+alpha})", lines)
    for n in NS:
        assert exact[n].phases >= approx[n].phases
    assert exact[NS[-1]].rounds > approx[NS[-1]].rounds
    assert exp_e > exp_a - 0.05
