"""Load-generate the serving layer: requests/s and latency, warm vs cold.

The service tentpole claims the network layer adds delivery, not
distortion: a fleet of worker shards over one shared cache volume
serves concurrent clients at the warm-path cost the engine benches
already pinned, and every response stays byte-identical to a direct
in-process Session. This bench drives a real ``python -m repro serve``
subprocess (ephemeral port, private cache volume per instance size)
with a thread-pool load generator and records, per ``n``:

- **cold** -- first pass over a fresh cache: every request pays the
  phase-numerics build (amortized across the worker fleet, since all
  shards share the volume);
- **warm** -- the same request mix again: sessions and tiers are hot,
  so latency collapses to the uncacheable walk floor plus HTTP/process
  overhead. The cold/warm p50 ratio is the service-level echo of the
  cache bench's restart speedup.

Latency is per-request wall-clock at the client (p50/p99 across the
pass; with small request counts p99 is the max -- reported as such, not
sampled). Identity is asserted in-bench on every grid point: a pinned
seed streamed over HTTP == the same request batched over HTTP == a
direct local Session, trees and round totals.

Acceptance gate (full mode): warm p50 at the top ``n`` at least 2x
under cold p50. ``--gate BASELINE`` compares the *dimensionless*
warm/cold ratio against a checked-in baseline (host-normalized: ratios
cancel machine speed), failing on >40% regression. The ratio grows
with ``n`` (more numerics for the cache to absorb), so the comparison
is made at the largest ``n`` present in BOTH runs -- the smoke grid
deliberately overlaps the full grid at n=64 with the same ``ell`` so
CI compares like against like.

Runs standalone (the CI smoke job) or under pytest-benchmark::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py --smoke
    pytest benchmarks/bench_service_throughput.py --benchmark-only
"""

from __future__ import annotations

import argparse
import json
import os
import re
import shutil
import signal
import statistics
import subprocess
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np

from repro.api import EnsembleRequest, Session, preset_config
from repro.graphs.families import build_family
from repro.service.client import ServiceClient, wait_until_ready

# Complete graphs, like the cache/RNG benches: instant mixing keeps ell
# modest at every n, and the dense numerics are exactly the work the
# shared cache volume absorbs between the cold and warm passes.
FAMILY = "complete"
FULL_NS = [64, 256, 512]
# Smoke overlaps full at n=64 with the same ell so the --gate ratio
# comparison is the same workload on both sides (see check_regression).
SMOKE_NS = [48, 64]
FULL_ELL = 1 << 10
SMOKE_ELL = FULL_ELL
RHO = 16  # wall-clock-tuned quota (see bench_cache_warmstart)
DRAWS = 4  # per request
REQUESTS = 8  # per pass
CONCURRENCY = 4  # simultaneous clients
WORKERS = 2  # server batch shards
OUTPUT = Path(__file__).resolve().parent / "BENCH_service_throughput.json"
SRC = Path(__file__).resolve().parent.parent / "src"


def start_server(cache_dir: str):
    env = {**os.environ, "PYTHONPATH": str(SRC)}
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", "--port", "0",
            "--workers", str(WORKERS), "--max-inflight", "16",
            "--cache-dir", cache_dir,
        ],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, env=env, text=True,
    )
    line = proc.stdout.readline()
    match = re.search(r"listening on http://[^:]+:(\d+)", line)
    if not match:
        proc.kill()
        raise RuntimeError(f"server failed to start: {line!r}")
    client = ServiceClient(port=int(match.group(1)))
    wait_until_ready(client)
    return proc, client


def stop_server(proc) -> None:
    proc.send_signal(signal.SIGTERM)
    try:
        proc.wait(timeout=30)
    except subprocess.TimeoutExpired:
        proc.kill()


def _graph_spec(n: int) -> dict:
    return {"family": FAMILY, "n": n, "seed": 0}


def _overrides(ell: int) -> dict:
    return {"ell": ell, "rho": RHO}


def load_pass(client: ServiceClient, n: int, ell: int) -> dict:
    """One pass of REQUESTS ensemble calls at CONCURRENCY; latency stats."""
    def one(seed: int) -> float:
        start = time.perf_counter()
        response = client.run(
            _graph_spec(n),
            # jobs=1: four draws never amortize an inner process
            # fan-out; parallelism comes from concurrent requests over
            # the worker shards, not from forking inside one request.
            {"request": "ensemble", "count": DRAWS, "seed": seed, "jobs": 1},
            config=_overrides(ell),
        )
        assert len(response.result.results) == DRAWS
        return time.perf_counter() - start

    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=CONCURRENCY) as pool:
        latencies = sorted(pool.map(one, range(REQUESTS)))
    wall = time.perf_counter() - start
    return {
        "p50_ms": round(statistics.median(latencies) * 1e3, 1),
        "p99_ms": round(latencies[-1] * 1e3, 1),  # max of REQUESTS samples
        "requests_per_s": round(REQUESTS / wall, 3),
        "seconds": round(wall, 3),
    }


def assert_identity(client: ServiceClient, n: int, ell: int) -> None:
    """HTTP stream == HTTP batch == direct local Session (pinned seed)."""
    graph_spec = _graph_spec(n)
    request = {
        "request": "ensemble", "count": DRAWS, "seed": 1234, "jobs": 1,
    }
    batch = client.run(graph_spec, request, config=_overrides(ell))
    streamed, summary = client.stream_collect(
        graph_spec, request, config=_overrides(ell)
    )
    graph, meta = build_family(FAMILY, n, np.random.default_rng(0))
    config = preset_config("fast-bench", ell=ell, rho=RHO)
    local = Session(graph, config, seed=0, meta=meta).run(
        EnsembleRequest(count=DRAWS, seed=1234, jobs=1)
    )
    reference = [(r.tree, r.rounds) for r in local.result.results]
    assert [
        (r.tree, r.rounds) for r in batch.result.results
    ] == reference, f"HTTP batch diverged from local session at n={n}"
    assert [
        (r.tree, r.rounds) for r in streamed
    ] == reference, f"HTTP stream diverged from local session at n={n}"
    assert summary is not None and summary.count == DRAWS


def measure_instance(n: int, ell: int) -> dict:
    """Cold pass, warm pass, and the identity assertions for one n."""
    cache_dir = tempfile.mkdtemp(prefix="bench-service-")
    proc = None
    try:
        proc, client = start_server(cache_dir)
        cold = load_pass(client, n, ell)
        warm = load_pass(client, n, ell)
        assert_identity(client, n, ell)
        return {
            "family": FAMILY,
            "n": int(n),
            "ell": int(ell),
            "rho": RHO,
            "draws": DRAWS,
            "requests": REQUESTS,
            "concurrency": CONCURRENCY,
            "workers": WORKERS,
            "cold": cold,
            "warm": warm,
            "speedup_warm_p50": round(
                cold["p50_ms"] / max(warm["p50_ms"], 1e-9), 3
            ),
            "identity": "ok",
        }
    finally:
        if proc is not None:
            stop_server(proc)
        shutil.rmtree(cache_dir, ignore_errors=True)


def run_benchmark(ns: list[int], ell: int) -> dict:
    return {
        "bench": "service_throughput",
        "family": FAMILY,
        "draws": DRAWS,
        "requests": REQUESTS,
        "concurrency": CONCURRENCY,
        "workers": WORKERS,
        "ell": ell,
        "ns": ns,
        "results": [measure_instance(n, ell) for n in ns],
    }


def ratio_at(payload: dict, n: int) -> float:
    """Warm/cold p50 ratio at grid point n (lower is better)."""
    for row in payload["results"]:
        if row["n"] == n:
            return row["warm"]["p50_ms"] / max(row["cold"]["p50_ms"], 1e-9)
    raise KeyError(f"no grid point n={n} in payload")


def check_regression(
    payload: dict, baseline: dict, tolerance: float = 0.40
) -> tuple[bool, str]:
    # The warm/cold ratio shrinks as n grows (more numerics for the
    # cache to absorb), so cross-grid comparison is only meaningful at
    # a shared n: gate at the largest grid point both runs measured.
    shared = sorted(
        {row["n"] for row in payload["results"]}
        & {row["n"] for row in baseline["results"]}
    )
    if not shared:
        return False, (
            "no common grid point between run and baseline: "
            f"{[r['n'] for r in payload['results']]} vs "
            f"{[r['n'] for r in baseline['results']]}"
        )
    n = shared[-1]
    current = ratio_at(payload, n)
    reference = ratio_at(baseline, n)
    limit = reference * (1.0 + tolerance)
    verdict = "ok" if current <= limit else "REGRESSION"
    return current <= limit, (
        f"warm/cold p50 ratio at n={n}: {current:.3f} vs baseline "
        f"{reference:.3f} (limit {limit:.3f}): {verdict}"
    )


def _render(payload: dict) -> list[str]:
    lines = [
        f"{'n':>5s} {'cold p50':>9s} {'cold p99':>9s} {'warm p50':>9s} "
        f"{'warm p99':>9s} {'warm req/s':>10s} {'speedup':>8s}"
    ]
    for row in payload["results"]:
        lines.append(
            f"{row['n']:>5d} {row['cold']['p50_ms']:>8.0f}ms "
            f"{row['cold']['p99_ms']:>8.0f}ms "
            f"{row['warm']['p50_ms']:>8.0f}ms "
            f"{row['warm']['p99_ms']:>8.0f}ms "
            f"{row['warm']['requests_per_s']:>10.2f} "
            f"{row['speedup_warm_p50']:>7.2f}x"
        )
    return lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help=f"small-n grid {SMOKE_NS} for CI (no acceptance assertion)",
    )
    parser.add_argument(
        "--out", type=Path, default=OUTPUT,
        help="output JSON path (default: BENCH_service_throughput.json)",
    )
    parser.add_argument(
        "--gate", type=Path, metavar="BASELINE",
        help="fail (exit 1) if the warm/cold p50 ratio regresses >40%% "
             "vs this baseline JSON's ratio",
    )
    args = parser.parse_args(argv)
    ns, ell = (SMOKE_NS, SMOKE_ELL) if args.smoke else (FULL_NS, FULL_ELL)
    payload = run_benchmark(ns, ell)
    payload["mode"] = "smoke" if args.smoke else "full"
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    for line in _render(payload):
        print(line)
    print(f"wrote {args.out}")
    if args.gate is not None:
        baseline = json.loads(args.gate.read_text())
        passed, message = check_regression(payload, baseline)
        print(message)
        if not passed:
            return 1
    return 0


def test_service_throughput(benchmark, report):
    """Pytest-benchmark wrapper with the acceptance gate."""
    payload = {}

    def experiment():
        payload.update(run_benchmark(FULL_NS, FULL_ELL))
        return payload

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    payload["mode"] = "full"
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    report("service warm/cold latency and throughput", _render(payload))

    top = [row for row in payload["results"] if row["n"] >= 512]
    assert top, "grid must include n >= 512"
    assert any(row["speedup_warm_p50"] >= 2.0 for row in top), top


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
