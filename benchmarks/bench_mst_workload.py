"""MST workload: distributed round bills + wall clock vs sequential oracles.

Closes the ROADMAP's "benchmarked sequential baselines" rider for the
MST side: the distributed Boruvka runner (billed under both registered
recipes) against the sequential Kruskal and Boruvka oracles from
``repro.walks.sequential``, on the same seeded random-weight instances
the workload serves.

Identity is asserted *in-bench*, not sampled: on every instance all
three runners must return the identical forest with byte-exact equal
canonical total weight (the ``(weight, edge index)`` total order makes
the MSF unique), and each recipe's ledger total must equal its closed
form in ``repro.core.rounds`` -- ``mst_kkt_rounds(n, m)`` for
``kkt-o1``, ``mst_node_cc_rounds(n, phases)`` for ``node-cc-msf``. A
timing row only exists because the correctness gate passed.

The headline columns: the KKT bill stays O(1) (flat in n while
``2m <= n^2``), the node-CC bill grows ~ ``log^2 n``, and the
simulated-distributed wall clock is within a small factor of
sequential Boruvka (same merge schedule, plus billing overhead).

Runs standalone (the CI smoke job) or under pytest-benchmark::

    PYTHONPATH=src python benchmarks/bench_mst_workload.py --smoke
    pytest benchmarks/bench_mst_workload.py --benchmark-only
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.core.mst import resolve_weights, run_mst
from repro.core.rounds import mst_kkt_rounds, mst_node_cc_rounds
from repro.core.workloads import get_workload
from repro.graphs.families import build_family
from repro.walks.sequential import boruvka_forest, kruskal_forest

FAMILY = "gnp"  # sparse-ish: m ~ n log n, the regime the bills separate in
FULL_NS = [128, 256, 512, 1024]
SMOKE_NS = [32, 64]
SEED = 7
TRIALS = 3  # min-of wall clocks; correctness is asserted on every trial
OUTPUT = Path(__file__).resolve().parent / "BENCH_mst_workload.json"

_CLOSED_FORMS = {
    "kkt-o1": lambda n, m, phases: mst_kkt_rounds(n, m),
    "node-cc-msf": lambda n, m, phases: mst_node_cc_rounds(n, phases),
}


def _timed(fn, *args, **kwargs):
    best, value = float("inf"), None
    for __ in range(TRIALS):
        start = time.perf_counter()
        value = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - start)
    return best, value


def measure_instance(n: int) -> dict:
    spec = get_workload("mst")
    graph, __ = build_family(FAMILY, n, np.random.default_rng(SEED))
    weights = resolve_weights(graph, "random", SEED)
    m = len(graph.edges())

    kruskal_seconds, (k_forest, k_weight) = _timed(
        kruskal_forest, graph, weights
    )
    boruvka_seconds, (b_forest, b_weight, b_phases) = _timed(
        boruvka_forest, graph, weights
    )
    assert b_forest == k_forest and b_weight == k_weight, (
        f"sequential oracles disagree at n={graph.n}"
    )

    recipes = {}
    for name in spec.recipe_names():
        seconds, result = _timed(
            run_mst, graph, recipe=spec.get_recipe(name), weights=weights
        )
        # The in-bench identity gate: forest, weight, bill, all exact.
        assert result.forest == k_forest, f"{name} forest != oracle (n={n})"
        assert result.total_weight == k_weight, (
            f"{name} weight != oracle (n={n})"
        )
        assert result.phases == b_phases
        expected = _CLOSED_FORMS[name](graph.n, m, result.phases)
        assert result.rounds == result.ledger.total_rounds() == expected, (
            f"{name} bill {result.rounds} != closed form {expected} (n={n})"
        )
        recipes[name] = {
            "rounds": int(result.rounds),
            "categories": {
                key: int(value)
                for key, value in result.ledger.rounds_by_category().items()
            },
            "seconds": round(seconds, 5),
        }

    return {
        "n": int(graph.n),
        "m": int(m),
        "phases": int(b_phases),
        "total_weight": float(k_weight),
        "kruskal_seconds": round(kruskal_seconds, 5),
        "boruvka_seconds": round(boruvka_seconds, 5),
        "recipes": recipes,
    }


def run_benchmark(ns: list[int]) -> dict:
    return {
        "bench": "mst_workload",
        "family": FAMILY,
        "seed": SEED,
        "weights": "random",
        "ns": ns,
        "results": [measure_instance(n) for n in ns],
    }


def _render(payload: dict) -> list[str]:
    lines = [
        "identity gate: distributed == Kruskal == Boruvka on every row "
        "(byte-exact weights), ledger totals == closed forms",
        f"{'n':>6s} {'m':>7s} {'kkt rounds':>10s} {'node-cc':>8s} "
        f"{'phases':>6s} {'kruskal s':>10s} {'boruvka s':>10s} "
        f"{'dist s':>8s}",
    ]
    for row in payload["results"]:
        lines.append(
            f"{row['n']:>6d} {row['m']:>7d} "
            f"{row['recipes']['kkt-o1']['rounds']:>10d} "
            f"{row['recipes']['node-cc-msf']['rounds']:>8d} "
            f"{row['phases']:>6d} {row['kruskal_seconds']:>10.4f} "
            f"{row['boruvka_seconds']:>10.4f} "
            f"{row['recipes']['kkt-o1']['seconds']:>8.4f}"
        )
    return lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help=f"small-n grid {SMOKE_NS} for CI",
    )
    parser.add_argument(
        "--out", type=Path, default=OUTPUT,
        help="output JSON path (default: BENCH_mst_workload.json)",
    )
    args = parser.parse_args(argv)
    ns = SMOKE_NS if args.smoke else FULL_NS
    payload = run_benchmark(ns)
    payload["mode"] = "smoke" if args.smoke else "full"
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    for line in _render(payload):
        print(line)
    print(f"wrote {args.out}")
    return 0


def test_mst_workload(benchmark, report):
    """Pytest-benchmark wrapper with the round-bill shape checks."""
    payload = {}

    def experiment():
        payload.update(run_benchmark(FULL_NS))
        return payload

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    payload["mode"] = "full"
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    report(
        "MST workload: distributed bills vs sequential oracles",
        _render(payload),
    )
    rows = payload["results"]
    # O(1) line: the KKT bill is flat across the grid while 2m <= n^2.
    kkt = {row["recipes"]["kkt-o1"]["rounds"] for row in rows}
    assert kkt == {mst_kkt_rounds(rows[0]["n"], rows[0]["m"])}, kkt
    # log^2 n line: the node-CC bill strictly grows with n on this grid.
    node_cc = [row["recipes"]["node-cc-msf"]["rounds"] for row in rows]
    assert node_cc == sorted(node_cc) and node_cc[0] < node_cc[-1], node_cc


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
