"""E3 (Theorem 2): doubling-walk round complexity in both regimes.

Paper claim: a length-tau walk costs O((tau/n) log tau log n) rounds when
tau = Omega(n / log n), and O(log tau) rounds when tau = O(n / log n).
Measured: simulated Lenzen-converted rounds across a tau sweep on an
expander, with the long-regime growth ratio and short-regime flatness
reported.
"""

from __future__ import annotations

import math


from repro import graphs
from repro.core import theorem2_rounds
from repro.walks import doubling_random_walk

N = 64
TAUS_SHORT = [2, 4, 8]
TAUS_LONG = [128, 256, 512, 1024, 2048]


def test_theorem2_regimes(benchmark, report, rng):
    g = graphs.random_regular_graph(N, 4, rng=rng)
    measured = {}

    def experiment():
        for tau in TAUS_SHORT + TAUS_LONG:
            measured[tau] = doubling_random_walk(g, tau, rng).rounds
        return measured

    benchmark.pedantic(experiment, rounds=1, iterations=1)

    lines = [
        f"n = {N} expander",
        f"{'tau':>6s} {'rounds':>8s} {'model O~':>9s}  regime",
    ]
    for tau in TAUS_SHORT + TAUS_LONG:
        regime = "short (log tau)" if tau <= N / math.log2(N) else "long ((tau/n)·logs)"
        lines.append(
            f"{tau:>6d} {measured[tau]:>8d} {theorem2_rounds(N, tau):>9.0f}  {regime}"
        )
    long_growth = measured[TAUS_LONG[-1]] / measured[TAUS_LONG[0]]
    tau_growth = TAUS_LONG[-1] / TAUS_LONG[0]
    lines += [
        f"long-regime growth: rounds x{long_growth:.1f} for tau x{tau_growth:.0f} "
        "(claim: ~linear in tau, up to log factors)",
        f"short-regime rounds stay within a small polylog envelope: "
        f"{[measured[t] for t in TAUS_SHORT]}",
    ]
    report("E3 / Theorem 2: doubling-walk rounds", lines)
    # Long regime roughly linear in tau (allow 3x slack for log factors).
    assert tau_growth / 3 < long_growth < tau_growth * 3
    # Short regime: far below one round per walk step.
    assert measured[8] < measured[2048] / 10
