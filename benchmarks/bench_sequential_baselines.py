"""E18 (Section 1 context): Aldous-Broder vs Wilson walk-step budgets.

Paper claims (introduction): Aldous-Broder costs the cover time --
O(mn) expected, Theta(mn) realized on lollipop-like graphs -- while
Wilson's algorithm costs the mean hitting time, "still Theta(mn) in the
worst case" but much faster on average. Measured: mean walk steps of
both samplers across families, with the cover-time estimate as the
Aldous-Broder reference and the lollipop's blow-up on display.
"""

from __future__ import annotations

import numpy as np

from repro import graphs
from repro.graphs import cover_time_bound
from repro.walks import aldous_broder_with_stats, wilson_tree_with_stats

TRIALS = 12


def test_sequential_baseline_step_budgets(benchmark, report, rng):
    families = {
        "complete(24)": graphs.complete_graph(24),
        "expander(24)": graphs.random_regular_graph(24, 4, rng=rng),
        "cycle(24)": graphs.cycle_graph(24),
        "lollipop(24)": graphs.lollipop_graph(24),
    }
    rows = {}

    def experiment():
        for name, g in families.items():
            ab_steps = [
                aldous_broder_with_stats(g, rng)[1] for _ in range(TRIALS)
            ]
            wilson_steps = [
                wilson_tree_with_stats(g, rng)[1] for _ in range(TRIALS)
            ]
            rows[name] = (
                float(np.mean(ab_steps)),
                float(np.mean(wilson_steps)),
                cover_time_bound(g),
                g.m,
            )
        return rows

    benchmark.pedantic(experiment, rounds=1, iterations=1)

    lines = [
        f"{TRIALS} trees per sampler per family",
        f"{'family':<14s} {'AB steps':>9s} {'Wilson steps':>12s} "
        f"{'cover bound':>11s} {'m*n':>7s}",
    ]
    for name, (ab, wilson, cover, m) in rows.items():
        lines.append(
            f"{name:<14s} {ab:>9.0f} {wilson:>12.0f} {cover:>11.0f} "
            f"{m * 24:>7d}"
        )
    lines += [
        "shape check: AB tracks the cover time (explodes on the "
        "lollipop); Wilson tracks mean hitting time and wins everywhere "
        "-- the O(mn) story that motivates sublinear distributed sampling",
    ]
    report("E18 / sequential baselines: cover time vs hitting time", lines)
    for name, (ab, wilson, cover, m) in rows.items():
        assert wilson <= ab * 1.5, name  # Wilson never meaningfully worse
    assert rows["lollipop(24)"][0] > 4 * rows["expander(24)"][0]