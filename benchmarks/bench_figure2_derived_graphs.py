"""E6 (Figure 2): the worked Schur + shortcut example, all constructions.

Paper claim (Figure 2): on the 4-vertex hub graph with S = {A, B, D},
Schur(G, S) has uniform 1/2 transitions and ShortCut(G, S) sends every
vertex to C with probability 1. Measured: exact values from every
implemented construction, plus timing of the derived-graph computations
on larger inputs (the per-phase cost of Section 2.4).
"""

from __future__ import annotations

import numpy as np

from repro import graphs
from repro.linalg import (
    schur_by_elimination,
    schur_transition_matrix,
    schur_via_qr_product,
    shortcut_transition_matrix,
    shortcut_via_power_iteration,
)


def test_figure2_values(benchmark, report):
    g = graphs.figure2_graph()
    subset = [0, 1, 3]

    def experiment():
        return (
            schur_transition_matrix(g, subset)[0],
            schur_by_elimination(g, subset)[0].transition_matrix(),
            schur_via_qr_product(g, subset)[0],
            shortcut_transition_matrix(g, subset),
            shortcut_via_power_iteration(g, subset),
        )

    block, elim, qr, q_exact, q_power = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )
    target_schur = np.full((3, 3), 0.5) - 0.5 * np.eye(3)
    deviations = {
        "schur/block": np.max(np.abs(block - target_schur)),
        "schur/elimination": np.max(np.abs(elim - target_schur)),
        "schur/qr-product": np.max(np.abs(qr - target_schur)),
        "shortcut/solve": np.max(np.abs(q_exact[:, 2] - 1.0)),
        "shortcut/power-iter": np.max(np.abs(q_power[:, 2] - 1.0)),
    }
    lines = ["paper values: Schur = uniform 1/2; shortcut mass all on C"]
    lines += [
        f"{name:<22s} max |measured - paper| = {dev:.2e}"
        for name, dev in deviations.items()
    ]
    report("E6 / Figure 2: derived graph worked example", lines)
    for name, dev in deviations.items():
        assert dev < 1e-8, name


def test_derived_graph_cost_at_scale(benchmark, report, rng):
    """Wall-clock of one phase's Section 2.4 computations at n = 128."""
    g = graphs.erdos_renyi_graph(128, p=0.1, rng=rng)
    subset = sorted(rng.choice(128, size=64, replace=False).tolist())

    def one_phase_derived_graphs():
        shortcut = shortcut_transition_matrix(g, subset)
        transition, _ = schur_transition_matrix(g, subset)
        return shortcut, transition

    benchmark(one_phase_derived_graphs)
    report(
        "E6b: derived-graph computation at n=128",
        ["see timing table (per-phase Schur + shortcut solve cost)"],
    )
