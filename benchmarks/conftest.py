"""Shared infrastructure for the experiment benchmarks.

Each bench file reproduces one experiment ID from DESIGN.md section 3 and
records a human-readable paper-vs-measured summary through the ``report``
fixture; summaries are printed in the terminal summary so that
``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` captures the
reproduction numbers alongside the timing table.
"""

from __future__ import annotations

import numpy as np
import pytest

_REPORTS: list[tuple[str, list[str]]] = []


def _record(title: str, lines: list[str]) -> None:
    _REPORTS.append((title, [str(line) for line in lines]))


@pytest.fixture
def report():
    """Callable ``report(title, lines)`` stashing a reproduction summary."""
    return _record


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0xBE7C11)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.write_line("")
    terminalreporter.write_line("=" * 74)
    terminalreporter.write_line("EXPERIMENT REPRODUCTION SUMMARIES (paper vs measured)")
    terminalreporter.write_line("=" * 74)
    for title, lines in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"--- {title}")
        for line in lines:
            terminalreporter.write_line(f"    {line}")
