"""Sparse/dense numerics crossover on the sparse graph families.

The dense reference path materializes every derived-graph object as an
``n x n`` numpy array and pays O(n^3) for the shortcut inverse and the
Schur block solve even when almost all of that work is structurally
zero. The sparse backend (:mod:`repro.linalg.sparse`) replaces those
with solves against the eliminated block -- ``|C| x |C|`` with
``|C| ~ sqrt(n)`` for a phase-2-shaped subset -- and stores everything
as CSR.

This bench builds one phase-2-shaped derived-graph bundle (ShortCut,
Schur transition, and an ``ell = 64`` power ladder over it) per
(family, n, backend) and records wall-clock seconds plus tracemalloc
peak bytes. Families are the bounded-degree sparse trio the paper's
round bounds care about (cycle, grid, 4-regular expander); the
eliminated region is a BFS ball around vertex 0 of ``floor(sqrt n)``
vertices, mirroring what a real phase 2 eliminates.

Acceptance gate (full mode): at n >= 512 at least one sparse family
shows >= 3x wall-clock improvement or >= 4x peak-memory reduction.
Results land in ``BENCH_sparse_scaling.json`` next to this file.

Runs standalone (the CI smoke job) or under pytest-benchmark like the
other benches::

    PYTHONPATH=src python benchmarks/bench_sparse_scaling.py --smoke
    pytest benchmarks/bench_sparse_scaling.py --benchmark-only
"""

from __future__ import annotations

import argparse
import json
import time
import tracemalloc
from collections import deque
from pathlib import Path

import numpy as np

from repro.graphs.core import WeightedGraph
from repro.graphs.families import build_family
from repro.linalg.backend import DenseLinalg, SparseLinalg
from repro.linalg.matpow import PowerLadder

FAMILIES = ["cycle", "grid", "expander"]
FULL_NS = [128, 256, 512, 1024]
SMOKE_NS = [64, 128]
LADDER_ELL = 64
TIMING_REPEATS = 3
OUTPUT = Path(__file__).resolve().parent / "BENCH_sparse_scaling.json"


def _phase2_subset(graph: WeightedGraph) -> list[int]:
    """An S shaped like phase 2's: everything except a visited BFS ball.

    The sampler's first phase visits ~sqrt(n) vertices around the start;
    phase 2 then eliminates them (minus the current endpoint). A BFS
    ball reproduces that locality, which is what gives the eliminated
    block its small boundary.
    """
    n = graph.n
    ball_size = max(2, int(np.sqrt(n)))
    ball: list[int] = []
    seen = {0}
    queue = deque([0])
    while queue and len(ball) < ball_size:
        u = queue.popleft()
        ball.append(u)
        for v in graph.neighbors(u):
            if v not in seen:
                seen.add(v)
                queue.append(v)
    current = ball[-1]  # the walk's endpoint stays in S
    eliminated = set(ball) - {current}
    return sorted(set(range(n)) - eliminated)


def _build_numerics(graph: WeightedGraph, subset: list[int], backend) -> None:
    """One phase-2 derived-graph bundle: shortcut + Schur + ladder."""
    shortcut = backend.shortcut_matrix(graph, subset)
    transition, __ = backend.schur_transition(graph, subset, shortcut)
    PowerLadder(transition, LADDER_ELL)


def _measure(graph: WeightedGraph, subset: list[int], backend) -> dict:
    """Best-of-N wall-clock and a tracemalloc peak for one build."""
    seconds = float("inf")
    for __ in range(TIMING_REPEATS):
        start = time.perf_counter()
        _build_numerics(graph, subset, backend)
        seconds = min(seconds, time.perf_counter() - start)
    tracemalloc.start()
    _build_numerics(graph, subset, backend)
    __, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return {"seconds": seconds, "peak_bytes": int(peak)}


def run_benchmark(ns: list[int], families: list[str] | None = None) -> dict:
    """The full measurement grid; returns the JSON payload."""
    families = families or FAMILIES
    rows = []
    for family in families:
        for n in ns:
            graph, meta = build_family(family, n, np.random.default_rng(9000 + n))
            subset = _phase2_subset(graph)
            dense = _measure(graph, subset, DenseLinalg())
            sparse = _measure(graph, subset, SparseLinalg())
            rows.append(
                {
                    "family": family,
                    "n": int(graph.n),
                    "eliminated": int(graph.n - len(subset)),
                    "dense_seconds": round(dense["seconds"], 6),
                    "sparse_seconds": round(sparse["seconds"], 6),
                    "dense_peak_mb": round(dense["peak_bytes"] / 2**20, 3),
                    "sparse_peak_mb": round(sparse["peak_bytes"] / 2**20, 3),
                    "speedup": round(
                        dense["seconds"] / max(sparse["seconds"], 1e-12), 3
                    ),
                    "memory_ratio": round(
                        dense["peak_bytes"] / max(sparse["peak_bytes"], 1), 3
                    ),
                }
            )
    crossover = {}
    for family in families:
        hits = [
            row["n"]
            for row in rows
            if row["family"] == family
            and (row["speedup"] >= 3.0 or row["memory_ratio"] >= 4.0)
        ]
        crossover[family] = min(hits) if hits else None
    return {
        "bench": "sparse_scaling",
        "ladder_ell": LADDER_ELL,
        "timing_repeats": TIMING_REPEATS,
        "ns": ns,
        "results": rows,
        "crossover_n": crossover,
    }


def _render(payload: dict) -> list[str]:
    lines = [
        f"{'family':<9s} {'n':>5s} {'dense s':>9s} {'sparse s':>9s} "
        f"{'speedup':>8s} {'dense MB':>9s} {'sparse MB':>10s} {'mem x':>6s}"
    ]
    for row in payload["results"]:
        lines.append(
            f"{row['family']:<9s} {row['n']:>5d} {row['dense_seconds']:>9.4f} "
            f"{row['sparse_seconds']:>9.4f} {row['speedup']:>7.2f}x "
            f"{row['dense_peak_mb']:>9.2f} {row['sparse_peak_mb']:>10.2f} "
            f"{row['memory_ratio']:>5.1f}x"
        )
    lines.append(f"crossover (first n with >=3x time or >=4x mem): "
                 f"{payload['crossover_n']}")
    return lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help=f"small-n grid {SMOKE_NS} for CI (no crossover assertion)",
    )
    parser.add_argument(
        "--out", type=Path, default=OUTPUT,
        help="output JSON path (default: BENCH_sparse_scaling.json)",
    )
    args = parser.parse_args(argv)
    payload = run_benchmark(SMOKE_NS if args.smoke else FULL_NS)
    payload["mode"] = "smoke" if args.smoke else "full"
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    for line in _render(payload):
        print(line)
    print(f"wrote {args.out}")
    return 0


def test_sparse_scaling(benchmark, report):
    """Pytest-benchmark wrapper with the acceptance gate."""
    payload = {}

    def experiment():
        payload.update(run_benchmark(FULL_NS))
        return payload

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    payload["mode"] = "full"
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    report("sparse/dense numerics crossover", _render(payload))

    big_sparse_rows = [
        row
        for row in payload["results"]
        if row["n"] >= 512
    ]
    assert big_sparse_rows, "grid must include n >= 512"
    assert any(
        row["speedup"] >= 3.0 or row["memory_ratio"] >= 4.0
        for row in big_sparse_rows
    ), big_sparse_rows


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
