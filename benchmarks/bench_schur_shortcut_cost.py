"""E13/E14 (Definition 2, Corollaries 2-3): derived-graph correctness + cost.

Paper claims: (i) the walk on Schur(G, S) is distributionally the
S-restriction of the walk on G (Theorem 2.4 of [69], the basis of
Definition 2); (ii) both derived transition matrices are computable to
subtractive error beta in O~(n^alpha) CongestedClique rounds
(Corollaries 2-3). Measured: max deviation between the implementations
across graphs/subsets, agreement of the Corollary 2 power iteration with
the exact solve as beta shrinks, and the analytic round charges.
"""

from __future__ import annotations

import math

import numpy as np

from repro import graphs
from repro.clique.cost import CostModel
from repro.linalg import (
    first_hit_distribution,
    schur_transition_matrix,
    schur_via_qr_product,
    shortcut_transition_matrix,
    shortcut_via_power_iteration,
)


def test_derived_graph_agreement(benchmark, report, rng):
    cases = [
        ("expander32", graphs.random_regular_graph(32, 4, rng=rng)),
        ("lollipop24", graphs.lollipop_graph(24)),
        ("bipartite25", graphs.complete_bipartite_unbalanced(25)),
    ]
    deviations = {}

    def experiment():
        for name, g in cases.items() if isinstance(cases, dict) else cases:
            subset = sorted(
                rng.choice(g.n, size=max(3, g.n // 3), replace=False).tolist()
            )
            block, order = schur_transition_matrix(g, subset)
            qr, _ = schur_via_qr_product(g, subset)
            schur_dev = float(np.max(np.abs(block - qr)))
            # Definition 2 spot check on three start vertices.
            hit_dev = 0.0
            for u in order[:3]:
                law = first_hit_distribution(g, subset, u)
                hit_dev = max(
                    hit_dev,
                    float(np.max(np.abs(block[order.index(u)] - law))),
                )
            exact_q = shortcut_transition_matrix(g, subset)
            power_q = shortcut_via_power_iteration(g, subset, beta=1e-12)
            shortcut_dev = float(np.max(np.abs(exact_q - power_q)))
            deviations[name] = (schur_dev, hit_dev, shortcut_dev)
        return deviations

    benchmark.pedantic(experiment, rounds=1, iterations=1)

    model = CostModel()
    lines = [
        f"{'graph':<12s} {'schur dev':>10s} {'def2 dev':>10s} {'shortcut dev':>13s}",
    ]
    for name, (a, b, c) in deviations.items():
        lines.append(f"{name:<12s} {a:>10.2e} {b:>10.2e} {c:>13.2e}")
    n = 32
    beta = 1e-9
    squarings = math.ceil(math.log2(n**3 * math.log(1 / beta)))
    lines += [
        f"Corollary 2 analytic charge at n={n}, beta={beta:g}: "
        f"{squarings} squarings x {model.matmul_rounds(2 * n)} rounds "
        f"= {squarings * model.matmul_rounds(2 * n)} rounds (O~(n^alpha))",
        "shape check: all constructions agree to ~1e-8; cost is a polylog "
        "stack of matmul charges",
    ]
    report("E13-E14 / derived graphs: correctness + O~(n^alpha) cost", lines)
    for name, devs in deviations.items():
        assert max(devs) < 1e-6, name
