"""E20 (validation at scale): sampler edge marginals vs leverage scores.

Paper context: Lemma 6's uniformity guarantee is only *checkable* by
enumeration on tiny graphs. The Matrix-Tree corollary P(e in T) =
w(e) R_eff(e) (leverage scores; see repro.graphs.electrical) gives a
closed-form marginal on any graph, so the sampler can be validated far
beyond enumeration range. Measured: max/mean deviation of Theorem-1
sampler edge frequencies from the exact leverage scores on a 24-vertex
wheel (~1e9 spanning trees), against the binomial noise scale.
"""

from __future__ import annotations

from repro import graphs
from repro.analysis import ensemble_leverage_report
from repro.api import get_preset
from repro.graphs import count_spanning_trees

N_TREES = 500


def test_leverage_score_marginals(benchmark, report):
    g = graphs.wheel_graph(24)
    stats = {}

    def experiment():
        # Engine-backed batch: spawned per-draw seeds, warm derived cache.
        stats.update(
            ensemble_leverage_report(
                g,
                N_TREES,
                config=get_preset("fast-bench").config,
                seed=424242,
                jobs=1,
            )
        )
        return stats

    benchmark.pedantic(experiment, rounds=1, iterations=1)

    lines = [
        f"wheel(24): {count_spanning_trees(g):.2e} spanning trees "
        f"(enumeration impossible); {N_TREES} sampled trees "
        f"({stats['trees_per_second']:.1f} trees/s via the ensemble engine)",
        f"max |freq - leverage| = {stats['max_abs_deviation']:.4f}",
        f"mean |freq - leverage| = {stats['mean_abs_deviation']:.4f}",
        f"binomial noise scale  = {stats['max_noise_scale']:.4f}",
        "shape check: marginals within a few noise scales of the "
        "Matrix-Tree closed form -- uniformity validated beyond "
        "enumeration range",
    ]
    report("E20 / edge marginals vs leverage scores (validation at scale)", lines)
    assert stats["max_abs_deviation"] < 5 * stats["max_noise_scale"]
    assert stats["mean_abs_deviation"] < 2 * stats["max_noise_scale"]