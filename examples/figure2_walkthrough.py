#!/usr/bin/env python3
"""Reproduce Figure 2 of the paper: Schur complement + shortcut graphs.

The paper's worked example: a 4-vertex graph where C is a hub adjacent to
A, B, D and S = {A, B, D}. The figure states:

- Schur(G, S) has uniform 1/2 transitions between every pair of S
  ("a random walk started at A is equally likely to visit B before D or
  vice versa");
- ShortCut(G, S) sends every vertex to C with probability 1
  ("C is always visited directly before a visit to a vertex in S").

This script computes both derived graphs with all implemented
constructions (block elimination, single-vertex elimination, the
Corollary 3 QR product; exact solve and the Corollary 2 power iteration)
and prints the transition matrices next to the figure's values.

Run:  python examples/figure2_walkthrough.py
"""

from __future__ import annotations

import numpy as np

from repro import graphs
from repro.linalg import (
    first_hit_distribution,
    schur_by_elimination,
    schur_transition_matrix,
    schur_via_qr_product,
    shortcut_transition_matrix,
    shortcut_via_power_iteration,
)

LABELS = "ABCD"


def show(name: str, matrix: np.ndarray, rows: list[int], cols: list[int]) -> None:
    print(f"{name}:")
    header = "     " + "  ".join(f"{LABELS[c]:>5s}" for c in cols)
    print(header)
    for i, r in enumerate(rows):
        cells = "  ".join(f"{matrix[i, j]:5.3f}" for j in range(len(cols)))
        print(f"  {LABELS[r]}  {cells}")
    print()


def main() -> None:
    graph = graphs.figure2_graph()
    subset = [0, 1, 3]  # A, B, D
    print("G: edges", [(LABELS[u], LABELS[v]) for u, v in graph.edges()])
    print("S = {A, B, D}\n")

    schur, order = schur_transition_matrix(graph, subset)
    show("Schur(G, S) transition matrix (block elimination)", schur, order, order)

    elim, _ = schur_by_elimination(graph, subset)
    show(
        "Schur(G, S) via single-vertex elimination (graph weights)",
        elim.transition_matrix(), order, order,
    )

    qr, _ = schur_via_qr_product(graph, subset)
    show("Schur(G, S) via Corollary 3 (Q R product)", qr, order, order)

    print("Definition 2 sanity (first-hit law from A):",
          np.round(first_hit_distribution(graph, subset, 0), 3), "\n")

    q_exact = shortcut_transition_matrix(graph, subset)
    show("ShortCut(G, S) transition matrix (exact solve)",
         q_exact, list(range(4)), list(range(4)))

    q_power = shortcut_via_power_iteration(graph, subset, beta=1e-12)
    show("ShortCut(G, S) via Corollary 2 power iteration",
         q_power, list(range(4)), list(range(4)))

    assert np.allclose(schur, np.full((3, 3), 0.5) - 0.5 * np.eye(3))
    assert np.allclose(q_exact[:, 2], 1.0)
    print("Figure 2 values reproduced exactly: "
          "uniform 1/2 Schur transitions, all shortcut mass on C.")


if __name__ == "__main__":
    main()
