#!/usr/bin/env python3
"""Round-complexity tour: where do the rounds go, and how do they scale?

Walks through the paper's complexity story on live simulations:

1. per-phase cost breakdown of the Theorem 1 sampler (matmul dominates,
   exactly as Lemma 5 predicts);
2. measured round scaling across n for the approximate and exact variants,
   with fitted exponents next to the claimed 0.5 + alpha and 2/3 + alpha;
3. the doubling algorithm's two Theorem 2 regimes;
4. Corollary 1 on an expander vs the lollipop (small vs huge cover time).

Run:  python examples/round_complexity_tour.py
"""

from __future__ import annotations

import numpy as np

from repro import graphs
from repro.analysis import loglog_fit
from repro.clique.cost import ALPHA
from repro.core import (
    CongestedCliqueTreeSampler,
    ExactTreeSampler,
    SamplerConfig,
    sample_tree_fast_cover,
)
from repro.walks import doubling_random_walk

CONFIG = SamplerConfig(ell=1 << 12)


def phase_breakdown() -> None:
    print("=== 1. Where the rounds go (n = 36 complete graph) ===")
    rng = np.random.default_rng(1)
    result = CongestedCliqueTreeSampler(
        graphs.complete_graph(36), CONFIG
    ).sample(rng)
    total = result.rounds
    print(f"phases: {result.phases}, total rounds: {total}")
    for category, rounds in result.rounds_by_category().items():
        print(f"  {category:<28s} {rounds:>8d}  ({100 * rounds / total:4.1f}%)")
    print()


def scaling() -> None:
    print("=== 2. Round scaling vs n (expanders) ===")
    rng = np.random.default_rng(2)
    ns = [16, 32, 64, 96]
    approx_rounds, exact_rounds = [], []
    for n in ns:
        g = graphs.random_regular_graph(n, 4, rng=rng)
        approx_rounds.append(
            CongestedCliqueTreeSampler(g, CONFIG).sample(rng).rounds
        )
        exact_rounds.append(ExactTreeSampler(g, CONFIG).sample(rng).rounds)
        print(
            f"  n={n:<4d} approx={approx_rounds[-1]:>8d} "
            f"exact={exact_rounds[-1]:>8d}"
        )
    slope_a, _ = loglog_fit(ns, approx_rounds)
    slope_e, _ = loglog_fit(ns, exact_rounds)
    print(f"fitted exponent approx: {slope_a:.3f}  (claim: {0.5 + ALPHA:.3f} + polylog)")
    print(f"fitted exponent exact:  {slope_e:.3f}  (claim: {2/3 + ALPHA:.3f} + polylog)")
    print()


def doubling_regimes() -> None:
    print("=== 3. Theorem 2: doubling-walk regimes (n = 64 expander) ===")
    rng = np.random.default_rng(3)
    g = graphs.random_regular_graph(64, 4, rng=rng)
    print(f"  {'tau':>6s} {'rounds':>7s}   regime")
    for tau in (8, 32, 128, 512, 2048):
        result = doubling_random_walk(g, tau, rng)
        regime = "log tau" if tau <= 64 / 6 else "(tau/n) log tau log n"
        print(f"  {tau:>6d} {result.rounds:>7d}   {regime}")
    print()


def fast_cover() -> None:
    print("=== 4. Corollary 1: cover time decides everything (n = 32) ===")
    rng = np.random.default_rng(4)
    for name, g in [
        ("expander", graphs.random_regular_graph(32, 4, rng=rng)),
        ("K_{n-sqrt n, sqrt n}", graphs.complete_bipartite_unbalanced(32)),
        ("lollipop", graphs.lollipop_graph(32)),
    ]:
        result = sample_tree_fast_cover(g, rng)
        print(
            f"  {name:<22s} cover~{result.cover_time_estimate:>9.0f} "
            f"walk={result.walk_length:>7d} rounds={result.rounds:>6d}"
        )
    print(
        "\nThe lollipop's Theta(n^3) cover time is exactly why the paper's "
        "main algorithm exists: Corollary 1 alone cannot be sublinear there."
    )


def main() -> None:
    phase_breakdown()
    scaling()
    doubling_regimes()
    fast_cover()


if __name__ == "__main__":
    main()
