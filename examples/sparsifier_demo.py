#!/usr/bin/env python3
"""Application demo: spectral sparsification from random spanning trees.

One of the paper's motivating applications (Section 1, citing [23, 33,
41]): unions of uniformly random spanning trees make good graph
sparsifiers. This script builds a k-tree sparsifier of a dense graph with
the CongestedClique sampler and measures spectral quality -- the ratio
range of Laplacian quadratic forms x^T L_H x / x^T L_G x over random test
vectors -- against (a) a same-size uniform random edge set and (b) the
random-weight MST strawman.

Run:  python examples/sparsifier_demo.py
"""

from __future__ import annotations

import numpy as np

from repro import graphs
from repro.core import CongestedCliqueTreeSampler, SamplerConfig
from repro.graphs import WeightedGraph
from repro.walks import random_weight_mst_tree


def union_sparsifier(graph: WeightedGraph, trees: list) -> WeightedGraph:
    """Union of tree edge sets, each edge kept with weight = multiplicity."""
    weights = np.zeros((graph.n, graph.n))
    for tree in trees:
        for u, v in tree:
            weights[u, v] += 1.0
            weights[v, u] += 1.0
    return WeightedGraph(weights, validate=False)


def spectral_ratio_range(
    sparse: WeightedGraph, dense: WeightedGraph, rng: np.random.Generator
) -> tuple[float, float]:
    """Range of x^T L_H x / x^T L_G x over random mean-zero test vectors."""
    l_sparse, l_dense = sparse.laplacian(), dense.laplacian()
    ratios = []
    for _ in range(400):
        x = rng.normal(size=dense.n)
        x -= x.mean()
        denominator = x @ l_dense @ x
        if denominator < 1e-12:
            continue
        ratios.append((x @ l_sparse @ x) / denominator)
    return min(ratios), max(ratios)


def random_edge_graph(
    graph: WeightedGraph, num_edges: int, rng: np.random.Generator
) -> WeightedGraph:
    edges = list(graph.edges())
    chosen = rng.choice(len(edges), size=min(num_edges, len(edges)), replace=False)
    weights = np.zeros((graph.n, graph.n))
    for index in chosen:
        u, v = edges[int(index)]
        weights[u, v] = weights[v, u] = 1.0
    return WeightedGraph(weights, validate=False)


def main() -> None:
    rng = np.random.default_rng(99)
    n, k = 28, 6
    dense = graphs.erdos_renyi_graph(n, p=0.5, rng=rng)
    print(f"dense input: G(n={n}, p=0.5), m={dense.m} edges")
    print(f"building sparsifiers with ~{k * (n - 1)} edges each\n")

    config = SamplerConfig(ell=1 << 12)
    sampler = CongestedCliqueTreeSampler(dense, config)
    uniform_trees = [sampler.sample_tree(rng) for _ in range(k)]
    mst_trees = [random_weight_mst_tree(dense, rng) for _ in range(k)]

    candidates = {
        "k uniform spanning trees": union_sparsifier(dense, uniform_trees),
        "k random-weight MSTs": union_sparsifier(dense, mst_trees),
        "same-size random edges": random_edge_graph(dense, k * (n - 1), rng),
    }
    print(f"{'sparsifier':<28s} {'m':>5s} {'min ratio':>10s} {'max ratio':>10s} {'spread':>8s}")
    for name, sparse in candidates.items():
        low, high = spectral_ratio_range(sparse, dense, rng)
        spread = high / max(low, 1e-9)
        print(f"{name:<28s} {sparse.m:>5d} {low:>10.3f} {high:>10.3f} {spread:>8.1f}")

    print(
        "\nUniform-tree unions concentrate the quadratic form (small "
        "spread); uniform random edges of the same budget can disconnect "
        "or badly distort it. This is the sparsification story that "
        "motivates fast uniform tree sampling."
    )


if __name__ == "__main__":
    main()
