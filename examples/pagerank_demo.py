#!/usr/bin/env python3
"""PageRank in polylog rounds: the Theorem 2 short-walk application.

The paper notes (Section 1.2) that its doubling machinery makes
O(polylog n)-length walks nearly free -- O(log tau) rounds -- and that
such walks are "of particular interest for approximating PageRank"
[Bahmani-Chakrabarti-Xin; Lacki et al.]. This demo estimates PageRank on
a scale-free-ish graph with doubling walks, showing error vs walk budget
and the corresponding CongestedClique round bill.

Run:  python examples/pagerank_demo.py
"""

from __future__ import annotations

import numpy as np

from repro import graphs
from repro.walks import pagerank_exact, pagerank_via_walks


def main() -> None:
    rng = np.random.default_rng(17)
    n = 48
    graph = graphs.wheel_graph(n)  # hub + rim: skewed degree profile
    exact = pagerank_exact(graph, damping=0.85)
    print(f"wheel graph, n={n}; exact hub score: {exact[0]:.4f}, "
          f"rim score: {exact[1]:.4f}\n")

    print(f"{'walks/vertex':>12s} {'L1 error':>9s} {'hub estimate':>13s} "
          f"{'rounds':>7s}")
    for budget in (4, 16, 64, 256):
        estimate = pagerank_via_walks(
            graph, damping=0.85, walks_per_vertex=budget, rng=rng
        )
        print(
            f"{budget:>12d} {estimate.l1_error(exact):>9.4f} "
            f"{estimate.scores[0]:>13.4f} {estimate.rounds:>7d}"
        )
    print(
        "\nEach batch is one load-balanced doubling run over walks of "
        "length O(log n / log(1/d)) -- the Theorem 2 short-walk regime."
    )


if __name__ == "__main__":
    main()
