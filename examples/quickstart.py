#!/usr/bin/env python3
"""Quickstart: sample spanning trees through the session API.

Opens one :class:`repro.api.Session` on a graph and runs the three
samplers the paper contributes --

1. the Theorem 1 approximate sampler (O~(n^{1/2 + alpha}) rounds),
2. the Appendix exact sampler (O~(n^{2/3 + alpha}) rounds),
3. the Corollary 1 fast sampler for small-cover-time graphs --

as declarative requests against the same session (shared derived-graph
cache, one RNG lineage), then prints their round bills side by side with
the classical sequential baselines (Aldous-Broder, Wilson).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import graphs
from repro.api import RoundBillRequest, SampleRequest, Session
from repro.graphs import count_spanning_trees
from repro.walks import aldous_broder_tree, wilson_tree


def main() -> None:
    rng = np.random.default_rng(2025)
    n = 24
    graph = graphs.random_regular_graph(n, 4, rng=rng)
    print(f"input: random 4-regular graph, n={graph.n}, m={graph.m}")
    print(f"spanning trees (Matrix-Tree): {count_spanning_trees(graph):.3e}")
    print()

    # The "fast-bench" preset shortens the nominal walk length from the
    # paper's Theta~(n^3) default to keep the demo snappy; the Las-Vegas
    # extension of Appendix 5.1 preserves the output distribution exactly.
    session = Session(graph, "fast-bench", seed=2025)

    print("=== Theorem 1: approximate sampler ===")
    response = session.run(SampleRequest(variant="approximate"))
    result = response.result
    print(f"tree (first 5 edges): {result.tree[:5]} ...")
    print(f"phases: {result.phases}  (rho = floor(sqrt(n)) = {int(np.sqrt(n))})")
    print(f"total rounds: {result.rounds}  "
          f"({response.meta['seconds']:.2f}s wall clock)")
    for category, rounds in list(result.rounds_by_category().items())[:4]:
        print(f"  {category:<28s} {rounds}")
    print("first charges on the round ledger (full protocol trace "
          "available via ledger.timeline()):")
    for line in result.ledger.timeline(limit=5).splitlines():
        print(f"  {line}")
    print()

    print("=== Appendix: exact sampler ===")
    exact = session.run(SampleRequest(variant="exact")).result
    print(f"phases: {exact.phases}  (rho = floor(n^(1/3)) = {round(n ** (1/3))})")
    print(f"total rounds: {exact.rounds}")
    print()

    print("=== Corollary 1: fast sampler (doubling walks) ===")
    fast = session.run(SampleRequest(variant="fastcover")).result
    print(f"cover-time estimate: {fast.cover_time_estimate:.0f}")
    print(f"walk length: {fast.walk_length}, rounds: {fast.rounds}")
    print()

    print("=== All three, one request (the CLI's `rounds` table) ===")
    bill = session.run(RoundBillRequest(seed=7)).result
    print(f"{'variant':<14s} {'rounds':>8s}")
    print(f"{'approximate':<14s} {bill.approximate_rounds:>8d}")
    print(f"{'exact':<14s} {bill.exact_rounds:>8d}")
    print(f"{'fastcover':<14s} {bill.fastcover_rounds:>8d}")
    print()

    print("=== Sequential baselines (0 rounds, wall-clock only) ===")
    print(f"Aldous-Broder tree: {aldous_broder_tree(graph, rng)[:3]} ...")
    print(f"Wilson tree:        {wilson_tree(graph, rng)[:3]} ...")


if __name__ == "__main__":
    main()
