#!/usr/bin/env python3
"""The serving layer end to end: start, stream, verify, overload, drain.

Starts a real ``python -m repro serve`` server on an ephemeral port and
walks the whole network surface with the stdlib client:

1. batch ``POST /v1/run`` -- one spanning tree, typed Response back;
2. streaming ``POST /v1/stream`` -- ensemble draws as NDJSON chunks,
   arriving in seed order with a cache-counter summary at the end;
3. the reproducibility contract -- the streamed draws are byte-identical
   to a direct in-process Session for the same pinned seed (the service
   adds delivery, never distortion);
4. admission control -- the server's budgets reject an oversized request
   at validation time with a typed error;
5. graceful shutdown -- SIGTERM drains and the server exits 0.

Run:  python examples/service_quickstart.py
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.api import EnsembleRequest, Session, preset_config
from repro.graphs.families import build_family
from repro.service.client import (
    ServiceClient,
    ServiceRequestError,
    wait_until_ready,
)

GRAPH = {"family": "expander", "n": 32, "seed": 0}
SRC = Path(__file__).resolve().parent.parent / "src"


def main() -> None:
    cache_dir = tempfile.mkdtemp(prefix="service-quickstart-")
    env = {**os.environ}
    env.setdefault("PYTHONPATH", str(SRC))
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--workers", "2", "--cache-dir", cache_dir],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, env=env, text=True,
    )
    banner = proc.stdout.readline().strip()
    print(banner)
    port = int(re.search(r":(\d+) ", banner).group(1))
    client = ServiceClient(port=port)
    wait_until_ready(client)

    try:
        # 1. One tree over batch HTTP.
        response = client.run(GRAPH, {"request": "sample", "seed": 7})
        print(f"\nbatch sample: {response.result.rounds} rounds, "
              f"tree of {len(response.result.tree)} edges "
              f"(backend {response.meta['linalg_backend']})")

        # 2. An ensemble streamed as NDJSON, draw by draw.
        request = {"request": "ensemble", "count": 5, "seed": 42, "jobs": 1}
        print("\nstreaming 5 draws:")
        streamed = []
        iterator = client.stream(GRAPH, request)
        while True:
            try:
                index, result = next(iterator)
            except StopIteration as stop:
                summary = stop.value
                break
            streamed.append(result)
            print(f"  draw {index}: {result.rounds} rounds")
        print(f"summary: {summary.count} draws in {summary.seconds:.2f}s, "
              f"cache hits {summary.cache.get('hits', 0)} / "
              f"disk hits {summary.cache.get('disk_hits', 0)}")

        # 3. Byte-identity against a direct in-process session.
        graph, meta = build_family(
            GRAPH["family"], GRAPH["n"], np.random.default_rng(GRAPH["seed"])
        )
        session = Session(
            graph, preset_config("fast-bench"), seed=0, meta=meta
        )
        local = session.run(EnsembleRequest(count=5, seed=42, jobs=1))
        assert [r.tree for r in streamed] == [
            r.tree for r in local.result.results
        ], "service draws must match the local session byte for byte"
        print("identity: streamed trees == direct Session trees")

        # 4. Budgets reject at validation time, never mid-stream.
        try:
            client.run(GRAPH, {"request": "ensemble", "count": 10**9})
        except ServiceRequestError as error:
            print(f"\noversized request rejected: {error}")

        stats = client.stats()["counters"]
        print(f"server counters: admitted={stats['admitted']} "
              f"completed={stats['completed']} "
              f"rejected_validation={stats['rejected_validation']}")
    finally:
        # 5. Graceful drain.
        proc.send_signal(signal.SIGTERM)
        code = proc.wait(timeout=30)
        print(f"\nSIGTERM drain: server exited {code}")


if __name__ == "__main__":
    main()
