#!/usr/bin/env python3
"""Weighted spanning-tree sampling (footnote 1 of the paper).

The paper's algorithms extend to positive integer edge weights bounded by
W = O(n^beta): the target distribution weights each tree by the product
of its edge weights, and walks step along edges proportionally. This demo
samples from a weighted graph with all three samplers and compares the
empirical tree law against the exact weight-proportional distribution --
including how a single heavy edge dominates the tree mass.

Run:  python examples/weighted_sampling.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import empirical_tree_distribution, tv_distance
from repro.core import CongestedCliqueTreeSampler, ExactTreeSampler, SamplerConfig
from repro.graphs import WeightedGraph, count_spanning_trees, uniform_tree_distribution
from repro.walks import wilson_tree


def main() -> None:
    rng = np.random.default_rng(23)
    # A 5-cycle with one heavy (weight 8) edge and one chord (weight 2):
    # integer weights per footnote 1.
    graph = WeightedGraph.from_edges(
        5,
        [(0, 1, 8.0), (1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0), (4, 0, 1.0),
         (0, 2, 2.0)],
    )
    graph.validate_integer_weights(max_weight=8)
    target = uniform_tree_distribution(graph)
    print(f"weighted 5-cycle + chord; total tree weight "
          f"{count_spanning_trees(graph):.0f}, {len(target)} trees")
    heaviest = max(target, key=target.get)
    print(f"heaviest tree {heaviest} carries {target[heaviest]:.3f} "
          "of the mass\n")

    config = SamplerConfig(ell=1 << 10)
    n_samples = 1500
    samplers = {
        "theorem1": CongestedCliqueTreeSampler(graph, config).sample_tree,
        "exact (appendix)": ExactTreeSampler(graph, config).sample_tree,
        "wilson (reference)": lambda r: wilson_tree(graph, r),
    }
    print(f"{'sampler':<20s} {'TV to weighted law':>19s} "
          f"{'P(heaviest tree)':>17s}")
    for name, sampler in samplers.items():
        trees = [sampler(rng) for _ in range(n_samples)]
        empirical = empirical_tree_distribution(trees)
        tv = tv_distance(empirical, dict(target))
        print(f"{name:<20s} {tv:>19.4f} "
              f"{empirical.get(heaviest, 0.0):>17.3f}")
    print(
        "\nAll samplers concentrate on the heavy-edge trees exactly as the "
        "weight-proportional law dictates (footnote 1)."
    )


if __name__ == "__main__":
    main()
