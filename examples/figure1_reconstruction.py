#!/usr/bin/env python3
"""Reproduce Figure 1: midpoint multiset + matching walk reconstruction.

Figure 1 shows one level of the walk-filling process: the leader holds
W_i = (1, 3, 2, 1, 3, 2, 1, 2, 3) (start-end pairs (1,3), (3,2), (2,1),
(1,2) with repeats), the M_{p,q} machines generate midpoint sequences
Pi_{p,q}, and instead of shipping the sequences, the leader receives only
the *multiset* of midpoints and re-samples their placement by drawing a
weighted perfect matching between midpoints and midpoint positions.

This script executes exactly that level on a 5-vertex graph, prints the
sequences the machines generated, the compressed multiset the leader
receives, the sampled contingency table (the class-compressed form of the
matching), and the reconstructed walk -- then verifies over many trials
that reconstruction preserves the walk distribution (Lemma 3).

Run:  python examples/figure1_reconstruction.py
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro import graphs
from repro.core.midpoints import MidpointBank
from repro.core.placement import place_midpoints
from repro.core.truncation import LevelView
from repro.linalg import PowerLadder
from repro.walks.fill import PartialWalk, _fill_level


def main() -> None:
    rng = np.random.default_rng(13)
    graph = graphs.complete_graph(5)
    ladder = PowerLadder(graph.transition_matrix(), 8)
    spacing = 4
    half = ladder.power(spacing // 2)

    # The figure's partial walk (field-renamed to 0-based vertices).
    w_i = PartialWalk(spacing, [1, 3, 2, 1, 3, 2, 1, 2, 3])
    pairs = Counter(w_i.pairs())
    print("W_i =", w_i.vertices)
    print("start-end pair counts c_pq:", dict(pairs), "\n")

    bank = MidpointBank(dict(pairs), half, rng)
    for pair in pairs:
        print(f"  Pi_{pair} = {[int(v) for v in bank.sequence(pair)]}")
    view = LevelView(w_i, bank)
    multiset = bank.truncated_counts(view.truncated_pair_counts(view.top))
    print("\nleader receives multiset M =", dict(sorted(multiset.items())))

    reconstructed = place_midpoints(view, view.top, half, rng)
    print("reconstructed W_{i+1} =", reconstructed.vertices)

    # Statistical check of Lemma 3: reconstruction law == direct fill law.
    n_samples = 4000
    direct = Counter()
    rebuilt = Counter()
    for _ in range(n_samples):
        direct[tuple(_fill_level(w_i, half, rng).vertices)] += 1
        bank = MidpointBank(dict(pairs), half, rng)
        view = LevelView(w_i, bank)
        rebuilt[tuple(place_midpoints(view, view.top, half, rng).vertices)] += 1
    keys = set(direct) | set(rebuilt)
    tv = 0.5 * sum(
        abs(direct[k] / n_samples - rebuilt[k] / n_samples) for k in keys
    )
    print(f"\nTV(direct fill, matching reconstruction) over {n_samples} trials:"
          f" {tv:.4f}")
    print(f"distinct filled walks observed: {len(keys)}")
    print("(values near the sampling-noise floor confirm Lemma 3)")


if __name__ == "__main__":
    main()
