#!/usr/bin/env python3
"""Uniformity audit: every sampler against exact Matrix-Tree ground truth.

The workload the paper's introduction motivates: applications (graph
sparsification, TSP rounding) need trees that are *provably close to
uniform* -- an MST with random weights will not do (Section 1.4). This
script draws trees from every sampler in the library on a small graph,
compares each empirical distribution to the exact uniform law, and prints
TV distances, chi-square p-values, and the sampling-noise floor -- making
the strawman's bias directly visible next to the correct samplers.

Run:  python examples/uniformity_audit.py [num_samples]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import graphs
from repro.analysis import (
    chi_square_uniformity,
    expected_tv_noise,
    tv_to_uniform,
)
from repro.api import EnsembleRequest, Session
from repro.core import sample_tree_fast_cover
from repro.graphs import count_spanning_trees
from repro.walks import (
    aldous_broder_tree,
    random_weight_mst_tree,
    wilson_tree,
)


def main() -> None:
    n_samples = int(sys.argv[1]) if len(sys.argv) > 1 else 1000
    graph = graphs.theta_graph(1, 1, 3)
    num_trees = int(round(count_spanning_trees(graph)))
    noise = expected_tv_noise(num_trees, n_samples)
    print(f"graph: theta(1,1,3), {num_trees} spanning trees")
    print(f"samples per sampler: {n_samples}; TV noise floor ~ {noise:.4f}\n")

    # Both clique samplers stream their ensembles out of one session
    # (shared derived-graph cache across variants, per-draw spawned
    # seeds); the sequential baselines stay plain callables.
    session = Session(graph, "fast-audit", seed=13)

    def clique_trees(variant: str, seed: int) -> list:
        request = EnsembleRequest(count=n_samples, variant=variant, seed=seed)
        return [result.tree for result in session.stream(request)]

    def loop_trees(sampler, index: int) -> list:
        # Independent per-sampler streams: one sampler's draw count can
        # never shift another's randomness (stable verdicts).
        rng = np.random.default_rng([13, index])
        return [sampler(rng) for _ in range(n_samples)]

    ensembles = {
        "theorem1 (approx)": clique_trees("approximate", seed=130),
        "appendix (exact)": clique_trees("exact", seed=131),
        "corollary1 (fast)": loop_trees(
            lambda r: sample_tree_fast_cover(graph, r).tree, 2
        ),
        "aldous-broder": loop_trees(lambda r: aldous_broder_tree(graph, r), 3),
        "wilson": loop_trees(lambda r: wilson_tree(graph, r), 4),
        "random-weight MST": loop_trees(
            lambda r: random_weight_mst_tree(graph, r), 5
        ),
    }

    print(f"{'sampler':<20s} {'TV':>8s} {'TV/noise':>9s} {'chi2 p':>10s}  verdict")
    for name, trees in ensembles.items():
        tv = tv_to_uniform(graph, trees)
        __, p_value = chi_square_uniformity(graph, trees)
        verdict = "UNIFORM" if p_value > 1e-3 else "BIASED"
        print(
            f"{name:<20s} {tv:8.4f} {tv / noise:9.2f} {p_value:10.2e}  {verdict}"
        )

    print(
        "\nExpected: every sampler UNIFORM except the random-weight MST "
        "strawman (Section 1.4 / [39])."
    )


if __name__ == "__main__":
    main()
