"""Exact spanning-tree sampling (Appendix 5): O~(n^{2/3 + alpha}) rounds.

The appendix removes all three error sources of the approximate sampler:

1. **Quota failures** (5.1): walks are extended from their endpoints until
   the quota is met (Las Vegas) -- our phase driver does this by default
   (``on_failure="extend"``).
2. **Approximate probabilities** (5.2): midpoint normalizers are verified
   against the ``1/n^c`` floor; failures trigger the collect-everything
   brute-force fallback (wired in :mod:`repro.core.phase`).
3. **Approximate matching sampling** (5.3): instead of the global multiset
   + matching, each ``M_{p,q}`` ships its *per-pair multiset*; midpoints of
   a pair are exchangeable, so a uniform shuffle per pair is an exact
   placement. Bandwidth forces ``rho = floor(n^(1/3))`` (so the
   ``n^{2/3}`` pair machines ship ``n^{1/3}`` words each, O(n) total),
   which raises the phase count to ``O(n^{2/3})`` and the total round
   complexity to O~(n^{2/3 + alpha}) = O(n^0.824).

This module is a thin convenience facade over
:class:`~repro.core.sampler.CongestedCliqueTreeSampler` with
``variant="exact"``.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import SamplerConfig
from repro.core.sampler import CongestedCliqueTreeSampler, SampleResult
from repro.graphs.core import WeightedGraph
from repro.graphs.spanning import TreeKey

__all__ = ["ExactTreeSampler", "sample_spanning_tree_exact"]


class ExactTreeSampler(CongestedCliqueTreeSampler):
    """The appendix's exact sampler, preconfigured.

    Identical public surface to the approximate sampler; the variant flag
    selects rho = floor(n^(1/3)) and per-pair-multiset placement.
    """

    def __init__(
        self, graph: WeightedGraph, config: SamplerConfig | None = None
    ) -> None:
        super().__init__(graph, config, variant="exact")


def sample_spanning_tree_exact(
    graph: WeightedGraph,
    rng: np.random.Generator | int | None = None,
    *,
    config: SamplerConfig | None = None,
) -> TreeKey:
    """Sample a spanning tree exactly (zero distributional error)."""
    sampler = ExactTreeSampler(graph, config)
    return sampler.sample_tree(np.random.default_rng(rng))


def exact_sample_with_diagnostics(
    graph: WeightedGraph,
    rng: np.random.Generator | int | None = None,
    *,
    config: SamplerConfig | None = None,
) -> SampleResult:
    """Exact sample plus the full round/phase diagnostics."""
    sampler = ExactTreeSampler(graph, config)
    return sampler.sample(np.random.default_rng(rng))
