"""The workload registry: one source of truth for workload dispatch.

PR 8's :mod:`repro.core.variants` made *sampler* dispatch registry-driven
inside the spanning-tree workload. This module is the sibling registry
one level up: which **workloads** the stack serves at all. A
:class:`WorkloadSpec` records everything the surrounding layers need to
route a workload without hardcoding its name:

- **request kinds** -- the wire tags (``request.kind``) the workload
  owns, which is how the session and service map an incoming request
  back to its workload;
- **streaming kinds** -- the subset of those tags ``Session.stream`` and
  ``POST /v1/stream`` accept (streaming changes delivery, never
  outputs: an ensemble streams draw by draw, an MST streams its single
  result record followed by the summary);
- **CLI commands** -- the ``python -m repro <cmd>`` subcommands the
  workload surfaces;
- **recipes** -- the registered round models (:class:`WorkloadRecipe`)
  the workload can bill under, each naming the paper line it implements
  and the ledger categories its charges land in. The spanning-tree
  workload's "recipes" are the :mod:`repro.core.variants` registry and
  so are not duplicated here;
- **weight modes** -- the instance-weighting schemes the workload's
  requests accept (MST draws i.i.d. seeded weights; tree sampling uses
  the graph's own);
- **oracle** -- the sequential reference implementation every result is
  gated against (Kirchhoff/Wilson for sampled trees, Kruskal for MST).

Registering a new workload (or a new recipe on an existing one) means
adding one entry here; request validation, CLI choices, the session's
streaming gate, and the service envelope pick it up without edits --
the same guarantee ``tests/test_workloads.py`` ghost-registers to prove.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = [
    "WorkloadRecipe",
    "WorkloadSpec",
    "WORKLOADS",
    "get_workload",
    "workload_names",
    "workload_for_request",
    "workload_request_kinds",
    "streaming_request_kinds",
    "workload_recipe_names",
]


@dataclass(frozen=True)
class WorkloadRecipe:
    """One registered round model a workload can bill under.

    Attributes
    ----------
    name:
        The wire/CLI identifier (``recipe="..."``).
    description:
        One-line human summary (CLI help, round-bill tables).
    paper_ref:
        Which result the recipe's round accounting implements.
    comm_model:
        The bandwidth regime the bill is honest in (``"unicast"`` for
        the Lenzen-routed Congested Clique, ``"node-congested-clique"``
        for the node-capacitated model's log-bounded lanes).
    rounds_formula:
        The headline round bound, as prose for docs and reports.
    categories:
        The ledger categories this recipe's charges land in. Distinct
        per communication regime (mirroring the variants registry's
        ``broadcast-bandwidth`` precedent) so rounds billed under
        different bandwidth models are never summed as one resource.
    """

    name: str
    description: str
    paper_ref: str
    comm_model: str
    rounds_formula: str
    categories: tuple[str, ...] = ()


@dataclass(frozen=True)
class WorkloadSpec:
    """Everything the stack needs to know about one workload.

    Attributes
    ----------
    name:
        Registry key (``"spanning-tree"``, ``"mst"``, ...).
    description:
        One-line human summary.
    paper_ref:
        The line of work the workload reproduces.
    request_kinds:
        The request wire tags (``request.kind``) this workload owns.
    streaming_kinds:
        The subset of ``request_kinds`` servable via ``stream`` paths.
    cli_commands:
        ``python -m repro <cmd>`` subcommands surfacing the workload.
    recipes:
        Registered round models (empty when a different registry --
        the variants registry -- plays that role).
    default_recipe:
        Recipe used when a request names none.
    weight_modes:
        Instance-weighting schemes the workload's requests accept
        (empty when the workload takes the graph's weights as-is).
    oracle:
        The sequential reference every result is gated against.
    """

    name: str
    description: str
    paper_ref: str
    request_kinds: tuple[str, ...]
    streaming_kinds: tuple[str, ...] = ()
    cli_commands: tuple[str, ...] = ()
    recipes: tuple[WorkloadRecipe, ...] = ()
    default_recipe: str | None = None
    weight_modes: tuple[str, ...] = ()
    oracle: str | None = None

    def recipe_names(self) -> tuple[str, ...]:
        """Registered recipe names, in registration order."""
        return tuple(recipe.name for recipe in self.recipes)

    def get_recipe(self, name: str) -> WorkloadRecipe:
        """Look up a recipe; raises :class:`ConfigError` when unknown."""
        for recipe in self.recipes:
            if recipe.name == name:
                return recipe
        raise ConfigError(
            f"unknown {self.name} recipe {name!r}; "
            f"choose from {self.recipe_names()}"
        )

    def resolve_recipe(self, name: str | None) -> WorkloadRecipe:
        """The named recipe, or the workload default when ``None``."""
        if name is None:
            if self.default_recipe is None:
                raise ConfigError(
                    f"workload {self.name!r} has no default recipe"
                )
            name = self.default_recipe
        return self.get_recipe(name)


WORKLOADS: dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in [
        WorkloadSpec(
            name="spanning-tree",
            description=(
                "random spanning trees in the Congested Clique "
                "(sampling, ensembles, uniformity audits, round bills)"
            ),
            paper_ref="Pemmaraju-Roy-Sobel (PODC 2025)",
            request_kinds=("sample", "ensemble", "audit", "roundbill"),
            streaming_kinds=("ensemble",),
            cli_commands=("sample", "ensemble", "audit", "rounds"),
            # Recipes for this workload are the sampler variants --
            # repro.core.variants is their registry of record.
            oracle="wilson",
        ),
        WorkloadSpec(
            name="pagerank",
            description="walk-based PageRank estimates vs the exact solve",
            paper_ref="classic random-surfer estimation",
            request_kinds=("pagerank",),
            cli_commands=("pagerank",),
            oracle="exact-solve",
        ),
        WorkloadSpec(
            name="mst",
            description=(
                "minimum spanning forests over seeded random edge "
                "weights, every result gated against the Kruskal oracle"
            ),
            paper_ref="KKT sampling in the (node) congested clique",
            request_kinds=("mst",),
            streaming_kinds=("mst",),
            cli_commands=("mst",),
            recipes=(
                WorkloadRecipe(
                    name="kkt-o1",
                    description=(
                        "KKT sample-and-sparsify super-steps over the "
                        "Lenzen fabric; Boruvka merges resolve locally"
                    ),
                    paper_ref=(
                        "Jurdzinski-Nowicki, MST in O(1) Rounds of "
                        "Congested Clique (arXiv:1707.08484)"
                    ),
                    comm_model="unicast",
                    rounds_formula="O(1) rounds",
                    categories=("mst-sketch", "mst-merge"),
                ),
                WorkloadRecipe(
                    name="node-cc-msf",
                    description=(
                        "sampling-based MSF with per-phase aggregation "
                        "trees in the Node Congested Clique"
                    ),
                    paper_ref=(
                        "Random Sampling Applied to the MSF Problem in "
                        "the Node Congested Clique (arXiv:1807.08738)"
                    ),
                    comm_model="node-congested-clique",
                    rounds_formula="O(log^2 n) rounds",
                    categories=("mst-sampling", "mst-aggregation"),
                ),
            ),
            default_recipe="kkt-o1",
            weight_modes=("random", "tie-prone", "graph"),
            oracle="kruskal",
        ),
    ]
}


def get_workload(name: str) -> WorkloadSpec:
    """Look up a workload spec; raises :class:`ConfigError` when unknown."""
    try:
        return WORKLOADS[name]
    except KeyError:
        raise ConfigError(
            f"unknown workload {name!r}; choose from {workload_names()}"
        ) from None


def workload_names() -> tuple[str, ...]:
    """All registered workload names, in registration order."""
    return tuple(WORKLOADS)


def workload_for_request(kind: str) -> WorkloadSpec:
    """The workload owning a request wire tag (``request.kind``)."""
    for spec in WORKLOADS.values():
        if kind in spec.request_kinds:
            return spec
    raise ConfigError(
        f"no registered workload owns request kind {kind!r}; "
        f"known kinds: {workload_request_kinds()}"
    )


def workload_request_kinds() -> tuple[str, ...]:
    """Every request kind owned by some workload, registration order."""
    return tuple(
        kind for spec in WORKLOADS.values() for kind in spec.request_kinds
    )


def streaming_request_kinds() -> tuple[str, ...]:
    """Request kinds the stream paths (session and service) accept."""
    return tuple(
        kind for spec in WORKLOADS.values() for kind in spec.streaming_kinds
    )


def workload_recipe_names(workload: str) -> tuple[str, ...]:
    """Registered recipe names for one workload (request validation)."""
    return get_workload(workload).recipe_names()
