"""Configuration for the CongestedClique spanning-tree samplers.

Every tunable the paper leaves as a parameter (epsilon, rho, the nominal
walk length ell, numerical precision, which matching sampler realizes the
JSV/JVV step) is surfaced here, with defaults matching the paper's choices
for the approximate (Theorem 1) variant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Literal

from repro.errors import ConfigError

__all__ = ["SamplerConfig"]

MatchingMethod = Literal[
    "exact-dp", "exact-dp-reference", "exact-permanent", "mcmc"
]
FailurePolicy = Literal["extend", "error"]
SchurMethod = Literal["block", "qr-product"]
ShortcutMethod = Literal["solve", "power-iteration"]
PlacementMode = Literal["batched", "reference"]
RngContract = Literal["v2", "v1"]


@dataclass(frozen=True)
class SamplerConfig:
    """Knobs for :class:`repro.core.sampler.CongestedCliqueTreeSampler`.

    Attributes
    ----------
    epsilon:
        Target total variation distance from uniform (the paper allows
        any ``eps = Omega(1/n^c)``). Drives the nominal walk length and
        the per-level matching-sampler accuracy budget
        ``eps / (4 sqrt(n) log ell)``.
    rho:
        Distinct vertices visited per phase. ``None`` uses the variant
        default: ``floor(sqrt(n))`` for the approximate sampler (Section
        2.1), ``floor(n^(1/3))`` for the exact one (Appendix 5.3). Each
        phase actually stops at ``min(rho, |S|)`` distinct vertices --
        positions past the point where S is covered contribute no
        first-visit edges, so this preserves the output distribution while
        keeping the simulation's realized walks finite (DESIGN.md §4.3).
    ell:
        Nominal per-phase walk length; ``None`` uses the paper's smallest
        power of two at least ``log(4 sqrt(n)/eps) * n^3``. Benchmarks may
        shrink it (with ``on_failure="extend"`` the output law is
        unaffected; short walks just trigger more extensions).
    on_failure:
        What to do when a phase walk fails to reach its distinct-vertex
        quota within ``ell`` steps. ``"extend"`` (default) applies the
        Appendix 5.1 Las-Vegas extension: continue the walk from its
        current endpoint with a fresh target. ``"error"`` raises, exposing
        the paper's Monte-Carlo failure event (probability <= eps/2 with
        the paper's ell).
    matching_method:
        How the weighted-perfect-matching placement step samples:
        ``"exact-dp"`` (class-compressed exact sampler; default),
        ``"exact-dp-reference"`` (same law via the original pure-Python
        DP; baseline for A/B benchmarks),
        ``"exact-permanent"`` (self-reducible Ryser; small instances),
        ``"mcmc"`` (Metropolis chain -- the approximate path of Lemma 4).
    mcmc_steps:
        Proposal count for the MCMC matching sampler (``None``: 10 * B^3).
    placement_mode:
        How the walk layer executes midpoint placement. ``"batched"``
        (default) runs each phase over a
        :class:`~repro.core.placement_plan.PlacementPlan`: per-pair
        midpoint laws, contingency-DP forward/backward passes, and
        first-visit edge distributions are classified once and shared
        across levels, extension segments, and ensemble draws (and,
        through the tiered store, across process restarts).
        ``"reference"`` keeps the seed-faithful per-pair path.
        Under ``rng_contract="v1"`` the two modes consume the RNG
        identically over bit-equal probabilities, so they draw
        byte-identical trees for the same seed -- property-tested across
        every registered family and both variants; the chi-square
        uniformity harness additionally pins both modes to the
        Kirchhoff-exact tree law.
    rng_contract:
        How the batched walk layer consumes randomness. ``"v2"``
        (default) is the block-draw contract: per level (and per
        contingency-DP draw / first-visit group), one uniform vector is
        drawn from the generator and every pending decision is resolved
        by ``np.searchsorted`` against CDFs the
        :class:`~repro.core.placement_plan.PlacementPlan` caches
        alongside its normalized laws. ``"v1"`` is the per-decision
        ``Generator.choice(p=...)`` contract of earlier releases; it is
        byte-compatible with ``placement_mode="reference"`` and with
        seed fixtures captured before the v2 contract existed. Both
        contracts sample the identical tree law (chi-square/exact-TV
        harness) and charge identical round ledgers -- only *which* RNG
        bits realize a draw differs, so same-seed trees differ across
        contracts. ``placement_mode="reference"`` always consumes
        v1-style regardless of this knob (the reference path has no
        plan to hold CDFs); :attr:`effective_rng_contract` reports the
        contract actually in force.
    precision_bits:
        Entry precision for matrix power ladders. ``None`` = full float64
        (the exact-arithmetic idealization); an integer activates the
        Lemma 7 truncation pipeline of Section 2.5.
    schur_method / shortcut_method:
        Which construction computes the derived graphs each phase; the
        alternatives cross-validate each other (Corollaries 2-3).
    matmul_backend:
        ``"analytic"`` (default) charges O~(n^alpha) per multiplication
        as the paper does with the [17] black box; ``"simulated-3d"``
        runs the executable combinatorial O(n^{1/3})-round protocol
        (:class:`repro.clique.matmul3d.SimulatedMatmul`) and charges its
        *measured* rounds instead.
    linalg_backend:
        Numerics realization for the derived graphs and power ladders
        (:mod:`repro.linalg.backend`): ``"dense"`` is the numpy/LAPACK
        reference path, ``"sparse"`` stores matrices as ``scipy.sparse``
        CSR and uses the elimination-block kernels, and ``"auto"``
        (default) picks sparse only for large sparse inputs
        (``sparse_auto_min_n`` vertices or more at graph density at most
        ``sparse_auto_density``). Round bills are backend-independent
        (the charging model is analytic); trees for the same seed agree
        as well -- cross-backend property tests pin them byte-identical
        at n <= 128. ``"sparse"`` cannot combine with the dense-word
        ``"simulated-3d"`` matmul protocol.
    sparse_auto_min_n / sparse_auto_density:
        The ``"auto"`` crossover: below ``sparse_auto_min_n`` vertices,
        or above ``sparse_auto_density`` edge density, CSR bookkeeping
        costs more than it saves and auto stays dense.
    normalizer_floor_exponent:
        The ``c`` of Section 5.2's check ``W^2[p, q] >= 1/n^c``; midpoint
        normalizers below ``n ** -c`` trigger the brute-force fallback in
        exact mode (and a :class:`~repro.errors.PrecisionError` otherwise).
    start_vertex:
        The arbitrary start of the global walk (machine 1 / vertex 0 in
        the paper).
    max_extensions:
        Safety valve on Appendix 5.1 extensions per phase.
    derived_cache:
        Enable the engine's cross-sample
        :class:`~repro.engine.cache.DerivedGraphCache`: shortcut/Schur
        matrices and power ladders are memoized by vertex subset across
        draws while every run still receives its full per-run round
        charges (the model charges rounds per execution, not per unique
        numeric computation). Output trees and round bills are identical
        with the cache on or off.
    derived_cache_entries:
        LRU entry-count cap of the derived-graph cache (entries are
        per-subset and hold O(|S|^2 log ell) floats each). Secondary to
        the byte budget below when one is set.
    cache_dir:
        Root of the persistent derived-graph store
        (:mod:`repro.engine.store`): entries are spilled to
        content-addressed ``.npy``/``.npz`` blobs under this directory
        and survive process restarts, so ensemble workers and fresh CLI
        invocations warm-start instead of recomputing phase numerics.
        ``None`` (default) keeps the cache purely in-memory; the
        sentinel ``"auto"`` uses ``$REPRO_CACHE_DIR`` or
        ``~/.cache/repro-spanning-trees``. The same directory holds this
        machine's sparse-crossover calibration profile
        (:mod:`repro.linalg.calibrate`), which ``linalg_backend="auto"``
        consults when the crossover knobs are left at their defaults.
        Trees and round ledgers are identical with the disk tier cold,
        warm, or absent (property-tested).
    cache_memory_bytes:
        Byte budget of the in-memory tier (``None``: unbounded up to
        ``derived_cache_entries``). Eviction is LRU by total
        :meth:`~repro.engine.cache.PhaseNumerics.nbytes`.
    cache_disk_bytes:
        Byte budget of the disk tier (``None``: unbounded). Requires
        ``cache_dir``. Least-recently-used blobs are deleted past it.
    """

    epsilon: float = 1e-3
    rho: int | None = None
    ell: int | None = None
    on_failure: FailurePolicy = "extend"
    matching_method: MatchingMethod = "exact-dp"
    mcmc_steps: int | None = None
    placement_mode: PlacementMode = "batched"
    rng_contract: RngContract = "v2"
    precision_bits: int | None = None
    schur_method: SchurMethod = "block"
    shortcut_method: ShortcutMethod = "solve"
    matmul_backend: Literal["analytic", "simulated-3d"] = "analytic"
    linalg_backend: Literal["auto", "dense", "sparse"] = "auto"
    sparse_auto_min_n: int = 192
    sparse_auto_density: float = 0.25
    normalizer_floor_exponent: float = 40.0
    start_vertex: int = 0
    max_extensions: int = 64
    derived_cache: bool = True
    derived_cache_entries: int = 64
    cache_dir: str | None = None
    cache_memory_bytes: int | None = None
    cache_disk_bytes: int | None = None
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not (0.0 < self.epsilon < 1.0):
            raise ConfigError(f"epsilon must be in (0, 1), got {self.epsilon}")
        if self.rho is not None and self.rho < 2:
            raise ConfigError(f"rho must be >= 2, got {self.rho}")
        if self.ell is not None:
            if self.ell < 2 or (self.ell & (self.ell - 1)) != 0:
                raise ConfigError(
                    f"ell must be a power of two >= 2, got {self.ell}"
                )
        if self.on_failure not in ("extend", "error"):
            raise ConfigError(f"unknown failure policy {self.on_failure!r}")
        if self.matching_method not in (
            "exact-dp", "exact-dp-reference", "exact-permanent", "mcmc"
        ):
            raise ConfigError(
                f"unknown matching method {self.matching_method!r}"
            )
        if self.placement_mode not in ("batched", "reference"):
            raise ConfigError(
                f"unknown placement mode {self.placement_mode!r}"
            )
        if self.rng_contract not in ("v2", "v1"):
            raise ConfigError(
                f"unknown rng contract {self.rng_contract!r}"
            )
        if self.precision_bits is not None and self.precision_bits < 8:
            raise ConfigError(
                f"precision_bits must be >= 8, got {self.precision_bits}"
            )
        if self.schur_method not in ("block", "qr-product"):
            raise ConfigError(f"unknown schur method {self.schur_method!r}")
        if self.shortcut_method not in ("solve", "power-iteration"):
            raise ConfigError(
                f"unknown shortcut method {self.shortcut_method!r}"
            )
        if self.matmul_backend not in ("analytic", "simulated-3d"):
            raise ConfigError(
                f"unknown matmul backend {self.matmul_backend!r}"
            )
        if self.linalg_backend not in ("auto", "dense", "sparse"):
            raise ConfigError(
                f"unknown linalg backend {self.linalg_backend!r}"
            )
        if (
            self.linalg_backend == "sparse"
            and self.matmul_backend == "simulated-3d"
        ):
            raise ConfigError(
                "linalg_backend='sparse' cannot combine with "
                "matmul_backend='simulated-3d': the executable 3D protocol "
                "is a dense word-matrix simulation"
            )
        if self.sparse_auto_min_n < 2:
            raise ConfigError(
                f"sparse_auto_min_n must be >= 2, got {self.sparse_auto_min_n}"
            )
        if not (0.0 < self.sparse_auto_density <= 1.0):
            raise ConfigError(
                f"sparse_auto_density must be in (0, 1], got "
                f"{self.sparse_auto_density}"
            )
        if self.max_extensions < 1:
            raise ConfigError("max_extensions must be >= 1")
        if self.derived_cache_entries < 1:
            raise ConfigError(
                f"derived_cache_entries must be >= 1, got "
                f"{self.derived_cache_entries}"
            )
        if self.cache_dir is not None and not self.derived_cache:
            raise ConfigError(
                "cache_dir requires derived_cache=True: the disk tier "
                "sits beneath the in-memory derived-graph cache"
            )
        if self.cache_dir is not None and not str(self.cache_dir).strip():
            raise ConfigError("cache_dir must be a non-empty path or 'auto'")
        if self.cache_memory_bytes is not None and self.cache_memory_bytes < 1:
            raise ConfigError(
                f"cache_memory_bytes must be >= 1 (or None), got "
                f"{self.cache_memory_bytes}"
            )
        if self.cache_disk_bytes is not None and self.cache_disk_bytes < 1:
            raise ConfigError(
                f"cache_disk_bytes must be >= 1 (or None), got "
                f"{self.cache_disk_bytes}"
            )
        if self.cache_disk_bytes is not None and self.cache_dir is None:
            raise ConfigError(
                "cache_disk_bytes without cache_dir has nothing to bound; "
                "set cache_dir (or 'auto') to enable the disk tier"
            )

    # ------------------------------------------------------------------

    @property
    def effective_rng_contract(self) -> str:
        """The RNG contract actually in force for this configuration.

        The v2 block-draw contract lives on the plan-bearing batched
        path; ``placement_mode="reference"`` always consumes v1-style.
        """
        if self.placement_mode == "batched" and self.rng_contract == "v2":
            return "v2"
        return "v1"

    def resolve_rho(
        self,
        n: int,
        *,
        exact_variant: bool = False,
        variant: str | None = None,
    ) -> int:
        """The per-phase distinct-vertex quota for an n-vertex input.

        An explicit ``rho`` always wins; otherwise the variant's
        registered policy applies (``floor(sqrt(n))`` for the
        approximate sampler, ``floor(n^(1/3))`` for the exact one, the
        full vertex set for the broadcast sampler -- see
        :mod:`repro.core.variants`). Never below 2. ``exact_variant`` is
        the legacy boolean spelling, kept for callers predating the
        registry; ``variant`` takes precedence when both are given.
        """
        if self.rho is not None:
            return self.rho
        from repro.core.variants import get_variant

        if variant is None:
            variant = "exact" if exact_variant else "approximate"
        return get_variant(variant).resolve_rho(n)

    def resolve_ell(self, n: int) -> int:
        """The nominal walk target length (Section 2.1's ell)."""
        if self.ell is not None:
            return self.ell
        from repro.graphs.covertime import nominal_walk_length

        return nominal_walk_length(n, self.epsilon)

    def matching_tv_budget(self, n: int, ell: int) -> float:
        """Per-sample TV budget for the matching sampler (Section 2.1.3).

        The paper allots ``eps / (4 sqrt(n) log ell)`` to each of the
        O(sqrt(n) log ell) perfect-matching draws so the union bound over
        all levels and phases stays at O(eps).
        """
        return self.epsilon / (4.0 * math.sqrt(n) * max(1.0, math.log2(ell)))

    def normalizer_floor(self, n: int) -> float:
        """Section 5.2's lower bound ``1 / n^c`` on midpoint normalizers."""
        return float(n) ** (-self.normalizer_floor_exponent)
