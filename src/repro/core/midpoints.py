"""Midpoint request/generation machinery (Algorithm 2).

During level i of a phase the leader M holds the partial walk ``W_i``
(uniform spacing delta) and needs one midpoint inside every gap. Gaps with
the same (start, end) pair draw their midpoints i.i.d. from the same law
(Formula 1), so the paper designates one machine ``M_{p,q}`` per distinct
pair; ``M_{p,q}`` gathers the unnormalized probabilities
``P^{delta/2}[p, j] * P^{delta/2}[j, q]`` from every machine j and samples
the whole sequence ``Pi_{p,q}``.

:class:`MidpointBank` simulates the ensemble of ``M_{p,q}`` machines for
one level: it samples every sequence up front (as the real machines do),
then answers exactly the queries the leader's protocol is allowed:

- per-pair truncated occurrence counts (step 2 of Algorithm 3),
- point queries ``W^+[j]`` (the leader may ask the responsible machine for
  any single position, Section 2.1.3),
- the per-vertex total counts that form the multiset ``M`` (step 3 of
  Algorithm 3 / the multiset collection of Lemma 4).

Round costs are charged on the shared clique when one is supplied.
"""

from __future__ import annotations

from collections import Counter
from typing import Mapping

import numpy as np

from repro.clique.network import CongestedClique
from repro.errors import PrecisionError, WalkError
from repro.linalg.backend import matrix_col, matrix_row

__all__ = ["MidpointBank"]

Pair = tuple[int, int]


class MidpointBank:
    """All per-pair midpoint sequences ``Pi_{p,q}`` for one level.

    Parameters
    ----------
    pair_counts:
        ``c_{p,q}``: the number of occurrences of each distinct (start,
        end) pair among consecutive entries of ``W_i``.
    half_power:
        ``P^{delta/2}`` (or the Schur-matrix analogue) used by Formula 1,
        in whichever storage format the linalg backend produced (dense
        ndarray or scipy CSR).
    rng:
        Randomness source shared with the leader simulation.
    normalizer_floor:
        Section 5.2 precision guard: when the normalizer
        ``sum_j half[p, j] half[j, q]`` (= ``P^delta[p, q]`` up to
        rounding) falls below this floor, raise
        :class:`~repro.errors.PrecisionError` so the caller can trigger
        its fallback.
    clique:
        Optional clique simulator to charge the Algorithm 2 communication
        (count requests + distribution gathering).
    plan / level:
        Optional :class:`~repro.core.placement_plan.PlacementPlan` and
        the level's half-spacing exponent. When given, the per-pair law
        ``P^{delta/2}[p, *] * P^{delta/2}[*, q]`` comes from the plan's
        memo (computed there on first use) instead of being rebuilt per
        level -- bit-identical vectors, so sampled sequences match the
        planless path exactly for the same RNG state.
    contract:
        RNG contract. ``"v1"`` (default) draws one ``rng.choice`` per
        pair, byte-compatible with the seed implementation. ``"v2"``
        validates every pair's normalizer floor *first* (a
        :class:`~repro.errors.PrecisionError` fallback then leaves the
        generator untouched), draws one uniform block for the whole
        level, and resolves each pair by ``searchsorted`` against its
        cumulative law -- the same per-pair distribution from different
        generator bits.
    """

    def __init__(
        self,
        pair_counts: Mapping[Pair, int],
        half_power,
        rng: np.random.Generator,
        *,
        normalizer_floor: float = 0.0,
        clique: CongestedClique | None = None,
        leader: int = 0,
        plan=None,
        level: int | None = None,
        contract: str = "v1",
    ) -> None:
        self.pair_counts = dict(pair_counts)
        self.half_power = half_power
        self._sequences: dict[Pair, np.ndarray] = {}
        # (clique size, max pairs on one machine): a pure function of the
        # frozen pair_counts, memoized because the truncation search
        # recharges the aggregation once per probe.
        self._hosted_cache: tuple[int, int] | None = None
        n = half_power.shape[0]
        if clique is not None:
            max_hosted = self._max_hosted(clique.n)
            num_pairs = len(self.pair_counts)
            # Leader -> M_{p,q}: one count word per distinct pair.
            clique.charge_step(
                "midpoints/requests",
                num_pairs,
                max_hosted,
                total_words=num_pairs,
            )
            # Every machine j -> M_{p,q}: one probability word per pair per
            # machine (M_{p,q} needs the full length-n law for each pair it
            # hosts).
            clique.charge_step(
                "midpoints/distributions",
                num_pairs,
                max_hosted * clique.n,
                total_words=num_pairs * clique.n,
            )
        if contract == "v2":
            # Validate every pair's floor before any randomness is
            # consumed: the Section 5.2 fallback can then rerun the level
            # with the generator exactly where it started.
            pending: list[tuple[Pair, int, np.ndarray]] = []
            total_count = 0
            for pair, count in self.pair_counts.items():
                if count < 0:
                    raise WalkError(f"negative count for pair {pair}")
                p, q = pair
                if plan is not None and level is not None:
                    cdf, total = plan.cdf(level, p, q, half_power)
                else:
                    law = matrix_row(half_power, p) * matrix_col(
                        half_power, q
                    )
                    total = float(law.sum())
                    cdf = np.cumsum(law)
                if total <= normalizer_floor or total <= 0.0:
                    raise PrecisionError(
                        f"midpoint normalizer for pair {pair} is "
                        f"{total:.3e}, below the floor "
                        f"{normalizer_floor:.3e}"
                    )
                pending.append((pair, count, cdf))
                total_count += count
            block = rng.random(total_count) if total_count else None
            cursor = 0
            for pair, count, cdf in pending:
                uniforms = (
                    block[cursor:cursor + count]
                    if count
                    else np.empty(0, dtype=np.float64)
                )
                cursor += count
                draws = cdf.searchsorted(uniforms * cdf[-1], "right")
                self._sequences[pair] = np.minimum(
                    draws, n - 1
                ).astype(np.int64)
            return
        for pair, count in self.pair_counts.items():
            if count < 0:
                raise WalkError(f"negative count for pair {pair}")
            p, q = pair
            if plan is not None and level is not None:
                probabilities, total = plan.probabilities(
                    level, p, q, half_power
                )
            else:
                law = matrix_row(half_power, p) * matrix_col(half_power, q)
                total = float(law.sum())
                probabilities = None
            if total <= normalizer_floor or total <= 0.0:
                raise PrecisionError(
                    f"midpoint normalizer for pair {pair} is {total:.3e}, "
                    f"below the floor {normalizer_floor:.3e}"
                )
            if probabilities is None:
                probabilities = law / total
            self._sequences[pair] = rng.choice(
                n, size=count, p=probabilities
            ).astype(np.int64)

    @staticmethod
    def _machine_for(pair: Pair, n: int) -> int:
        """Deterministic machine assignment for M_{p,q} (accounting only)."""
        p, q = pair
        return (p * 131071 + q) % n

    def _max_hosted(self, n: int) -> int:
        """Most pairs hosted by any one machine (memoized accounting)."""
        if self._hosted_cache is None or self._hosted_cache[0] != n:
            hosted: Counter[int] = Counter(
                self._machine_for(pair, n) for pair in self.pair_counts
            )
            self._hosted_cache = (n, max(hosted.values(), default=0))
        return self._hosted_cache[1]

    # ------------------------------------------------------------------
    # Queries available to the leader
    # ------------------------------------------------------------------

    def sequence(self, pair: Pair) -> np.ndarray:
        """Full ``Pi_{p,q}`` -- used only by tests and the exact variant's
        per-pair multiset transmission (Appendix 5.3)."""
        return self._sequences[pair]

    def value_at(self, pair: Pair, occurrence: int) -> int:
        """``Pi_{p,q}[occurrence]``: the point query behind ``W^+[j]``."""
        sequence = self._sequences[pair]
        if not (0 <= occurrence < len(sequence)):
            raise WalkError(
                f"occurrence {occurrence} out of range for pair {pair} "
                f"(sequence length {len(sequence)})"
            )
        return int(sequence[occurrence])

    def truncated_counts(
        self, truncation: Mapping[Pair, int]
    ) -> Counter[int]:
        """``Count(j, l')`` aggregated over pairs: the multiset ``M``.

        ``truncation[pair]`` is ``c_{p,q}(l')``, the number of midpoints of
        that pair inside the truncated prefix.
        """
        counts: Counter[int] = Counter()
        for pair, upto in truncation.items():
            sequence = self._sequences.get(pair)
            if sequence is None:
                raise WalkError(f"unknown pair {pair}")
            if upto > len(sequence):
                raise WalkError(
                    f"truncated count {upto} exceeds sequence length "
                    f"{len(sequence)} for pair {pair}"
                )
            for value in sequence[:upto]:
                counts[int(value)] += 1
        return counts

    def distinct_in_prefix(
        self, truncation: Mapping[Pair, int]
    ) -> set[int]:
        """Distinct midpoint values within the truncated prefix."""
        values: set[int] = set()
        for pair, upto in truncation.items():
            sequence = self._sequences[pair]
            values.update(int(v) for v in sequence[:upto])
        return values

    def charge_aggregation(
        self, clique: CongestedClique | None, *, leader: int = 0
    ) -> None:
        """Charge the Count aggregation exchange (steps 2-3, Algorithm 3)."""
        if clique is None:
            return
        max_hosted = self._max_hosted(clique.n)
        # Step 2 of Algorithm 3: M_{p,q} sends Count(p, q, j, l') to every
        # machine j (n words per hosted pair); machine j receives one word
        # per pair.
        clique.charge_step(
            "truncation/aggregate",
            max_hosted * clique.n,
            len(self.pair_counts),
            total_words=len(self.pair_counts) * clique.n,
        )
        # Step 3: every machine j sends its aggregate Count(j, l') to M.
        clique.charge_step(
            "truncation/aggregate",
            1,
            clique.n,
            total_words=clique.n,
        )
