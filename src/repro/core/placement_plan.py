"""Per-phase batched placement plan (the walk layer's warm-path engine).

With phase numerics served from the tiered cache, the floor of a warm
draw is the walk itself -- and inside the walk, the placement machinery:
per-pair midpoint laws (Formula 1), the classified-bipartite weight
columns of Lemma 3, the contingency-DP forward/backward passes, and the
Algorithm 4 first-visit edge distributions. Every one of those is a
*deterministic* function of the phase's frozen numerics: only the final
sampling passes consume randomness. :class:`PlacementPlan` is the
per-phase memo that exploits this split:

- ``law(level, p, q, half_power)`` -- the unnormalized midpoint law
  ``P^{delta/2}[p, *] * P^{delta/2}[*, q]`` and its normalizer, computed
  once per (level, pair) and shared by every level fill, extension
  segment, and ensemble draw that meets the pair again. The cached
  vector is the bit-exact product the per-pair path computes, so
  consumers draw from byte-identical probabilities.
- ``prepared_dp(instance, implementation)`` -- the built (deterministic)
  half of the contingency DP, keyed by
  :func:`~repro.matching.sampler.instance_digest`; isomorphic
  :class:`~repro.matching.sampler.ClassifiedBipartite` instances across
  pairs and draws share one forward/backward pass and only rerun the
  randomness-consuming sampling pass. Reference builds share one
  plan-scope composition memo (the ``_compositions`` enumeration is the
  dominant pure-Python cost of the small-instance DP).
- ``first_visit(prev, v, compute)`` -- Algorithm 4's per-edge
  distribution over the candidate first-visit edges, a function of
  ``(G, S, prev, v)`` alone.

The v2 RNG contract (``rng_contract="v2"``) adds CDF companions to each
memo: ``cdf(level, p, q, half_power)`` is the cumulative sum of the
unnormalized law (consumers scale a uniform by ``cdf[-1]`` instead of
normalizing), ``first_visit_cdf`` and ``end_cdf`` do the same for
Algorithm 4 edges and the segment end-vertex law, and ``prepared_dp``
surfaces the evaluators' per-(column, state) CDF tables. CDFs are
deterministic functions of the laws they accompany, so they are
recomputed from the persisted laws on load rather than spilled --
except the contingency-DP tables of the hottest instances
(``DP_SEED_TOP_K`` by use count), which DO persist inside ``plan.npz``:
a restarted process then serves its first block draws straight from the
seeded memos, deferring each DP's forward/backward build until a state
miss (closing the first-draw-after-restart gap).

A plan belongs to one :class:`~repro.engine.cache.PhaseNumerics` entry
(same key: graph/config fingerprint + subset) and rides the derived-graph
cache with it -- in RAM by attachment, on disk as a ``plan.npz`` blob the
:class:`~repro.engine.store.DiskTier` republishes next to the numerics
blobs, so warm process restarts skip re-classification too. Prepared DP
objects are rebuilt per process (their layered state is not worth
spilling; the persisted laws and first-visit tables are the
re-classification cost a restart actually pays).

Capacity: each memo is a bounded LRU so adversarial workloads (huge
ensembles of fresh seeds over a huge graph) cannot grow a plan without
bound; inserting into a full memo displaces its least-recently-used
entry (counted in ``evicted``). Byte usage -- laws, first-visit tables,
and the prepared-DP scratch -- is reported through ``nbytes`` and
charged to the RAM tier's budget via
:meth:`~repro.engine.cache.PhaseNumerics.nbytes`; the engine re-measures
entries whose plans grew at the end of every run.

The plan NEVER caches sampled outcomes -- tables, assignments, edges and
trees are drawn fresh from the request's RNG on every use, which is what
keeps ``placement_mode="batched"`` byte-identical to the per-pair
reference path for the same seed (property-tested across every
registered family and both variants).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Mapping

import numpy as np

from repro.linalg.backend import matrix_col, matrix_row
from repro.matching.sampler import (
    ClassifiedBipartite,
    instance_digest,
    prepare_contingency_dp,
    restore_prepared_vectorized,
)

__all__ = ["PlacementPlan"]

# Version 2 adds the persisted contingency-DP CDF tables (dpk/dpc/dpa/dpf
# namespaces); version-1 blobs are still readable (they simply carry no
# DP seeds).
PLAN_FORMAT_VERSION = 2
_READABLE_FORMATS = (1, 2)

# How many instance digests' CDF tables ride along in plan.npz, ranked
# by prepared_dp use count. Each entry is a few KiB (per-state allocation
# matrices + cdf vectors), so the cap bounds blob growth while covering
# every digest a warm phase actually cycles through.
DP_SEED_TOP_K = 32


class PlacementPlan:
    """Memoized deterministic placement structure for one phase.

    Parameters bound the three memos (entries, not bytes -- law and
    first-visit entries are O(n) and O(degree) respectively, prepared
    DPs hold the layered state of one instance). Defaults comfortably
    hold every structure a warm-service phase at n ~ 1024 touches.
    """

    def __init__(
        self,
        *,
        max_laws: int = 8192,
        max_dps: int = 2048,
        max_first_visit: int = 32768,
        max_end_laws: int = 4096,
    ) -> None:
        self.max_laws = max_laws
        self.max_dps = max_dps
        self.max_first_visit = max_first_visit
        self.max_end_laws = max_end_laws
        self._laws: OrderedDict[
            tuple[int, int, int], tuple[np.ndarray, float]
        ] = OrderedDict()
        # Normalized companions of _laws entries, filled lazily on first
        # probability request (law / total, cached so repeat consumers
        # skip the O(n) divide; bit-equal to dividing fresh).
        self._probabilities: dict[tuple[int, int, int], np.ndarray] = {}
        # Cumulative companions of _laws entries (v2 contract): cumsum of
        # the unnormalized law, evicted together with the law.
        self._cdfs: dict[tuple[int, int, int], np.ndarray] = {}
        self._dps: OrderedDict[tuple[str, str], object] = OrderedDict()
        # Persisted-but-not-yet-rebuilt contingency-DP CDF tables, keyed
        # by instance digest (loaded from plan.npz; consumed lazily when
        # prepared_dp meets the digest), and per-digest use counters that
        # rank which tables are worth persisting.
        self._dp_seeds: dict[
            str, dict[tuple[int, int], tuple[np.ndarray, np.ndarray]]
        ] = {}
        self._dp_use: dict[str, int] = {}
        self._first_visit: OrderedDict[
            tuple[int, int], tuple[np.ndarray, np.ndarray]
        ] = OrderedDict()
        # CDF companions of _first_visit entries (v2 contract).
        self._first_visit_cdfs: dict[tuple[int, int], np.ndarray] = {}
        # Segment end-vertex CDFs keyed by start vertex (the ladder's top
        # power is fixed per plan, so the key needs nothing else). Not
        # persisted: one O(n) cumsum per start vertex per process.
        self._end_cdfs: OrderedDict[int, np.ndarray] = OrderedDict()
        # Plan-scope composition memo shared by every reference DP build
        # (the _compositions enumeration repeats across instances with
        # equal column sums and remaining-count vectors).
        self._comp_memo: dict = {}
        self.law_hits = 0
        self.law_misses = 0
        self.dp_hits = 0
        self.dp_misses = 0
        self.first_visit_hits = 0
        self.first_visit_misses = 0
        self.evicted = 0
        # True whenever the persistable part (laws / first-visit tables)
        # grew since the last spill; the engine writes dirty plans back
        # to the disk tier at the end of a run.
        self.dirty = False

    # -- midpoint laws ---------------------------------------------------

    def law(
        self, level: int, p: int, q: int, half_power
    ) -> tuple[np.ndarray, float]:
        """Unnormalized midpoint law for pair ``(p, q)`` at ``level``.

        ``level`` is the half-spacing exponent (``delta / 2``), which
        identifies the ladder power the law is computed from; the cached
        vector is exactly ``matrix_row(half_power, p) *
        matrix_col(half_power, q)`` with its sum, so hits are bit-equal
        to recomputation. Returns ``(law, total)``.
        """
        key = (level, p, q)
        hit = self._laws.get(key)
        if hit is not None:
            self._laws.move_to_end(key)
            self.law_hits += 1
            return hit
        self.law_misses += 1
        law = matrix_row(half_power, p) * matrix_col(half_power, q)
        total = float(law.sum())
        entry = (law, total)
        if len(self._laws) >= self.max_laws:
            evicted_key, __ = self._laws.popitem(last=False)
            self._probabilities.pop(evicted_key, None)
            self._cdfs.pop(evicted_key, None)
            self.evicted += 1
        self._laws[key] = entry
        self.dirty = True
        return entry

    def probabilities(
        self, level: int, p: int, q: int, half_power
    ) -> tuple[np.ndarray, float]:
        """The normalized midpoint law ``law / total`` (memoized divide).

        Returns ``(probabilities, total)`` -- total is still needed for
        the Section 5.2 normalizer-floor check. The cached vector is
        exactly what dividing the cached law by its cached total yields,
        so consumers see the planless bits.
        """
        key = (level, p, q)
        law, total = self.law(level, p, q, half_power)
        hit = self._probabilities.get(key)
        if hit is not None:
            return hit, total
        if total <= 0.0:  # let the caller raise its own error
            return law, total
        probabilities = law / total
        if key in self._laws:  # only cache alongside a resident law
            self._probabilities[key] = probabilities
        return probabilities, total

    def cdf(
        self, level: int, p: int, q: int, half_power
    ) -> tuple[np.ndarray, float]:
        """The cumulative midpoint law (v2 contract; memoized cumsum).

        Returns ``(cdf, total)`` where ``cdf`` is the cumsum of the
        *unnormalized* law -- v2 consumers draw by scaling a uniform with
        ``cdf[-1]``, so no normalizing divide ever runs -- and ``total``
        is the law's sum for the Section 5.2 floor check (identical
        float to what the v1 path checks).
        """
        key = (level, p, q)
        law, total = self.law(level, p, q, half_power)
        hit = self._cdfs.get(key)
        if hit is not None:
            return hit, total
        cdf = np.cumsum(law)
        if key in self._laws:  # only cache alongside a resident law
            self._cdfs[key] = cdf
        return cdf, total

    # -- segment end-vertex laws -----------------------------------------

    def end_cdf(self, start: int, top_power) -> np.ndarray:
        """Cumulative end-vertex law ``cumsum(P^ell[start, :])`` (v2).

        The ladder's top power is one matrix per plan (extensions reuse
        the nominal ell), so the memo keys on the start vertex alone.
        """
        hit = self._end_cdfs.get(start)
        if hit is not None:
            self._end_cdfs.move_to_end(start)
            return hit
        cdf = np.cumsum(matrix_row(top_power, start))
        if len(self._end_cdfs) >= self.max_end_laws:
            self._end_cdfs.popitem(last=False)
            self.evicted += 1
        self._end_cdfs[start] = cdf
        return cdf

    # -- prepared contingency DPs ----------------------------------------

    def prepared_dp(
        self, instance: ClassifiedBipartite, implementation: str = "auto"
    ):
        """The built contingency DP for ``instance`` (shared across draws).

        Keyed by the instance's content digest plus the requested
        evaluator, so isomorphic instances (equal counts and weights,
        any labels) resolve to one forward/backward pass. The returned
        object's ``sample(rng)`` is the only randomness-consuming step.
        """
        digest = instance_digest(instance)
        key = (digest, implementation)
        self._dp_use[digest] = self._dp_use.get(digest, 0) + 1
        hit = self._dps.get(key)
        if hit is not None:
            self._dps.move_to_end(key)
            self.dp_hits += 1
            if getattr(hit, "cdf_memo_dirty", False):
                # The evaluator grew its persisted-CDF memo since the
                # last spill; mark the plan so the engine writes the new
                # tables back to disk at the end of the run.
                self.dirty = True
            return hit
        self.dp_misses += 1
        prepared = None
        seed = self._dp_seeds.get(digest)
        if seed is not None:
            # A restarted process meets a digest whose CDF tables rode in
            # with plan.npz: serve block draws from the seeded memo and
            # defer the forward/backward build until a state miss.
            prepared = restore_prepared_vectorized(
                instance, seed, implementation=implementation
            )
            if prepared is not None:
                del self._dp_seeds[digest]
        if prepared is None:
            prepared = prepare_contingency_dp(
                instance,
                implementation=implementation,
                comp_memo=self._comp_memo,
            )
        if len(self._dps) >= self.max_dps:
            self._dps.popitem(last=False)
            self.evicted += 1
        self._dps[key] = prepared
        return prepared

    # -- first-visit edge distributions ----------------------------------

    def first_visit(
        self,
        prev: int,
        vertex: int,
        compute: Callable[[], tuple[np.ndarray, np.ndarray]],
    ) -> tuple[np.ndarray, np.ndarray]:
        """Algorithm 4's ``(neighbors, probabilities)`` for one new vertex.

        The distribution depends only on the phase's frozen ``(G, S)``
        and the (prev, vertex) walk step, so it is computed at most once
        per plan; ``compute`` supplies the cold evaluation.
        """
        key = (prev, vertex)
        hit = self._first_visit.get(key)
        if hit is not None:
            self._first_visit.move_to_end(key)
            self.first_visit_hits += 1
            return hit
        self.first_visit_misses += 1
        neighbors, probabilities = compute()
        entry = (np.asarray(neighbors), np.asarray(probabilities))
        if len(self._first_visit) >= self.max_first_visit:
            evicted_key, __ = self._first_visit.popitem(last=False)
            self._first_visit_cdfs.pop(evicted_key, None)
            self.evicted += 1
        self._first_visit[key] = entry
        self.dirty = True
        return entry

    def first_visit_cdf(
        self,
        prev: int,
        vertex: int,
        compute: Callable[[], tuple[np.ndarray, np.ndarray]],
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(neighbors, cdf)`` companion of :meth:`first_visit` (v2).

        The cdf is the cumsum of the cached probability vector; v2
        consumers scale their uniform by ``cdf[-1]`` (the probabilities
        Algorithm 4 computes already sum to ~1, but scaling keeps the
        draw exact under float round-off without a renormalizing pass).
        """
        key = (prev, vertex)
        neighbors, probabilities = self.first_visit(prev, vertex, compute)
        hit = self._first_visit_cdfs.get(key)
        if hit is not None:
            return neighbors, hit
        cdf = np.cumsum(probabilities)
        if key in self._first_visit:  # only cache alongside the entry
            self._first_visit_cdfs[key] = cdf
        return neighbors, cdf

    # -- introspection ---------------------------------------------------

    def nbytes(self) -> int:
        """Approximate bytes held by the memos (DP scratch included)."""
        total = 0
        for law, __ in self._laws.values():
            total += law.nbytes
        for probabilities in self._probabilities.values():
            total += probabilities.nbytes
        for cdf in self._cdfs.values():
            total += cdf.nbytes
        for neighbors, probabilities in self._first_visit.values():
            total += neighbors.nbytes + probabilities.nbytes
        for cdf in self._first_visit_cdfs.values():
            total += cdf.nbytes
        for cdf in self._end_cdfs.values():
            total += cdf.nbytes
        for prepared in self._dps.values():
            sizer = getattr(prepared, "nbytes", None)
            if callable(sizer):
                total += int(sizer())
        for seed in self._dp_seeds.values():
            for allocations, cdf in seed.values():
                total += allocations.nbytes + cdf.nbytes
        # Composition memo: tuples of small ints; ~16 bytes per count is
        # a serviceable order-of-magnitude charge.
        total += 16 * sum(
            len(comps) * (len(key[1]) + 1)
            for key, comps in self._comp_memo.items()
        )
        return total

    def stats(self) -> dict[str, int]:
        """Flat counters (wire-friendly ints)."""
        return {
            "laws": len(self._laws),
            "law_hits": self.law_hits,
            "law_misses": self.law_misses,
            "dps": len(self._dps),
            "dp_hits": self.dp_hits,
            "dp_misses": self.dp_misses,
            "first_visit": len(self._first_visit),
            "first_visit_hits": self.first_visit_hits,
            "first_visit_misses": self.first_visit_misses,
            "cdfs": len(self._cdfs) + len(self._first_visit_cdfs),
            "end_cdfs": len(self._end_cdfs),
            "dp_seeds": len(self._dp_seeds),
            "evicted": self.evicted,
            "bytes": int(self.nbytes()),
        }

    # -- persistence -----------------------------------------------------

    def _dp_seed_exports(
        self,
    ) -> dict[str, dict[tuple[int, int], tuple[np.ndarray, np.ndarray]]]:
        """Per-digest CDF tables worth persisting, top-K by use count.

        Candidates are live evaluators exposing a non-empty CDF memo
        (``export_cdf_entries``) plus still-unconsumed seeds loaded from
        a previous blob -- dropping the latter on re-export would lose a
        restart's head start for digests this process never happened to
        meet again.
        """
        candidates: dict[
            str, dict[tuple[int, int], tuple[np.ndarray, np.ndarray]]
        ] = {}
        for (digest, __), prepared in self._dps.items():
            exporter = getattr(prepared, "export_cdf_entries", None)
            if exporter is None or digest in candidates:
                continue
            entries = exporter()
            if entries:
                candidates[digest] = entries
        for digest, entries in self._dp_seeds.items():
            if digest not in candidates and entries:
                candidates[digest] = entries
        ranked = sorted(
            candidates,
            key=lambda digest: self._dp_use.get(digest, 0),
            reverse=True,
        )
        return {digest: candidates[digest] for digest in ranked[:DP_SEED_TOP_K]}

    def export_arrays(self) -> dict[str, np.ndarray]:
        """The persistable memos as flat named arrays (npz-ready).

        Prepared-DP layered state (forward/backward passes) is excluded
        -- it rebuilds from the persisted classification -- but the
        per-state CDF tables of the hottest digests ride along under the
        ``dpk/dpc/dpa/dpf`` namespaces: keys, per-state option counts,
        concatenated allocation rows, concatenated cdf values. Exporting
        clears the evaluators' dirty flags so an unchanged steady state
        is not respilled every run.
        """
        arrays: dict[str, np.ndarray] = {
            "plan_format": np.asarray([PLAN_FORMAT_VERSION], dtype=np.int64)
        }
        for (level, p, q), (law, __) in self._laws.items():
            arrays[f"law/{level}/{p}/{q}"] = np.ascontiguousarray(law)
        for (prev, vertex), (neighbors, probabilities) in (
            self._first_visit.items()
        ):
            arrays[f"fvn/{prev}/{vertex}"] = neighbors
            arrays[f"fvp/{prev}/{vertex}"] = probabilities
        for digest, entries in self._dp_seed_exports().items():
            keys = np.asarray(sorted(entries), dtype=np.int64).reshape(-1, 2)
            counts = []
            allocation_blocks = []
            cdf_blocks = []
            for col_index, code in keys:
                allocations, cdf = entries[(int(col_index), int(code))]
                counts.append(allocations.shape[0])
                allocation_blocks.append(
                    np.ascontiguousarray(allocations, dtype=np.int64)
                )
                cdf_blocks.append(np.ascontiguousarray(cdf, dtype=np.float64))
            arrays[f"dpk/{digest}"] = keys
            arrays[f"dpc/{digest}"] = np.asarray(counts, dtype=np.int64)
            arrays[f"dpa/{digest}"] = np.concatenate(allocation_blocks, axis=0)
            arrays[f"dpf/{digest}"] = np.concatenate(cdf_blocks)
        for prepared in self._dps.values():
            if getattr(prepared, "cdf_memo_dirty", False):
                prepared.cdf_memo_dirty = False
        return arrays

    @classmethod
    def from_arrays(cls, arrays: Mapping[str, np.ndarray]) -> "PlacementPlan":
        """Rebuild a plan from :meth:`export_arrays` output.

        Totals are recomputed from the loaded law vectors (same bits,
        same sum); unknown formats or malformed names raise ``ValueError``
        so the store can treat a bad blob as absent.
        """
        version = np.asarray(arrays["plan_format"]).ravel()
        if version.shape[0] != 1 or int(version[0]) not in _READABLE_FORMATS:
            raise ValueError(f"unsupported plan format {version!r}")
        plan = cls()
        pending_fv: dict[tuple[int, int], dict[str, np.ndarray]] = {}
        pending_dp: dict[str, dict[str, np.ndarray]] = {}
        for name, value in arrays.items():
            if name == "plan_format":
                continue
            kind, *parts = name.split("/")
            if kind == "law":
                level, p, q = (int(x) for x in parts)
                law = np.asarray(value, dtype=np.float64)
                plan._laws[(level, p, q)] = (law, float(law.sum()))
            elif kind in ("fvn", "fvp"):
                prev, vertex = (int(x) for x in parts)
                pending_fv.setdefault((prev, vertex), {})[kind] = value
            elif kind in ("dpk", "dpc", "dpa", "dpf"):
                if len(parts) != 1:
                    raise ValueError(f"unknown plan array {name!r}")
                pending_dp.setdefault(parts[0], {})[kind] = value
            else:
                raise ValueError(f"unknown plan array {name!r}")
        for key, pair in pending_fv.items():
            if "fvn" not in pair or "fvp" not in pair:
                raise ValueError(f"half a first-visit record for {key}")
            plan._first_visit[key] = (
                np.asarray(pair["fvn"]),
                np.asarray(pair["fvp"], dtype=np.float64),
            )
        for digest, record in pending_dp.items():
            if set(record) != {"dpk", "dpc", "dpa", "dpf"}:
                raise ValueError(f"partial dp-seed record for {digest!r}")
            keys = np.asarray(record["dpk"], dtype=np.int64).reshape(-1, 2)
            counts = np.asarray(record["dpc"], dtype=np.int64).ravel()
            allocations = np.asarray(record["dpa"], dtype=np.int64)
            cdfs = np.asarray(record["dpf"], dtype=np.float64).ravel()
            if keys.shape[0] != counts.shape[0]:
                raise ValueError(f"dp-seed key/count mismatch for {digest!r}")
            total = int(counts.sum())
            if (
                np.any(counts <= 0)
                or allocations.ndim != 2
                or allocations.shape[0] != total
                or cdfs.shape[0] != total
            ):
                raise ValueError(f"dp-seed block mismatch for {digest!r}")
            entries: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {}
            offset = 0
            for (col_index, code), count in zip(keys, counts):
                stop = offset + int(count)
                entries[(int(col_index), int(code))] = (
                    allocations[offset:stop],
                    cdfs[offset:stop],
                )
                offset = stop
            plan._dp_seeds[digest] = entries
        return plan
