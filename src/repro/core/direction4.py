"""Direction 4: the conceptually simpler doubling-phase sampler.

Section 1.4's fourth improvement direction: Theorem 2 builds a length-n
walk in polylog rounds, and Barnes-Feige [8] guarantees such a walk
visits Omega(n^{1/3}) distinct vertices on *unweighted* graphs -- so one
could hope to cover the graph in O(n^{2/3}) phases of "take a length-n
doubling walk on the Schur complement, record first-visit edges, recurse
on the unvisited part". The paper does not pursue this because (a) the
Barnes-Feige bound is not known for the weighted Schur complements that
appear after phase 1, and (b) even if it held, the resulting
O~(n^{2/3} + n^{2/3} n^alpha) rounds would be worse than Theorem 1.

We implement it anyway, as the paper's proposed future-work algorithm:
it is a correct sampler regardless (every phase walk is a genuine stopped
walk, so Aldous-Broder first-visit extraction stays exact) -- only its
*round complexity* is conjectural. The per-phase distinct-vertex counts
it reports are exactly the data point the paper says is missing (how
Barnes-Feige behaves on Schur complements); the E15 bench records them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.clique.network import CongestedClique
from repro.errors import GraphError, SamplingError
from repro.graphs.core import WeightedGraph
from repro.graphs.spanning import TreeKey, is_spanning_tree, tree_key
from repro.linalg.schur import schur_complement_graph
from repro.linalg.shortcut import (
    first_visit_edge_distribution,
    shortcut_transition_matrix,
)
from repro.walks.doubling import doubling_random_walk

__all__ = ["Direction4Result", "Direction4Sampler"]


@dataclass
class Direction4Result:
    """Tree + the per-phase evidence Direction 4 asks about."""

    tree: TreeKey
    rounds: int
    phases: int
    distinct_per_phase: list[int] = field(default_factory=list)
    walk_length_per_phase: list[int] = field(default_factory=list)


class Direction4Sampler:
    """Spanning trees via per-phase length-Theta(n) doubling walks.

    Each phase:

    1. form the Schur complement of G onto the unvisited region (plus the
       current endpoint), exactly as the main sampler does;
    2. build a length-``walk_factor * n`` walk on it with the
       load-balanced doubling algorithm (Theorem 2);
    3. harvest first-visit edges through the shortcut graph (Algorithm 4)
       and continue from the walk's endpoint.

    Correctness matches the main sampler (stopped walks + Aldous-Broder);
    only the *phase count* is heuristic. ``distinct_per_phase`` lets the
    caller check the Barnes-Feige n^{1/3} floor empirically on the
    weighted Schur complements where no bound is proven.
    """

    def __init__(
        self,
        graph: WeightedGraph,
        *,
        walk_factor: float = 1.0,
        start_vertex: int = 0,
        rng_contract: str = "v2",
    ) -> None:
        graph.require_connected()
        if graph.n < 2:
            raise GraphError("sampling needs at least 2 vertices")
        if walk_factor <= 0:
            raise GraphError("walk_factor must be positive")
        if not (0 <= start_vertex < graph.n):
            raise GraphError(f"start vertex {start_vertex} out of range")
        if rng_contract not in ("v2", "v1"):
            raise GraphError(f"unknown rng contract {rng_contract!r}")
        self.graph = graph
        self.walk_factor = walk_factor
        self.start_vertex = start_vertex
        self.rng_contract = rng_contract

    def sample(self, rng: np.random.Generator | None = None) -> Direction4Result:
        """Sample one spanning tree; phases are capped at 4n as a guard."""
        rng = np.random.default_rng(rng)
        graph = self.graph
        n = graph.n
        clique = CongestedClique(n)
        ledger = clique.ledger
        walk_length = max(2, int(math.ceil(self.walk_factor * n)))

        visited = {self.start_vertex}
        current = self.start_vertex
        edges: list[tuple[int, int]] = []
        distinct_per_phase: list[int] = []
        walk_lengths: list[int] = []
        phases = 0
        while len(visited) < n:
            phases += 1
            if phases > 4 * n:
                raise SamplingError("Direction 4 sampler exceeded 4n phases")
            subset = sorted((set(range(n)) - visited) | {current})
            with ledger.section(f"phase-{phases}"):
                shortcut = shortcut_transition_matrix(graph, subset)
                if len(subset) == n:
                    phase_graph = graph
                    order = list(range(n))
                else:
                    phase_graph, order = schur_complement_graph(graph, subset)
                    # Section 2.4 charge for the derived graphs.
                    ledger.charge_matmul(
                        2 * n, count=max(1, math.ceil(math.log2(n**3))),
                        note="derived graphs",
                    )
                index_of = {v: i for i, v in enumerate(order)}
                if phase_graph.n == 2:
                    # Doubling needs a non-trivial graph; a 2-vertex Schur
                    # complement has a forced walk.
                    local_walk = [index_of[current], 1 - index_of[current]]
                else:
                    result = doubling_random_walk(
                        phase_graph, walk_length, rng, clique=clique,
                        rng_contract=self.rng_contract,
                    )
                    local_walk = result.walk(index_of[current])
                walk_orig = [order[i] for i in local_walk]
                seen = {walk_orig[0]}
                steps: list[tuple[int, int]] = []
                for position in range(1, len(walk_orig)):
                    v = walk_orig[position]
                    if v in seen:
                        continue
                    seen.add(v)
                    steps.append((walk_orig[position - 1], v))
                if self.rng_contract == "v2" and steps:
                    # Block contract: one uniform vector covers every
                    # first-visit edge the phase harvests.
                    uniforms = rng.random(len(steps))
                    for (prev, v), uniform in zip(steps, uniforms):
                        neighbors, law = first_visit_edge_distribution(
                            graph, subset, shortcut, prev, v
                        )
                        cdf = np.cumsum(law)
                        index = int(
                            cdf.searchsorted(uniform * cdf[-1], "right")
                        )
                        u = int(neighbors[min(index, len(cdf) - 1)])
                        edges.append((u, v))
                else:
                    for prev, v in steps:
                        neighbors, law = first_visit_edge_distribution(
                            graph, subset, shortcut, prev, v
                        )
                        u = int(
                            neighbors[int(rng.choice(len(neighbors), p=law))]
                        )
                        edges.append((u, v))
                distinct_per_phase.append(len(seen))
                walk_lengths.append(len(walk_orig) - 1)
                visited.update(walk_orig)
                current = walk_orig[-1]

        if len(edges) != n - 1 or not is_spanning_tree(graph, edges):
            raise SamplingError(
                "Direction 4 sampler produced an invalid tree; this is a bug"
            )  # pragma: no cover
        return Direction4Result(
            tree=tree_key(edges),
            rounds=ledger.total_rounds(),
            phases=phases,
            distinct_per_phase=distinct_per_phase,
            walk_length_per_phase=walk_lengths,
        )
