"""Distributed binary search for the truncation point (Algorithm 3).

After level i's midpoints are generated (held by the ``M_{p,q}`` machines),
the leader must truncate the conceptual filled-in walk ``W^+_i`` at the
first occurrence of its rho-th distinct vertex -- *without ever receiving
the midpoint sequences*. ``CheckTruncationPoint(l')`` answers "is ``l' <=
l_{i+1}``?" from aggregate counts only:

- ``Dist``: distinct vertices in ``W^+_i[0, l']`` (old walk vertices in
  the prefix plus midpoint values with positive truncated counts);
- ``CountLast``: occurrences of the prefix's final vertex.

The predicate ``(Dist < rho) or (Dist == rho and CountLast == 1)`` is
*monotone* in ``l'`` (true up to the first occurrence of the rho-th
distinct vertex, false after), so O(log ell) probes of binary search find
the truncation point exactly. See :class:`LevelView` for the index
arithmetic between the spacing-delta walk ``W_i`` and the spacing-delta/2
walk ``W^+_i``.
"""

from __future__ import annotations

from collections import Counter

from repro.clique.network import CongestedClique
from repro.core.midpoints import MidpointBank, Pair
from repro.errors import WalkError
from repro.walks.fill import PartialWalk

__all__ = [
    "LevelView",
    "check_truncation_point",
    "find_truncation_index",
    "find_truncation_index_fast",
]


class LevelView:
    """Index arithmetic over the conceptual filled walk ``W^+_i``.

    ``W_i`` has ``L + 1`` filled vertices at spacing delta. With one
    midpoint per gap, ``W^+_i`` has ``2L + 1`` positions at spacing
    delta/2, indexed here by *position number* ``t`` (the walk index is
    ``t * delta / 2``):

    - even ``t = 2j``: the old vertex ``W_i[j]``;
    - odd ``t = 2g + 1``: the midpoint of gap ``g`` (between ``W_i[g]``
      and ``W_i[g+1]``), which is entry ``occurrence(g)`` of the sequence
      ``Pi_{pair(g)}`` -- the gap's rank among gaps with the same pair, in
      chronological order (that is how M_{p,q} interprets its sequence).
    """

    def __init__(self, walk: PartialWalk, bank: MidpointBank) -> None:
        self.walk = walk
        self.bank = bank
        self.num_gaps = len(walk.vertices) - 1
        self.top = 2 * self.num_gaps  # largest position number
        self._pair_of_gap: list[Pair] = []
        self._occurrence_of_gap: list[int] = []
        running: Counter[Pair] = Counter()
        for p, q in walk.pairs():
            pair = (p, q)
            self._pair_of_gap.append(pair)
            self._occurrence_of_gap.append(running[pair])
            running[pair] += 1

    # -- structure queries ------------------------------------------------

    def pair_of_gap(self, gap: int) -> Pair:
        return self._pair_of_gap[gap]

    def value_at(self, t: int) -> int:
        """``W^+_i[t]`` -- an O(1)-round point query in the real protocol."""
        if not (0 <= t <= self.top):
            raise WalkError(f"position {t} outside [0, {self.top}]")
        if t % 2 == 0:
            return self.walk.vertices[t // 2]
        gap = (t - 1) // 2
        return self.bank.value_at(self._pair_of_gap[gap], self._occurrence_of_gap[gap])

    def truncated_pair_counts(self, t: int) -> dict[Pair, int]:
        """``c_{p,q}(l')``: midpoints of each pair at positions <= ``t``.

        Gap ``g``'s midpoint sits at position ``2g + 1``, so gaps
        ``0 .. floor((t - 1) / 2)`` are included.
        """
        included_gaps = min(self.num_gaps, (t + 1) // 2)
        counts: Counter[Pair] = Counter()
        for gap in range(included_gaps):
            counts[self._pair_of_gap[gap]] += 1
        return dict(counts)

    def midpoint_positions_upto(self, t: int) -> list[int]:
        """Odd positions <= t (the midpoint positions in the prefix)."""
        return list(range(1, t + 1, 2))


def check_truncation_point(
    view: LevelView,
    t: int,
    rho: int,
    *,
    clique: CongestedClique | None = None,
) -> bool:
    """Algorithm 3: True iff position ``t`` is at or before the truncation point.

    Evaluates ``Dist`` and ``CountLast`` over the prefix ``W^+_i[0..t]``
    exactly as the distributed protocol would (old-walk distinct vertices
    are known to the leader; midpoint counts arrive via the Count
    aggregation, charged on ``clique``).
    """
    truncated = view.truncated_pair_counts(t)
    view.bank.charge_aggregation(clique)
    old_prefix = view.walk.vertices[: t // 2 + 1]
    distinct = set(old_prefix) | view.bank.distinct_in_prefix(truncated)
    if len(distinct) > rho:
        return False
    if len(distinct) < rho:
        return True
    # Exactly rho distinct: accept only if the final vertex appears once
    # (i.e. the prefix ends at the first occurrence of the rho-th vertex).
    last = view.value_at(t)
    occurrences = sum(1 for v in old_prefix if v == last)
    occurrences += view.bank.truncated_counts(truncated)[last]
    return occurrences == 1


def find_truncation_index(
    view: LevelView,
    rho: int,
    *,
    clique: CongestedClique | None = None,
) -> int:
    """Binary search for the truncation position ``t*`` (leader side).

    Returns the largest position ``t`` with ``CheckTruncationPoint(t)``
    true: the first occurrence of the rho-th distinct vertex when the
    filled walk reaches rho distinct vertices, else the final position
    (no truncation).
    """
    if rho < 2:
        raise WalkError(f"rho must be >= 2 for truncation search, got {rho}")
    low, high = 0, view.top
    if check_truncation_point(view, high, rho, clique=clique):
        return high
    # Invariant: predicate(low) is True, predicate(high) is False.
    while high - low > 1:
        mid = (low + high) // 2
        if check_truncation_point(view, mid, rho, clique=clique):
            low = mid
        else:
            high = mid
    return low


def find_truncation_index_fast(
    view: LevelView,
    rho: int,
    *,
    clique: CongestedClique | None = None,
) -> int:
    """Simulator fast path for Algorithm 3 (batched placement mode).

    The simulator holds every midpoint sequence, so the truncation point
    -- the first occurrence of the rho-th distinct vertex in ``W^+_i``,
    or the final position when the quota is never reached -- can be read
    off a single chronological scan instead of evaluating the aggregate
    ``Dist``/``CountLast`` predicate per probe. The *protocol* is
    unchanged: the leader still runs the binary search, so this replays
    exactly the probe sequence the search would issue against the
    monotone predicate ``t <= t*`` and charges each probe's Count
    aggregation -- byte-identical result AND round ledger to
    :func:`find_truncation_index` (property-tested). No randomness is
    involved either way.
    """
    if rho < 2:
        raise WalkError(f"rho must be >= 2 for truncation search, got {rho}")
    top = view.top
    t_star = top
    seen: set[int] = set()
    for t in range(top + 1):
        vertex = view.value_at(t)
        if vertex not in seen:
            seen.add(vertex)
            if len(seen) == rho:
                t_star = t
                break
    # Probe replay: one aggregation for the initial check at `top` ...
    view.bank.charge_aggregation(clique)
    if t_star == top:
        return top
    # ... then one per bisection step, mirroring the search loop (its
    # iteration count depends only on `top`, its probes only on the
    # predicate, which is `mid <= t_star` by monotonicity).
    low, high = 0, top
    while high - low > 1:
        mid = (low + high) // 2
        view.bank.charge_aggregation(clique)
        if mid <= t_star:
            low = mid
        else:
            high = mid
    return low
