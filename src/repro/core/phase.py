"""One phase of the distributed sampler (Outline 3, steps 1-5).

A phase builds a random walk on the current phase graph (G itself in phase
1, ``Schur(G, S)`` afterwards) that stops at the first visit to its
``rho_eff``-th distinct vertex, using the distributed top-down machinery:

    for each level (spacing delta -> delta/2):
        Algorithm 2: leader requests midpoints; M_{p,q} machines sample
                     the sequences Pi_{p,q}                 (midpoints.py)
        Algorithm 3: distributed binary search truncation  (truncation.py)
        Lemmas 3-4:  multiset collection + matching placement
                                                           (placement.py)

Failure handling follows Appendix 5.1: when a nominal-length walk falls
short of its quota, the walk is *extended* from its endpoint with a fresh
fill (a stopping-time concatenation, so the output law is untouched); with
``on_failure="error"`` the Monte-Carlo failure surfaces as an exception.

The Section 5.2 precision guard is also wired here: a midpoint normalizer
below the configured floor aborts the distributed fill, charges the
"collect the whole network at the leader" cost (O(n) rounds), and finishes
the segment with the sequential exact filler -- the appendix's brute-force
fallback.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.clique.network import CongestedClique
from repro.core.config import SamplerConfig
from repro.core.midpoints import MidpointBank
from repro.core.placement import place_by_pair_multisets, place_midpoints
from repro.core.truncation import (
    LevelView,
    find_truncation_index,
    find_truncation_index_fast,
)
from repro.errors import PrecisionError, SamplingError
from repro.linalg.backend import matrix_row
from repro.linalg.matpow import PowerLadder
from repro.walks.fill import PartialWalk, _fill_level, _truncate_at_distinct

__all__ = ["PhaseStats", "run_phase_walk"]


@dataclass
class PhaseStats:
    """Per-phase diagnostics surfaced to benchmarks."""

    subset_size: int
    rho_eff: int
    walk_length: int = 0
    distinct_visited: int = 0
    levels: int = 0
    extensions: int = 0
    brute_force_fallbacks: int = 0
    new_vertices: list[int] = field(default_factory=list)

    def to_dict(self) -> dict:
        """JSON-serializable wire form."""
        return {
            "subset_size": int(self.subset_size),
            "rho_eff": int(self.rho_eff),
            "walk_length": int(self.walk_length),
            "distinct_visited": int(self.distinct_visited),
            "levels": int(self.levels),
            "extensions": int(self.extensions),
            "brute_force_fallbacks": int(self.brute_force_fallbacks),
            "new_vertices": [int(v) for v in self.new_vertices],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "PhaseStats":
        """Rebuild phase diagnostics from :meth:`to_dict` output."""
        return cls(**payload)


def _segment_fill(
    ladder: PowerLadder,
    start: int,
    rho_seg: int,
    config: SamplerConfig,
    rng: np.random.Generator,
    clique: CongestedClique | None,
    stats: PhaseStats,
    *,
    exact_placement: bool,
    plan=None,
    contract: str = "v1",
) -> list[int]:
    """One distributed truncated fill of nominal length ``ladder.ell``.

    Returns the walk segment (ends at its rho_seg-th distinct vertex, or
    at index ell when the quota was not reached).
    """
    n = ladder.power(1).shape[0]
    ell = ladder.ell
    if contract == "v2":
        # Block contract: one uniform against the memoized cumulative
        # end law (extensions revisit start vertices across draws).
        if plan is not None:
            end_cdf = plan.end_cdf(start, ladder.power(ell))
        else:
            end_cdf = np.cumsum(matrix_row(ladder.power(ell), start))
        end = int(end_cdf.searchsorted(rng.random() * end_cdf[-1], "right"))
        end = min(end, n - 1)
    else:
        end_law = matrix_row(ladder.power(ell), start)
        end = int(rng.choice(n, p=end_law / end_law.sum()))
    if clique is not None:
        # Algorithm 1 step 4: the leader samples W[ell] from its own row.
        clique.charge_step("init/sample-end", 1, 1, total_words=1)
    walk = _truncate_at_distinct(PartialWalk(ell, [start, end]), rho_seg)
    floor = config.normalizer_floor(n)
    while not walk.is_complete:
        half = walk.spacing // 2
        half_power = ladder.power(half)
        pair_counts: dict[tuple[int, int], int] = {}
        for pair in walk.pairs():
            pair_counts[pair] = pair_counts.get(pair, 0) + 1
        try:
            bank = MidpointBank(
                pair_counts, half_power, rng,
                normalizer_floor=floor, clique=clique,
                plan=plan, level=half, contract=contract,
            )
        except PrecisionError:
            # Section 5.2 fallback: collect the network at the leader
            # (O(n) rounds) and finish the fill sequentially and exactly.
            stats.brute_force_fallbacks += 1
            if clique is not None:
                clique.charge_step(
                    "fallback/collect-network", n * n, n * n,
                    total_words=n * n,
                )
            while not walk.is_complete:
                fill_half = walk.spacing // 2
                walk = _fill_level(
                    walk, ladder.power(fill_half), rng,
                    plan=plan, level=fill_half, contract=contract,
                )
                walk = _truncate_at_distinct(walk, rho_seg)
            break
        view = LevelView(walk, bank)
        if plan is not None:
            # Batched mode: identical t* and identical probe charges via
            # the direct scan (the simulator holds every sequence).
            t_star = find_truncation_index_fast(view, rho_seg, clique=clique)
        else:
            t_star = find_truncation_index(view, rho_seg, clique=clique)
        if t_star == 0:
            raise SamplingError("truncation collapsed to the start vertex")
        if exact_placement:
            walk = place_by_pair_multisets(
                view, t_star, rng, clique=clique, contract=contract
            )
        else:
            walk = place_midpoints(
                view, t_star, half_power, rng,
                method=config.matching_method,
                mcmc_steps=config.mcmc_steps,
                clique=clique,
                plan=plan, level=half, contract=contract,
            )
        stats.levels += 1
    return list(walk.vertices)


def run_phase_walk(
    transition,
    start: int,
    rho_eff: int,
    config: SamplerConfig,
    rng: np.random.Generator,
    *,
    clique: CongestedClique | None = None,
    ladder: PowerLadder | None = None,
    exact_placement: bool = False,
    stats: PhaseStats | None = None,
    plan=None,
    contract: str = "v1",
) -> list[int]:
    """Sample a phase walk stopping at its rho_eff-th distinct vertex.

    ``transition`` is the phase graph's transition matrix (indices are
    phase-local), in whichever storage format the configured linalg
    backend produced -- dense ndarray or scipy CSR; the walk machinery
    only touches it through the format-agnostic accessors. Returns the
    walk as a list of phase-local vertex indices, guaranteed to end at
    the first occurrence of its rho_eff-th distinct vertex.

    ``plan`` optionally carries the phase's
    :class:`~repro.core.placement_plan.PlacementPlan`
    (``placement_mode="batched"``): midpoint laws and contingency-DP
    builds are then served from the plan's memos -- same bits, same RNG
    consumption, byte-identical walks. ``contract`` selects the RNG
    contract: ``"v1"`` keeps the per-decision bit-stream of the seed
    implementation, ``"v2"`` draws uniform blocks resolved against the
    plan's CDFs -- the identical walk law from different generator bits.
    """
    if stats is None:
        stats = PhaseStats(subset_size=transition.shape[0], rho_eff=rho_eff)
    if rho_eff < 2:
        raise SamplingError(f"rho_eff must be >= 2, got {rho_eff}")
    n = transition.shape[0]
    if ladder is None:
        ell = min(config.resolve_ell(n), 1 << 62)
        ladder = PowerLadder(
            transition, ell, bits=config.precision_bits,
            ledger=clique.ledger if clique is not None else None,
            note="phase power ladder",
        )

    walk = _segment_fill(
        ladder, start, rho_eff, config, rng, clique, stats,
        exact_placement=exact_placement, plan=plan, contract=contract,
    )
    seen = set(walk)
    extensions = 0
    while len(seen) < rho_eff:
        if config.on_failure == "error":
            raise SamplingError(
                f"phase walk visited only {len(seen)} of {rho_eff} required "
                "distinct vertices within its nominal length"
            )
        extensions += 1
        if extensions > config.max_extensions:
            raise SamplingError(
                f"phase walk still short of its quota after "
                f"{config.max_extensions} extensions"
            )
        # Appendix 5.1: continue from the current endpoint. The segment
        # quota only needs to cover the *remaining* new vertices (plus the
        # segment's own start); the cumulative scan below is what actually
        # stops the walk.
        remaining = rho_eff - len(seen)
        segment = _segment_fill(
            ladder, walk[-1], remaining + 1, config, rng, clique, stats,
            exact_placement=exact_placement, plan=plan, contract=contract,
        )
        walk.extend(segment[1:])
        seen = set(walk)

    # Cut the concatenated walk at the first occurrence of the cumulative
    # rho_eff-th distinct vertex (a stopping time; segments beyond it are
    # discarded).
    cumulative: set[int] = set()
    for index, vertex in enumerate(walk):
        if vertex not in cumulative:
            cumulative.add(vertex)
            if len(cumulative) == rho_eff:
                walk = walk[: index + 1]
                break
    stats.extensions = extensions
    stats.walk_length = len(walk) - 1
    stats.distinct_visited = len(set(walk))
    return walk
