"""Midpoint placement: multiset collection + matching sampling (Lemmas 3-4).

Once the truncation point ``t*`` is fixed, the leader must fill the
midpoint positions of the truncated prefix. Receiving the sequences
``Pi_{p,q}`` is bandwidth-infeasible, so (Section 2.1.3):

1. the *chronologically final* midpoint ``m_f`` is queried directly and
   pinned to its position (Lemma 4's correctness hinges on the prefix
   ending at the first occurrence of the rho-th distinct vertex);
2. the leader receives only the multiset ``M`` of midpoints and samples a
   weighted perfect matching of the bipartite graph B between
   ``M' = M \\ {m_f}`` and the non-final midpoint positions ``P'``,
   with edge weight ``P^{delta/2}[p, x] * P^{delta/2}[x, q]`` for a
   position between the pair (p, q). Lemma 3: matching weight is
   proportional to the probability of the induced placement.

:func:`place_midpoints` implements this with any of the configured
matching samplers; :func:`place_by_pair_multisets` implements the exact
variant's placement (Appendix 5.3), where each pair's multiset is shuffled
uniformly -- no matching sampler (and hence no sampling error) at all.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.clique.network import CongestedClique
from repro.core.midpoints import Pair
from repro.core.truncation import LevelView
from repro.errors import SamplingError, WalkError
from repro.linalg.backend import matrix_col, matrix_row
from repro.matching.sampler import (
    ClassifiedBipartite,
    expand_table_to_assignment,
    sample_assignment_by_classes,
    sample_matching_exact,
    sample_matching_mcmc,
)
from repro.walks.fill import PartialWalk

__all__ = ["place_midpoints", "place_by_pair_multisets"]


def _charge_submatrix(clique: CongestedClique | None, distinct: int) -> None:
    """Leader broadcasts S (O(sqrt n) words) and receives the needed
    |S| x |S| submatrix of the half power (O(n) words) -- Section 2.1.3's
    'this can be done in O(1) rounds'."""
    if clique is None:
        return
    clique.broadcast(0, None, words=max(1, distinct), category="placement/broadcast-S")
    clique.charge_step(
        "placement/submatrix",
        max(1, distinct),
        max(1, distinct * distinct),
        total_words=max(1, distinct * distinct),
    )


_DP_STATE_BUDGET = 2_000_000


def _dp_cost_estimate(multiset: Counter, positions: list[int]) -> float:
    """Upper bound on the contingency-DP state space x column classes."""
    states = 1.0
    for count in multiset.values():
        states *= count + 1
        if states > 1e18:
            break
    return states * max(1, len(positions))


def _final_midpoint_position(t_star: int) -> int:
    """Largest odd (midpoint) position <= t*; the final midpoint's slot."""
    if t_star < 1:
        raise WalkError("truncated prefix contains no midpoint position")
    return t_star if t_star % 2 == 1 else t_star - 1


def _assemble(
    view: LevelView,
    t_star: int,
    placed: dict[int, int],
) -> PartialWalk:
    """Build W_{i+1} from old vertices and the placed midpoints."""
    vertices: list[int] = []
    for t in range(t_star + 1):
        if t % 2 == 0:
            vertices.append(view.walk.vertices[t // 2])
        else:
            vertices.append(placed[t])
    new_spacing = view.walk.spacing // 2
    if new_spacing < 1:
        raise WalkError("cannot halve spacing below 1")
    return PartialWalk(new_spacing, vertices)


def place_midpoints(
    view: LevelView,
    t_star: int,
    half_power,
    rng: np.random.Generator,
    *,
    method: str = "exact-dp",
    mcmc_steps: int | None = None,
    clique: CongestedClique | None = None,
    plan=None,
    level: int | None = None,
    contract: str = "v1",
) -> PartialWalk:
    """Sample the placement of the collected multiset (Section 2.1.3).

    Returns the next partial walk ``W_{i+1}`` (spacing halved, truncated
    at ``t*``). ``method`` selects the matching sampler; ``"mcmc"`` starts
    its chain from the *true* placement (known to the simulator), which
    guarantees a feasible positive-weight initial state -- and, since
    that state is itself distributed per the target law given the
    multiset, leaves the chain stationary from step 0: the simulated
    MCMC path is statistically exact at any proposal budget. (A real
    deployment starts cold and needs the Lemma 4 budget; cold-start
    mixing is what the matching-sampler unit tests exercise.)

    ``plan``/``level`` activate the batched engine
    (:class:`~repro.core.placement_plan.PlacementPlan`): weight columns
    come from the plan's per-(level, pair) law memo, the position ->
    column-class assignment uses a hoisted index map instead of repeated
    list searches, and the exact-DP samplers reuse the plan's prepared
    forward/backward passes for isomorphic instances. Every cached value
    is bit-equal to what the per-pair path computes and the RNG is
    consumed in the same order, so trees are byte-identical either way.
    """
    bank = view.bank
    truncated = view.truncated_pair_counts(t_star)
    t_final = _final_midpoint_position(t_star)
    final_value = view.value_at(t_final)  # O(1)-round point query
    if clique is not None:
        clique.charge_step("placement/final-midpoint", 1, 1, total_words=1)

    multiset = bank.truncated_counts(truncated)
    if multiset[final_value] < 1:
        raise SamplingError("final midpoint missing from collected multiset")
    multiset[final_value] -= 1
    multiset = +multiset  # drop zero entries

    positions = [t for t in view.midpoint_positions_upto(t_star) if t != t_final]
    if sum(multiset.values()) != len(positions):
        raise SamplingError(
            f"multiset size {sum(multiset.values())} != "
            f"{len(positions)} open positions"
        )

    placed: dict[int, int] = {t_final: final_value}
    if positions and _dp_cost_estimate(multiset, positions) > _DP_STATE_BUDGET:
        # The class DP is polynomial in the class *counts* but its state
        # space is the product of per-class multiplicities, which explodes
        # for very long truncated walks (huge multisets over few values).
        # Fall back to the appendix's per-pair multiset placement, which
        # resamples the same conditional law exactly (both are exact
        # resamplings of the true placement; see Appendix 5.3).
        return place_by_pair_multisets(
            view, t_star, rng, clique=clique, contract=contract
        )
    if positions:
        pair_for_position = {
            t: view.pair_of_gap((t - 1) // 2) for t in positions
        }
        col_classes: list[Pair] = sorted(set(pair_for_position.values()))
        col_counts = Counter(pair_for_position.values())
        row_labels = sorted(multiset)
        # One column per (p, q) class, filled from the backend-format
        # half power via whole-row/column extraction (works for dense
        # and CSR alike; entry values match scalar indexing exactly).
        labels_arr = np.asarray(row_labels, dtype=np.intp)
        weights = np.empty((len(row_labels), len(col_classes)))
        batched = plan is not None and level is not None
        for c, (p, q) in enumerate(col_classes):
            if batched:
                # The memoized full law restricted to the multiset's
                # labels: gather-after-multiply equals the per-pair
                # multiply-after-gather entry for entry.
                law, __ = plan.law(level, p, q, half_power)
                weights[:, c] = law[labels_arr]
            else:
                from_p = matrix_row(half_power, p)
                into_q = matrix_col(half_power, q)
                weights[:, c] = from_p[labels_arr] * into_q[labels_arr]
        instance = ClassifiedBipartite(
            row_labels=tuple(row_labels),
            row_counts=tuple(multiset[x] for x in row_labels),
            col_labels=tuple(col_classes),
            col_counts=tuple(col_counts[c] for c in col_classes),
            class_weights=weights,
        )
        distinct = len(set(view.walk.vertices[: t_star // 2 + 1]))
        distinct += len(row_labels) + 1
        _charge_submatrix(clique, distinct)
        per_class = _sample_assignment(
            instance, view, positions, pair_for_position, rng,
            method=method, mcmc_steps=mcmc_steps,
            plan=plan if batched else None, contract=contract,
        )
        # Hand the sampled labels to positions class by class, in
        # chronological order within each class.
        class_index_of = {pair: c for c, pair in enumerate(col_classes)}
        cursor = {c: 0 for c in col_classes}
        for t in positions:
            pair = pair_for_position[t]
            labels = per_class[class_index_of[pair]]
            placed[t] = int(labels[cursor[pair]])
            cursor[pair] += 1
    return _assemble(view, t_star, placed)


def _sample_assignment(
    instance: ClassifiedBipartite,
    view: LevelView,
    positions: list[int],
    pair_for_position: dict[int, Pair],
    rng: np.random.Generator,
    *,
    method: str,
    mcmc_steps: int | None,
    plan=None,
    contract: str = "v1",
) -> list[list[int]]:
    """Dispatch to the configured matching sampler; returns per-column-class
    label lists (chronological within class)."""
    if method == "exact-permanent" and instance.size > 16:
        # Ryser permanents are exponential in the instance size; beyond
        # ~16 midpoints switch to the class DP, which samples the exact
        # same law in polynomial time.
        method = "exact-dp"
    if method in ("exact-dp", "exact-dp-reference"):
        implementation = (
            "reference" if method == "exact-dp-reference" else "auto"
        )
        if plan is not None:
            # Batched engine: the deterministic DP build is shared across
            # isomorphic instances via the plan; only the sampling pass
            # (and the uniform within-class expansion) consumes the rng,
            # in exactly the per-instance order of the planless path.
            prepared = plan.prepared_dp(instance, implementation)
            if not prepared.consumes_rng:
                table = prepared.sample()
            elif contract == "v2":
                # Block contract: one uniform vector per table draw,
                # resolved column by column against the prepared CDFs.
                table = prepared.sample_block(rng)
            else:
                table = prepared.sample(rng)
            return [
                [int(x) for x in labels]
                for labels in expand_table_to_assignment(
                    instance, table, rng, rng_contract=contract
                )
            ]
        return [
            [int(x) for x in labels]
            for labels in sample_assignment_by_classes(
                instance, rng, implementation=implementation
            )
        ]
    # The expanded-matrix samplers need explicit row/column expansions.
    expanded = instance.expanded_weights()
    col_classes = list(instance.col_labels)
    expanded_rows: list[int] = []
    for label, count in zip(instance.row_labels, instance.row_counts):
        expanded_rows.extend([int(label)] * count)
    expanded_cols: list[Pair] = []
    for label, count in zip(instance.col_labels, instance.col_counts):
        expanded_cols.extend([label] * count)

    if method == "exact-permanent":
        assignment = sample_matching_exact(expanded, rng)
    elif method == "mcmc":
        initial = _true_initial_permutation(
            view, positions, pair_for_position, expanded_rows, expanded_cols
        )
        assignment = sample_matching_mcmc(
            expanded, steps=mcmc_steps, rng=rng, initial=initial
        )
    else:
        raise SamplingError(f"unknown matching method {method!r}")

    per_class: list[list[int]] = [[] for _ in col_classes]
    # assignment[i] = column of expanded row i; invert to column -> label.
    label_of_column = {col: expanded_rows[row] for row, col in enumerate(assignment)}
    for col_index, pair in enumerate(expanded_cols):
        per_class[col_classes.index(pair)].append(label_of_column[col_index])
    return per_class


def _true_initial_permutation(
    view: LevelView,
    positions: list[int],
    pair_for_position: dict[int, Pair],
    expanded_rows: list[int],
    expanded_cols: list[Pair],
) -> list[int]:
    """The placement actually generated by the Pi sequences, expressed as a
    permutation of the expanded instance (a guaranteed-feasible MCMC start)."""
    # True label of each expanded column, in expanded-column order.
    class_streams: dict[Pair, list[int]] = {}
    for t in positions:
        class_streams.setdefault(pair_for_position[t], []).append(
            view.value_at(t)
        )
    cursors = {pair: 0 for pair in class_streams}
    true_labels: list[int] = []
    for pair in expanded_cols:
        stream = class_streams[pair]
        true_labels.append(stream[cursors[pair]])
        cursors[pair] += 1
    # Greedily match expanded rows (by label) to columns needing that label.
    waiting: dict[int, list[int]] = {}
    for col, label in enumerate(true_labels):
        waiting.setdefault(label, []).append(col)
    permutation: list[int] = []
    for label in expanded_rows:
        queue = waiting.get(label)
        if not queue:
            raise SamplingError(
                "true placement inconsistent with collected multiset"
            )
        permutation.append(queue.pop())
    return permutation


def place_by_pair_multisets(
    view: LevelView,
    t_star: int,
    rng: np.random.Generator,
    *,
    clique: CongestedClique | None = None,
    contract: str = "v1",
) -> PartialWalk:
    """Appendix 5.3 placement: per-pair multisets, uniform shuffles.

    Every ``M_{p,q}`` sends the *multiset* of its truncated sequence
    (Theta(rho) words each; with rho = n^(1/3) the leader receives
    O(n^{2/3} * n^{1/3}) = O(n) words, O(1) rounds). Midpoints of a pair
    are exchangeable, so placing a uniformly random permutation of each
    pair's multiset is exact -- with the chronologically final midpoint
    pinned, as always.
    """
    bank = view.bank
    truncated = view.truncated_pair_counts(t_star)
    t_final = _final_midpoint_position(t_star)
    final_value = view.value_at(t_final)
    final_pair = view.pair_of_gap((t_final - 1) // 2)
    if clique is not None:
        clique.charge_step("placement/final-midpoint", 1, 1, total_words=1)
        words = sum(truncated.values()) + len(truncated)
        clique.charge_step(
            "placement/pair-multisets",
            max(1, max(truncated.values(), default=1)),
            max(1, words),
            total_words=max(1, words),
        )

    placed: dict[int, int] = {t_final: final_value}
    per_pair_positions: dict[Pair, list[int]] = {}
    for t in view.midpoint_positions_upto(t_star):
        if t == t_final:
            continue
        per_pair_positions.setdefault(view.pair_of_gap((t - 1) // 2), []).append(t)

    pending: list[tuple[list[int], list[int]]] = []
    total_values = 0
    for pair, upto in truncated.items():
        values = [int(v) for v in bank.sequence(pair)[:upto]]
        if pair == final_pair:
            values.remove(final_value)
        slots = per_pair_positions.get(pair, [])
        if len(values) != len(slots):
            raise SamplingError(
                f"pair {pair}: {len(values)} midpoints for {len(slots)} slots"
            )
        pending.append((values, slots))
        total_values += len(values)
    if contract == "v2":
        # One uniform block for the level; argsorting a pair's slice of
        # iid uniform keys is a uniform permutation (ties have measure
        # zero), so each pair's multiset shuffle stays exact.
        block = rng.random(total_values)
        cursor = 0
        for values, slots in pending:
            order = np.argsort(block[cursor:cursor + len(values)])
            cursor += len(values)
            for slot, index in zip(slots, order):
                placed[slot] = values[int(index)]
    else:
        for values, slots in pending:
            order = rng.permutation(len(values))
            for slot, index in zip(slots, order):
                placed[slot] = values[int(index)]
    return _assemble(view, t_star, placed)
