"""The sublinear-round CongestedClique spanning-tree sampler (Theorem 1).

:class:`CongestedCliqueTreeSampler` orchestrates the full algorithm:

    phase k (Outline 3):
      1. S := unvisited vertices + the previous phase's final vertex
      2. compute Schur(G, S) and ShortCut(G, S) transition matrices
         (Section 2.4; O~(n^alpha) rounds each, charged analytically)
      3. power ladder S, S^2, ..., S^ell (Lemma 7)
      4. distributed truncated walk on Schur(G, S) visiting
         rho_eff = min(rho, |S|) distinct vertices (Sections 2.1.3)
      5. Algorithm 4: sample each newly visited vertex's first-visit edge
         in G via the shortcut matrix + Bayes' rule

    after O(sqrt(n)) phases every vertex has a first-visit edge; those
    edges form the sampled spanning tree (Aldous-Broder).

``variant="exact"`` switches to the appendix algorithm: ``rho =
floor(n^(1/3))``, per-pair multiset placement (no matching sampler, no
sampling error), and the Section 5.2 precision guard with brute-force
fallback -- at the appendix's O~(n^{2/3 + alpha}) round cost.

All communication is charged to a :class:`~repro.clique.cost.RoundLedger`
through a :class:`~repro.clique.network.CongestedClique`; benchmarks read
phase-resolved round counts off the result.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Literal

import numpy as np

from repro.clique.cost import RoundLedger
from repro.clique.network import CongestedClique
from repro.core.config import SamplerConfig
from repro.core.phase import PhaseStats, run_phase_walk
from repro.errors import GraphError, SamplingError
from repro.graphs.core import WeightedGraph
from repro.graphs.spanning import TreeKey, is_spanning_tree, tree_key
from repro.linalg.matpow import PowerLadder
from repro.linalg.schur import schur_transition_matrix, schur_via_qr_product
from repro.linalg.shortcut import (
    first_visit_edge_distribution,
    shortcut_transition_matrix,
    shortcut_via_power_iteration,
)

__all__ = ["SampleResult", "CongestedCliqueTreeSampler", "sample_spanning_tree"]

Variant = Literal["approximate", "exact"]


@dataclass
class SampleResult:
    """A sampled spanning tree plus full execution diagnostics."""

    tree: TreeKey
    rounds: int
    phases: int
    ledger: RoundLedger
    phase_stats: list[PhaseStats] = field(default_factory=list)
    clique_stats: dict = field(default_factory=dict)

    def rounds_by_category(self) -> dict[str, int]:
        return self.ledger.rounds_by_category()


class CongestedCliqueTreeSampler:
    """Sampler for (approximately) uniform spanning trees in the clique.

    Parameters
    ----------
    graph:
        Connected input graph. Unweighted graphs yield the uniform
        distribution over spanning trees; positive-integer-weighted graphs
        (footnote 1) yield trees with probability proportional to the
        product of edge weights.
    config:
        Algorithm knobs; see :class:`~repro.core.config.SamplerConfig`.
    variant:
        ``"approximate"`` -- Theorem 1, rho = floor(sqrt(n)), matching-
        based placement; ``"exact"`` -- Appendix 5, rho = floor(n^(1/3)),
        per-pair multiset placement.
    """

    def __init__(
        self,
        graph: WeightedGraph,
        config: SamplerConfig | None = None,
        *,
        variant: Variant = "approximate",
    ) -> None:
        graph.require_connected()
        if graph.n < 2:
            raise GraphError("sampling needs at least 2 vertices")
        if variant not in ("approximate", "exact"):
            raise GraphError(f"unknown variant {variant!r}")
        self.graph = graph
        self.config = config if config is not None else SamplerConfig()
        self.variant = variant
        if not (0 <= self.config.start_vertex < graph.n):
            raise GraphError(
                f"start vertex {self.config.start_vertex} out of range"
            )
        # Phase 1 always runs on G itself, so its power ladder is
        # identical across samples; cache the numerics (each sample still
        # pays the full analytic round charge -- rounds are per-run in
        # the model). Only safe with the analytic matmul backend, where
        # charges don't depend on performing the multiplications.
        self._phase1_ladder: PowerLadder | None = None

    # ------------------------------------------------------------------

    def sample(self, rng: np.random.Generator | None = None) -> SampleResult:
        """Sample one spanning tree; returns tree + diagnostics."""
        rng = np.random.default_rng(rng)
        graph = self.graph
        n = graph.n
        config = self.config
        clique = CongestedClique(n)
        ledger = clique.ledger
        exact = self.variant == "exact"
        rho = config.resolve_rho(n, exact_variant=exact)
        ell = config.resolve_ell(n)

        visited: set[int] = {config.start_vertex}
        current = config.start_vertex
        tree_edges: list[tuple[int, int]] = []
        phase_stats: list[PhaseStats] = []
        max_phases = 4 * n + 8

        phase_index = 0
        while len(visited) < n:
            phase_index += 1
            if phase_index > max_phases:
                raise SamplingError(
                    f"exceeded {max_phases} phases; sampler is stuck"
                )
            subset = sorted((set(range(n)) - visited) | {current})
            with ledger.section(f"phase-{phase_index}"):
                new_edges, walk_orig, stats = self._run_phase(
                    subset, current, rho, ell, rng, clique
                )
            tree_edges.extend(new_edges)
            visited.update(walk_orig)
            current = walk_orig[-1]
            phase_stats.append(stats)

        if len(tree_edges) != n - 1 or not is_spanning_tree(graph, tree_edges):
            raise SamplingError(
                "sampler produced an invalid spanning tree; this is a bug"
            )  # pragma: no cover
        return SampleResult(
            tree=tree_key(tree_edges),
            rounds=ledger.total_rounds(),
            phases=phase_index,
            ledger=ledger,
            phase_stats=phase_stats,
            clique_stats=clique.stats(),
        )

    def sample_tree(self, rng: np.random.Generator | None = None) -> TreeKey:
        """Just the tree (convenience wrapper around :meth:`sample`)."""
        return self.sample(rng).tree

    def sample_many(
        self, count: int, rng: np.random.Generator | None = None
    ) -> list[SampleResult]:
        """Draw ``count`` independent trees, reusing cached numerics.

        Each draw is a fully independent run of the algorithm (own clique,
        own ledger, full per-run round charges); only the phase-1 power
        ladder's floating-point work is shared, since phase 1 always runs
        on G itself.
        """
        if count < 1:
            raise GraphError(f"count must be >= 1, got {count}")
        rng = np.random.default_rng(rng)
        return [self.sample(rng) for _ in range(count)]

    def sample_trees(
        self, count: int, rng: np.random.Generator | None = None
    ) -> list[TreeKey]:
        """``count`` trees (diagnostics discarded)."""
        return [result.tree for result in self.sample_many(count, rng)]

    # ------------------------------------------------------------------

    def _run_phase(
        self,
        subset: list[int],
        start: int,
        rho: int,
        ell: int,
        rng: np.random.Generator,
        clique: CongestedClique,
    ) -> tuple[list[tuple[int, int]], list[int], PhaseStats]:
        """Execute one phase; returns (first-visit edges, walk, stats)."""
        graph = self.graph
        n = graph.n
        config = self.config
        ledger = clique.ledger
        is_phase_one = len(subset) == n

        # --- Step 2 of Outline 3: derived graphs (Section 2.4). ---------
        shortcut = self._compute_shortcut(subset, is_phase_one, ledger)
        if is_phase_one:
            transition = graph.transition_matrix().copy()
            order = list(range(n))
        else:
            transition, order = self._compute_schur(subset, shortcut, ledger)
        index_of = {v: i for i, v in enumerate(order)}

        # --- Steps 3-5: power ladder + distributed truncated walk. ------
        rho_eff = min(rho, len(subset))
        backend = None
        if config.matmul_backend == "simulated-3d":
            from repro.clique.matmul3d import SimulatedMatmul

            backend = SimulatedMatmul(transition.shape[0], ledger=ledger)
        cacheable = is_phase_one and backend is None
        if cacheable and self._phase1_ladder is not None:
            ladder = self._phase1_ladder
            # Numerics are reused; the model's rounds are not.
            entry_words = (
                None
                if config.precision_bits is None
                else max(
                    1,
                    math.ceil(
                        config.precision_bits / math.log2(max(n, 2))
                    ),
                )
            )
            ledger.charge_matmul(
                n,
                count=max(1, math.ceil(math.log2(ell))),
                entry_words=entry_words,
                note="phase ladder (cached numerics)",
            )
        else:
            ladder = PowerLadder(
                transition, ell, bits=config.precision_bits, ledger=ledger,
                matmul=backend, note="phase ladder",
            )
            if cacheable:
                self._phase1_ladder = ladder
        stats = PhaseStats(subset_size=len(subset), rho_eff=rho_eff)
        local_walk = run_phase_walk(
            transition,
            index_of[start],
            rho_eff,
            config,
            rng,
            clique=clique,
            ladder=ladder,
            exact_placement=(self.variant == "exact"),
            stats=stats,
        )
        walk_orig = [order[i] for i in local_walk]

        # --- Step 6: first-visit edges via ShortCut(G, S) (Algorithm 4).
        edges: list[tuple[int, int]] = []
        seen = {walk_orig[0]}
        for position in range(1, len(walk_orig)):
            v = walk_orig[position]
            if v in seen:
                continue
            seen.add(v)
            prev = walk_orig[position - 1]
            neighbors, probabilities = first_visit_edge_distribution(
                graph, subset, shortcut, prev, v
            )
            u = int(neighbors[int(rng.choice(len(neighbors), p=probabilities))])
            edges.append((u, v))
            stats.new_vertices.append(v)
        # Algorithm 4's communication: O(1) rounds for the whole phase
        # (each new vertex's machine gathers its neighbors' Q-entries).
        clique.charge_step(
            "first-visit-edges",
            n,
            n,
            total_words=len(edges) * 2 + n,
        )
        return edges, walk_orig, stats

    # ------------------------------------------------------------------

    def _compute_shortcut(
        self, subset: list[int], is_phase_one: bool, ledger: RoundLedger
    ) -> np.ndarray:
        """ShortCut(G, S) transition matrix + its Corollary 2 round charge."""
        config = self.config
        beta = config.normalizer_floor(self.graph.n)
        if config.shortcut_method == "power-iteration":
            shortcut = shortcut_via_power_iteration(self.graph, subset, beta=beta)
        else:
            shortcut = shortcut_transition_matrix(self.graph, subset)
        if not is_phase_one:
            # Corollary 2: log(k) squarings of the 2n x 2n auxiliary chain.
            squarings = max(
                1,
                math.ceil(
                    math.log2(
                        max(2.0, self.graph.n ** 3 * math.log(1.0 / beta))
                    )
                ),
            )
            ledger.charge_matmul(
                2 * self.graph.n, count=squarings, note="shortcut graph"
            )
        return shortcut

    def _compute_schur(
        self,
        subset: list[int],
        shortcut: np.ndarray,
        ledger: RoundLedger,
    ) -> tuple[np.ndarray, list[int]]:
        """Schur(G, S) transition matrix + its Corollary 3 round charge."""
        if self.config.schur_method == "qr-product":
            transition, order = schur_via_qr_product(
                self.graph, subset, shortcut_matrix=shortcut
            )
        else:
            transition, order = schur_transition_matrix(self.graph, subset)
        # Corollary 3: one extra product (QR) on top of the shortcut work.
        ledger.charge_matmul(self.graph.n, count=1, note="schur graph")
        return transition, order


def sample_spanning_tree(
    graph: WeightedGraph,
    rng: np.random.Generator | int | None = None,
    *,
    config: SamplerConfig | None = None,
    variant: Variant = "approximate",
) -> TreeKey:
    """One-call convenience API: sample a spanning tree of ``graph``.

    Equivalent to constructing a
    :class:`CongestedCliqueTreeSampler` and calling :meth:`sample_tree`.
    """
    sampler = CongestedCliqueTreeSampler(graph, config, variant=variant)
    return sampler.sample_tree(np.random.default_rng(rng))
