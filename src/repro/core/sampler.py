"""The sublinear-round CongestedClique spanning-tree sampler (Theorem 1).

:class:`CongestedCliqueTreeSampler` is the stable public facade over the
execution engine (:class:`repro.engine.runner.SamplerEngine`), which runs
the full algorithm:

    phase k (Outline 3):
      1. S := unvisited vertices + the previous phase's final vertex
      2. compute Schur(G, S) and ShortCut(G, S) transition matrices
         (Section 2.4; O~(n^alpha) rounds each, charged analytically)
      3. power ladder S, S^2, ..., S^ell (Lemma 7)
      4. distributed truncated walk on Schur(G, S) visiting
         rho_eff = min(rho, |S|) distinct vertices (Sections 2.1.3)
      5. Algorithm 4: sample each newly visited vertex's first-visit edge
         in G via the shortcut matrix + Bayes' rule

    after O(sqrt(n)) phases every vertex has a first-visit edge; those
    edges form the sampled spanning tree (Aldous-Broder).

``variant="exact"`` switches to the appendix algorithm: ``rho =
floor(n^(1/3))``, per-pair multiset placement (no matching sampler, no
sampling error), and the Section 5.2 precision guard with brute-force
fallback -- at the appendix's O~(n^{2/3 + alpha}) round cost.

All communication is charged to a :class:`~repro.clique.cost.RoundLedger`
through a :class:`~repro.clique.network.CongestedClique`; benchmarks read
phase-resolved round counts off the result. Derived-graph numerics
(shortcut/Schur/power ladders) are memoized across draws by the engine's
:class:`~repro.engine.cache.DerivedGraphCache` -- each run still pays its
full per-run round charges, and batch workloads should prefer
:class:`~repro.engine.ensemble.EnsembleEngine` /
:func:`~repro.engine.ensemble.sample_tree_ensemble` for multi-process
fan-out.

New code should prefer the session layer (:class:`repro.api.Session` with
:class:`~repro.api.requests.SampleRequest` et al.): it shares the
derived-graph cache across variants, owns a reproducible RNG lineage, and
returns the serializable response envelope. The classes and functions
here remain supported as thin shims over the same
:class:`~repro.engine.runner.SamplerEngine`.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import SamplerConfig
from repro.engine.results import SampleResult
from repro.graphs.core import WeightedGraph
from repro.graphs.spanning import TreeKey

__all__ = ["SampleResult", "CongestedCliqueTreeSampler", "sample_spanning_tree"]

# Engine-driven variant names come from the repro.core.variants registry;
# the alias survives for type annotations in downstream code.
Variant = str


class CongestedCliqueTreeSampler:
    """Sampler for (approximately) uniform spanning trees in the clique.

    Parameters
    ----------
    graph:
        Connected input graph. Unweighted graphs yield the uniform
        distribution over spanning trees; positive-integer-weighted graphs
        (footnote 1) yield trees with probability proportional to the
        product of edge weights.
    config:
        Algorithm knobs; see :class:`~repro.core.config.SamplerConfig`.
    variant:
        Any engine-driven name from the :mod:`repro.core.variants`
        registry: ``"approximate"`` (Theorem 1, rho = floor(sqrt(n)),
        matching-based placement), ``"exact"`` (Appendix 5,
        rho = floor(n^(1/3)), per-pair multiset placement), or
        ``"broadcast"`` (Anari-Haqi, one full-cover phase billed in the
        Broadcast Congested Clique).
    """

    def __init__(
        self,
        graph: WeightedGraph,
        config: SamplerConfig | None = None,
        *,
        variant: Variant = "approximate",
    ) -> None:
        from repro.engine.runner import SamplerEngine

        self.engine = SamplerEngine(graph, config, variant=variant)
        self.graph = graph
        self.config = self.engine.config
        self.variant = variant

    # ------------------------------------------------------------------

    def sample(self, rng: np.random.Generator | None = None) -> SampleResult:
        """Sample one spanning tree; returns tree + diagnostics."""
        return self.engine.run(np.random.default_rng(rng))

    def sample_tree(self, rng: np.random.Generator | None = None) -> TreeKey:
        """Just the tree (convenience wrapper around :meth:`sample`)."""
        return self.sample(rng).tree

    def sample_many(
        self, count: int, rng: np.random.Generator | None = None
    ) -> list[SampleResult]:
        """Draw ``count`` independent trees, reusing cached numerics.

        Each draw is a fully independent run of the algorithm (own clique,
        own ledger, full per-run round charges); only the floating-point
        work of repeated derived graphs is shared through the engine's
        :class:`~repro.engine.cache.DerivedGraphCache`. Delegates to
        :meth:`repro.engine.ensemble.EnsembleEngine.run_sequential`; for
        seed-spawned, multi-process batches use
        :meth:`~repro.engine.ensemble.EnsembleEngine.sample_ensemble`.
        """
        from repro.engine.ensemble import EnsembleEngine

        return EnsembleEngine(self.engine).run_sequential(
            count, np.random.default_rng(rng)
        )

    def sample_trees(
        self, count: int, rng: np.random.Generator | None = None
    ) -> list[TreeKey]:
        """``count`` trees (diagnostics discarded)."""
        return [result.tree for result in self.sample_many(count, rng)]


def sample_spanning_tree(
    graph: WeightedGraph,
    rng: np.random.Generator | int | None = None,
    *,
    config: SamplerConfig | None = None,
    variant: Variant = "approximate",
) -> TreeKey:
    """One-call convenience API: sample a spanning tree of ``graph``.

    Equivalent to constructing a
    :class:`CongestedCliqueTreeSampler` and calling :meth:`sample_tree`.
    """
    sampler = CongestedCliqueTreeSampler(graph, config, variant=variant)
    return sampler.sample_tree(np.random.default_rng(rng))
