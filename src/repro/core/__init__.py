"""The paper's primary contribution: sublinear-round tree sampling.

Public entry points:

- :func:`~repro.core.sampler.sample_spanning_tree` /
  :class:`~repro.core.sampler.CongestedCliqueTreeSampler` -- Theorem 1's
  O~(n^{1/2 + alpha})-round approximate sampler;
- :class:`~repro.core.exact.ExactTreeSampler` -- the appendix's
  O~(n^{2/3 + alpha})-round exact sampler;
- :func:`~repro.core.fastcover.sample_tree_fast_cover` -- Corollary 1's
  O~(tau / n)-round sampler for small-cover-time graphs;
- :class:`~repro.core.config.SamplerConfig` -- every tunable;
- :mod:`repro.core.variants` -- the :class:`~repro.core.variants.VariantSpec`
  registry every layer derives its variant lists from (including the
  Anari-Haqi ``"broadcast"`` Broadcast Congested Clique sampler);
- :mod:`repro.core.rounds` -- the closed-form round bounds the
  benchmarks regress against.
"""

from repro.core.config import SamplerConfig
from repro.core.direction4 import Direction4Result, Direction4Sampler
from repro.core.placement_plan import PlacementPlan
from repro.core.exact import (
    ExactTreeSampler,
    exact_sample_with_diagnostics,
    sample_spanning_tree_exact,
)
from repro.core.fastcover import FastCoverResult, sample_tree_fast_cover
from repro.core.phase import PhaseStats, run_phase_walk
from repro.core.rounds import (
    broadcast_variant_rounds,
    corollary1_rounds,
    exact_variant_rounds,
    expected_phases,
    fitted_exponent,
    theorem1_rounds,
    theorem2_rounds,
)
from repro.core.variants import (
    BROADCAST_BANDWIDTH,
    VARIANTS,
    VariantSpec,
    engine_variant_names,
    ensemble_variant_names,
    get_variant,
    sample_variant_names,
    variant_names,
)
from repro.core.sampler import (
    CongestedCliqueTreeSampler,
    SampleResult,
    sample_spanning_tree,
)

__all__ = [
    "SamplerConfig",
    "Direction4Result",
    "Direction4Sampler",
    "PlacementPlan",
    "ExactTreeSampler",
    "exact_sample_with_diagnostics",
    "sample_spanning_tree_exact",
    "FastCoverResult",
    "sample_tree_fast_cover",
    "PhaseStats",
    "run_phase_walk",
    "BROADCAST_BANDWIDTH",
    "VARIANTS",
    "VariantSpec",
    "engine_variant_names",
    "ensemble_variant_names",
    "get_variant",
    "sample_variant_names",
    "variant_names",
    "broadcast_variant_rounds",
    "corollary1_rounds",
    "exact_variant_rounds",
    "expected_phases",
    "fitted_exponent",
    "theorem1_rounds",
    "theorem2_rounds",
    "CongestedCliqueTreeSampler",
    "SampleResult",
    "sample_spanning_tree",
]
