"""The variant registry: one source of truth for sampler dispatch.

Every layer that used to hardwire ``("approximate", "exact")`` -- the
engine's constructor check, ``resolve_rho``'s boolean, the request
classes' ``_*_VARIANTS`` tuples, the CLI's ``choices=[...]`` lists --
now derives its view from :data:`VARIANTS`. A :class:`VariantSpec`
records what actually distinguishes the samplers:

- **rho policy** -- the per-phase distinct-vertex quota as a function of
  n (``floor(sqrt n)`` for Theorem 1, ``floor(n^(1/3))`` for Appendix 5,
  the full vertex set for the broadcast sampler's single phase);
- **placement discipline** -- matching-based midpoints vs the appendix's
  per-pair multisets;
- **communication model** -- which bandwidth regime the round bill is
  honest in. ``"unicast"`` variants charge Lenzen-routed message loads
  (n words in and out per machine per round);  ``"broadcast"`` variants
  live in the Broadcast Congested Clique, where each machine broadcasts
  one word per round that *everyone* sees -- an aggregate budget of n
  words per round with no private lanes. Broadcast charges land in the
  dedicated :data:`BROADCAST_BANDWIDTH` ledger category so unicast and
  broadcast rounds are never summed as if they were the same resource;
- **driver shape** -- whether :class:`~repro.engine.runner.SamplerEngine`
  runs the variant (phase loop + derived-graph cache) or a standalone
  function does (fast-cover's doubling walks).

Registering a fourth variant means adding one :class:`VariantSpec` here;
request validation, session dispatch, CLI choices, and the service
envelope pick it up without edits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Literal

from repro.errors import ConfigError

__all__ = [
    "BROADCAST_BANDWIDTH",
    "VariantSpec",
    "VARIANTS",
    "get_variant",
    "variant_names",
    "sample_variant_names",
    "ensemble_variant_names",
    "engine_variant_names",
]

# The ledger category every Broadcast Congested Clique charge bills to.
# Deliberately distinct from the "broadcast" category that
# CongestedClique.broadcast() uses for *unicast-model* one-to-all sends:
# that is n-words-per-machine Lenzen bandwidth, this is the
# one-word-per-machine-seen-by-all budget of the broadcast model.
BROADCAST_BANDWIDTH = "broadcast-bandwidth"

CommModel = Literal["unicast", "broadcast"]
RhoPolicy = Literal["sqrt", "cbrt", "full"]


@dataclass(frozen=True)
class VariantSpec:
    """Everything the stack needs to know about one sampler variant.

    Attributes
    ----------
    name:
        The wire/CLI identifier (``variant="..."`` everywhere).
    description:
        One-line human summary (CLI help, round-bill tables).
    paper_ref:
        Which result the variant implements.
    rounds_formula:
        The headline O~ round bound, as prose for docs and reports.
    rho_policy:
        Per-phase distinct-vertex quota: ``"sqrt"`` = floor(sqrt(n)),
        ``"cbrt"`` = floor(n^(1/3)), ``"full"`` = n (the walk covers the
        whole vertex set in one phase).
    exact_placement:
        Appendix 5 per-pair multiset placement (no matching sampler, no
        distributional error) instead of Lemma 3-4 matching placement.
    comm_model:
        ``"unicast"`` (Lenzen-routed Congested Clique) or
        ``"broadcast"`` (Broadcast Congested Clique).
    bandwidth_category:
        Ledger category for model-specific bandwidth charges; ``None``
        for unicast variants (their steps carry per-step categories
        through the Lenzen conversion), :data:`BROADCAST_BANDWIDTH` for
        broadcast ones.
    engine_driven:
        True when :class:`~repro.engine.runner.SamplerEngine` runs the
        variant; False for standalone drivers (fast-cover).
    ensemble:
        True when :class:`~repro.engine.ensemble.EnsembleEngine` can fan
        the variant out across worker processes.
    """

    name: str
    description: str
    paper_ref: str
    rounds_formula: str
    rho_policy: RhoPolicy
    exact_placement: bool
    comm_model: CommModel
    bandwidth_category: str | None
    engine_driven: bool
    ensemble: bool

    def resolve_rho(self, n: int) -> int:
        """The variant's default per-phase distinct-vertex quota."""
        if self.rho_policy == "sqrt":
            return max(2, int(math.isqrt(n)))
        if self.rho_policy == "cbrt":
            return max(2, int(round(n ** (1.0 / 3.0))))
        return max(2, int(n))


VARIANTS: dict[str, VariantSpec] = {
    spec.name: spec
    for spec in [
        VariantSpec(
            name="approximate",
            description="Theorem 1: matching-based placement, TV <= eps",
            paper_ref="Pemmaraju-Roy-Sobel Theorem 1",
            rounds_formula="O~(n^{1/2+alpha})",
            rho_policy="sqrt",
            exact_placement=False,
            comm_model="unicast",
            bandwidth_category=None,
            engine_driven=True,
            ensemble=True,
        ),
        VariantSpec(
            name="exact",
            description="Appendix 5: per-pair multiset placement, zero error",
            paper_ref="Pemmaraju-Roy-Sobel Appendix 5",
            rounds_formula="O~(n^{2/3+alpha})",
            rho_policy="cbrt",
            exact_placement=True,
            comm_model="unicast",
            bandwidth_category=None,
            engine_driven=True,
            ensemble=True,
        ),
        VariantSpec(
            name="fastcover",
            description="Corollary 1: doubling walks for small cover time",
            paper_ref="Pemmaraju-Roy-Sobel Corollary 1",
            rounds_formula="O~(tau/n)",
            rho_policy="full",
            exact_placement=False,
            comm_model="unicast",
            bandwidth_category=None,
            engine_driven=False,
            ensemble=False,
        ),
        VariantSpec(
            name="broadcast",
            description=(
                "Anari-Haqi Broadcast Congested Clique sampler: one "
                "full-cover phase, polylog broadcast rounds"
            ),
            paper_ref="Anari-Haqi (arXiv:2603.25018)",
            rounds_formula="O~(log^4 n) broadcast rounds",
            rho_policy="full",
            exact_placement=False,
            comm_model="broadcast",
            bandwidth_category=BROADCAST_BANDWIDTH,
            engine_driven=True,
            ensemble=True,
        ),
    ]
}


def get_variant(name: str) -> VariantSpec:
    """Look up a variant spec; raises :class:`ConfigError` when unknown."""
    try:
        return VARIANTS[name]
    except KeyError:
        raise ConfigError(
            f"unknown variant {name!r}; choose from {variant_names()}"
        ) from None


def variant_names() -> tuple[str, ...]:
    """All registered variant names, in registration order."""
    return tuple(VARIANTS)


def sample_variant_names() -> tuple[str, ...]:
    """Variants a single-draw (sample) request may name: all of them."""
    return tuple(VARIANTS)


def ensemble_variant_names() -> tuple[str, ...]:
    """Variants the multi-process ensemble path can fan out."""
    return tuple(name for name, spec in VARIANTS.items() if spec.ensemble)


def engine_variant_names() -> tuple[str, ...]:
    """Variants driven by the phase-loop SamplerEngine."""
    return tuple(
        name for name, spec in VARIANTS.items() if spec.engine_driven
    )
