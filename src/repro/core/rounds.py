"""Closed-form round-complexity formulas (Theorem 1, Theorem 2, appendix).

These are the paper's headline bounds, expressed as concrete functions so
benchmarks can regress measured ledger totals against them. The ``O~``
constants are normalized to 1; scaling benches compare *exponents*, never
absolute values (see EXPERIMENTS.md).
"""

from __future__ import annotations

import math

from repro.clique.cost import ALPHA

__all__ = [
    "theorem1_rounds",
    "exact_variant_rounds",
    "broadcast_variant_rounds",
    "theorem2_rounds",
    "corollary1_rounds",
    "expected_phases",
    "fitted_exponent",
]


def theorem1_rounds(n: int, *, alpha: float = ALPHA, polylog: int = 2) -> float:
    """Theorem 1: ``O~(n^{1/2 + alpha})`` rounds.

    ``sqrt(n)`` phases, each dominated by ``O~(n^alpha)`` matrix
    multiplication work (Lemma 5); ``polylog`` is the bundled log factor
    (power ladder length x entry width).
    """
    return n ** (0.5 + alpha) * math.log2(max(n, 2)) ** polylog


def exact_variant_rounds(n: int, *, alpha: float = ALPHA, polylog: int = 2) -> float:
    """Appendix: ``O~(n^{2/3 + alpha})`` rounds for exact sampling."""
    return n ** (2.0 / 3.0 + alpha) * math.log2(max(n, 2)) ** polylog


def broadcast_variant_rounds(n: int, *, polylog: int = 4) -> float:
    """Anari-Haqi: ``O~(log^polylog n)`` Broadcast-CC rounds.

    One full-cover phase whose ladder costs ``O(log n)`` squarings of
    ``O(log^3 n)`` sketch rounds each (log^2 n sketch rounds x log n
    entry words), i.e. ``polylog = 4`` by default. The walk-layer
    collection terms are lower order once ``tau / n = O(log n)``.
    """
    return math.log2(max(n, 2)) ** polylog


def theorem2_rounds(n: int, tau: int) -> float:
    """Theorem 2: doubling-walk rounds for a length-tau walk.

    ``O((tau / n) log tau log n)`` when ``tau = Omega(n / log n)``, else
    ``O(log tau)``.
    """
    log_n = math.log2(max(n, 2))
    log_tau = math.log2(max(tau, 2))
    if tau >= n / log_n:
        return (tau / n) * log_tau * log_n
    return log_tau


def corollary1_rounds(n: int, tau: float) -> float:
    """Corollary 1: ``O~(tau / n)`` rounds for cover time tau."""
    log_n = math.log2(max(n, 2))
    return max(tau / n, 1.0) * log_n**2


def expected_phases(n: int, rho: int) -> float:
    """Phase-count estimate: each phase claims ``rho - 1`` new vertices."""
    return max(1.0, (n - 1) / max(rho - 1, 1))


def fitted_exponent(ns: list[int], values: list[float]) -> float:
    """Least-squares slope of log(values) against log(ns).

    The scaling benches report this fitted exponent next to the claimed
    one (0.5 + alpha for Theorem 1, 2/3 + alpha for the exact variant).
    """
    if len(ns) != len(values) or len(ns) < 2:
        raise ValueError("need at least two (n, value) points")
    xs = [math.log(float(x)) for x in ns]
    ys = [math.log(max(float(y), 1e-12)) for y in values]
    mean_x = sum(xs) / len(xs)
    mean_y = sum(ys) / len(ys)
    num = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    den = sum((x - mean_x) ** 2 for x in xs)
    if den == 0:
        raise ValueError("all n values identical")
    return num / den
