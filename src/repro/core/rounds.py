"""Closed-form round-complexity formulas (Theorem 1, Theorem 2, appendix).

These are the paper's headline bounds, expressed as concrete functions so
benchmarks can regress measured ledger totals against them. The ``O~``
constants are normalized to 1; scaling benches compare *exponents*, never
absolute values (see EXPERIMENTS.md).
"""

from __future__ import annotations

import math

from repro.clique.cost import ALPHA

__all__ = [
    "theorem1_rounds",
    "exact_variant_rounds",
    "broadcast_variant_rounds",
    "theorem2_rounds",
    "corollary1_rounds",
    "mst_kkt_rounds",
    "mst_node_cc_rounds",
    "expected_phases",
    "fitted_exponent",
]


def theorem1_rounds(n: int, *, alpha: float = ALPHA, polylog: int = 2) -> float:
    """Theorem 1: ``O~(n^{1/2 + alpha})`` rounds.

    ``sqrt(n)`` phases, each dominated by ``O~(n^alpha)`` matrix
    multiplication work (Lemma 5); ``polylog`` is the bundled log factor
    (power ladder length x entry width).
    """
    return n ** (0.5 + alpha) * math.log2(max(n, 2)) ** polylog


def exact_variant_rounds(n: int, *, alpha: float = ALPHA, polylog: int = 2) -> float:
    """Appendix: ``O~(n^{2/3 + alpha})`` rounds for exact sampling."""
    return n ** (2.0 / 3.0 + alpha) * math.log2(max(n, 2)) ** polylog


def broadcast_variant_rounds(n: int, *, polylog: int = 4) -> float:
    """Anari-Haqi: ``O~(log^polylog n)`` Broadcast-CC rounds.

    One full-cover phase whose ladder costs ``O(log n)`` squarings of
    ``O(log^3 n)`` sketch rounds each (log^2 n sketch rounds x log n
    entry words), i.e. ``polylog = 4`` by default. The walk-layer
    collection terms are lower order once ``tau / n = O(log n)``.
    """
    return math.log2(max(n, 2)) ** polylog


def mst_kkt_rounds(n: int, m: int, *, super_steps: int = 3) -> int:
    """KKT-style MST in O(1) Congested Clique rounds (arXiv:1707.08484).

    The O(1)-round algorithm alternates a constant number of
    sample-and-sparsify super-steps, each redistributing at most ``m``
    edges over the Lenzen fabric's ``n^2`` words-per-round aggregate
    budget (``ceil(2m / n^2)`` rounds, >= 1 -- constant, since
    ``m <= n(n-1)/2``), and finishes with two rounds announcing the
    component relabeling. Boruvka merges on the sparsified remainder
    resolve locally and bill nothing. Independent of n up to the
    edge-shipping constant -- the "O(1) rounds" line.
    """
    if n < 2 or m < 1:
        raise ValueError(f"need n >= 2 and m >= 1, got n={n}, m={m}")
    ship = max(1, math.ceil(2.0 * m / float(n) ** 2))
    return super_steps * ship + 2


def mst_node_cc_rounds(n: int, phases: int) -> int:
    """Sampling-based MSF in the Node Congested Clique (arXiv:1807.08738).

    The node-capacitated model gives every node O(log n) incident words
    per round, so component minima cannot be announced flat: each
    Boruvka phase aggregates its min-weight outgoing edges up an
    O(log n)-depth tree (``ceil(log2 n)`` rounds per phase), on top of a
    one-time KKT sampling step billed at ``2 ceil(log2 n)`` rounds.
    With ``phases = O(log n)`` this is the O(log^2 n) regime.
    """
    if n < 2 or phases < 0:
        raise ValueError(
            f"need n >= 2 and phases >= 0, got n={n}, phases={phases}"
        )
    log_n = max(1, math.ceil(math.log2(max(n, 2))))
    return phases * log_n + 2 * log_n


def theorem2_rounds(n: int, tau: int) -> float:
    """Theorem 2: doubling-walk rounds for a length-tau walk.

    ``O((tau / n) log tau log n)`` when ``tau = Omega(n / log n)``, else
    ``O(log tau)``.
    """
    log_n = math.log2(max(n, 2))
    log_tau = math.log2(max(tau, 2))
    if tau >= n / log_n:
        return (tau / n) * log_tau * log_n
    return log_tau


def corollary1_rounds(n: int, tau: float) -> float:
    """Corollary 1: ``O~(tau / n)`` rounds for cover time tau."""
    log_n = math.log2(max(n, 2))
    return max(tau / n, 1.0) * log_n**2


def expected_phases(n: int, rho: int) -> float:
    """Phase-count estimate: each phase claims ``rho - 1`` new vertices."""
    return max(1.0, (n - 1) / max(rho - 1, 1))


def fitted_exponent(ns: list[int], values: list[float]) -> float:
    """Least-squares slope of log(values) against log(ns).

    The scaling benches report this fitted exponent next to the claimed
    one (0.5 + alpha for Theorem 1, 2/3 + alpha for the exact variant).
    """
    if len(ns) != len(values) or len(ns) < 2:
        raise ValueError("need at least two (n, value) points")
    xs = [math.log(float(x)) for x in ns]
    ys = [math.log(max(float(y), 1e-12)) for y in values]
    mean_x = sum(xs) / len(xs)
    mean_y = sum(ys) / len(ys)
    num = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    den = sum((x - mean_x) ** 2 for x in xs)
    if den == 0:
        raise ValueError("all n values identical")
    return num / den
