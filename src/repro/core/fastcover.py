"""Fast sampling for small-cover-time graphs (Corollary 1).

For a graph with cover time tau, build a length-O~(tau) walk with the
load-balanced doubling algorithm (Theorem 2) and extract its first-visit
edges (Aldous-Broder). Total rounds: O~(tau / n) -- O(log^3 n) rounds for
the O(n log n)-cover-time families highlighted by the paper (expanders,
G(n, p) with p = Omega(log n / n), and the dense irregular
K_{n - sqrt(n), sqrt(n)}).

This module wraps :func:`repro.walks.doubling.spanning_tree_via_doubling`
with cover-time-aware walk-length selection and returns the same
diagnostics shape as the phase-based samplers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.clique.network import CongestedClique
from repro.errors import GraphError
from repro.graphs.core import WeightedGraph
from repro.graphs.covertime import cover_time_bound
from repro.graphs.spanning import TreeKey
from repro.walks.doubling import DoublingResult, spanning_tree_via_doubling

__all__ = ["FastCoverResult", "sample_tree_fast_cover"]


@dataclass
class FastCoverResult:
    """Tree + doubling diagnostics for the Corollary 1 sampler."""

    tree: TreeKey
    rounds: int
    walk_length: int
    cover_time_estimate: float
    doubling: DoublingResult


def sample_tree_fast_cover(
    graph: WeightedGraph,
    rng: np.random.Generator | int | None = None,
    *,
    walk_length: int | None = None,
    safety_factor: float = 4.0,
) -> FastCoverResult:
    """Corollary 1: sample a spanning tree in O~(tau / n) rounds.

    ``walk_length`` defaults to ``safety_factor`` times the Matthews
    cover-time bound; if the walk fails to cover, the underlying wrapper
    doubles the length and retries (Las Vegas), charging every attempt.
    """
    graph.require_connected()
    if graph.n < 2:
        raise GraphError("sampling needs at least 2 vertices")
    rng = np.random.default_rng(rng)
    cover_estimate = cover_time_bound(graph)
    if walk_length is None:
        walk_length = max(int(math.ceil(safety_factor * cover_estimate)), graph.n)
    clique = CongestedClique(graph.n)
    tree, doubling = spanning_tree_via_doubling(
        graph, rng, walk_length=walk_length, clique=clique
    )
    return FastCoverResult(
        tree=tree,
        rounds=doubling.rounds,
        walk_length=doubling.length,
        cover_time_estimate=cover_estimate,
        doubling=doubling,
    )
