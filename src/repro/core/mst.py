"""Distributed MST/MSF over seeded random edge weights.

The MST workload's engine: a simulated congested-clique Boruvka run
whose round bill is dispatched per :class:`~repro.core.workloads.
WorkloadRecipe` -- ``"kkt-o1"`` bills the KKT-style O(1)-round
Congested Clique algorithm (arXiv:1707.08484), ``"node-cc-msf"`` the
sampling-based Node Congested Clique MSF (arXiv:1807.08738). The merge
schedule itself is model-independent: every phase each component claims
its minimum outgoing edge under the ``(weight, edge index)`` total
order, which makes the forest unique and therefore edge-for-edge equal
to the sequential ``tie_break="index"`` Kruskal oracle
(:func:`repro.walks.sequential.kruskal_forest`) -- the equality
:meth:`repro.api.session.Session` gates every result on.

Ledger totals are pinned to the closed forms in :mod:`repro.core.rounds`
(``mst_kkt_rounds`` / ``mst_node_cc_rounds``) by construction; the
workload tests assert the identity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.clique.cost import CostModel, RoundLedger
from repro.core.workloads import WorkloadRecipe, get_workload
from repro.errors import ConfigError, GraphError
from repro.graphs.core import WeightedGraph
from repro.graphs.spanning import TreeKey, tree_key
from repro.walks.sequential import forest_weight

__all__ = [
    "DistributedMSTResult",
    "resolve_weights",
    "run_mst",
]

# Tie-prone instances quantize draws to multiples of 1/8: coarse enough
# to collide constantly, and exactly representable in binary so partial
# sums are order-independent (weight equality under ties stays exact).
_TIE_QUANTUM = 8.0


def resolve_weights(graph: WeightedGraph, mode: str, seed) -> np.ndarray:
    """Per-edge weights for one MST instance, in ``graph.edges()`` order.

    ``"random"`` draws i.i.d. uniform[0, 1) weights from
    ``np.random.default_rng(seed)`` -- with probability 1 all-distinct,
    so the MSF is unique outright. ``"tie-prone"`` quantizes the same
    draws to multiples of 1/8, deliberately forcing weight ties (the
    tie-handling tests' instance family). ``"graph"`` takes the graph's
    own edge weights and ignores the seed. The mode list is registered
    on the ``"mst"`` :class:`~repro.core.workloads.WorkloadSpec`.
    """
    modes = get_workload("mst").weight_modes
    if mode not in modes:
        raise ConfigError(f"unknown weight mode {mode!r}; choose from {modes}")
    edges = graph.edges()
    if not edges:
        raise GraphError("MST needs at least one edge")
    if mode == "graph":
        return np.array(
            [graph.weight(u, v) for u, v in edges], dtype=np.float64
        )
    draws = np.random.default_rng(seed).random(len(edges))
    if mode == "tie-prone":
        return np.floor(draws * _TIE_QUANTUM) / _TIE_QUANTUM
    return draws


@dataclass(frozen=True)
class DistributedMSTResult:
    """One distributed MSF: forest, canonical weight, phases, bill."""

    forest: TreeKey
    total_weight: float
    phases: int
    rounds: int
    ledger: RoundLedger


def _bill_kkt(ledger: RoundLedger, n: int, m: int, phases: int) -> None:
    """KKT O(1)-rounds bill: 3 sparsify super-steps + relabeling.

    Each super-step redistributes at most ``m`` edges over the Lenzen
    fabric's ``n^2`` words-per-round aggregate (``ceil(2m / n^2)``
    rounds, >= 1); Boruvka merges on the sparsified remainder resolve
    locally and bill nothing. Matches ``rounds.mst_kkt_rounds(n, m)``.
    """
    ship = max(1, math.ceil(2.0 * m / float(n) ** 2))
    for step in range(1, 4):
        with ledger.section(f"super-step-{step}"):
            ledger.charge("mst-sketch", ship, "sample-and-sparsify shipment")
    ledger.charge("mst-merge", 2, "component relabel announcement")


def _bill_node_cc(ledger: RoundLedger, n: int, m: int, phases: int) -> None:
    """Node-CC bill: one sampling step + per-phase aggregation trees.

    Every node has O(log n) incident words per round, so each Boruvka
    phase aggregates component minima up an O(log n)-depth tree; the
    one-time KKT sampling step costs ``2 ceil(log2 n)`` rounds. Matches
    ``rounds.mst_node_cc_rounds(n, phases)``.
    """
    log_n = max(1, math.ceil(math.log2(max(n, 2))))
    ledger.charge("mst-sampling", 2 * log_n, "KKT edge sampling")
    for phase in range(1, phases + 1):
        with ledger.section(f"phase-{phase}"):
            ledger.charge("mst-aggregation", log_n, "min-edge aggregation tree")


_BILLING = {
    "kkt-o1": _bill_kkt,
    "node-cc-msf": _bill_node_cc,
}


def run_mst(
    graph: WeightedGraph,
    *,
    recipe: WorkloadRecipe,
    weights: np.ndarray,
    model: CostModel | None = None,
) -> DistributedMSTResult:
    """Distributed Boruvka MSF billed under ``recipe``'s round model.

    The merge schedule runs phase-synchronously: each phase every
    component announces its minimum outgoing edge under the
    ``(weight, edge index)`` total order and all announced edges merge
    at once. The total order makes the forest unique, so the result is
    independent of the recipe -- recipes only change the *bill*.
    """
    graph.require_connected()
    edges = graph.edges()
    array = np.asarray(weights, dtype=np.float64)
    if array.shape != (len(edges),):
        raise ConfigError(
            f"need one weight per edge: expected shape ({len(edges)},), "
            f"got {array.shape}"
        )
    bill = _BILLING.get(recipe.name)
    if bill is None:
        raise ConfigError(
            f"recipe {recipe.name!r} has no registered billing model; "
            f"implemented: {tuple(sorted(_BILLING))}"
        )

    parent = list(range(graph.n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    chosen: list[int] = []
    phases = 0
    while len(chosen) < graph.n - 1:
        phases += 1
        best: dict[int, tuple[float, int]] = {}
        for i, (u, v) in enumerate(edges):
            ru, rv = find(u), find(v)
            if ru == rv:
                continue
            candidate = (float(array[i]), i)
            for root in (ru, rv):
                if root not in best or candidate < best[root]:
                    best[root] = candidate
        if not best:  # pragma: no cover - connected graphs always merge
            raise GraphError("Boruvka stalled before spanning the graph")
        for _, i in sorted(set(best.values())):
            u, v = edges[i]
            ru, rv = find(u), find(v)
            if ru != rv:
                parent[ru] = rv
                chosen.append(i)

    ledger = RoundLedger(model)
    bill(ledger, graph.n, len(edges), phases)
    return DistributedMSTResult(
        forest=tree_key(edges[i] for i in chosen),
        total_weight=forest_weight(array, chosen),
        phases=phases,
        rounds=ledger.total_rounds(),
        ledger=ledger,
    )
