"""Simulated CongestedClique matrix multiplication (the [17] black box).

The paper charges matrix multiplication analytically at O~(n^alpha)
rounds, alpha = 0.157 -- the Censor-Hillel et al. [17] bound built on
*fast* (Strassen-like rectangular) multiplication. This module implements
the same work's **combinatorial ("semiring") algorithm**, which runs in
O(n^{1/3}) rounds, as an actual simulated protocol:

Machines are arranged in a conceptual n^{1/3} x n^{1/3} x n^{1/3} cube;
machine (i, j, k) is responsible for the block product
``A[i-block, k-block] @ B[k-block, j-block]``. Since the input is stored
row-partitioned (machine v holds row v of A and B, the paper's Section
1.6 layout), the protocol has three communication steps, each of which we
account at word level and convert to rounds by Lenzen's theorem:

1. **A-scatter:** every row owner sends each n^{2/3}-wide slice of its
   A-row to the cube machines needing it (each machine receives an
   n^{2/3} x n^{2/3} block);
2. **B-scatter:** same for B;
3. **C-reduce:** each cube machine sends its partial block to the
   machines owning the corresponding C rows, which sum the n^{1/3}
   contributions per entry.

Each step moves Theta(n^{4/3}) words per machine, i.e. Theta(n^{1/3})
rounds -- matching [17]'s combinatorial bound exactly. The numerics are
performed for real (block numpy products), so :class:`PowerLadder` and
the samplers can run with *measured* rather than analytic matmul rounds
(``SimulatedMatmul`` plugs into the ledger). DESIGN.md records the
substitution: measured rounds scale as n^{1/3} instead of the paper's
n^{0.157}, because fast rectangular multiplication inside the clique is
out of scope; the samplers' *headline* exponent with this backend becomes
1/2 + 1/3 < 1 -- still sublinear, and the analytic-charge mode remains
the default for exponent-faithful scaling benches.
"""

from __future__ import annotations

import math

import numpy as np

from repro.clique.cost import RoundLedger
from repro.clique.routing import lenzen_rounds
from repro.errors import ModelError

__all__ = ["SimulatedMatmul", "semiring_matmul_rounds"]


def semiring_matmul_rounds(n: int) -> int:
    """Closed-form round count of the combinatorial protocol: 3 ceil(n^{1/3})."""
    if n < 1:
        raise ModelError(f"matmul needs n >= 1, got {n}")
    return 3 * max(1, math.ceil(n ** (1.0 / 3.0)))


class SimulatedMatmul:
    """Word-accounted 3D block matrix multiplication on ``n`` machines.

    Parameters
    ----------
    n:
        Number of machines = matrix dimension (the model couples them).
    ledger:
        Optional ledger receiving the measured round charges under the
        category ``"matmul-simulated"``.
    """

    name = "simulated-3d"

    def __init__(self, n: int, ledger: RoundLedger | None = None) -> None:
        if n < 1:
            raise ModelError(f"need n >= 1 machines, got {n}")
        self.n = n
        self.ledger = ledger
        self.side = max(1, math.ceil(n ** (1.0 / 3.0)))
        self.block = max(1, math.ceil(n / self.side))
        self.calls = 0
        self.total_rounds = 0
        self._round_cost: int | None = None

    # ------------------------------------------------------------------

    def _block_ranges(self) -> list[tuple[int, int]]:
        """The side-many contiguous index ranges of width ~n^{2/3}."""
        width = max(1, math.ceil(self.n / self.side))
        ranges = []
        start = 0
        while start < self.n:
            ranges.append((start, min(self.n, start + width)))
            start += width
        return ranges

    def _cube_machine(self, i: int, j: int, k: int) -> int:
        """Deterministic cube-coordinate to machine-ID mapping."""
        return (i * self.side * self.side + j * self.side + k) % self.n

    def round_cost(self) -> int:
        """Measured rounds of one multiplication (scatter + reduce).

        The protocol's per-machine word loads depend only on ``n`` and the
        block decomposition -- never on matrix values -- so the cost is a
        deterministic per-instance constant. It is computed once and
        cached; :meth:`charge_replay` relies on this determinism to charge
        cache-replayed multiplications the exact measured amount.
        """
        if self._round_cost is not None:
            return self._round_cost
        ranges = self._block_ranges()
        side = len(ranges)
        send = np.zeros(self.n, dtype=np.int64)
        recv = np.zeros(self.n, dtype=np.int64)

        # Step 1 + 2: scatter A[i, k] and B[k, j] blocks to cube machines.
        # Row owner r (inside block i, resp. k) sends one width-|k| slice
        # per (other-coordinate) cube position.
        for bi, (i_lo, i_hi) in enumerate(ranges):
            for bk, (k_lo, k_hi) in enumerate(ranges):
                width = k_hi - k_lo
                for bj in range(side):
                    destination = self._cube_machine(bi, bj, bk)
                    # A-block rows i_lo..i_hi each ship `width` words.
                    for row in range(i_lo, i_hi):
                        send[row] += width
                        recv[destination] += width
        for bk, (k_lo, k_hi) in enumerate(ranges):
            for bj, (j_lo, j_hi) in enumerate(ranges):
                width = j_hi - j_lo
                for bi in range(side):
                    destination = self._cube_machine(bi, bj, bk)
                    for row in range(k_lo, k_hi):
                        send[row] += width
                        recv[destination] += width
        scatter_rounds = lenzen_rounds(int(send.max()), int(recv.max()), self.n)

        # Step 3: reduce partial C blocks to the owners of the C rows.
        send[:] = 0
        recv[:] = 0
        for bi, (i_lo, i_hi) in enumerate(ranges):
            for bj, (j_lo, j_hi) in enumerate(ranges):
                width = j_hi - j_lo
                for bk in range(side):
                    source = self._cube_machine(bi, bj, bk)
                    for row in range(i_lo, i_hi):
                        send[source] += width
                        recv[row] += width
        reduce_rounds = lenzen_rounds(int(send.max()), int(recv.max()), self.n)

        self._round_cost = scatter_rounds + reduce_rounds
        return self._round_cost

    def multiply(
        self,
        a: np.ndarray,
        b: np.ndarray,
        *,
        entry_words: int | None = None,
        note: str = "",
    ) -> np.ndarray:
        """``a @ b`` with full word-level round accounting.

        Both inputs must be ``n x n`` (the row-partitioned clique layout).
        Returns the exact product; charges the measured rounds.
        ``entry_words`` is accepted for
        :class:`~repro.engine.backends.MatmulBackend` interface
        compatibility but ignored: the measured protocol ships raw words.
        """
        if a.shape != (self.n, self.n) or b.shape != (self.n, self.n):
            raise ModelError(
                f"matrices must be {self.n} x {self.n}, got {a.shape} and "
                f"{b.shape}"
            )
        result = a @ b  # numerics: the block sums collapse to the product
        rounds = self.round_cost()
        self.calls += 1
        self.total_rounds += rounds
        if self.ledger is not None:
            self.ledger.charge(
                "matmul-simulated",
                rounds,
                note=note or f"3D semiring n={self.n}",
            )
        return result

    def charge_replay(
        self,
        size: int | None = None,
        *,
        count: int = 1,
        entry_words: int | None = None,
        note: str = "",
    ) -> None:
        """Charge ``count`` multiplications whose numerics were cache-replayed.

        The round model charges per run, so replaying memoized products
        (e.g. a :class:`~repro.engine.cache.DerivedGraphCache` hit) must
        still bill the full measured cost; :meth:`round_cost` is
        value-independent, so the replayed charge equals what the real
        multiplications would have measured. ``entry_words`` is ignored as
        in :meth:`multiply`.
        """
        if size is not None and size != self.n:
            raise ModelError(
                f"replay size {size} != backend size {self.n}"
            )
        if count < 1:
            return
        rounds = count * self.round_cost()
        self.total_rounds += rounds
        if self.ledger is not None:
            self.ledger.charge(
                "matmul-simulated",
                rounds,
                note=note or f"3D semiring n={self.n} (cached numerics)",
            )

    def measured_rounds_last_call_bound(self) -> int:
        """Upper bound sanity: 4x the closed form (slack for uneven blocks)."""
        return 4 * semiring_matmul_rounds(self.n)
