"""An executable Lenzen-style routing protocol ([56], Section 1.6).

The whole CongestedClique accounting in this library leans on Lenzen's
theorem: *any* traffic pattern in which every machine sends and receives
at most n words can be delivered in O(1) rounds. The rest of the library
uses the theorem as a formula (:func:`repro.clique.routing.lenzen_rounds`);
this module makes it executable, so tests can *route actual messages*
under the per-round constraints and confirm the constant.

The simulated protocol is the classical two-phase balancing scheme:

1. **Spread:** source ``s`` sends its t-th message to relay
   ``(s + t) mod n``. Every machine sends at most one word to each relay
   and receives at most one word from each source -- exactly one round.
2. **Deliver:** relays forward to final destinations under the per-round
   caps (each machine sends <= n and receives <= n words per round),
   scheduled greedily. Admissible patterns drain in O(1) rounds because
   after spreading, every relay holds <= n words and every destination
   expects <= n words.

Inadmissible patterns (someone must send or receive more than n words)
are handled the way the theory does: split into ``ceil(load / n)``
admissible supersteps (:func:`route_with_splitting`).
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Any, Iterable

from repro.errors import BandwidthError, ModelError

__all__ = ["RoutedMessage", "RoutingOutcome", "lenzen_route", "route_with_splitting"]


@dataclass(frozen=True)
class RoutedMessage:
    """One unit-word message."""

    src: int
    dst: int
    payload: Any = None


@dataclass
class RoutingOutcome:
    """Delivery result: inboxes plus the measured protocol cost."""

    inboxes: dict[int, list[RoutedMessage]]
    rounds: int
    supersteps: int
    max_relay_load: int


def _check_machine(index: int, n: int) -> None:
    if not (0 <= index < n):
        raise ModelError(f"machine index {index} out of range (n={n})")


def lenzen_route(
    messages: Iterable[RoutedMessage], n: int
) -> RoutingOutcome:
    """Route one *admissible* batch (per-machine send and recv <= n).

    Raises :class:`BandwidthError` if the batch is inadmissible; use
    :func:`route_with_splitting` for arbitrary batches.
    """
    batch = list(messages)
    send_load: dict[int, int] = defaultdict(int)
    recv_load: dict[int, int] = defaultdict(int)
    for message in batch:
        _check_machine(message.src, n)
        _check_machine(message.dst, n)
        send_load[message.src] += 1
        recv_load[message.dst] += 1
    max_send = max(send_load.values(), default=0)
    max_recv = max(recv_load.values(), default=0)
    if max_send > n or max_recv > n:
        raise BandwidthError(
            f"inadmissible batch: max send {max_send}, max recv {max_recv} "
            f"exceed the n = {n} word budget; split first"
        )
    if not batch:
        return RoutingOutcome(inboxes={}, rounds=0, supersteps=0, max_relay_load=0)

    # Phase 1 (one round): spread message t of source s to relay (s+t)%n.
    relay_queues: dict[int, deque[RoutedMessage]] = defaultdict(deque)
    per_source_counter: dict[int, int] = defaultdict(int)
    for message in batch:
        t = per_source_counter[message.src]
        per_source_counter[message.src] += 1
        relay = (message.src + t) % n
        relay_queues[relay].append(message)
    rounds = 1
    max_relay_load = max(len(q) for q in relay_queues.values())

    # Phase 2: greedy delivery under per-round caps.
    inboxes: dict[int, list[RoutedMessage]] = defaultdict(list)
    remaining = sum(len(q) for q in relay_queues.values())
    guard = 0
    while remaining > 0:
        guard += 1
        if guard > 2 * n + 4:  # theory says O(1); this is a bug trap
            raise ModelError(
                "routing failed to drain; scheduling bug"
            )  # pragma: no cover
        sent_this_round: dict[int, int] = defaultdict(int)
        received_this_round: dict[int, int] = defaultdict(int)
        progress = 0
        for relay, queue in relay_queues.items():
            deferred: deque[RoutedMessage] = deque()
            while queue:
                message = queue.popleft()
                if (
                    sent_this_round[relay] < n
                    and received_this_round[message.dst] < n
                ):
                    sent_this_round[relay] += 1
                    received_this_round[message.dst] += 1
                    inboxes[message.dst].append(message)
                    progress += 1
                else:
                    deferred.append(message)
            queue.extend(deferred)
        remaining -= progress
        rounds += 1
        if progress == 0:  # pragma: no cover - cannot happen when admissible
            raise ModelError("routing deadlock; scheduling bug")
    for inbox in inboxes.values():
        inbox.sort(key=lambda m: (m.src, m.dst))
    return RoutingOutcome(
        inboxes=dict(inboxes),
        rounds=rounds,
        supersteps=1,
        max_relay_load=max_relay_load,
    )


def route_with_splitting(
    messages: Iterable[RoutedMessage], n: int
) -> RoutingOutcome:
    """Route an arbitrary batch by splitting into admissible supersteps.

    Mirrors how the accounting formula converts overload into rounds:
    ``ceil(max-load / n)`` supersteps, each O(1) routed rounds. Messages
    are assigned to supersteps round-robin per (sender, receiver) so both
    caps hold in every superstep.
    """
    batch = list(messages)
    if not batch:
        return RoutingOutcome(inboxes={}, rounds=0, supersteps=0, max_relay_load=0)
    send_seen: dict[int, int] = defaultdict(int)
    recv_seen: dict[int, int] = defaultdict(int)
    supersteps: dict[int, list[RoutedMessage]] = defaultdict(list)
    for message in batch:
        _check_machine(message.src, n)
        _check_machine(message.dst, n)
        index = max(send_seen[message.src] // n, recv_seen[message.dst] // n)
        # The counter-based index can under-shoot when earlier messages
        # were themselves bumped by the *other* cap; advance until both
        # caps admit the message.
        while (
            sum(1 for m in supersteps[index] if m.src == message.src) >= n
            or sum(1 for m in supersteps[index] if m.dst == message.dst) >= n
        ):
            index += 1
        supersteps[index].append(message)
        send_seen[message.src] += 1
        recv_seen[message.dst] += 1

    inboxes: dict[int, list[RoutedMessage]] = defaultdict(list)
    total_rounds = 0
    max_relay = 0
    for index in sorted(supersteps):
        outcome = lenzen_route(supersteps[index], n)
        total_rounds += outcome.rounds
        max_relay = max(max_relay, outcome.max_relay_load)
        for dst, delivered in outcome.inboxes.items():
            inboxes[dst].extend(delivered)
    return RoutingOutcome(
        inboxes=dict(inboxes),
        rounds=total_rounds,
        supersteps=len(supersteps),
        max_relay_load=max_relay,
    )
