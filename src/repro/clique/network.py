"""The message-level CongestedClique simulator.

:class:`CongestedClique` simulates the communication substrate of Section
1.6: ``n`` machines, synchronous rounds, O(log n)-bit words, and the
Lenzen-normalized "each machine sends and receives O(n) words per round"
bandwidth view. Algorithms interact with it through *communication steps*:

- :meth:`CongestedClique.exchange` -- arbitrary point-to-point traffic,
  delivered after charging ``ceil(max per-machine load / n)`` rounds;
- :meth:`CongestedClique.broadcast` -- one machine to all (2-round
  scatter/re-broadcast pattern);
- :meth:`CongestedClique.gather` / :meth:`aggregate_sum` -- many-to-one
  collection, the pattern used when machines report counts to the leader.

Every step charges the shared :class:`~repro.clique.cost.RoundLedger`, so
one ledger shows both the measured control-plane rounds and the analytic
matmul charges of a full algorithm run.

Payloads are opaque Python objects; callers declare their size in words.
Helpers :func:`payload_words` computes sizes for the common cases (ints,
vertex lists) so declared sizes stay honest.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from repro.clique.cost import RoundLedger
from repro.clique.routing import lenzen_rounds
from repro.errors import BandwidthError, ModelError

__all__ = ["CongestedClique", "Envelope", "payload_words"]


def payload_words(payload: Any) -> int:
    """Honest word count for common payload shapes.

    - ``None``: 0 words (pure signal; still costs at least the envelope
      when part of a step -- exchange enforces a 1-word minimum per
      message);
    - ``int`` / ``float`` / ``bool``: 1 word (O(log n) bits);
    - sequences: sum over elements;
    - ``bytes``: 1 word per 8 bytes (64-bit words).
    """
    if payload is None:
        return 0
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, (int, float)):
        return 1
    if isinstance(payload, bytes):
        return max(1, (len(payload) + 7) // 8)
    if isinstance(payload, str):
        return max(1, (len(payload) + 7) // 8)
    if isinstance(payload, dict):
        return sum(payload_words(k) + payload_words(v) for k, v in payload.items())
    if isinstance(payload, (list, tuple, set, frozenset)):
        return sum(payload_words(item) for item in payload)
    raise ModelError(
        f"cannot infer word size of payload type {type(payload).__name__}; "
        "pass words= explicitly"
    )


@dataclass(frozen=True)
class Envelope:
    """A delivered message: sender, payload, and its declared word size."""

    src: int
    payload: Any
    words: int


class CongestedClique:
    """Simulator state: machine count, ledger, and traffic statistics."""

    def __init__(self, n: int, ledger: RoundLedger | None = None) -> None:
        if n < 1:
            raise ModelError(f"need at least one machine, got n={n}")
        self.n = n
        self.ledger = ledger if ledger is not None else RoundLedger()
        self.steps = 0
        self.total_words = 0
        self.max_step_load = 0

    # ------------------------------------------------------------------
    # Core primitive
    # ------------------------------------------------------------------

    def exchange(
        self,
        messages: Iterable[tuple[int, int, Any]],
        *,
        category: str = "exchange",
        words: Callable[[Any], int] | None = None,
        note: str = "",
    ) -> dict[int, list[Envelope]]:
        """One communication step: deliver all (src, dst, payload) triples.

        Rounds charged: ``ceil(max(max-send, max-recv) / n)`` (Lenzen).
        Each message costs at least one word (the envelope itself).

        Returns the per-destination inboxes, with each inbox sorted by
        sender so delivery order is deterministic.
        """
        size_of = payload_words if words is None else words
        inboxes: dict[int, list[Envelope]] = {}
        send_load = [0] * self.n
        recv_load = [0] * self.n
        for src, dst, payload in messages:
            if not (0 <= src < self.n and 0 <= dst < self.n):
                raise ModelError(
                    f"machine index out of range: {src} -> {dst} (n={self.n})"
                )
            size = max(1, size_of(payload))
            send_load[src] += size
            recv_load[dst] += size
            inboxes.setdefault(dst, []).append(Envelope(src, payload, size))
        max_send = max(send_load, default=0)
        max_recv = max(recv_load, default=0)
        rounds = lenzen_rounds(max_send, max_recv, self.n)
        self._account(rounds, sum(send_load), max(max_send, max_recv))
        self.ledger.charge(category, rounds, note)
        for inbox in inboxes.values():
            inbox.sort(key=lambda env: env.src)
        return inboxes

    def charge_step(
        self,
        category: str,
        max_send_words: int,
        max_recv_words: int,
        *,
        total_words: int | None = None,
        note: str = "",
    ) -> int:
        """Charge a communication step from aggregate load figures.

        For large simulated steps whose payloads are computed out-of-band
        (e.g. the per-level midpoint-distribution gathering, where every
        machine sends one word per (start, end) pair), materializing each
        message would dominate runtime without changing the accounting.
        This method applies the same Lenzen conversion as :meth:`exchange`
        directly to the supplied per-machine maxima. Returns the rounds
        charged.
        """
        rounds = lenzen_rounds(max_send_words, max_recv_words, self.n)
        if total_words is None:
            total_words = max(max_send_words, max_recv_words)
        self._account(rounds, total_words, max(max_send_words, max_recv_words))
        self.ledger.charge(category, rounds, note)
        return rounds

    # ------------------------------------------------------------------
    # Collectives
    # ------------------------------------------------------------------

    def broadcast(
        self,
        src: int,
        payload: Any,
        *,
        words: int | None = None,
        category: str = "broadcast",
        note: str = "",
    ) -> Any:
        """Machine ``src`` sends ``payload`` to every machine.

        Scatter + re-broadcast: ``2 * ceil(words / n)`` rounds. Broadcasting
        the O(sqrt(n))-word set S therefore costs 2 rounds, matching
        Section 2.1.3.
        """
        self._check_machine(src)
        size = payload_words(payload) if words is None else words
        size = max(1, size)
        rounds = 2 * math.ceil(size / self.n)
        self._account(rounds, size * self.n, size)
        self.ledger.charge(category, rounds, note)
        return payload

    def gather(
        self,
        dst: int,
        contributions: Iterable[tuple[int, Any]],
        *,
        category: str = "gather",
        words: Callable[[Any], int] | None = None,
        note: str = "",
    ) -> list[Envelope]:
        """Many machines send to one. Thin wrapper over :meth:`exchange`."""
        self._check_machine(dst)
        inboxes = self.exchange(
            ((src, dst, payload) for src, payload in contributions),
            category=category,
            words=words,
            note=note,
        )
        return inboxes.get(dst, [])

    def aggregate_sum(
        self,
        dst: int,
        values: Sequence[float | int],
        *,
        category: str = "aggregate",
        note: str = "",
    ) -> float:
        """Sum one value per machine at ``dst`` via a binary aggregation tree.

        Every machine holds one word; an aggregation tree sums them to the
        root in O(1) CongestedClique rounds (each level is a 1-word
        exchange, and levels pipeline into Lenzen routing; we charge a
        single round, plus one to forward the result).
        """
        self._check_machine(dst)
        if len(values) != self.n:
            raise ModelError(
                f"aggregate_sum needs one value per machine "
                f"({len(values)} != {self.n})"
            )
        rounds = 1 if self.n > 1 else 0
        self._account(rounds, self.n, 1)
        self.ledger.charge(category, rounds, note)
        return float(sum(values))

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------

    def _check_machine(self, index: int) -> None:
        if not (0 <= index < self.n):
            raise ModelError(f"machine index {index} out of range (n={self.n})")

    def _account(self, rounds: int, total_words: int, step_load: int) -> None:
        if rounds < 0 or total_words < 0:
            raise BandwidthError("negative accounting values")
        self.steps += 1
        self.total_words += total_words
        self.max_step_load = max(self.max_step_load, step_load)

    @property
    def rounds(self) -> int:
        """Total rounds charged to this clique's ledger so far."""
        return self.ledger.total_rounds()

    def stats(self) -> dict[str, int]:
        """Traffic summary for benchmarks."""
        return {
            "steps": self.steps,
            "total_words": self.total_words,
            "max_step_load": self.max_step_load,
            "rounds": self.rounds,
        }
