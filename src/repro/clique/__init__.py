"""Simulated CongestedClique model (Section 1.6 of the paper).

The model: ``n`` machines, machine ``i`` hosting vertex ``i`` of the input
graph; synchronous rounds; each round every machine may send and receive a
total of O(n) messages of O(log n) bits each (the "total bandwidth" view
justified by Lenzen's routing theorem [56]).

Components:

- :mod:`repro.clique.cost` -- the :class:`RoundLedger` that accounts rounds,
  both for explicitly simulated message exchanges and for collective
  operations the paper treats analytically (matrix multiplication [17]);
- :mod:`repro.clique.routing` -- pure functions converting per-machine word
  loads into round counts per Lenzen's theorem;
- :mod:`repro.clique.network` -- the message-level simulator with
  ``exchange`` / ``broadcast`` / ``gather`` primitives;
- :mod:`repro.clique.hashing` -- the k-wise independent hash family used by
  the load-balanced doubling algorithm (Section 3, step 1).
"""

from repro.clique.cost import CostModel, RoundLedger
from repro.clique.hashing import KWiseHashFamily
from repro.clique.lenzen import (
    RoutedMessage,
    RoutingOutcome,
    lenzen_route,
    route_with_splitting,
)
from repro.clique.matmul3d import SimulatedMatmul, semiring_matmul_rounds
from repro.clique.network import CongestedClique
from repro.clique.routing import (
    WORD_BITS_FACTOR,
    lenzen_rounds,
    words_for_vertices,
)

__all__ = [
    "CostModel",
    "RoundLedger",
    "KWiseHashFamily",
    "RoutedMessage",
    "RoutingOutcome",
    "lenzen_route",
    "route_with_splitting",
    "SimulatedMatmul",
    "semiring_matmul_rounds",
    "CongestedClique",
    "WORD_BITS_FACTOR",
    "lenzen_rounds",
    "words_for_vertices",
]
