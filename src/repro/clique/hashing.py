"""k-wise independent hash families (Section 3, step 1 of the paper).

The load-balanced doubling algorithm has machine 1 pick a random binary
string ``s`` of O(log^2 n) bits, broadcast it, and have every machine use
``s`` to select the *same* hash function ``h_s`` from a family of
``8 c log n``-wise independent functions ``[n] x [k] -> [n]``.

The classical construction ([71], Vadhan's survey): a uniformly random
polynomial of degree ``t - 1`` over a prime field ``F_p`` with ``p >= |U|``
is t-wise independent on ``F_p``; reducing the output modulo ``M`` gives a
family that is t-wise independent up to a ``p mod M`` bias, which we keep
negligible by choosing ``p >> M``. The seed is exactly the coefficient
vector -- ``t * ceil(log2 p)`` bits = O(log^2 n) for ``t = O(log n)``,
matching the paper's seed size.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ModelError

__all__ = ["KWiseHashFamily", "smallest_prime_at_least"]


def _is_prime(value: int) -> bool:
    """Deterministic Miller-Rabin, exact for 64-bit inputs."""
    if value < 2:
        return False
    for small in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if value % small == 0:
            return value == small
    d = value - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    # These witnesses are exact for value < 3.3 * 10^24.
    for a in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        x = pow(a, d, value)
        if x in (1, value - 1):
            continue
        for _ in range(r - 1):
            x = x * x % value
            if x == value - 1:
                break
        else:
            return False
    return True


def smallest_prime_at_least(value: int) -> int:
    """Smallest prime >= value (value >= 2)."""
    if value < 2:
        value = 2
    candidate = value
    while not _is_prime(candidate):
        candidate += 1
    return candidate


class KWiseHashFamily:
    """A t-wise independent hash function ``domain -> [codomain]``.

    Parameters
    ----------
    independence:
        t, the independence parameter (the paper uses ``t = 8 c log n``).
    domain_size:
        Size of the input universe ``|U|``; inputs must lie in
        ``[0, domain_size)``. Pairs ``(v, i)`` from ``[n] x [k]`` are
        encoded by callers as ``v * k + i`` before hashing.
    codomain_size:
        M, the output range ``[0, M)``.
    rng / seed_bits:
        Either a numpy Generator used to draw the coefficient seed, or an
        explicit seed bit-string (as ``bytes``) -- the broadcastable object
        of the algorithm's step 1.

    Notes
    -----
    Evaluation is vectorized Horner's rule over Python integers (exact
    modular arithmetic; the prime can exceed 64 bits for huge domains).
    """

    def __init__(
        self,
        independence: int,
        domain_size: int,
        codomain_size: int,
        *,
        rng: np.random.Generator | None = None,
        seed_bits: bytes | None = None,
    ) -> None:
        if independence < 1:
            raise ModelError(f"independence must be >= 1, got {independence}")
        if domain_size < 1 or codomain_size < 1:
            raise ModelError("domain and codomain must be non-empty")
        self.independence = independence
        self.domain_size = domain_size
        self.codomain_size = codomain_size
        # p >> M so the mod-M bias is O(M / p); keeping p < 2^31 when the
        # domain allows it lets evaluation stay in vectorized int64
        # arithmetic (products < 2^62 never overflow).
        floor = max(domain_size, codomain_size * codomain_size * 256, 1 << 20)
        self.prime = smallest_prime_at_least(floor)
        if seed_bits is None:
            rng = np.random.default_rng(rng)
            seed_bits = rng.bytes(self.seed_length_bytes())
        self.seed_bits = bytes(seed_bits)
        if len(self.seed_bits) < self.seed_length_bytes():
            raise ModelError(
                f"seed must have at least {self.seed_length_bytes()} bytes"
            )
        self._coefficients = self._coefficients_from_seed(self.seed_bits)

    # ------------------------------------------------------------------

    def seed_length_bytes(self) -> int:
        """Bytes of randomness consumed: t coefficients of ceil(log2 p) bits."""
        bits_per_coeff = self.prime.bit_length() + 16  # oversample for uniformity
        return self.independence * math.ceil(bits_per_coeff / 8)

    def _coefficients_from_seed(self, seed: bytes) -> list[int]:
        bits_per_coeff = self.prime.bit_length() + 16
        bytes_per_coeff = math.ceil(bits_per_coeff / 8)
        coefficients = []
        for i in range(self.independence):
            chunk = seed[i * bytes_per_coeff : (i + 1) * bytes_per_coeff]
            coefficients.append(int.from_bytes(chunk, "big") % self.prime)
        return coefficients

    # ------------------------------------------------------------------

    def __call__(self, x: int) -> int:
        """Hash a single element of the domain into ``[0, codomain)``."""
        if not (0 <= x < self.domain_size):
            raise ModelError(
                f"hash input {x} outside domain [0, {self.domain_size})"
            )
        acc = 0
        for coeff in reversed(self._coefficients):
            acc = (acc * x + coeff) % self.prime
        return acc % self.codomain_size

    def hash_pair(self, v: int, i: int, pair_width: int) -> int:
        """Hash a pair ``(v, i)`` with ``i in [0, pair_width)``.

        This is the paper's ``h_s(W_v^i[end], k - i + 1)`` style usage: the
        pair is injectively flattened to ``v * pair_width + i``.
        """
        if not (0 <= i < pair_width):
            raise ModelError(f"pair index {i} outside [0, {pair_width})")
        return self(v * pair_width + i)

    def many(self, xs: "np.ndarray | list[int]") -> np.ndarray:
        """Vectorized hashing of a batch of domain elements.

        Uses int64 Horner evaluation when the prime is below 2^31 (so
        intermediate products cannot overflow); falls back to exact scalar
        arithmetic otherwise.
        """
        values = np.asarray(xs, dtype=np.int64)
        if values.size == 0:
            return values.copy()
        if values.min() < 0 or values.max() >= self.domain_size:
            raise ModelError("batch contains out-of-domain inputs")
        if self.prime < (1 << 31):
            prime = np.int64(self.prime)
            acc = np.zeros_like(values)
            for coeff in reversed(self._coefficients):
                acc = (acc * values + np.int64(coeff)) % prime
            return acc % np.int64(self.codomain_size)
        return np.array([self(int(x)) for x in values], dtype=np.int64)
