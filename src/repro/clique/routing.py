"""Load-to-rounds conversion per Lenzen's routing theorem.

Lenzen [56] proved that in O(1) deterministic rounds every machine can send
and receive O(n) messages regardless of destinations. Following the paper
(Section 1.6) we adopt the "general view": a communication step in which
every machine sends at most ``S`` words and receives at most ``R`` words
completes in ``ceil(max(S, R) / n)`` routing invocations, i.e. that many
O(1)-round Lenzen calls. We charge exactly that, with the O(1) constant
normalized to 1 round so measured round counts are comparable across
algorithms.

A *word* is O(log n) bits and encodes a constant number of vertex IDs or
edge endpoints (Section 1.6). Payloads larger than one word (e.g. a
length-eta walk in the doubling algorithm) are accounted as multiple words.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping

from repro.errors import BandwidthError

__all__ = [
    "lenzen_rounds",
    "broadcast_cc_rounds",
    "words_for_vertices",
    "WORD_BITS_FACTOR",
]

# How many O(log n)-bit quantities fit in one model word. The model permits
# any constant; we use 1 for conservative (upper bound) round counts.
WORD_BITS_FACTOR = 1


def lenzen_rounds(max_send_words: int, max_recv_words: int, n: int) -> int:
    """Rounds to complete a step with the given per-machine word loads.

    Parameters
    ----------
    max_send_words:
        Maximum over machines of the number of words sent in this step.
    max_recv_words:
        Maximum over machines of the number of words received.
    n:
        Number of machines (per-round per-machine bandwidth is ``n`` words).

    Returns
    -------
    int
        ``ceil(max(load) / n)`` with a floor of 1 when any traffic exists,
        0 for an empty step.
    """
    if max_send_words < 0 or max_recv_words < 0 or n <= 0:
        raise BandwidthError(
            f"invalid load accounting: send={max_send_words}, "
            f"recv={max_recv_words}, n={n}"
        )
    load = max(max_send_words, max_recv_words)
    if load == 0:
        return 0
    return max(1, math.ceil(load / n))


def words_for_vertices(count: int) -> int:
    """Words needed to transmit ``count`` vertex IDs (Section 1.6).

    A single message encodes a constant number of vertices; with
    :data:`WORD_BITS_FACTOR` = 1 this is simply ``count``.
    """
    if count < 0:
        raise BandwidthError(f"cannot encode {count} vertices")
    return math.ceil(count / WORD_BITS_FACTOR)


def per_machine_loads(
    sends: Iterable[tuple[int, int, int]], n: int
) -> tuple[list[int], list[int]]:
    """Aggregate (src, dst, words) triples into per-machine send/recv loads."""
    send_load = [0] * n
    recv_load = [0] * n
    for src, dst, words in sends:
        if not (0 <= src < n and 0 <= dst < n):
            raise BandwidthError(f"machine index out of range: {src} -> {dst}")
        if words < 0:
            raise BandwidthError(f"negative word count {words}")
        send_load[src] += words
        recv_load[dst] += words
    return send_load, recv_load


def rounds_for_step(sends: Iterable[tuple[int, int, int]], n: int) -> int:
    """Rounds for a full communication step described by (src, dst, words)."""
    send_load, recv_load = per_machine_loads(sends, n)
    max_send = max(send_load, default=0)
    max_recv = max(recv_load, default=0)
    return lenzen_rounds(max_send, max_recv, n)


def broadcast_rounds(words: int, n: int) -> int:
    """Rounds for one machine to broadcast ``words`` words to everyone.

    Standard two-step CongestedClique broadcast: the source scatters the
    payload across machines (each receives ``ceil(words / n)`` words), then
    every machine re-broadcasts its fragment to all. Both steps are
    Lenzen-routable with per-machine load ``max(words, n * ceil(words/n))``
    ... which collapses to ``ceil(words / n)`` routing invocations, each of
    2 rounds. The paper uses this for broadcasting the size-O(sqrt(n)) set
    S "in two rounds" (Section 2.1.3).
    """
    if words <= 0:
        return 0
    fragments = math.ceil(words / n)
    return 2 * fragments


def broadcast_cc_rounds(
    total_words: int, n: int, *, max_machine_words: int | None = None
) -> int:
    """Rounds to disseminate a payload in the *Broadcast* Congested Clique.

    In the broadcast model each machine broadcasts one word per round
    that every machine sees -- an aggregate budget of n words per round
    and a per-machine budget of one. Publishing ``total_words`` words
    spread over the machines therefore takes
    ``max(ceil(total_words / n), max_machine_words)`` rounds: the
    aggregate bound when the payload is balanced, the per-machine bound
    when one machine holds more than its share. This is the broadcast
    analogue of :func:`lenzen_rounds` and feeds the
    ``"broadcast-bandwidth"`` ledger category
    (:data:`repro.core.variants.BROADCAST_BANDWIDTH`).
    """
    if n <= 0:
        raise BandwidthError(f"invalid machine count n={n}")
    if total_words < 0 or (
        max_machine_words is not None and max_machine_words < 0
    ):
        raise BandwidthError(
            f"invalid broadcast accounting: total={total_words}, "
            f"per-machine={max_machine_words}"
        )
    if total_words == 0 and not max_machine_words:
        return 0
    rounds = math.ceil(total_words / n)
    if max_machine_words is not None:
        rounds = max(rounds, max_machine_words)
    return max(1, rounds)


def summary(loads: Mapping[int, int]) -> dict[str, float]:
    """Convenience statistics over a per-machine load mapping."""
    if not loads:
        return {"max": 0.0, "mean": 0.0, "total": 0.0}
    values = list(loads.values())
    return {
        "max": float(max(values)),
        "mean": float(sum(values) / len(values)),
        "total": float(sum(values)),
    }
