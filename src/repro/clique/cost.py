"""Round accounting: the ledger every simulated algorithm charges into.

Two kinds of charges coexist, mirroring how the paper itself reasons:

1. **Measured charges** -- message-level exchanges simulated by
   :class:`repro.clique.network.CongestedClique` convert word loads into
   rounds via Lenzen's theorem and charge the result here.
2. **Analytic charges** -- collective operations the paper uses as black
   boxes, most importantly matrix multiplication in O(n^alpha) rounds
   (Censor-Hillel et al. [17], alpha = 1 - 2/omega = 0.157 currently
   [72]). :class:`CostModel` holds the formulas, each documented against
   the lemma it implements.

The ledger records (category, rounds, note) entries and supports nested
named sections (e.g. per-phase) so benchmarks can report phase-resolved
round counts.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.errors import ModelError

__all__ = ["ALPHA", "CostModel", "RoundLedger", "LedgerEntry"]

# Matrix multiplication exponent in the CongestedClique: alpha = 1 - 2/omega.
# With omega ~ 2.371552 [72] this is ~0.1568; the paper rounds to 0.157.
ALPHA = 0.157


@dataclass(frozen=True)
class LedgerEntry:
    """One charge: how many rounds, what for, and in which section."""

    category: str
    rounds: int
    section: str
    note: str = ""


@dataclass
class CostModel:
    """Closed-form analytic round costs, one method per paper reference.

    Attributes
    ----------
    alpha:
        Matrix multiplication exponent (0.157).
    matmul_constant:
        Leading constant applied to ``n ** alpha``; the paper's bounds are
        asymptotic, so this is a normalization knob (default 1).
    polylog_matmul:
        Exponent of the ``log n`` factor bundled into "O~" for matmul with
        O(log^2 n)-bit entries (Lemma 7 charges O(log 1/delta) = O(log^2 n)
        bits per entry, i.e. O(log n) words per entry).
    """

    alpha: float = ALPHA
    matmul_constant: float = 1.0
    polylog_matmul: int = 1

    def matmul_rounds(self, n: int, *, entry_words: int | None = None) -> int:
        """Rounds for one n x n matrix multiplication ([17], Lemma 7).

        With single-word entries: ``ceil(c * n^alpha)``. Lemma 7 widens
        entries to O(log(1/delta)) = O(log^2 n) bits, i.e. O(log n) words,
        multiplying the cost by ``entry_words`` (default ``ceil(log2 n)``).
        """
        if n <= 0:
            raise ModelError(f"matmul requires n >= 1, got {n}")
        if entry_words is None:
            entry_words = max(1, math.ceil(math.log2(max(n, 2))))
        base = self.matmul_constant * float(n) ** self.alpha
        return max(1, math.ceil(base)) * max(1, entry_words)

    def broadcast_matmul_rounds(
        self, n: int, *, entry_words: int | None = None
    ) -> int:
        """Broadcast-CC rounds for one n x n product (Anari-Haqi, Lemma 2).

        The Broadcast Congested Clique has no private lanes, so the [17]
        routing-based multiplication does not apply. Anari-Haqi instead
        decompose each squaring into O(log^2 n) rank-one sketch rounds:
        every machine broadcasts one word of its sketch per round and
        reconstructs its row block locally. We charge
        ``ceil(log2 n)^2 * entry_words`` rounds per product, with
        ``entry_words`` defaulting to the Lemma 7 entry width
        ``ceil(log2 n)`` -- polylog per product, against the unicast
        model's ``O~(n^alpha)``.
        """
        if n <= 0:
            raise ModelError(f"matmul requires n >= 1, got {n}")
        if entry_words is None:
            entry_words = max(1, math.ceil(math.log2(max(n, 2))))
        base = max(1, math.ceil(math.log2(max(n, 2))) ** 2)
        return base * max(1, entry_words)

    def power_ladder_rounds(self, n: int, ell: int) -> int:
        """Rounds to compute P, P^2, ..., P^ell by repeated squaring.

        ``log2(ell)`` multiplications (Lemma 5: "successively powering the
        transition matrix in O~(n^alpha) rounds").
        """
        if ell < 2:
            return 0
        squarings = max(1, math.ceil(math.log2(ell)))
        return squarings * self.matmul_rounds(n)

    def column_distribution_rounds(self, n: int, num_matrices: int) -> int:
        """Rounds for step 3 of Algorithm 1: machine i sends P^k[i, j] to j.

        Each machine sends n words per matrix (one entry to each peer) --
        exactly the n-word budget, so 1 round per matrix (O~(1) total in
        Lemma 5's accounting).
        """
        return max(0, num_matrices)

    def binary_search_rounds(self, n: int) -> int:
        """Rounds for one level's distributed truncation search (Lemma 5).

        The search runs over O(log ell) = O(log n) candidate indices, each
        probe being an O(1)-round CheckTruncationPoint invocation.
        """
        return max(1, math.ceil(math.log2(max(n, 2))) * 3)

    def absorbing_power_rounds(self, n: int, beta: float) -> int:
        """Rounds for Corollary 2's R^infinity approximation.

        k = O(n^3 log(1/beta)) iterations collapse to log2(k) squarings of
        the 2n x 2n auxiliary matrix, each a matmul-rounds charge.
        """
        if not (0 < beta < 1):
            raise ModelError(f"beta must be in (0, 1), got {beta}")
        k = max(2.0, float(n) ** 3 * math.log(1.0 / beta))
        squarings = math.ceil(math.log2(k))
        return squarings * self.matmul_rounds(2 * n)


class RoundLedger:
    """Accumulates round charges with category and section attribution."""

    def __init__(self, model: CostModel | None = None) -> None:
        self.model = model if model is not None else CostModel()
        self._entries: list[LedgerEntry] = []
        self._sections: list[str] = []

    # -- charging -------------------------------------------------------

    def charge(self, category: str, rounds: int, note: str = "") -> None:
        """Record ``rounds`` rounds against ``category``."""
        if rounds < 0:
            raise ModelError(f"cannot charge negative rounds ({rounds})")
        if rounds == 0:
            return
        self._entries.append(
            LedgerEntry(category, rounds, self.current_section(), note)
        )

    def charge_matmul(
        self, n: int, *, count: int = 1, entry_words: int | None = None,
        note: str = ""
    ) -> None:
        """Analytic charge for ``count`` matrix multiplications."""
        rounds = self.model.matmul_rounds(n, entry_words=entry_words) * count
        self.charge("matmul", rounds, note)

    # -- sections -------------------------------------------------------

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        """Attribute charges inside the block to a named (nested) section."""
        self._sections.append(name)
        try:
            yield
        finally:
            self._sections.pop()

    def current_section(self) -> str:
        """The active (possibly nested) section path, e.g. ``phase-3``."""
        return "/".join(self._sections)

    # -- reporting ------------------------------------------------------

    @property
    def entries(self) -> tuple[LedgerEntry, ...]:
        return tuple(self._entries)

    def total_rounds(self) -> int:
        """Sum of all charges."""
        return sum(entry.rounds for entry in self._entries)

    def rounds_by_category(self) -> dict[str, int]:
        """Total rounds per category, descending."""
        totals: dict[str, int] = {}
        for entry in self._entries:
            totals[entry.category] = totals.get(entry.category, 0) + entry.rounds
        return dict(sorted(totals.items(), key=lambda kv: -kv[1]))

    def rounds_by_section(self, prefix: str = "") -> dict[str, int]:
        """Total rounds per top-level section under ``prefix``."""
        totals: dict[str, int] = {}
        for entry in self._entries:
            if not entry.section.startswith(prefix):
                continue
            remainder = entry.section[len(prefix):].lstrip("/")
            head = remainder.split("/", 1)[0] if remainder else "<root>"
            totals[head] = totals.get(head, 0) + entry.rounds
        return totals

    def merge(self, other: "RoundLedger") -> None:
        """Fold another ledger's entries into this one (for sub-protocols)."""
        self._entries.extend(other._entries)

    # -- wire format ----------------------------------------------------

    def __eq__(self, other: object) -> bool:
        """Ledgers are equal when model and charge history coincide."""
        if not isinstance(other, RoundLedger):
            return NotImplemented
        return self.model == other.model and self._entries == other._entries

    def to_dict(self) -> dict:
        """JSON-serializable wire form (model parameters + charge log)."""
        return {
            "model": {
                "alpha": float(self.model.alpha),
                "matmul_constant": float(self.model.matmul_constant),
                "polylog_matmul": int(self.model.polylog_matmul),
            },
            "entries": [
                {
                    "category": entry.category,
                    "rounds": int(entry.rounds),
                    "section": entry.section,
                    "note": entry.note,
                }
                for entry in self._entries
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RoundLedger":
        """Rebuild a ledger from :meth:`to_dict` output."""
        ledger = cls(CostModel(**payload.get("model", {})))
        ledger._entries = [
            LedgerEntry(
                category=entry["category"],
                rounds=int(entry["rounds"]),
                section=entry.get("section", ""),
                note=entry.get("note", ""),
            )
            for entry in payload.get("entries", [])
        ]
        return ledger

    def report(self) -> str:
        """Human-readable multi-line summary."""
        lines = [f"total rounds: {self.total_rounds()}"]
        for category, rounds in self.rounds_by_category().items():
            lines.append(f"  {category:<24s} {rounds}")
        return "\n".join(lines)

    def timeline(self, *, limit: int | None = None) -> str:
        """Chronological charge trace with running round totals.

        One line per charge: cumulative rounds, section, category, note.
        ``limit`` keeps only the first N entries (debugging aid for long
        runs). This is the auditable protocol trace behind every measured
        number (see docs/MODEL.md).
        """
        lines = []
        running = 0
        entries = self._entries if limit is None else self._entries[:limit]
        for entry in entries:
            running += entry.rounds
            section = entry.section or "<root>"
            note = f"  # {entry.note}" if entry.note else ""
            lines.append(
                f"[{running:>8d}] +{entry.rounds:<6d} {section:<18s} "
                f"{entry.category}{note}"
            )
        if limit is not None and len(self._entries) > limit:
            lines.append(f"... {len(self._entries) - limit} more entries")
        return "\n".join(lines)
