"""Per-process session pools and the batch worker entry points.

Both halves of the service keep sessions warm the same way: an LRU
:class:`SessionPool` keyed by :attr:`~repro.service.protocol.ServiceTask.
session_key` (graph + preset + config overrides). The server process
holds one for streaming requests; every batch worker process holds its
own (module-global, built by :func:`init_worker` when the pool spawns).
All of them point their sessions at the *same* ``cache_dir``, so a
session that is cold in this process still warm-starts its phase
numerics from whatever any other worker -- or any other host mounting
the volume -- already computed. That shared disk tier, not session
affinity, is what makes the shard layer scale: any worker can serve any
task.

Seeding: each pooled session gets a fresh entropy-derived root, so
*seedless* requests draw genuinely independent randomness wherever they
land. Requests with a pinned ``seed`` bypass the session lineage
entirely (the PR 2 contract), which is what makes pinned-seed service
calls byte-identical across workers and hosts.
"""

from __future__ import annotations

import os
import secrets
import threading
from collections import OrderedDict
from dataclasses import replace

from repro.api.presets import get_preset
from repro.api.session import Session
from repro.service.protocol import ServiceTask

__all__ = ["SessionPool", "init_worker", "run_task"]


class SessionPool:
    """A bounded LRU of live sessions keyed by task session key.

    ``acquire`` returns ``(session, lock)``; callers hold the lock while
    running requests on the session -- sessions share mutable engine
    caches and are not safe for concurrent in-process use. Distinct
    keys never contend. Thread-safe; eviction drops the pool's
    reference only (an in-flight holder keeps its session alive).
    """

    def __init__(
        self, *, limit: int = 8, cache_dir: str | None = None
    ) -> None:
        if limit < 1:
            raise ValueError(f"session pool limit must be >= 1, got {limit}")
        self._limit = limit
        self._cache_dir = cache_dir
        self._guard = threading.Lock()
        self._sessions: OrderedDict[str, tuple[Session, threading.Lock]] = (
            OrderedDict()
        )
        self.opened = 0
        self.evicted = 0

    def _build(self, task: ServiceTask) -> Session:
        graph, meta = task.build_graph()
        config = task.build_config(get_preset(task.preset).config)
        if self._cache_dir is not None:
            # The operator's cache volume wins over whatever the preset
            # says: one directory shared by every worker is the whole
            # point of the shard layer.
            config = replace(config, cache_dir=self._cache_dir)
        return Session(
            graph, config, seed=secrets.randbits(63), meta=meta
        )

    def acquire(self, task: ServiceTask) -> tuple[Session, threading.Lock]:
        """The warm (or newly built) session for ``task``, plus its lock."""
        with self._guard:
            entry = self._sessions.get(task.session_key)
            if entry is not None:
                self._sessions.move_to_end(task.session_key)
                return entry
        # Build outside the pool guard: graph construction and session
        # setup can be slow, and other keys should not stall behind it.
        session = self._build(task)
        with self._guard:
            entry = self._sessions.get(task.session_key)
            if entry is not None:  # lost a build race; use the winner
                self._sessions.move_to_end(task.session_key)
                return entry
            entry = (session, threading.Lock())
            self._sessions[task.session_key] = entry
            self.opened += 1
            while len(self._sessions) > self._limit:
                self._sessions.popitem(last=False)
                self.evicted += 1
            return entry

    def stats(self) -> dict:
        """Pool counters (sessions live / opened / evicted)."""
        with self._guard:
            return {
                "sessions": len(self._sessions),
                "sessions_opened": self.opened,
                "sessions_evicted": self.evicted,
            }


# -- batch worker entry points (module-global pool per process) ---------

_WORKER_POOL: SessionPool | None = None


def init_worker(cache_dir: str | None, limit: int) -> None:
    """ProcessPoolExecutor initializer: build this worker's session pool.

    The worker also becomes its own process-group leader: ensemble
    requests fork a nested worker pool, and those grandchildren inherit
    this process's death-signal pipe. A timed-out worker is recycled
    with ``killpg`` (see the server's ``_recycle_workers``) so the whole
    subtree dies with it -- orphaned grandchildren would otherwise hold
    the sentinel open forever, pinning the old executor's manager thread
    and blocking interpreter exit.
    """
    if hasattr(os, "setpgid"):
        try:
            os.setpgid(0, 0)
        except OSError:  # already a leader, or the platform refuses
            pass
    global _WORKER_POOL
    _WORKER_POOL = SessionPool(limit=limit, cache_dir=cache_dir)


def run_task(task: ServiceTask) -> dict:
    """Execute one batch task in a worker; returns the envelope dict.

    The return value is ``Response.to_dict()`` -- sanitized, JSON-able,
    and picklable, so the front end can serialize it without touching
    numpy state. Errors propagate to the submitting process unchanged.
    """
    global _WORKER_POOL
    if _WORKER_POOL is None:  # direct use outside an initialized pool
        _WORKER_POOL = SessionPool()
    session, lock = _WORKER_POOL.acquire(task)
    with lock:
        response = session.run(task.request)
    return response.to_dict()
