"""Per-process session pools and the batch worker entry points.

Both halves of the service keep sessions warm the same way: an LRU
:class:`SessionPool` keyed by :attr:`~repro.service.protocol.ServiceTask.
session_key` (graph + preset + config overrides). The server process
holds one for streaming requests; every batch worker process holds its
own (module-global, built by :func:`init_worker` when the pool spawns).
All of them point their sessions at the *same* ``cache_dir``, so a
session that is cold in this process still warm-starts its phase
numerics from whatever any other worker -- or any other host mounting
the volume -- already computed. That shared disk tier, not session
affinity, is what makes the shard layer scale: any worker can serve any
task.

Seeding: each pooled session gets a fresh entropy-derived root, so
*seedless* requests draw genuinely independent randomness wherever they
land. Requests with a pinned ``seed`` bypass the session lineage
entirely (the PR 2 contract), which is what makes pinned-seed service
calls byte-identical across workers and hosts.
"""

from __future__ import annotations

import logging
import os
import secrets
import signal
import threading
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace

from repro.api.presets import get_preset
from repro.api.session import Session
from repro.service import faults
from repro.service.protocol import ServiceTask

__all__ = ["SessionPool", "ShardSupervisor", "init_worker", "run_task"]

_LOG = logging.getLogger(__name__)


class SessionPool:
    """A bounded LRU of live sessions keyed by task session key.

    ``acquire`` returns ``(session, lock)``; callers hold the lock while
    running requests on the session -- sessions share mutable engine
    caches and are not safe for concurrent in-process use. Distinct
    keys never contend. Thread-safe; eviction drops the pool's
    reference only (an in-flight holder keeps its session alive).
    """

    def __init__(
        self, *, limit: int = 8, cache_dir: str | None = None
    ) -> None:
        if limit < 1:
            raise ValueError(f"session pool limit must be >= 1, got {limit}")
        self._limit = limit
        self._cache_dir = cache_dir
        self._guard = threading.Lock()
        self._sessions: OrderedDict[str, tuple[Session, threading.Lock]] = (
            OrderedDict()
        )
        self.opened = 0
        self.evicted = 0

    def _build(self, task: ServiceTask) -> Session:
        graph, meta = task.build_graph()
        config = task.build_config(get_preset(task.preset).config)
        if self._cache_dir is not None:
            # The operator's cache volume wins over whatever the preset
            # says: one directory shared by every worker is the whole
            # point of the shard layer.
            config = replace(config, cache_dir=self._cache_dir)
        return Session(
            graph, config, seed=secrets.randbits(63), meta=meta
        )

    def acquire(self, task: ServiceTask) -> tuple[Session, threading.Lock]:
        """The warm (or newly built) session for ``task``, plus its lock."""
        with self._guard:
            entry = self._sessions.get(task.session_key)
            if entry is not None:
                self._sessions.move_to_end(task.session_key)
                return entry
        # Build outside the pool guard: graph construction and session
        # setup can be slow, and other keys should not stall behind it.
        session = self._build(task)
        with self._guard:
            entry = self._sessions.get(task.session_key)
            if entry is not None:  # lost a build race; use the winner
                self._sessions.move_to_end(task.session_key)
                return entry
            entry = (session, threading.Lock())
            self._sessions[task.session_key] = entry
            self.opened += 1
            while len(self._sessions) > self._limit:
                self._sessions.popitem(last=False)
                self.evicted += 1
            return entry

    def stats(self) -> dict:
        """Pool counters (sessions live / opened / evicted)."""
        with self._guard:
            return {
                "sessions": len(self._sessions),
                "sessions_opened": self.opened,
                "sessions_evicted": self.evicted,
            }


# -- batch worker entry points (module-global pool per process) ---------

_WORKER_POOL: SessionPool | None = None


def init_worker(cache_dir: str | None, limit: int) -> None:
    """ProcessPoolExecutor initializer: build this worker's session pool.

    The worker also becomes its own process-group leader: ensemble
    requests fork a nested worker pool, and those grandchildren inherit
    this process's death-signal pipe. A timed-out worker is recycled
    with ``killpg`` (see the server's ``_recycle_workers``) so the whole
    subtree dies with it -- orphaned grandchildren would otherwise hold
    the sentinel open forever, pinning the old executor's manager thread
    and blocking interpreter exit.
    """
    if hasattr(os, "setpgid"):
        try:
            os.setpgid(0, 0)
        except OSError:  # already a leader, or the platform refuses
            pass
    global _WORKER_POOL
    _WORKER_POOL = SessionPool(limit=limit, cache_dir=cache_dir)


def run_task(task: ServiceTask) -> dict:
    """Execute one batch task in a worker; returns the envelope dict.

    The return value is ``Response.to_dict()`` -- sanitized, JSON-able,
    and picklable, so the front end can serialize it without touching
    numpy state. Errors propagate to the submitting process unchanged.
    """
    faults.fire("worker.task")
    global _WORKER_POOL
    if _WORKER_POOL is None:  # direct use outside an initialized pool
        _WORKER_POOL = SessionPool()
    session, lock = _WORKER_POOL.acquire(task)
    with lock:
        response = session.run(task.request)
    return response.to_dict()


# -- crash supervision --------------------------------------------------


class ShardSupervisor:
    """Owns the batch shard :class:`ProcessPoolExecutor` and its failures.

    The front end never touches the executor directly: it asks the
    supervisor for :meth:`executor` (built lazily, rebuilt after
    :meth:`respawn`) and reports outcomes through :meth:`note_success` /
    :meth:`note_crash`. Crash handling is bounded, not optimistic:

    - a crashed worker (``BrokenProcessPool``, killed process) costs one
      :meth:`respawn` -- the poisoned executor is discarded and a fresh
      one stands up lazily; the lost task is safe to re-dispatch because
      service draws are idempotent (pinned seeds reproduce byte-identical
      bytes; seedless draws never delivered their first result);
    - re-dispatch waits :meth:`backoff_seconds` (exponential, capped) so
      a crash-looping input cannot hot-spin the fork path;
    - ``breaker_threshold`` *consecutive* crashes without an intervening
      success trip a circuit breaker: :attr:`breaker_open` flips the
      service's ``/healthz`` to ``degraded`` and batches are served
      in-process instead of feeding the crash loop. Every
      ``breaker_reset_seconds`` one probe request is allowed back into
      the pool (:meth:`breaker_allows_probe`); the first success closes
      the breaker.

    All methods are called from the event-loop thread only; nothing here
    blocks (executor construction is lazy -- no processes spawn until
    the first submit).
    """

    def __init__(
        self,
        *,
        workers: int,
        cache_dir: str | None,
        session_cap: int,
        breaker_threshold: int = 5,
        breaker_reset_seconds: float = 30.0,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
    ) -> None:
        self.workers = workers
        self.cache_dir = cache_dir
        self.session_cap = session_cap
        self.breaker_threshold = breaker_threshold
        self.breaker_reset_seconds = breaker_reset_seconds
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._pool: ProcessPoolExecutor | None = None
        self._consecutive_crashes = 0
        self._breaker_open_at: float | None = None
        self.crashes = 0
        self.respawns = 0

    def executor(self) -> ProcessPoolExecutor:
        """The live executor, building a fresh one after a respawn."""
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=init_worker,
                initargs=(self.cache_dir, self.session_cap),
            )
        return self._pool

    @property
    def breaker_open(self) -> bool:
        return self._breaker_open_at is not None

    def breaker_allows_probe(self) -> bool:
        """True when a request may try the pool despite an open breaker.

        Re-arms the cooldown timer on each allowed probe, so a failing
        pool is poked once per ``breaker_reset_seconds``, not hammered.
        """
        if self._breaker_open_at is None:
            return True
        now = time.monotonic()
        if now - self._breaker_open_at >= self.breaker_reset_seconds:
            self._breaker_open_at = now
            return True
        return False

    def note_success(self) -> None:
        """A pool dispatch completed: reset the crash run, heal the breaker."""
        self._consecutive_crashes = 0
        if self._breaker_open_at is not None:
            self._breaker_open_at = None
            _LOG.warning(
                "worker shard breaker closed: probe dispatch succeeded"
            )

    def note_crash(self) -> bool:
        """Record one crashed dispatch; True when this trips the breaker."""
        self.crashes += 1
        self._consecutive_crashes += 1
        if (
            self._breaker_open_at is None
            and self._consecutive_crashes >= self.breaker_threshold
        ):
            self._breaker_open_at = time.monotonic()
            _LOG.error(
                "worker shard breaker OPEN after %d consecutive crashes; "
                "serving in-process until a probe succeeds",
                self._consecutive_crashes,
            )
            return True
        return False

    def backoff_seconds(self, attempt: int) -> float:
        """Capped exponential delay before re-dispatch attempt ``attempt``."""
        return min(self.backoff_cap, self.backoff_base * (2 ** attempt))

    def respawn(self, *, kill: bool = False) -> None:
        """Discard the executor; the next :meth:`executor` call rebuilds.

        With ``kill=True`` the pool's processes are SIGKILLed by process
        *group* first (each worker is a leader -- see
        :func:`init_worker`): a worker stuck past its budget is busy
        inside a C call and cannot be interrupted politely, and its
        ensemble grandchildren would otherwise hold the dead executor's
        sentinel open forever. Crash respawns (``kill=False``) skip the
        signalling -- the workers are already gone.
        """
        pool, self._pool = self._pool, None
        self.respawns += 1
        if pool is None:
            return
        if kill:
            for proc in list(getattr(pool, "_processes", {}).values()):
                try:
                    os.killpg(proc.pid, signal.SIGKILL)
                except (OSError, AttributeError):
                    try:
                        proc.kill()  # not a group leader; best effort
                    except (OSError, AttributeError):  # already gone
                        pass
        pool.shutdown(wait=False, cancel_futures=True)

    def shutdown(self) -> None:
        """Tear down without respawning (server drain path)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def state(self) -> dict:
        """Supervision facts for ``/stats`` and ``/healthz``."""
        return {
            "breaker": "open" if self.breaker_open else "closed",
            "crashes": self.crashes,
            "consecutive_crashes": self._consecutive_crashes,
            "respawns": self.respawns,
        }
