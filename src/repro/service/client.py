"""Stdlib client for the serving layer (``http.client`` under the hood).

:class:`ServiceClient` is what the load generator, the test suites, and
``examples/service_quickstart.py`` drive the server with. It speaks the
service envelope (graph spec + preset + config overrides + request
envelope) and hands back the same typed objects the in-process session
API returns: :func:`run` a :class:`~repro.api.responses.Response`,
:func:`stream` a generator of ``(index, SampleResult)`` pairs decoded
from the NDJSON chunks as they arrive.

Overload is a typed outcome, not a generic failure: 429/503 raise
:class:`ServiceUnavailable` carrying the server's ``Retry-After`` hint,
so callers can implement backoff without parsing error strings. Every
call opens a fresh connection (the server is one-request-per-connection
by design), which also means abandoning a ``stream`` generator closes
the socket -- exactly the disconnect signal the server's slot-release
path listens for.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from dataclasses import dataclass

from repro.api.responses import Response, response_from_dict
from repro.engine.results import SampleResult
from repro.errors import ReproError

__all__ = [
    "ServiceClient",
    "ServiceRequestError",
    "ServiceUnavailable",
    "StreamSummary",
    "wait_until_ready",
]


class ServiceRequestError(ReproError):
    """The server answered with an error payload (4xx/5xx)."""

    def __init__(self, message: str, *, status: int) -> None:
        super().__init__(f"[{status}] {message}")
        self.status = status


class ServiceUnavailable(ServiceRequestError):
    """429 (overloaded) or 503 (draining): retry after ``retry_after``."""

    def __init__(
        self, message: str, *, status: int, retry_after: float | None
    ) -> None:
        super().__init__(message, status=status)
        self.retry_after = retry_after


@dataclass(frozen=True)
class StreamSummary:
    """The terminal NDJSON record of a completed stream."""

    count: int
    seconds: float
    degraded: bool
    cache: dict


class ServiceClient:
    """One service endpoint; stateless between calls."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8437, *,
        timeout: float = 300.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- plumbing -------------------------------------------------------

    def _connect(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )

    @staticmethod
    def _raise_for_status(status: int, headers, body: bytes) -> None:
        try:
            message = json.loads(body).get("error", body.decode(errors="replace"))
        except (json.JSONDecodeError, AttributeError):
            message = body.decode(errors="replace")
        if status in (429, 503):
            retry_after = headers.get("Retry-After")
            raise ServiceUnavailable(
                message, status=status,
                retry_after=float(retry_after) if retry_after else None,
            )
        raise ServiceRequestError(message, status=status)

    def _post_json(self, path: str, envelope: dict) -> dict:
        body = json.dumps(envelope, allow_nan=False).encode()
        conn = self._connect()
        try:
            conn.request("POST", path, body=body, headers={
                "Content-Type": "application/json",
                "Content-Length": str(len(body)),
            })
            response = conn.getresponse()
            payload = response.read()
            if response.status != 200:
                self._raise_for_status(
                    response.status, response.headers, payload
                )
            return json.loads(payload)
        finally:
            conn.close()

    def _get_json(self, path: str) -> dict:
        conn = self._connect()
        try:
            conn.request("GET", path)
            response = conn.getresponse()
            payload = response.read()
            if response.status != 200:
                self._raise_for_status(
                    response.status, response.headers, payload
                )
            return json.loads(payload)
        finally:
            conn.close()

    def _get_text(self, path: str) -> str:
        conn = self._connect()
        try:
            conn.request("GET", path)
            response = conn.getresponse()
            payload = response.read()
            if response.status != 200:
                self._raise_for_status(
                    response.status, response.headers, payload
                )
            return payload.decode()
        finally:
            conn.close()

    # -- endpoints ------------------------------------------------------

    def healthz(self) -> dict:
        return self._get_json("/healthz")

    def stats(self) -> dict:
        return self._get_json("/stats")

    def metrics(self) -> str:
        """``GET /metrics``: Prometheus text exposition of the counters."""
        return self._get_text("/metrics")

    def run(
        self, graph: dict, request: dict, *,
        preset: str | None = None, config: dict | None = None,
    ) -> Response:
        """Batch execution: one envelope in, one typed Response out."""
        payload = self._post_json("/v1/run", _envelope(
            graph, request, preset=preset, config=config
        ))
        return response_from_dict(payload)

    def stream(
        self, graph: dict, request: dict, *,
        preset: str | None = None, config: dict | None = None,
    ):
        """Yield ``(index, SampleResult)`` as the server emits them.

        The generator's ``.summary`` attribute is unavailable (plain
        generator); instead the terminal summary record is delivered via
        StopIteration value: ``summary = yield from client.stream(...)``
        inside a generator, or use :func:`stream_collect` for the common
        collect-everything case. Server-side ``error`` records raise.
        """
        envelope = _envelope(graph, request, preset=preset, config=config)
        body = json.dumps(envelope, allow_nan=False).encode()
        conn = self._connect()
        try:
            conn.request("POST", "/v1/stream", body=body, headers={
                "Content-Type": "application/json",
                "Content-Length": str(len(body)),
            })
            response = conn.getresponse()
            if response.status != 200:
                payload = response.read()
                self._raise_for_status(
                    response.status, response.headers, payload
                )
            # http.client undoes the chunked framing; readline() hands
            # back exactly the NDJSON records the server wrote.
            summary: StreamSummary | None = None
            while True:
                line = response.readline()
                if not line:
                    break
                record = json.loads(line)
                kind = record.get("kind")
                if kind == "result":
                    yield (
                        int(record["index"]),
                        SampleResult.from_dict(record["result"]),
                    )
                elif kind == "summary":
                    summary = StreamSummary(
                        count=int(record["count"]),
                        seconds=float(record["seconds"]),
                        degraded=bool(record.get("degraded", False)),
                        cache=dict(record.get("cache", {})),
                    )
                elif kind == "error":
                    raise ServiceRequestError(
                        str(record.get("error", "stream failed")),
                        status=int(record.get("status", 500)),
                    )
            return summary
        finally:
            conn.close()

    def stream_collect(
        self, graph: dict, request: dict, *,
        preset: str | None = None, config: dict | None = None,
    ) -> tuple[list[SampleResult], StreamSummary | None]:
        """Drain a stream into ``(results_in_draw_order, summary)``."""
        results: list[SampleResult] = []
        iterator = self.stream(
            graph, request, preset=preset, config=config
        )
        summary = None
        while True:
            try:
                index, result = next(iterator)
            except StopIteration as stop:
                summary = stop.value
                break
            assert index == len(results), "stream out of draw order"
            results.append(result)
        return results, summary


def _envelope(
    graph: dict, request: dict, *,
    preset: str | None, config: dict | None,
) -> dict:
    envelope: dict = {"graph": graph, "request": request}
    if preset is not None:
        envelope["preset"] = preset
    if config:
        envelope["config"] = config
    return envelope


def wait_until_ready(
    client: ServiceClient, *, timeout: float = 30.0, interval: float = 0.05
) -> dict:
    """Poll ``/healthz`` until the server answers; returns the payload."""
    deadline = time.monotonic() + timeout
    last_error: Exception | None = None
    while time.monotonic() < deadline:
        try:
            return client.healthz()
        except (ConnectionError, socket.error, OSError) as error:
            last_error = error
            time.sleep(interval)
    raise TimeoutError(
        f"service at {client.host}:{client.port} not ready after "
        f"{timeout}s: {last_error}"
    )
