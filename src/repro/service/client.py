"""Stdlib client for the serving layer (``http.client`` under the hood).

:class:`ServiceClient` is what the load generator, the test suites, and
``examples/service_quickstart.py`` drive the server with. It speaks the
service envelope (graph spec + preset + config overrides + request
envelope) and hands back the same typed objects the in-process session
API returns: :func:`run` a :class:`~repro.api.responses.Response`,
:func:`stream` a generator of ``(index, typed result)`` pairs decoded
from the NDJSON chunks as they arrive (``SampleResult`` draws for
ensembles, the tagged report type for other streamable workloads).

Overload is a typed outcome, not a generic failure: 429/503 raise
:class:`ServiceUnavailable` carrying the server's ``Retry-After`` hint.
The client retries *idempotent-safe* failures itself -- 429/503 and
connection failures that happen before any response bytes arrive --
with jittered exponential backoff that honors ``Retry-After``
(``retries`` attempts, 0 disables). Failures after a response begins
are never retried here: a batch body is parsed or it isn't, and a
half-consumed stream must surface mid-stream death to the caller, who
can re-issue the whole (idempotent, pinned-seed) request if desired.
Every call opens a fresh connection (the server is
one-request-per-connection by design), which also means abandoning a
``stream`` generator closes the socket -- exactly the disconnect signal
the server's slot-release path listens for.
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import time
from dataclasses import dataclass

from repro.api.responses import (
    RESULT_TYPES,
    Response,
    response_from_dict,
    restore_nonfinite,
)
from repro.engine.results import SampleResult
from repro.errors import ReproError

__all__ = [
    "ServiceClient",
    "ServiceConnectionError",
    "ServiceRequestError",
    "ServiceUnavailable",
    "StreamSummary",
    "wait_until_ready",
]

# Connection failures that can precede any response byte. Everything
# here is idempotent-safe to retry when it fires *before* a response:
# the server either never saw the request or never started answering.
_RETRYABLE_CONN = (ConnectionError, http.client.RemoteDisconnected)


class ServiceRequestError(ReproError):
    """The server answered with an error payload (4xx/5xx)."""

    def __init__(self, message: str, *, status: int) -> None:
        super().__init__(f"[{status}] {message}")
        self.status = status


class ServiceUnavailable(ServiceRequestError):
    """429 (overloaded) or 503 (draining): retry after ``retry_after``."""

    def __init__(
        self, message: str, *, status: int, retry_after: float | None
    ) -> None:
        super().__init__(message, status=status)
        self.retry_after = retry_after


class ServiceConnectionError(ReproError):
    """The connection failed before any response arrived.

    Raised once the client's own retry budget is spent (or immediately
    with ``retries=0``). Always idempotent-safe to retry from outside:
    the server never began answering.
    """


@dataclass(frozen=True)
class StreamSummary:
    """The terminal NDJSON record of a completed stream.

    ``attempts`` counts connection attempts the client spent getting
    this stream open (1 = first try); retries only ever happen before
    the first record, so a summary's records arrived in one unbroken
    response.
    """

    count: int
    seconds: float
    degraded: bool
    cache: dict
    attempts: int = 1


class ServiceClient:
    """One service endpoint; stateless between calls.

    ``retries`` bounds how many times :func:`run` / :func:`stream`
    re-attempt after an idempotent-safe failure (``retries=2`` means up
    to 3 attempts); ``backoff_base``/``backoff_cap`` shape the jittered
    exponential delay between them. :attr:`last_attempts` reports the
    attempt count of the most recent :func:`run` call (streams carry
    theirs on :class:`StreamSummary`).
    """

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8437, *,
        timeout: float = 300.0, retries: int = 2,
        backoff_base: float = 0.25, backoff_cap: float = 8.0,
    ) -> None:
        if retries < 0:
            raise ReproError(f"retries must be >= 0, got {retries}")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.last_attempts = 0

    # -- plumbing -------------------------------------------------------

    def _connect(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )

    def _backoff_delay(
        self, attempt: int, retry_after: float | None
    ) -> float:
        """Jittered exponential delay before retry number ``attempt + 1``.

        The jitter (uniform over [0.5x, 1x]) decorrelates a herd of
        clients all shed at the same instant; a server ``Retry-After``
        is a floor, never shortened -- the server's estimate knows the
        queue, the client's backoff doesn't.
        """
        delay = min(self.backoff_cap, self.backoff_base * (2 ** attempt))
        delay *= 0.5 + 0.5 * random.random()
        if retry_after is not None:
            delay = max(delay, retry_after)
        return delay

    @staticmethod
    def _raise_for_status(status: int, headers, body: bytes) -> None:
        try:
            message = json.loads(body).get("error", body.decode(errors="replace"))
        except (json.JSONDecodeError, AttributeError):
            message = body.decode(errors="replace")
        if status in (429, 503):
            retry_after = headers.get("Retry-After")
            raise ServiceUnavailable(
                message, status=status,
                retry_after=float(retry_after) if retry_after else None,
            )
        raise ServiceRequestError(message, status=status)

    def _post_json(self, path: str, envelope: dict) -> dict:
        body = json.dumps(envelope, allow_nan=False).encode()
        conn = self._connect()
        try:
            try:
                conn.request("POST", path, body=body, headers={
                    "Content-Type": "application/json",
                    "Content-Length": str(len(body)),
                })
                response = conn.getresponse()
            except _RETRYABLE_CONN as error:
                # No response byte arrived: typed, idempotent-safe.
                raise ServiceConnectionError(
                    f"connection to {self.host}:{self.port} failed before "
                    f"a response: {error}"
                ) from error
            payload = response.read()
            if response.status != 200:
                self._raise_for_status(
                    response.status, response.headers, payload
                )
            return json.loads(payload)
        finally:
            conn.close()

    def _get_json(self, path: str) -> dict:
        conn = self._connect()
        try:
            conn.request("GET", path)
            response = conn.getresponse()
            payload = response.read()
            if response.status != 200:
                self._raise_for_status(
                    response.status, response.headers, payload
                )
            return json.loads(payload)
        finally:
            conn.close()

    def _get_text(self, path: str) -> str:
        conn = self._connect()
        try:
            conn.request("GET", path)
            response = conn.getresponse()
            payload = response.read()
            if response.status != 200:
                self._raise_for_status(
                    response.status, response.headers, payload
                )
            return payload.decode()
        finally:
            conn.close()

    # -- endpoints ------------------------------------------------------

    def healthz(self) -> dict:
        return self._get_json("/healthz")

    def stats(self) -> dict:
        return self._get_json("/stats")

    def metrics(self) -> str:
        """``GET /metrics``: Prometheus text exposition of the counters."""
        return self._get_text("/metrics")

    def run(
        self, graph: dict, request: dict, *,
        preset: str | None = None, config: dict | None = None,
        deadline_ms: int | None = None,
    ) -> Response:
        """Batch execution: one envelope in, one typed Response out.

        Retries 429/503 and pre-response connection failures up to
        ``self.retries`` times (idempotent-safe by the service's
        pinned-seed contract); :attr:`last_attempts` records how many
        attempts this call used.
        """
        envelope = _envelope(
            graph, request, preset=preset, config=config,
            deadline_ms=deadline_ms,
        )
        attempt = 0
        while True:
            attempt += 1
            self.last_attempts = attempt
            try:
                payload = self._post_json("/v1/run", envelope)
                return response_from_dict(payload)
            except ServiceUnavailable as error:
                if attempt > self.retries:
                    raise
                time.sleep(self._backoff_delay(attempt - 1,
                                               error.retry_after))
            except ServiceConnectionError:
                if attempt > self.retries:
                    raise
                time.sleep(self._backoff_delay(attempt - 1, None))

    def stream(
        self, graph: dict, request: dict, *,
        preset: str | None = None, config: dict | None = None,
        deadline_ms: int | None = None,
    ):
        """Yield ``(index, typed result)`` as the server emits them.

        Ensemble streams yield :class:`SampleResult` draws; other
        streamable workloads (MST) yield their report type, resolved
        from each record's ``result_type`` tag.

        The generator's ``.summary`` attribute is unavailable (plain
        generator); instead the terminal summary record is delivered via
        StopIteration value: ``summary = yield from client.stream(...)``
        inside a generator, or use :func:`stream_collect` for the common
        collect-everything case. Server-side ``error`` records raise.

        Retries (429/503, pre-response connection failures) happen only
        while *opening* the stream -- before the first record -- so
        yielded results are never duplicated. Once records flow, a death
        mid-stream raises; the caller may re-issue the whole request
        (idempotent for pinned seeds). The terminal
        :class:`StreamSummary` carries the attempt count.
        """
        envelope = _envelope(
            graph, request, preset=preset, config=config,
            deadline_ms=deadline_ms,
        )
        body = json.dumps(envelope, allow_nan=False).encode()
        attempt = 0
        while True:  # connection attempts; breaks once 200 arrives
            attempt += 1
            conn = self._connect()
            try:
                conn.request("POST", "/v1/stream", body=body, headers={
                    "Content-Type": "application/json",
                    "Content-Length": str(len(body)),
                })
                response = conn.getresponse()
                if response.status != 200:
                    payload = response.read()
                    self._raise_for_status(
                        response.status, response.headers, payload
                    )
                break
            except ServiceUnavailable as error:
                conn.close()
                if attempt > self.retries:
                    raise
                time.sleep(self._backoff_delay(attempt - 1,
                                               error.retry_after))
            except _RETRYABLE_CONN as error:
                conn.close()
                if attempt > self.retries:
                    raise ServiceConnectionError(
                        f"stream to {self.host}:{self.port} failed before "
                        f"a response after {attempt} attempt(s): {error}"
                    ) from error
                time.sleep(self._backoff_delay(attempt - 1, None))
            except BaseException:
                conn.close()
                raise
        try:
            # http.client undoes the chunked framing; readline() hands
            # back exactly the NDJSON records the server wrote.
            summary: StreamSummary | None = None
            while True:
                line = response.readline()
                if not line:
                    break
                record = json.loads(line)
                kind = record.get("kind")
                if kind == "result":
                    # Ensemble records are untagged SampleResults (their
                    # historical wire form); other workloads name their
                    # payload type and rebuild through RESULT_TYPES.
                    result_cls = RESULT_TYPES.get(
                        record.get("result_type", "SampleResult"),
                        SampleResult,
                    )
                    yield (
                        int(record["index"]),
                        result_cls.from_dict(
                            restore_nonfinite(record["result"])
                        ),
                    )
                elif kind == "summary":
                    summary = StreamSummary(
                        count=int(record["count"]),
                        seconds=float(record["seconds"]),
                        degraded=bool(record.get("degraded", False)),
                        cache=dict(record.get("cache", {})),
                        attempts=attempt,
                    )
                elif kind == "error":
                    raise ServiceRequestError(
                        str(record.get("error", "stream failed")),
                        status=int(record.get("status", 500)),
                    )
            return summary
        finally:
            conn.close()

    def stream_collect(
        self, graph: dict, request: dict, *,
        preset: str | None = None, config: dict | None = None,
        deadline_ms: int | None = None,
    ) -> tuple[list[SampleResult], StreamSummary | None]:
        """Drain a stream into ``(results_in_draw_order, summary)``."""
        results: list[SampleResult] = []
        iterator = self.stream(
            graph, request, preset=preset, config=config,
            deadline_ms=deadline_ms,
        )
        summary = None
        while True:
            try:
                index, result = next(iterator)
            except StopIteration as stop:
                summary = stop.value
                break
            assert index == len(results), "stream out of draw order"
            results.append(result)
        return results, summary


def _envelope(
    graph: dict, request: dict, *,
    preset: str | None, config: dict | None,
    deadline_ms: int | None = None,
) -> dict:
    envelope: dict = {"graph": graph, "request": request}
    if preset is not None:
        envelope["preset"] = preset
    if config:
        envelope["config"] = config
    if deadline_ms is not None:
        envelope["deadline_ms"] = deadline_ms
    return envelope


def wait_until_ready(
    client: ServiceClient, *, timeout: float = 30.0, interval: float = 0.05
) -> dict:
    """Poll ``/healthz`` until the server answers; returns the payload."""
    deadline = time.monotonic() + timeout
    last_error: Exception | None = None
    while time.monotonic() < deadline:
        try:
            return client.healthz()
        except (ConnectionError, socket.error, OSError) as error:
            last_error = error
            time.sleep(interval)
    raise TimeoutError(
        f"service at {client.host}:{client.port} not ready after "
        f"{timeout}s: {last_error}"
    )
