"""The sharded ensemble-sampling service (stdlib-only serving layer).

This package turns the session API into a network surface -- the
ROADMAP's "heavy traffic from millions of users" tentpole. It is built
entirely from the standard library (``asyncio`` for the front end,
``http.client`` for the client helper, ``concurrent.futures`` for the
worker shards): no web framework, no new dependencies.

- :mod:`~repro.service.protocol` -- the service wire envelope (graph
  spec + preset + config overrides + a PR 2 request envelope), admission
  budgets, and validation that rejects bad requests *before* any work;
- :mod:`~repro.service.pool` -- per-process :class:`SessionPool` caches
  and the worker entry points batch requests execute on;
- :mod:`~repro.service.server` -- the asyncio HTTP front end
  (``python -m repro serve``): batch ``POST /v1/run``, NDJSON streaming
  ``POST /v1/stream``, a bounded deadline-aware admission queue (shed
  with 429 + an estimate-backed Retry-After the moment a ``deadline_ms``
  cannot be met), and graceful SIGTERM drain;
- :mod:`~repro.service.pool` also hosts :class:`ShardSupervisor`: crash
  supervision for the batch worker shards -- bounded respawn with
  exponential backoff, idempotent re-dispatch of the lost task, and a
  circuit breaker that flips ``/healthz`` to ``degraded`` instead of
  silently absorbing a crash loop;
- :mod:`~repro.service.client` -- :class:`ServiceClient`, the stdlib
  client the load generator, tests, and examples drive the server with;
  retries idempotent-safe failures (429/503, pre-response connection
  loss) with jittered backoff honoring ``Retry-After``;
- :mod:`~repro.service.faults` -- chaos fault-injection hook points
  (env-armed, zero-cost when off) the chaos suite uses to kill workers
  mid-draw, truncate blobs mid-publish, and stall streams.

Reproducibility contract: a request with a pinned ``seed`` returns
byte-identical trees and round ledgers no matter which server, worker
process, or host serves it (the per-draw spawned-SeedSequence contract
is jobs- and host-invariant by construction; property-tested in
``tests/test_service_invariance.py``). Seedless requests draw from each
worker session's own entropy and are deliberately non-reproducible.
"""

from repro.service.client import (
    ServiceClient,
    ServiceConnectionError,
    ServiceUnavailable,
)
from repro.service.faults import FaultInjected
from repro.service.protocol import (
    ServiceError,
    ServiceLimits,
    ServiceTask,
    parse_service_envelope,
)
from repro.service.pool import SessionPool, ShardSupervisor
from repro.service.server import ServerConfig, TreeService, serve

__all__ = [
    "ServiceClient",
    "ServiceConnectionError",
    "ServiceUnavailable",
    "ServiceError",
    "ServiceLimits",
    "ServiceTask",
    "parse_service_envelope",
    "SessionPool",
    "ShardSupervisor",
    "FaultInjected",
    "ServerConfig",
    "TreeService",
    "serve",
]
