"""The sharded ensemble-sampling service (stdlib-only serving layer).

This package turns the session API into a network surface -- the
ROADMAP's "heavy traffic from millions of users" tentpole. It is built
entirely from the standard library (``asyncio`` for the front end,
``http.client`` for the client helper, ``concurrent.futures`` for the
worker shards): no web framework, no new dependencies.

- :mod:`~repro.service.protocol` -- the service wire envelope (graph
  spec + preset + config overrides + a PR 2 request envelope), admission
  budgets, and validation that rejects bad requests *before* any work;
- :mod:`~repro.service.pool` -- per-process :class:`SessionPool` caches
  and the worker entry points batch requests execute on;
- :mod:`~repro.service.server` -- the asyncio HTTP front end
  (``python -m repro serve``): batch ``POST /v1/run``, NDJSON streaming
  ``POST /v1/stream``, admission control (429 + Retry-After past
  ``max_inflight``), and graceful SIGTERM drain;
- :mod:`~repro.service.client` -- :class:`ServiceClient`, the stdlib
  client the load generator, tests, and examples drive the server with.

Reproducibility contract: a request with a pinned ``seed`` returns
byte-identical trees and round ledgers no matter which server, worker
process, or host serves it (the per-draw spawned-SeedSequence contract
is jobs- and host-invariant by construction; property-tested in
``tests/test_service_invariance.py``). Seedless requests draw from each
worker session's own entropy and are deliberately non-reproducible.
"""

from repro.service.client import ServiceClient, ServiceUnavailable
from repro.service.protocol import (
    ServiceError,
    ServiceLimits,
    ServiceTask,
    parse_service_envelope,
)
from repro.service.pool import SessionPool
from repro.service.server import ServerConfig, TreeService, serve

__all__ = [
    "ServiceClient",
    "ServiceUnavailable",
    "ServiceError",
    "ServiceLimits",
    "ServiceTask",
    "parse_service_envelope",
    "SessionPool",
    "ServerConfig",
    "TreeService",
    "serve",
]
