"""The service wire protocol: envelope parsing and admission budgets.

A service request is one JSON document binding the PR 2 request envelope
to the graph it should run against::

    {
      "graph":   {"family": "cycle", "n": 64, "seed": 0},
      "preset":  "fast-bench",                      # optional
      "config":  {"ell": 1024, "rng_contract": "v1"},  # optional overrides
      "request": {"request": "ensemble", "count": 8, "seed": 123}
    }

``graph`` names either a registered family (built deterministically from
``(family, n, seed)``, so every worker on every host constructs the
identical instance) or an explicit edge list (``{"n": ..., "edges":
[[u, v, w], ...]}``, validated with the same parse-time rules as
:func:`repro.graphs.io.graph_from_json`). ``request`` is exactly the
tagged wire form of :mod:`repro.api.requests` -- unknown fields and tags
fail loudly here, never mid-stream.

Everything a request could use to exhaust the server is bounded by
:class:`ServiceLimits` and rejected at *validation time* with a typed
:class:`ServiceError` carrying the HTTP status the front end should
return: draw counts past ``max_draws``, graphs past ``max_graph_n``,
process fan-out past ``max_jobs``, bodies past ``max_body_bytes``.
Server-owned configuration (cache placement and sizing) is not
client-reachable: ``config`` overrides naming those fields are rejected.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields, replace

import numpy as np

from repro.api.presets import get_preset
from repro.api.requests import (
    AuditRequest,
    EnsembleRequest,
    request_from_dict,
)
from repro.core.config import SamplerConfig
from repro.errors import ConfigError, ReproError
from repro.graphs.core import WeightedGraph
from repro.graphs.families import build_family, family_names, get_family

__all__ = [
    "ServiceError",
    "ServiceLimits",
    "ServiceTask",
    "parse_service_envelope",
    "SERVER_OWNED_CONFIG_FIELDS",
]

# Configuration the *server* owns (where the cache lives, how big its
# tiers are, whether it exists). A client reaching these could point a
# worker's disk tier at an arbitrary path or flush a shared cache.
SERVER_OWNED_CONFIG_FIELDS = frozenset({
    "cache_dir",
    "cache_memory_bytes",
    "cache_disk_bytes",
    "derived_cache",
    "derived_cache_entries",
    "extra",
})

_CONFIG_FIELDS = frozenset(f.name for f in fields(SamplerConfig))


class ServiceError(ReproError):
    """A request the service refuses, tagged with its HTTP status.

    ``status`` is the response code the front end sends (400 for
    validation failures, 413 for oversized bodies, 429 for overload,
    503 while draining); ``retry_after`` is the advisory seconds for a
    ``Retry-After`` header when the condition is transient.
    """

    def __init__(
        self,
        message: str,
        *,
        status: int = 400,
        retry_after: float | None = None,
    ) -> None:
        super().__init__(message)
        self.status = int(status)
        self.retry_after = retry_after


@dataclass(frozen=True)
class ServiceLimits:
    """Per-request admission budgets, enforced before any work starts.

    Attributes
    ----------
    max_draws:
        Largest ensemble ``count`` / audit ``samples`` accepted per
        request (the draw-count budget).
    max_graph_n:
        Largest graph (requested or realized vertices) a request may
        bind a session to.
    max_jobs:
        Largest per-request process fan-out (``jobs``); ``None`` in a
        request is clamped to this rather than "all CPUs" -- a service
        shares its cores across requests.
    max_body_bytes:
        Largest accepted request body (the byte budget; also caps
        explicit edge-list graphs).
    max_seconds:
        Per-request wall-clock budget; ``None`` disables it. Batch
        requests past it get 504, streams are cut with an error record.
    """

    max_draws: int = 10_000
    max_graph_n: int = 4096
    max_jobs: int = 4
    max_body_bytes: int = 1 << 20
    max_seconds: float | None = None

    def __post_init__(self) -> None:
        if self.max_draws < 1:
            raise ConfigError(
                f"max_draws must be >= 1, got {self.max_draws}"
            )
        if self.max_graph_n < 2:
            raise ConfigError(
                f"max_graph_n must be >= 2, got {self.max_graph_n}"
            )
        if self.max_jobs < 1:
            raise ConfigError(f"max_jobs must be >= 1, got {self.max_jobs}")
        if self.max_body_bytes < 1:
            raise ConfigError(
                f"max_body_bytes must be >= 1, got {self.max_body_bytes}"
            )
        if self.max_seconds is not None and self.max_seconds <= 0:
            raise ConfigError(
                f"max_seconds must be > 0 (or None), got {self.max_seconds}"
            )


@dataclass(frozen=True)
class ServiceTask:
    """One validated unit of service work, ready to route to a worker.

    ``session_key`` identifies the session the task needs -- equal keys
    mean "same graph, same numerics config", so any worker holding (or
    able to warm-start) that session can serve the task. The task is
    picklable: workers rebuild the graph and config from the spec, never
    receive live sessions over the wire.
    """

    graph_spec: dict
    session_key: str
    preset: str
    overrides: dict = field(default_factory=dict)
    request: object = None
    # Client deadline for the whole request (queue wait + service) in
    # milliseconds; None means "wait as long as the server allows". An
    # admission-queue hint, deliberately excluded from session_key --
    # two requests differing only in deadline share a session.
    deadline_ms: int | None = None

    def build_graph(self) -> tuple[WeightedGraph, dict]:
        """Construct the task's graph; returns ``(graph, meta)``.

        Family specs build deterministically from ``(family, n, seed)``
        -- the same instance on every worker and host. Edge-list specs
        rebuild from the validated rows.
        """
        spec = self.graph_spec
        if "family" in spec:
            return build_family(
                spec["family"], int(spec["n"]),
                np.random.default_rng(int(spec.get("seed", 0))),
            )
        n = int(spec["n"])
        weights = np.zeros((n, n), dtype=float)
        for u, v, w in spec["edges"]:
            weights[int(u), int(v)] = float(w)
            weights[int(v), int(u)] = float(w)
        graph = WeightedGraph(weights)
        return graph, {"family": "explicit", "n": n, "requested_n": n,
                       "size_adjusted": False}

    def build_config(self, base: SamplerConfig) -> SamplerConfig:
        """The task's sampler config: server base + client overrides."""
        if not self.overrides:
            return base
        return replace(base, **self.overrides)


def _canonical_json(payload) -> str:
    """Deterministic JSON for key derivation (sorted keys, no spaces)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _require_dict(payload, what: str) -> dict:
    if not isinstance(payload, dict):
        raise ServiceError(
            f"{what} must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def _parse_int(value, what: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ServiceError(f"{what} must be an integer, got {value!r}")
    return value


def _validate_graph_spec(spec: dict, limits: ServiceLimits) -> dict:
    """Normalize and bound a graph spec; returns the canonical dict."""
    spec = _require_dict(spec, "'graph'")
    if "family" in spec:
        unknown = set(spec) - {"family", "n", "seed"}
        if unknown:
            raise ServiceError(
                f"unknown graph field(s) {sorted(unknown)}; a family spec "
                "takes 'family', 'n', and optional 'seed'"
            )
        name = spec["family"]
        if name not in family_names():
            raise ServiceError(
                f"unknown family {name!r}; choose from {family_names()}"
            )
        n = _parse_int(spec.get("n"), "graph 'n'")
        family = get_family(name)
        if n < family.min_n:
            raise ServiceError(
                f"family {name!r} needs n >= {family.min_n}, got {n}"
            )
        if n > limits.max_graph_n:
            raise ServiceError(
                f"graph n = {n} exceeds this server's max_graph_n = "
                f"{limits.max_graph_n}"
            )
        seed = _parse_int(spec.get("seed", 0), "graph 'seed'")
        return {"family": name, "n": n, "seed": seed}
    if "edges" in spec:
        unknown = set(spec) - {"edges", "n"}
        if unknown:
            raise ServiceError(
                f"unknown graph field(s) {sorted(unknown)}; an explicit "
                "spec takes 'n' and 'edges'"
            )
        n = _parse_int(spec.get("n"), "graph 'n'")
        if n > limits.max_graph_n:
            raise ServiceError(
                f"graph n = {n} exceeds this server's max_graph_n = "
                f"{limits.max_graph_n}"
            )
        # Reuse the parse-time edge validation of the graph-IO layer
        # (duplicates, self-loops, ranges, weights) by round-tripping
        # through its document form; its FormatError carries the
        # offending edge index.
        from repro.errors import FormatError
        from repro.graphs.io import _FORMAT_GRAPH, graph_from_json

        try:
            graph = graph_from_json(json.dumps(
                {"format": _FORMAT_GRAPH, "n": n, "edges": spec["edges"]}
            ))
        except FormatError as error:
            raise ServiceError(f"bad graph edges: {error}") from None
        try:
            graph.require_connected()
        except ReproError as error:
            raise ServiceError(f"bad graph edges: {error}") from None
        edges = [
            [int(u), int(v), float(graph.weight(u, v))]
            for u, v in graph.edges()
        ]
        return {"n": n, "edges": edges}
    raise ServiceError(
        "graph spec needs either a 'family' (with 'n', optional 'seed') "
        "or an explicit 'n' + 'edges' list"
    )


def _validate_overrides(overrides: dict, base: SamplerConfig) -> dict:
    """Bound and type-check client config overrides against the base."""
    overrides = _require_dict(overrides, "'config'")
    unknown = set(overrides) - _CONFIG_FIELDS
    if unknown:
        raise ServiceError(
            f"unknown config field(s) {sorted(unknown)}"
        )
    owned = set(overrides) & SERVER_OWNED_CONFIG_FIELDS
    if owned:
        raise ServiceError(
            f"config field(s) {sorted(owned)} are server-owned (cache "
            "placement and sizing are set by the operator, not per "
            "request)"
        )
    try:
        # Construct once so SamplerConfig's own validation rejects bad
        # values here, with its error text, before any session exists.
        replace(base, **overrides)
    except ConfigError as error:
        raise ServiceError(f"bad config override: {error}") from None
    except (TypeError, ValueError) as error:
        raise ServiceError(f"bad config override: {error}") from None
    return dict(sorted(overrides.items()))


def parse_service_envelope(
    payload: dict, limits: ServiceLimits, *, default_preset: str = "fast-bench"
) -> ServiceTask:
    """Validate one service document into a routable :class:`ServiceTask`.

    Every admission decision a request body can trigger happens here --
    a task that parses is within budget and safe to run. Raises
    :class:`ServiceError` (with its HTTP status) otherwise.
    """
    payload = _require_dict(payload, "request body")
    unknown = set(payload) - {
        "graph", "preset", "config", "request", "deadline_ms"
    }
    if unknown:
        raise ServiceError(
            f"unknown envelope field(s) {sorted(unknown)}; expected "
            "'graph', 'request', optional 'preset', 'config', and "
            "'deadline_ms'"
        )
    deadline_ms = payload.get("deadline_ms")
    if deadline_ms is not None:
        deadline_ms = _parse_int(deadline_ms, "'deadline_ms'")
        if deadline_ms < 1:
            raise ServiceError(
                f"'deadline_ms' must be >= 1, got {deadline_ms}"
            )
    if "graph" not in payload:
        raise ServiceError("envelope needs a 'graph' spec")
    if "request" not in payload:
        raise ServiceError("envelope needs a 'request' envelope")

    graph_spec = _validate_graph_spec(payload["graph"], limits)

    preset = payload.get("preset", default_preset)
    if not isinstance(preset, str):
        raise ServiceError(f"'preset' must be a string, got {preset!r}")
    try:
        base = get_preset(preset).config
    except ConfigError as error:
        raise ServiceError(str(error)) from None

    overrides = _validate_overrides(payload.get("config", {}), base)

    try:
        request = request_from_dict(
            _require_dict(payload["request"], "'request'")
        )
    except ConfigError as error:
        raise ServiceError(str(error)) from None
    except (TypeError, ValueError) as error:
        raise ServiceError(f"bad request envelope: {error}") from None

    # Draw-count and fan-out budgets, rejected before any session work.
    if isinstance(request, EnsembleRequest):
        if request.count > limits.max_draws:
            raise ServiceError(
                f"count = {request.count} exceeds this server's "
                f"max_draws = {limits.max_draws}"
            )
        jobs = request.jobs
        if jobs is not None and jobs > limits.max_jobs:
            raise ServiceError(
                f"jobs = {jobs} exceeds this server's max_jobs = "
                f"{limits.max_jobs}"
            )
        if jobs is None:
            # "All CPUs" is a reasonable default in-process but not on a
            # shared server: clamp to the per-request budget.
            request = replace(request, jobs=limits.max_jobs)
    elif isinstance(request, AuditRequest):
        if request.samples > limits.max_draws:
            raise ServiceError(
                f"samples = {request.samples} exceeds this server's "
                f"max_draws = {limits.max_draws}"
            )
        if request.jobs > limits.max_jobs:
            raise ServiceError(
                f"jobs = {request.jobs} exceeds this server's max_jobs = "
                f"{limits.max_jobs}"
            )

    session_key = hashlib.sha1(_canonical_json(
        {"graph": graph_spec, "preset": preset, "config": overrides}
    ).encode()).hexdigest()
    return ServiceTask(
        graph_spec=graph_spec,
        session_key=session_key,
        preset=preset,
        overrides=overrides,
        request=request,
        deadline_ms=deadline_ms,
    )
