"""Chaos fault-injection hook points for the serving stack.

Fault tolerance that is only exercised by real outages is decorative.
This module gives the serving stack *named hook points* -- places where
production code asks "should a fault fire here?" -- and a tiny plan
language for wiring faults into them from tests, so the chaos suite
(``tests/test_chaos.py`` via ``tests/chaosutil.py``) can kill workers
mid-draw, crash or truncate disk-tier publishes, delay shard responses
past deadlines, and so on, against *real* server subprocesses.

Activation is environment-driven so it crosses process boundaries the
same way the failures it simulates do: the server front end, its batch
worker shards, and any ensemble grandchildren all inherit
``REPRO_FAULTS`` and fire the same plan. With the variable unset every
hook is a single cached dict probe returning instantly -- production
cost is nil -- and the engine-layer hooks (:mod:`repro.engine.store`)
don't even import this module.

Plan grammar (``REPRO_FAULTS``)::

    point=action[:arg][#limit] [; point=action ...]

- ``point`` names a hook site: ``worker.task`` (batch worker shard, at
  task pickup), ``store.publish`` (disk tier, just before the atomic
  rename), ``stream.chunk`` (front end, before each streamed record).
- ``action`` is one of ``kill`` (SIGKILL own process -- a crashed
  worker), ``exit[:code]`` (``os._exit``, default 17 -- a dying
  process that skips cleanup), ``delay:seconds`` (a stalled shard or
  slow disk), ``error[:message]`` (raise :class:`FaultInjected`), or
  ``truncate`` (chop bytes off the largest blob the hook is publishing
  -- a torn write).
- ``#limit`` fires the rule at most ``limit`` times. With
  ``REPRO_FAULTS_DIR`` set the budget is shared *across processes* via
  atomically-claimed token files (so "kill exactly one worker, then
  heal" is expressible against a respawning pool); without it the
  count is per-process.

Example -- kill exactly one batch worker, fleet-wide::

    REPRO_FAULTS="worker.task=kill#1" REPRO_FAULTS_DIR=/tmp/tokens \
        python -m repro serve ...
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "ENV_FAULTS",
    "ENV_TOKEN_DIR",
    "FaultInjected",
    "FaultRule",
    "fire",
    "parse_plan",
]

ENV_FAULTS = "REPRO_FAULTS"
ENV_TOKEN_DIR = "REPRO_FAULTS_DIR"

_ACTIONS = ("kill", "exit", "delay", "error", "truncate")


class FaultInjected(RuntimeError):
    """An ``error``-action fault fired.

    Deliberately *not* a :class:`~repro.errors.ReproError`: injected
    faults must travel the unexpected-failure paths (500s, degradation,
    supervision), never the typed client-error ones.
    """


@dataclass(frozen=True)
class FaultRule:
    """One parsed ``point=action[:arg][#limit]`` clause."""

    point: str
    action: str
    arg: str | None = None
    limit: int | None = None


def parse_plan(spec: str) -> dict[str, list[FaultRule]]:
    """Parse a plan string into ``{point: [rules...]}``.

    Raises ``ValueError`` on malformed clauses -- a chaos test with a
    typo'd plan must fail loudly, not run fault-free and pass.
    """
    plan: dict[str, list[FaultRule]] = {}
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        point, sep, spec_part = clause.partition("=")
        if not sep or not point:
            raise ValueError(f"fault clause {clause!r} is not point=action")
        limit: int | None = None
        if "#" in spec_part:
            spec_part, _, raw_limit = spec_part.rpartition("#")
            limit = int(raw_limit)
            if limit < 1:
                raise ValueError(f"fault limit must be >= 1, got {limit}")
        action, _, arg = spec_part.partition(":")
        if action not in _ACTIONS:
            raise ValueError(
                f"unknown fault action {action!r}; choose from {_ACTIONS}"
            )
        plan.setdefault(point.strip(), []).append(
            FaultRule(point.strip(), action, arg or None, limit)
        )
    return plan


# Parsed-plan cache keyed by the raw env value, so each process parses
# once and monkeypatched env changes (in-process tests) are picked up.
_cache: tuple[str | None, dict[str, list[FaultRule]]] = (None, {})
# Per-process fallback budgets when no token directory is configured.
_local_claims: dict[tuple[str, int], int] = {}


def _plan() -> dict[str, list[FaultRule]]:
    global _cache
    spec = os.environ.get(ENV_FAULTS)
    if spec == _cache[0]:
        return _cache[1]
    _cache = (spec, parse_plan(spec) if spec else {})
    return _cache[1]


def _claim(rule: FaultRule, index: int) -> bool:
    """Claim one firing of a limited rule; True when the budget allows.

    With ``REPRO_FAULTS_DIR`` the budget is a set of token files claimed
    with ``O_CREAT | O_EXCL`` -- atomic on POSIX, so concurrent workers
    (or a respawned pool) can never over-fire a ``#limit`` rule.
    """
    assert rule.limit is not None
    token_dir = os.environ.get(ENV_TOKEN_DIR)
    if not token_dir:
        key = (f"{rule.point}={rule.action}", index)
        fired = _local_claims.get(key, 0)
        if fired >= rule.limit:
            return False
        _local_claims[key] = fired + 1
        return True
    root = Path(token_dir)
    root.mkdir(parents=True, exist_ok=True)
    stem = f"{rule.point}.{rule.action}.{index}"
    for slot in range(rule.limit):
        try:
            fd = os.open(
                root / f"{stem}.{slot}.token",
                os.O_CREAT | os.O_EXCL | os.O_WRONLY,
            )
        except FileExistsError:
            continue
        except OSError:
            return False
        os.close(fd)
        return True
    return False


def _truncate_blobs(payload: dict) -> None:
    """Chop the tail off the largest payload blob (a simulated torn write)."""
    directory = payload.get("dir")
    if directory is None:
        return
    blobs = [
        path
        for path in Path(directory).iterdir()
        if path.is_file() and path.name != "meta.json"
    ]
    if not blobs:
        return
    victim = max(blobs, key=lambda path: path.stat().st_size)
    size = victim.stat().st_size
    with open(victim, "r+b") as handle:
        handle.truncate(max(0, size // 2))


def _execute(rule: FaultRule, payload: dict) -> None:
    if rule.action == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    elif rule.action == "exit":
        os._exit(int(rule.arg or 17))
    elif rule.action == "delay":
        time.sleep(float(rule.arg or 0.1))
    elif rule.action == "error":
        raise FaultInjected(rule.arg or f"injected fault at {rule.point}")
    elif rule.action == "truncate":
        _truncate_blobs(payload)


def fire(point: str, **payload) -> None:
    """Run every active fault rule registered at ``point``.

    ``payload`` gives context-dependent actions their target (e.g.
    ``dir=`` for ``truncate``). No-op (one dict probe) when no plan
    names the point.
    """
    rules = _plan().get(point)
    if not rules:
        return
    for index, rule in enumerate(rules):
        if rule.limit is not None and not _claim(rule, index):
            continue
        _execute(rule, payload)
