"""The asyncio HTTP front end: ``python -m repro serve``.

Stdlib only -- the server is ``asyncio.start_server`` plus a minimal
HTTP/1.1 layer (one request per connection, ``Connection: close``),
because the workloads are long-lived compute, not header gymnastics.

Topology::

    client -> front end (asyncio, this module)
                |-- POST /v1/run     -> ProcessPoolExecutor worker shards
                |                       (each holds a SessionPool; all
                |                        warm-start from one cache_dir)
                |-- POST /v1/stream  -> pump thread -> Session.stream
                |                       (NDJSON chunks in draw order;
                |                        request.jobs fans the draws
                |                        over processes underneath)
                |-- GET  /healthz, /stats, /metrics

Admission control happens in two layers, both *before* any sampling:

- request budgets (:class:`~repro.service.protocol.ServiceLimits`):
  draw counts, graph size, fan-out, body bytes -- violations are 400/413
  at validation time, never mid-stream;
- concurrency: past ``max_inflight`` admitted requests the server
  queues up to ``queue_depth`` waiters in FIFO order rather than
  hard-rejecting. Requests may carry a ``deadline_ms``; a waiter whose
  deadline cannot be met (predicted from an EWMA of observed slot-hold
  times) is shed *immediately* with 429 and a ``Retry-After`` computed
  from that same estimate -- at enqueue, at grant, or mid-wait,
  whichever comes first -- so clients learn "come back in N seconds"
  instead of burning their budget in a hopeless line. ``queue_depth=0``
  restores the PR 7 pure-reject behavior. While draining
  (SIGTERM/SIGINT) new work gets 503, queued waiters are flushed with
  503, and in-flight requests finish; queued-but-unstarted chunks are
  cancelled through ``iter_ensemble``'s shutdown contract
  (``cancel_futures=True``), so drain never hangs behind work nobody
  will receive.

Failure surface: a crashed batch worker (``BrokenProcessPool``) is
*supervised*, not silently absorbed -- the shard pool respawns with
capped exponential backoff and the lost task is re-dispatched, which is
safe because service draws are idempotent (a pinned seed reproduces the
same bytes; a seedless request never delivered its first result).
Repeated consecutive crashes trip the supervisor's circuit breaker:
``/healthz`` flips to ``degraded``, batches are served from the front
end's own session pool (``meta["service_degraded"]``, counted once per
request in ``degraded_batches`` no matter how many attempts crashed),
and one probe per cooldown window tests whether the pool healed. A
client that disconnects mid-stream frees its slot as soon as the next
chunk write fails; per-request wall-clock budgets cut batches with 504
and streams with a terminal ``error`` record. A batch worker that blows
past the budget is not abandoned-but-busy: the whole shard pool is
killed and respawned (``worker_recycles`` counts it), so a runaway
request cannot pin a worker slot for the rest of the server's life.
Observability rides on ``GET /stats`` (JSON) and ``GET /metrics`` (the
same counters in Prometheus text exposition format, scrape-ready).
"""

from __future__ import annotations

import asyncio
import json
import logging
import signal
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from repro.api.requests import EnsembleRequest
from repro.api.responses import sanitize_nonfinite
from repro.core.workloads import streaming_request_kinds
from repro.engine.results import SampleResult
from repro.errors import ConfigError, ReproError
from repro.service import faults
from repro.service.pool import SessionPool, ShardSupervisor, run_task
from repro.service.protocol import (
    ServiceError,
    ServiceLimits,
    ServiceTask,
    parse_service_envelope,
)

__all__ = ["ServerConfig", "TreeService", "serve"]

_LOG = logging.getLogger(__name__)

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 411: "Length Required",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
    504: "Gateway Timeout",
}


@dataclass(frozen=True)
class ServerConfig:
    """Everything ``python -m repro serve`` can set.

    ``port=0`` binds an ephemeral port (the startup line and
    :attr:`TreeService.port` report the real one -- how tests and the
    load generator avoid collisions). ``workers`` sizes the batch
    process pool; ``max_inflight`` caps *admitted* requests of both
    kinds, and ``queue_depth`` bounds how many more may wait in the
    admission queue (0 = reject instead of queueing, the pre-queue
    behavior). ``cache_dir`` is the shared warm-start volume every
    session pool points at; ``preset`` the default config recipe
    requests build on. ``max_redispatch`` bounds how many times one
    batch request may be re-dispatched after worker crashes before it
    degrades in-process; ``breaker_threshold`` consecutive crashes trip
    the shard circuit breaker for ``breaker_reset_seconds`` per probe.
    """

    host: str = "127.0.0.1"
    port: int = 8437
    workers: int = 2
    max_inflight: int = 8
    limits: ServiceLimits = field(default_factory=ServiceLimits)
    preset: str = "fast-bench"
    cache_dir: str | None = None
    session_cap: int = 8
    drain_seconds: float = 10.0
    retry_after: float = 1.0
    queue_depth: int = 16
    queue_wait_seconds: float = 30.0
    max_redispatch: int = 2
    breaker_threshold: int = 5
    breaker_reset_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.workers}")
        if self.max_inflight < 1:
            raise ConfigError(
                f"max_inflight must be >= 1, got {self.max_inflight}"
            )
        if self.session_cap < 1:
            raise ConfigError(
                f"session_cap must be >= 1, got {self.session_cap}"
            )
        if self.drain_seconds < 0:
            raise ConfigError(
                f"drain_seconds must be >= 0, got {self.drain_seconds}"
            )
        if self.queue_depth < 0:
            raise ConfigError(
                f"queue_depth must be >= 0, got {self.queue_depth}"
            )
        if self.queue_wait_seconds <= 0:
            raise ConfigError(
                f"queue_wait_seconds must be > 0, got "
                f"{self.queue_wait_seconds}"
            )
        if self.max_redispatch < 0:
            raise ConfigError(
                f"max_redispatch must be >= 0, got {self.max_redispatch}"
            )
        if self.breaker_threshold < 1:
            raise ConfigError(
                f"breaker_threshold must be >= 1, got "
                f"{self.breaker_threshold}"
            )
        if self.breaker_reset_seconds < 0:
            raise ConfigError(
                f"breaker_reset_seconds must be >= 0, got "
                f"{self.breaker_reset_seconds}"
            )


@dataclass
class _Waiter:
    """One queued admission: a future granted a slot or shed with 429."""

    future: asyncio.Future
    enqueued: float  # monotonic
    deadline: float | None  # monotonic, from deadline_ms


class TreeService:
    """One server instance: listener, shard executors, counters."""

    def __init__(self, config: ServerConfig) -> None:
        self.config = config
        self.port: int | None = None  # resolved on start()
        self._server: asyncio.base_events.Server | None = None
        self._sessions = SessionPool(
            limit=config.session_cap, cache_dir=config.cache_dir
        )
        self._shards = ShardSupervisor(
            workers=config.workers,
            cache_dir=config.cache_dir,
            session_cap=config.session_cap,
            breaker_threshold=config.breaker_threshold,
            breaker_reset_seconds=config.breaker_reset_seconds,
        )
        self._stream_threads = ThreadPoolExecutor(
            max_workers=config.max_inflight,
            thread_name_prefix="repro-stream",
        )
        self._inflight = 0
        self._waiters: deque[_Waiter] = deque()
        # EWMA of slot-hold seconds: the service-time estimate behind
        # deadline shedding and Retry-After hints. None until the first
        # completion (cold servers neither shed on prediction nor
        # promise sharp hints).
        self._service_ewma: float | None = None
        self._draining = asyncio.Event()
        self._active_stops: set[threading.Event] = set()
        self.counters = {
            "admitted": 0,
            "completed": 0,
            "failed": 0,
            "rejected_validation": 0,
            "rejected_overload": 0,
            "rejected_draining": 0,
            "timeouts": 0,
            "streams_opened": 0,
            "streams_completed": 0,
            "client_disconnects": 0,
            "degraded_batches": 0,
            "degraded_streams": 0,
            "worker_recycles": 0,
            "worker_crashes": 0,
            "redispatches": 0,
            "breaker_trips": 0,
            "queued": 0,
            "shed_deadline": 0,
            "shed_queue_timeout": 0,
            "queue_wait_ms": 0,
        }

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener; worker shards spawn on first dispatch."""
        config = self.config
        self._server = await asyncio.start_server(
            self._handle_connection, config.host, config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    def begin_drain(self, reason: str = "signal") -> None:
        """Flip into draining: stop admitting, let in-flight work finish."""
        if not self._draining.is_set():
            _LOG.warning("draining on %s (%d in flight, %d queued)",
                         reason, self._inflight, len(self._waiters))
            self._draining.set()
            # Flush the admission queue: waiters get the same typed 503
            # a fresh request would, not a silent hang until timeout.
            while self._waiters:
                entry = self._waiters.popleft()
                if entry.future.done():
                    continue
                self.counters["rejected_draining"] += 1
                entry.future.set_exception(ServiceError(
                    "server is draining", status=503,
                    retry_after=self.config.retry_after,
                ))

    async def wait_closed(self) -> int:
        """Block until drained and torn down; returns the exit code (0)."""
        await self._draining.wait()
        assert self._server is not None
        self._server.close()
        await self._server.wait_closed()
        deadline = time.monotonic() + self.config.drain_seconds
        while self._inflight > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.05)
        # Past the grace period: tell surviving streams to stop at their
        # next chunk boundary, then give them a beat to unwind.
        for stop in list(self._active_stops):
            stop.set()
        force_deadline = time.monotonic() + 2.0
        while self._inflight > 0 and time.monotonic() < force_deadline:
            await asyncio.sleep(0.05)
        # cancel_futures: queued-but-unstarted chunks are dropped -- the
        # iter_ensemble shutdown contract, now load-bearing. Never wait
        # on work nobody will receive.
        self._shards.shutdown()
        self._stream_threads.shutdown(wait=False, cancel_futures=True)
        return 0

    # -- HTTP plumbing --------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            await self._handle_request(reader, writer)
        except (ConnectionResetError, BrokenPipeError):
            self.counters["client_disconnects"] += 1
        except Exception:  # never let one connection kill the server
            _LOG.exception("unhandled error serving a connection")
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _handle_request(self, reader, writer) -> None:
        try:
            header_blob = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=30.0
            )
        except (
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            asyncio.TimeoutError,
            TimeoutError,
        ):
            await self._send_json(writer, 400, {"error": "malformed request"})
            return
        try:
            request_line, headers = self._parse_head(header_blob)
            method, target, _version = request_line.split(" ", 2)
        except ValueError:
            await self._send_json(writer, 400, {"error": "malformed request"})
            return

        if method == "GET" and target in ("/healthz", "/stats", "/metrics"):
            if target == "/metrics":
                await self._send_text(writer, 200, self._metrics())
            else:
                payload = (
                    self._healthz() if target == "/healthz" else self._stats()
                )
                await self._send_json(writer, 200, payload)
            return
        if target not in ("/v1/run", "/v1/stream"):
            await self._send_json(
                writer, 404, {"error": f"unknown path {target!r}"}
            )
            return
        if method != "POST":
            await self._send_json(
                writer, 405, {"error": f"{target} takes POST, not {method}"}
            )
            return

        # -- body, within the byte budget -------------------------------
        try:
            length = int(headers.get("content-length", ""))
        except ValueError:
            await self._send_json(
                writer, 411, {"error": "Content-Length required"}
            )
            return
        if length > self.config.limits.max_body_bytes:
            self.counters["rejected_validation"] += 1
            await self._send_json(writer, 413, {
                "error": (
                    f"body of {length} bytes exceeds max_body_bytes = "
                    f"{self.config.limits.max_body_bytes}"
                )
            })
            return
        try:
            body = await asyncio.wait_for(
                reader.readexactly(length), timeout=30.0
            )
        except (asyncio.IncompleteReadError, asyncio.TimeoutError, TimeoutError):
            await self._send_json(writer, 400, {"error": "truncated body"})
            return

        # -- validation (the whole admission budget) ---------------------
        try:
            task = self._parse_task(body)
        except ServiceError as error:
            self.counters["rejected_validation"] += 1
            await self._send_error(writer, error)
            return

        # -- concurrency admission ---------------------------------------
        try:
            await self._admit(task)
        except ServiceError as error:
            await self._send_error(writer, error)
            return
        held = time.monotonic()
        try:
            if target == "/v1/run":
                await self._run_batch(writer, task)
            else:
                await self._run_stream(writer, task)
        finally:
            self._observe_service(time.monotonic() - held)
            self._release_slot()

    @staticmethod
    def _parse_head(blob: bytes) -> tuple[str, dict[str, str]]:
        text = blob.decode("latin-1")
        request_line, *header_lines = text.split("\r\n")
        headers: dict[str, str] = {}
        for line in header_lines:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        return request_line, headers

    def _parse_task(self, body: bytes) -> ServiceTask:
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as error:
            raise ServiceError(f"body is not valid JSON: {error}") from None
        return parse_service_envelope(
            payload, self.config.limits, default_preset=self.config.preset
        )

    # -- admission queue ------------------------------------------------

    def _observe_service(self, seconds: float) -> None:
        """Fold one observed slot-hold time into the EWMA estimate."""
        if self._service_ewma is None:
            self._service_ewma = seconds
        else:
            self._service_ewma = 0.7 * self._service_ewma + 0.3 * seconds

    def _estimate_wait(self, position: int) -> float:
        """Predicted seconds until queue position ``position`` is granted.

        Under saturation a slot frees roughly every ``ewma /
        max_inflight`` seconds; position ``p`` needs ``p + 1`` frees.
        """
        service = self._service_ewma
        if service is None:
            return self.config.retry_after
        return service * (position + 1) / self.config.max_inflight

    def _retry_after(self, position: int) -> float:
        """The Retry-After hint for a shed request at ``position``."""
        return max(self.config.retry_after, self._estimate_wait(position))

    def _grant(self) -> None:
        self._inflight += 1
        self.counters["admitted"] += 1

    def _release_slot(self) -> None:
        self._inflight -= 1
        self._dispatch_waiters()

    def _shed(self, message: str, *, position: int) -> ServiceError:
        return ServiceError(
            message, status=429, retry_after=self._retry_after(position)
        )

    def _dispatch_waiters(self) -> None:
        """Grant freed slots to queue heads; shed newly hopeless waiters."""
        while self._waiters and self._inflight < self.config.max_inflight:
            entry = self._waiters.popleft()
            if entry.future.done():  # already timed out / flushed
                continue
            now = time.monotonic()
            service = self._service_ewma or 0.0
            if entry.deadline is not None and now + service > entry.deadline:
                # Granting would start work that cannot finish in time:
                # shed at the last responsible moment instead.
                self.counters["shed_deadline"] += 1
                entry.future.set_exception(self._shed(
                    "deadline_ms cannot be met (service estimate "
                    f"{service:.3f}s exceeds the remaining budget)",
                    position=0,
                ))
                continue
            self._grant()
            entry.future.set_result(None)

    async def _admit(self, task: ServiceTask) -> None:
        """One slot -- immediately, after a bounded deadline-aware wait,
        or the typed refusal the front end should send."""
        if self._draining.is_set():
            self.counters["rejected_draining"] += 1
            raise ServiceError(
                "server is draining", status=503,
                retry_after=self.config.retry_after,
            )
        if self._inflight < self.config.max_inflight and not self._waiters:
            self._grant()
            return
        config = self.config
        position = len(self._waiters)
        if config.queue_depth == 0 or position >= config.queue_depth:
            self.counters["rejected_overload"] += 1
            raise ServiceError(
                f"at max_inflight = {config.max_inflight} admitted "
                f"requests with {position} queued", status=429,
                retry_after=self._retry_after(position),
            )
        budget = (
            task.deadline_ms / 1000.0 if task.deadline_ms is not None
            else None
        )
        service = self._service_ewma
        if budget is not None and service is not None:
            # Shed the moment the deadline is known hopeless: predicted
            # queue wait plus one service time must fit in the budget.
            eta = self._estimate_wait(position) + service
            if eta > budget:
                self.counters["shed_deadline"] += 1
                raise self._shed(
                    f"deadline_ms = {task.deadline_ms} cannot be met "
                    f"(estimated {eta:.3f}s to completion)",
                    position=position,
                )
        loop = asyncio.get_running_loop()
        entry = _Waiter(
            future=loop.create_future(),
            enqueued=time.monotonic(),
            deadline=(
                time.monotonic() + budget if budget is not None else None
            ),
        )
        self._waiters.append(entry)
        self.counters["queued"] += 1
        # A deadline-carrying waiter may linger only while starting now
        # could still finish in time; deadline-less waiters are bounded
        # by the operator's queue_wait_seconds.
        if budget is not None:
            timeout = max(0.0, budget - (service or 0.0))
        else:
            timeout = config.queue_wait_seconds
        try:
            await asyncio.wait_for(entry.future, timeout=timeout)
        except (asyncio.TimeoutError, TimeoutError):
            try:  # dead waiters must not hold queue positions
                self._waiters.remove(entry)
            except ValueError:
                pass
            position = len(self._waiters)
            if budget is not None:
                self.counters["shed_deadline"] += 1
                raise self._shed(
                    f"deadline_ms = {task.deadline_ms} expired while "
                    "queued", position=position,
                ) from None
            self.counters["shed_queue_timeout"] += 1
            raise self._shed(
                f"queued past queue_wait_seconds = "
                f"{config.queue_wait_seconds}", position=position,
            ) from None
        finally:
            self.counters["queue_wait_ms"] += int(
                (time.monotonic() - entry.enqueued) * 1000
            )

    # -- responses ------------------------------------------------------

    async def _send_json(
        self, writer, status: int, payload: dict,
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        body = json.dumps(payload, allow_nan=False).encode()
        headers = {
            "Content-Type": "application/json",
            "Content-Length": str(len(body)),
            "Connection": "close",
            **(extra_headers or {}),
        }
        head = f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
        head += "".join(f"{k}: {v}\r\n" for k, v in headers.items())
        writer.write(head.encode() + b"\r\n" + body)
        await writer.drain()

    async def _send_text(self, writer, status: int, text: str) -> None:
        body = text.encode()
        headers = {
            # The Prometheus text exposition format's canonical type.
            "Content-Type": "text/plain; version=0.0.4; charset=utf-8",
            "Content-Length": str(len(body)),
            "Connection": "close",
        }
        head = f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
        head += "".join(f"{k}: {v}\r\n" for k, v in headers.items())
        writer.write(head.encode() + b"\r\n" + body)
        await writer.drain()

    async def _send_error(self, writer, error: ServiceError) -> None:
        extra = {}
        if error.retry_after is not None:
            extra["Retry-After"] = str(max(1, round(error.retry_after)))
        await self._send_json(
            writer, error.status,
            {"error": str(error), "status": error.status}, extra,
        )

    def _healthz(self) -> dict:
        if self._draining.is_set():
            status = "draining"
        elif self._shards.breaker_open:
            # The shard pool is crash-looping and the breaker is open:
            # the service still answers (in-process, degraded), but an
            # orchestrator should route new traffic elsewhere.
            status = "degraded"
        else:
            status = "ok"
        return {
            "status": status,
            "inflight": self._inflight,
            "workers": self.config.workers,
            "shards": self._shards.state(),
        }

    def _stats(self) -> dict:
        return {
            "inflight": self._inflight,
            "draining": self._draining.is_set(),
            "counters": dict(self.counters),
            "sessions": self._sessions.stats(),
            "queue": {
                "depth": len(self._waiters),
                "capacity": self.config.queue_depth,
                "service_ewma_seconds": self._service_ewma,
            },
            "shards": self._shards.state(),
            "limits": {
                "max_inflight": self.config.max_inflight,
                "max_draws": self.config.limits.max_draws,
                "max_graph_n": self.config.limits.max_graph_n,
                "max_jobs": self.config.limits.max_jobs,
                "max_body_bytes": self.config.limits.max_body_bytes,
                "max_seconds": self.config.limits.max_seconds,
            },
        }

    def _metrics(self) -> str:
        """The ``/stats`` counters in Prometheus text exposition format.

        Same numbers, scrape-ready: every lifetime counter becomes a
        ``counter`` sample named ``repro_service_<name>``, plus the live
        gauges (``inflight``, ``draining``, ``queue_depth``,
        ``breaker_open``). Counter order follows the ``counters`` dict
        (fixed at construction), so the output is byte-deterministic for
        a given state -- the golden test pins it.
        """
        lines: list[str] = []

        def sample(name: str, kind: str, help_text: str, value) -> None:
            metric = f"repro_service_{name}"
            lines.append(f"# HELP {metric} {help_text}")
            lines.append(f"# TYPE {metric} {kind}")
            lines.append(f"{metric} {int(value)}")

        for name, value in self.counters.items():
            sample(name, "counter",
                   f"Lifetime count of {name.replace('_', ' ')}.", value)
        sample("inflight", "gauge",
               "Requests currently admitted and running.", self._inflight)
        sample("draining", "gauge",
               "1 while the server is draining, else 0.",
               1 if self._draining.is_set() else 0)
        sample("queue_depth", "gauge",
               "Requests currently waiting in the admission queue.",
               len(self._waiters))
        sample("breaker_open", "gauge",
               "1 while the shard circuit breaker is open, else 0.",
               1 if self._shards.breaker_open else 0)
        return "\n".join(lines) + "\n"

    # -- batch path -----------------------------------------------------

    def _run_inline(self, task: ServiceTask) -> dict:
        """Degraded batch path: serve from the front end's own pool."""
        session, lock = self._sessions.acquire(task)
        with lock:
            response = session.run(task.request)
        payload = response.to_dict()
        payload.setdefault("meta", {})["service_degraded"] = True
        return payload

    async def _send_timeout(self, writer) -> None:
        self.counters["timeouts"] += 1
        await self._send_json(writer, 504, {
            "error": (
                f"request exceeded max_seconds = "
                f"{self.config.limits.max_seconds}"
            ),
            "status": 504,
        })

    async def _run_degraded(self, writer, task: ServiceTask) -> dict | None:
        """In-process fallback once supervision gives up on the pool.

        Counts ``degraded_batches`` exactly once per *request*, however
        many crashed dispatch attempts led here. Returns the payload, or
        ``None`` when an error response was already written.
        """
        self.counters["degraded_batches"] += 1
        loop = asyncio.get_running_loop()
        try:
            return await asyncio.wait_for(
                loop.run_in_executor(
                    self._stream_threads, self._run_inline, task
                ),
                timeout=self.config.limits.max_seconds,
            )
        except (asyncio.TimeoutError, TimeoutError):
            await self._send_timeout(writer)
            return None
        except ReproError as error:
            self.counters["failed"] += 1
            await self._send_json(
                writer, 400, {"error": str(error), "status": 400}
            )
            return None

    async def _run_batch(self, writer, task: ServiceTask) -> None:
        loop = asyncio.get_running_loop()
        start = time.perf_counter()
        shards = self._shards
        attempt = 0
        while True:
            if shards.breaker_open and not shards.breaker_allows_probe():
                # Breaker open, no probe due: don't feed the crash loop.
                payload = await self._run_degraded(writer, task)
                if payload is None:
                    return
                break
            try:
                future = loop.run_in_executor(
                    shards.executor(), run_task, task
                )
                payload = await asyncio.wait_for(
                    future, timeout=self.config.limits.max_seconds
                )
                shards.note_success()
                break
            except (asyncio.TimeoutError, TimeoutError):
                # The worker holding this task is still busy
                # (cancellation cannot reach into a C call): recycle the
                # pool so the slot comes back instead of staying pinned
                # by abandoned work.
                self.counters["worker_recycles"] += 1
                shards.respawn(kill=True)
                await self._send_timeout(writer)
                return
            except (BrokenProcessPool, OSError) as error:
                # A worker died under the task. Respawn the pool and
                # re-dispatch: service draws are idempotent (pinned
                # seeds reproduce byte-identical results; a seedless
                # request never delivered anything), so a retry is
                # always safe. Bounded by max_redispatch and the
                # breaker -- a crash-looping input degrades in-process
                # instead of spinning forever.
                self.counters["worker_crashes"] += 1
                if shards.note_crash():
                    self.counters["breaker_trips"] += 1
                _LOG.warning(
                    "worker shard crashed under a batch task (%s: %s)",
                    type(error).__name__, error,
                )
                shards.respawn()
                if (
                    shards.breaker_open
                    or attempt >= self.config.max_redispatch
                ):
                    payload = await self._run_degraded(writer, task)
                    if payload is None:
                        return
                    break
                self.counters["redispatches"] += 1
                await asyncio.sleep(shards.backoff_seconds(attempt))
                attempt += 1
            except ReproError as error:
                # The task validated but still failed in execution (e.g.
                # an audit over an enumeration-intractable graph):
                # client error.
                self.counters["failed"] += 1
                await self._send_json(
                    writer, 400, {"error": str(error), "status": 400}
                )
                return
            except Exception as error:
                self.counters["failed"] += 1
                _LOG.exception("batch task failed")
                await self._send_json(writer, 500, {
                    "error": f"internal error: {type(error).__name__}",
                    "status": 500,
                })
                return
        payload.setdefault("meta", {})["service_seconds"] = round(
            time.perf_counter() - start, 6
        )
        self.counters["completed"] += 1
        await self._send_json(writer, 200, payload)

    # -- streaming path -------------------------------------------------

    async def _run_stream(self, writer, task: ServiceTask) -> None:
        request = task.request
        # The workload registry decides which request kinds stream;
        # marking a new workload's kind streamable serves it here with
        # no server edits.
        if getattr(request, "kind", None) not in streaming_request_kinds():
            self.counters["rejected_validation"] += 1
            await self._send_error(writer, ServiceError(
                "/v1/stream takes a streamable request (kinds "
                f"{streaming_request_kinds()}); use /v1/run for "
                f"{getattr(request, 'kind', '?')!r}"
            ))
            return
        if isinstance(request, EnsembleRequest) and request.leverage_audit:
            self.counters["rejected_validation"] += 1
            await self._send_error(writer, ServiceError(
                "leverage_audit is a batch aggregate; use /v1/run"
            ))
            return
        self.counters["streams_opened"] += 1
        loop = asyncio.get_running_loop()
        queue: asyncio.Queue = asyncio.Queue()
        stop = threading.Event()
        self._active_stops.add(stop)
        deadline = (
            time.monotonic() + self.config.limits.max_seconds
            if self.config.limits.max_seconds is not None else None
        )
        pump = loop.run_in_executor(
            self._stream_threads,
            self._pump_stream, task, queue, loop, stop, deadline,
        )
        completed = False
        try:
            writer.write(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: application/x-ndjson\r\n"
                b"Transfer-Encoding: chunked\r\n"
                b"Connection: close\r\n\r\n"
            )
            await writer.drain()
            while True:
                kind, payload = await queue.get()
                if kind == "aborted":
                    break
                await self._send_stream_record(writer, payload)
                if kind in ("summary", "error"):
                    completed = kind == "summary"
                    break
            writer.write(b"0\r\n\r\n")  # terminal chunk
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            # The client went away mid-stream: free the slot now; the
            # pump sees `stop` at its next chunk and closes the
            # generator, which cancels queued worker chunks.
            self.counters["client_disconnects"] += 1
        finally:
            stop.set()
            self._active_stops.discard(stop)
            try:
                await pump
            except Exception:  # pump errors were already queued
                _LOG.exception("stream pump failed")
        if completed:
            self.counters["streams_completed"] += 1

    async def _send_stream_record(self, writer, record: dict) -> None:
        line = json.dumps(record, allow_nan=False).encode() + b"\n"
        writer.write(f"{len(line):x}\r\n".encode() + line + b"\r\n")
        await writer.drain()

    def _pump_stream(
        self, task: ServiceTask, queue, loop, stop: threading.Event,
        deadline: float | None,
    ) -> None:
        """Thread body: drive Session.stream, hand chunks to the loop."""
        def emit(kind: str, payload: dict | None) -> None:
            try:
                loop.call_soon_threadsafe(queue.put_nowait, (kind, payload))
            except RuntimeError:  # loop already closed (hard shutdown)
                pass

        start = time.perf_counter()
        stream = None
        try:
            session, lock = self._sessions.acquire(task)
            with lock:
                stats: dict = {}
                stream = session.stream(task.request, stats=stats)
                index = 0
                for result in stream:
                    faults.fire("stream.chunk")
                    if stop.is_set():
                        emit("aborted", None)
                        return
                    if deadline is not None and time.monotonic() > deadline:
                        emit("error", {
                            "kind": "error", "status": 504,
                            "error": (
                                f"stream exceeded max_seconds = "
                                f"{self.config.limits.max_seconds}"
                            ),
                        })
                        return
                    record = {
                        "kind": "result",
                        "index": index,
                        "result": sanitize_nonfinite(result.to_dict()),
                    }
                    # Ensemble records stay untagged (their historical
                    # wire bytes); other workloads' results name their
                    # payload type so clients rebuild via RESULT_TYPES.
                    if not isinstance(result, SampleResult):
                        record["result_type"] = type(result).__name__
                    emit("result", record)
                    index += 1
                if stats.get("degraded"):
                    self.counters["degraded_streams"] += 1
                emit("summary", {
                    "kind": "summary",
                    "count": index,
                    "seconds": round(time.perf_counter() - start, 6),
                    "degraded": bool(stats.get("degraded", False)),
                    "cache": sanitize_nonfinite({
                        k: v for k, v in stats.items() if k != "degraded"
                    }),
                })
        except ReproError as error:
            emit("error", {"kind": "error", "status": 400,
                           "error": str(error)})
        except Exception as error:
            _LOG.exception("stream task failed")
            emit("error", {"kind": "error", "status": 500,
                           "error": f"internal error: {type(error).__name__}"})
        finally:
            if stream is not None:
                # Explicit close runs iter_ensemble's finally: the pool
                # shuts down with cancel_futures, so abandoned streams
                # never leave orphaned chunk work running.
                stream.close()


async def _serve_async(config: ServerConfig) -> int:
    service = TreeService(config)
    await service.start()
    loop = asyncio.get_running_loop()
    for signame in ("SIGTERM", "SIGINT"):
        try:
            loop.add_signal_handler(
                getattr(signal, signame), service.begin_drain, signame
            )
        except (NotImplementedError, RuntimeError):  # non-main thread, win
            pass
    print(
        f"repro-service listening on http://{config.host}:{service.port} "
        f"(workers={config.workers}, max_inflight={config.max_inflight})",
        flush=True,
    )
    return await service.wait_closed()


def serve(config: ServerConfig) -> int:
    """Run a server until drained (SIGTERM/SIGINT); returns exit code 0."""
    return asyncio.run(_serve_async(config))
