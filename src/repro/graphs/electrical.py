"""Electrical-network view of graphs: resistances, commute times, leverage.

The paper's lineage runs through Kirchhoff and the electrical-network
correspondence (Section 1; Chandra et al. [18] for cover times via
resistance). This module supplies that machinery, and with it a *second
exact validation axis* for the samplers:

- the probability that edge e appears in a uniform spanning tree equals
  its **leverage score** ``w(e) * R_eff(e)`` (a classical corollary of
  the Matrix-Tree theorem / Burton-Pemantle), so sampler edge marginals
  can be checked against a closed form on graphs far too large to
  enumerate;
- commute times satisfy ``C(u, v) = 2 W R_eff(u, v)`` with ``W`` the
  total edge weight [18], cross-validating the hitting-time solver;
- Foster's theorem ``sum_e w(e) R_eff(e) = n - 1`` pins down the whole
  resistance computation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graphs.core import WeightedGraph

__all__ = [
    "laplacian_pseudoinverse",
    "effective_resistance",
    "effective_resistance_matrix",
    "commute_time",
    "edge_leverage_scores",
    "foster_sum",
    "cover_time_resistance_bound",
]


def laplacian_pseudoinverse(graph: WeightedGraph) -> np.ndarray:
    """Moore-Penrose pseudoinverse of the Laplacian.

    Computed by shifting out the all-ones kernel: ``(L + J/n)^{-1} - J/n``
    where ``J`` is all-ones -- exact for connected graphs and numerically
    gentler than an SVD cutoff.
    """
    graph.require_connected()
    n = graph.n
    ones = np.full((n, n), 1.0 / n)
    return np.linalg.inv(graph.laplacian() + ones) - ones


def effective_resistance_matrix(graph: WeightedGraph) -> np.ndarray:
    """All-pairs effective resistances.

    ``R[u, v] = Lplus[u, u] + Lplus[v, v] - 2 Lplus[u, v]``.
    """
    pinv = laplacian_pseudoinverse(graph)
    diagonal = np.diagonal(pinv)
    resistance = diagonal[:, None] + diagonal[None, :] - 2.0 * pinv
    np.fill_diagonal(resistance, 0.0)
    return np.clip(resistance, 0.0, None)


def effective_resistance(graph: WeightedGraph, u: int, v: int) -> float:
    """Effective resistance between one pair of vertices."""
    if not (0 <= u < graph.n and 0 <= v < graph.n):
        raise GraphError(f"vertex pair ({u}, {v}) out of range")
    if u == v:
        return 0.0
    return float(effective_resistance_matrix(graph)[u, v])


def commute_time(graph: WeightedGraph, u: int, v: int) -> float:
    """Expected round-trip time ``H(u,v) + H(v,u) = 2 W R_eff(u,v)`` [18].

    ``W`` is the total edge weight (m for unweighted graphs).
    """
    total_weight = float(graph.weights.sum()) / 2.0
    return 2.0 * total_weight * effective_resistance(graph, u, v)


def edge_leverage_scores(graph: WeightedGraph) -> dict[tuple[int, int], float]:
    """``P(e in uniform spanning tree) = w(e) * R_eff(e)`` per edge.

    These marginals sum to exactly ``n - 1`` (Foster), giving samplers a
    closed-form target on graphs too large for tree enumeration.
    """
    resistance = effective_resistance_matrix(graph)
    return {
        (u, v): float(graph.weight(u, v) * resistance[u, v])
        for u, v in graph.edges()
    }


def foster_sum(graph: WeightedGraph) -> float:
    """``sum_e w(e) R_eff(e)`` -- equals ``n - 1`` on connected graphs."""
    return float(sum(edge_leverage_scores(graph).values()))


def cover_time_resistance_bound(graph: WeightedGraph) -> float:
    """Chandra et al. [18]: ``cover <= O(W R_max log n)``.

    Returned with the explicit constant 2 of the classical statement
    ``cover <= 2 W R_max ln n`` (total weight W, max pairwise effective
    resistance R_max).
    """
    import math

    resistance = effective_resistance_matrix(graph)
    total_weight = float(graph.weights.sum()) / 2.0
    return 2.0 * total_weight * float(resistance.max()) * math.log(max(graph.n, 2))
