"""Hitting-time and cover-time machinery.

The paper's walk lengths are scoped by cover-time bounds:

- the nominal walk length per phase is the smallest power of two at least
  ``log(4 sqrt(n) / eps) * n^3`` because the cover time of any unweighted
  graph is O(n^3) (Section 2.1, citing Aleliunas et al. [2]);
- Corollary 1 trades rounds for cover time: graphs with cover time tau can
  be sampled in O~(tau / n) rounds, so we need tau estimates to pick
  doubling-walk lengths.

This module provides exact expected hitting times via the fundamental
matrix of the walk, Matthews-style cover-time bounds, and an empirical
cover-time estimator used by tests and benches.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import GraphError
from repro.graphs.core import WeightedGraph

__all__ = [
    "hitting_time_matrix",
    "max_hitting_time",
    "cover_time_bound",
    "worst_case_cover_bound",
    "empirical_cover_time",
]


def hitting_time_matrix(graph: WeightedGraph) -> np.ndarray:
    """Exact expected hitting times ``H[u, v]`` for the random walk.

    ``H[u, v]`` is the expected number of steps for a walk started at ``u``
    to first reach ``v`` (``H[v, v] = 0``). Computed per target by solving
    the absorbing linear system ``(I - P_{-v,-v}) h = 1``, which is exact
    and O(n^4) overall -- fine for the validation graph sizes we use.
    """
    graph.require_connected()
    n = graph.n
    transition = graph.transition_matrix()
    hitting = np.zeros((n, n), dtype=np.float64)
    identity = np.eye(n - 1)
    for target in range(n):
        keep = [u for u in range(n) if u != target]
        sub = transition[np.ix_(keep, keep)]
        times = np.linalg.solve(identity - sub, np.ones(n - 1))
        for row, u in enumerate(keep):
            hitting[u, target] = times[row]
    return hitting


def max_hitting_time(graph: WeightedGraph) -> float:
    """``max_{u,v} H[u, v]`` -- the pessimal one-target hitting time."""
    return float(hitting_time_matrix(graph).max())


def cover_time_bound(graph: WeightedGraph) -> float:
    """Matthews upper bound on the cover time.

    ``t_cov <= (max hitting time) * H_{n}`` where ``H_n`` is the n-th
    harmonic number. Exact enough to scope doubling-walk lengths for
    Corollary 1 experiments.
    """
    n = graph.n
    if n <= 1:
        return 0.0
    harmonic = sum(1.0 / k for k in range(1, n))
    return max_hitting_time(graph) * harmonic


def worst_case_cover_bound(n: int, m: int | None = None) -> float:
    """The O(mn) <= O(n^3) worst-case bound the paper's ell is based on.

    Aleliunas et al. [2] show cover time <= 2m(n - 1) for any connected
    unweighted graph; with m <= n(n-1)/2 this gives the O(n^3) the paper
    quotes. ``m=None`` uses the dense worst case.
    """
    if m is None:
        m = n * (n - 1) // 2
    return 2.0 * m * max(n - 1, 1)


def empirical_cover_time(
    graph: WeightedGraph,
    *,
    trials: int = 16,
    rng: np.random.Generator | None = None,
    max_steps: int | None = None,
) -> float:
    """Mean number of steps for a walk from vertex 0 to visit every vertex.

    ``max_steps`` defaults to 50x the Matthews bound; exceeding it raises
    :class:`GraphError` since that indicates a disconnected graph or a bug.
    """
    graph.require_connected()
    rng = np.random.default_rng(rng)
    n = graph.n
    if n == 1:
        return 0.0
    transition = graph.transition_matrix()
    cumulative = np.cumsum(transition, axis=1)
    if max_steps is None:
        max_steps = int(50 * cover_time_bound(graph)) + 10 * n
    totals = 0.0
    for _ in range(trials):
        current = 0
        unseen = n - 1
        seen = np.zeros(n, dtype=bool)
        seen[0] = True
        steps = 0
        while unseen > 0:
            if steps >= max_steps:
                raise GraphError(
                    f"walk failed to cover the graph within {max_steps} steps"
                )
            u = rng.random()
            current = int(np.searchsorted(cumulative[current], u, side="right"))
            current = min(current, n - 1)
            steps += 1
            if not seen[current]:
                seen[current] = True
                unseen -= 1
        totals += steps
    return totals / trials


def nominal_walk_length(n: int, epsilon: float) -> int:
    """The paper's nominal per-phase target length ell (Section 2.1).

    The smallest power of two at least ``log(4 sqrt(n) / eps) * n^3``,
    chosen so that ell >= T (the rho-th-distinct-vertex time) in every
    phase except with probability <= eps/2 by Markov + union bound.
    """
    if n < 1:
        raise GraphError("n must be positive")
    if not (0 < epsilon < 1):
        raise GraphError("epsilon must be in (0, 1)")
    target = math.log(4.0 * math.sqrt(n) / epsilon) * float(n) ** 3
    target = max(target, 2.0)
    return 1 << max(1, math.ceil(math.log2(target)))
